"""End-to-end batch service: a concurrent batch of duplicate submits
performs exactly one rewrite+verify (observable in the service stats),
every client receives a ledger byte-identical to a serial local run, the
cache survives a server restart as warm hits, malformed jobs bounce with
structured faults, a key that keeps crashing is quarantined, overload
sheds with a retry hint, deadlines die structurally without poisoning,
slow-loris connections are evicted, and vanished clients leave an
observable orphaned-results tally."""

import asyncio
import threading
import time

import pytest

from repro.core.pipeline import CacheLayout, rewrite_and_verify
from repro.isa.extensions import PROFILES
from repro.resilience.failures import (
    JOB_CRASH,
    JOB_DEADLINE,
    JOB_OVERLOADED,
    JOB_POISONED,
    JOB_REJECTED,
)
from repro.resilience.policy import RetryPolicy
from repro.service.client import open_connection, submit_jobs
from repro.service.protocol import read_message, write_message
from repro.service.server import RewriteService
from repro.telemetry import Telemetry, use
from repro.telemetry.pipeline import resolve_workload

SEED = 20260806
NO_RETRY = RetryPolicy(max_attempts=1)


@pytest.fixture(autouse=True)
def _fixed_seed(monkeypatch):
    monkeypatch.setenv("REPRO_FUZZ_SEED", str(SEED))


def _spec(job_id, workload="dot", **extra):
    spec = {"op": "submit", "id": job_id, "workload": workload,
            "seed": SEED, "oracle_trials": 1}
    spec.update(extra)
    return spec


def _serve(tmp_path, coro_fn, *, shards=4, jobs=2, **service_kw):
    """Run *coro_fn(service, address)* against a live unix-socket server."""

    async def harness():
        layout = CacheLayout(tmp_path / "cache", shards=shards)
        service = RewriteService(layout, jobs=jobs, **service_kw)
        address = await service.start(
            socket_path=str(tmp_path / "serve.sock"))
        server_task = asyncio.ensure_future(service.serve_until_shutdown())
        try:
            return await coro_fn(service, address)
        finally:
            service.shutdown()
            await server_task

    return asyncio.run(harness())


def _reference_ledger():
    """What a serial local `repro verify dot --report` writes."""
    pipe = rewrite_and_verify(
        resolve_workload("dot", variant="ext", scale=128),
        PROFILES["rv64gc"], seed=SEED, oracle_trials=1)
    return pipe.report.to_json()


class TestBatchDedup:
    def test_duplicate_batch_runs_once(self, tmp_path):
        out = tmp_path / "ledgers"

        async def scenario(service, address):
            specs = [_spec(f"dup-{i}") for i in range(6)]
            records = await submit_jobs(address, specs, concurrency=6,
                                        out_dir=out, retry_policy=NO_RETRY)
            return service.stats, records

        stats, records = _serve(tmp_path, scenario)
        assert all(r["status"] == "ok" and r["verify_ok"] for r in records)
        # The acceptance bar: one rewrite+verify for the whole batch.
        assert stats.rewrites == 1
        classes = sorted(r["cache"] for r in records)
        assert classes.count("cold") == 1
        assert stats.jobs_deduped_inflight + stats.jobs_deduped_cache == 5
        assert stats.queue_depth == 0
        # All six share one release key and one shard.
        assert len({r["key"] for r in records}) == 1
        assert len({r["shard"] for r in records}) == 1

    def test_ledgers_byte_identical_to_serial_verify(self, tmp_path):
        out = tmp_path / "ledgers"

        async def scenario(service, address):
            return await submit_jobs(
                address, [_spec("a"), _spec("b")], concurrency=2,
                out_dir=out, retry_policy=NO_RETRY)

        records = _serve(tmp_path, scenario)
        reference = _reference_ledger()
        for record in records:
            assert (out / f"{record['id']}.report.json").read_bytes() == \
                reference.encode("utf-8")

    def test_warm_hits_survive_a_server_restart(self, tmp_path):
        async def first(service, address):
            return await submit_jobs(address, [_spec("cold-run")],
                                     retry_policy=NO_RETRY)

        async def second(service, address):
            records = await submit_jobs(address, [_spec("warm-run")],
                                        retry_policy=NO_RETRY)
            return service.stats, records

        _serve(tmp_path, first)
        stats, records = _serve(tmp_path, second)
        assert records[0]["cache"] == "warm"
        assert stats.rewrites == 0 and stats.jobs_deduped_cache == 1


class TestRejection:
    def test_unknown_workload_is_a_structured_fault(self, tmp_path):
        async def scenario(service, address):
            records = await submit_jobs(
                address,
                [_spec("bad", workload="no-such-workload"), _spec("good")],
                retry_policy=NO_RETRY)
            return service.stats, records

        stats, records = _serve(tmp_path, scenario)
        by_id = {r["id"]: r for r in records}
        assert by_id["bad"]["status"] == "failed"
        assert by_id["bad"]["fault"]["fault"] == JOB_REJECTED
        # The server survived and ran the good job on the same socket.
        assert by_id["good"]["status"] == "ok"
        assert stats.jobs_rejected == 1 and stats.rewrites == 1

    def test_malformed_submit_bounces(self, tmp_path):
        async def scenario(service, address):
            records = await submit_jobs(
                address, [{"op": "submit", "id": "half"}],
                retry_policy=NO_RETRY)
            return service.stats, records

        stats, records = _serve(tmp_path, scenario)
        assert records[0]["fault"]["fault"] == JOB_REJECTED
        assert stats.jobs_accepted == 0


class TestPoisonQuarantine:
    def test_crashing_key_is_quarantined(self, tmp_path, monkeypatch):
        import repro.service.server as server_mod

        def explode(job, **kw):
            raise RuntimeError("synthetic pipeline crash")

        monkeypatch.setattr(server_mod, "run_job", explode)

        async def scenario(service, address):
            faults = []
            for attempt in ("one", "two", "three"):
                records = await submit_jobs(address, [_spec(attempt)],
                                            retry_policy=NO_RETRY)
                faults.append(records[0]["fault"])
            return service.stats, faults

        stats, faults = _serve(tmp_path, scenario)
        assert faults[0]["fault"] == JOB_CRASH and not faults[0]["quarantined"]
        assert faults[1]["fault"] == JOB_CRASH and faults[1]["quarantined"]
        # Third submit never reaches the pipeline: refused on admission.
        assert faults[2]["fault"] == JOB_POISONED
        assert stats.jobs_failed == 2 and stats.jobs_quarantined == 1
        assert stats.queue_depth == 0

    def test_other_keys_still_run_past_a_poisoned_one(self, tmp_path,
                                                      monkeypatch):
        import repro.service.server as server_mod

        real_run_job = server_mod.run_job

        def explode_dot(job, **kw):
            if getattr(job.binary, "name", "").startswith("dot"):
                raise RuntimeError("synthetic pipeline crash")
            return real_run_job(job, **kw)

        monkeypatch.setattr(server_mod, "run_job", explode_dot)

        async def scenario(service, address):
            for attempt in ("one", "two"):
                await submit_jobs(address, [_spec(attempt)],
                                  retry_policy=NO_RETRY)
            records = await submit_jobs(
                address, [_spec("healthy", workload="gemv")],
                retry_policy=NO_RETRY)
            return service.stats, records

        stats, records = _serve(tmp_path, scenario)
        assert records[0]["status"] == "ok"
        assert stats.rewrites == 1 and stats.jobs_failed == 2


def _gate_run_job(monkeypatch):
    """Block every pipeline run behind a gate the test controls."""
    import repro.service.server as server_mod

    gate = threading.Event()
    real_run_job = server_mod.run_job

    def gated(job, **kw):
        assert gate.wait(timeout=30.0), "test never opened the run gate"
        return real_run_job(job, **kw)

    monkeypatch.setattr(server_mod, "run_job", gated)
    return gate


async def _until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.01)
    return False


class TestOverloadShedding:
    def test_flood_sheds_with_retry_hint(self, tmp_path, monkeypatch):
        gate = _gate_run_job(monkeypatch)

        async def scenario(service, address):
            # Fill the one slot, then the one queue place, determin-
            # istically: the third distinct key must shed.
            leader = asyncio.ensure_future(submit_jobs(
                address, [_spec("leader")], retry_policy=NO_RETRY))
            assert await _until(lambda: service._running == 1)
            queued = asyncio.ensure_future(submit_jobs(
                address, [_spec("queued", seed=SEED + 1)],
                retry_policy=NO_RETRY))
            assert await _until(lambda: service._run_queued == 1)
            shed = await submit_jobs(
                address, [_spec("shed", seed=SEED + 2)],
                retry_policy=NO_RETRY)
            mid_flood_depth = service.stats.queue_depth
            gate.set()
            records = [r for batch in await asyncio.gather(leader, queued)
                       for r in batch]
            return service.stats, shed[0], records, mid_flood_depth

        stats, shed, records, mid_flood_depth = _serve(
            tmp_path, scenario, max_inflight=1, max_queue=1, job_threads=6)
        assert shed["status"] == "failed"
        assert shed["fault"]["fault"] == JOB_OVERLOADED
        hint = shed["fault"]["retry_after_ms"]
        assert isinstance(hint, int) and hint >= 1
        assert all(r["status"] == "ok" for r in records)
        assert stats.jobs_shed == 1
        # Shed jobs are refused at the door: never accepted, so the
        # depth only ever counted the two admitted jobs.
        assert stats.jobs_accepted == 2 and mid_flood_depth == 2
        assert stats.queue_depth == 0


class TestDeadlines:
    def test_expired_deadline_is_structured_not_poison(self, tmp_path):
        async def scenario(service, address):
            dead = await submit_jobs(address,
                                     [_spec("dead", deadline_ms=1)],
                                     retry_policy=NO_RETRY)
            # The client hears JOB_DEADLINE the moment its wait expires;
            # the doomed run may still be settling server-side.  An
            # instant bare resubmit could coalesce onto it and inherit
            # the fault (a real client's retry backoff absorbs this), so
            # wait for the run to leave the in-flight table first.
            assert await _until(lambda: not service._inflight)
            retry = await submit_jobs(address, [_spec("retry")],
                                      retry_policy=NO_RETRY)
            return service.stats, dead[0], retry[0]

        stats, dead, retry = _serve(tmp_path, scenario)
        assert dead["status"] == "failed"
        assert dead["fault"]["fault"] == JOB_DEADLINE
        assert stats.deadline_exceeded == 1
        # A deadline is a time budget, not a defect: the same key runs
        # clean on resubmit with a sane budget, no quarantine involved.
        assert retry["status"] == "ok"
        assert stats.jobs_quarantined == 0
        assert stats.queue_depth == 0

    def test_follower_deadline_never_cancels_the_leader(self, tmp_path,
                                                        monkeypatch):
        gate = _gate_run_job(monkeypatch)

        async def scenario(service, address):
            leader = asyncio.ensure_future(submit_jobs(
                address, [_spec("leader")], retry_policy=NO_RETRY))
            assert await _until(lambda: service._running == 1)
            # Same release key, tiny budget: the follower coalesces
            # onto the leader's run and must detach alone when its
            # deadline fires while the run is still gated.
            follower = await submit_jobs(
                address, [_spec("follower", deadline_ms=60)],
                retry_policy=NO_RETRY)
            gate.set()
            return service.stats, follower[0], (await leader)[0]

        stats, follower, leader = _serve(tmp_path, scenario, job_threads=6)
        assert follower["status"] == "failed"
        assert follower["fault"]["fault"] == JOB_DEADLINE
        assert leader["status"] == "ok" and leader["cache"] == "cold"
        assert stats.rewrites == 1
        assert stats.deadline_exceeded == 1
        assert stats.jobs_deduped_inflight == 1
        assert stats.queue_depth == 0


class TestSlowClients:
    def test_idle_connection_is_evicted(self, tmp_path):
        async def scenario(service, address):
            reader, writer = await open_connection(address)
            await write_message(writer, {"op": "ping"})
            pong = await read_message(reader)
            # Now squat: the server's idle deadline must fire.
            eviction = await asyncio.wait_for(read_message(reader), 10.0)
            eof = await asyncio.wait_for(read_message(reader), 10.0)
            writer.close()
            return service.stats, pong, eviction, eof

        stats, pong, eviction, eof = _serve(tmp_path, scenario,
                                            idle_timeout=0.2)
        assert pong["event"] == "pong"
        assert eviction["event"] == "error"
        assert "evicted" in eviction["fault"]["detail"]
        assert eof is None
        assert stats.slow_client_evictions == 1

    def test_connection_with_a_job_in_flight_is_not_evicted(
            self, tmp_path, monkeypatch):
        gate = _gate_run_job(monkeypatch)

        async def scenario(service, address):
            task = asyncio.ensure_future(submit_jobs(
                address, [_spec("patient")], retry_policy=NO_RETRY))
            assert await _until(lambda: service._running == 1)
            # Hold the run far past the idle deadline: a client quietly
            # awaiting its result must never be evicted.
            await asyncio.sleep(0.5)
            gate.set()
            return service.stats, (await task)[0]

        stats, record = _serve(tmp_path, scenario, idle_timeout=0.15,
                               job_threads=6)
        assert record["status"] == "ok"
        assert stats.slow_client_evictions == 0

    def test_parse_error_does_not_kill_the_connection(self, tmp_path):
        async def scenario(service, address):
            reader, writer = await open_connection(address)
            writer.write(b"this is not json\n")
            await writer.drain()
            bounce = await asyncio.wait_for(read_message(reader), 10.0)
            # Same connection, next frame: still in business.
            await write_message(writer, {"op": "ping"})
            pong = await asyncio.wait_for(read_message(reader), 10.0)
            writer.close()
            return bounce, pong

        bounce, pong = _serve(tmp_path, scenario)
        assert bounce["event"] == "error"
        assert bounce["fault"]["fault"] == JOB_REJECTED
        assert pong["event"] == "pong"


class TestOrphanedResults:
    def test_vanished_client_is_tallied_and_resumable(self, tmp_path):
        async def scenario(service, address):
            reader, writer = await open_connection(address)
            await write_message(writer, _spec("gone"))
            accepted = await asyncio.wait_for(read_message(reader), 30.0)
            # Vanish mid result stream; the run must still finish and
            # the undeliverable terminal event must be *counted*.
            writer.transport.abort()
            assert await _until(
                lambda: service.stats.orphaned_results >= 1, timeout=30.0)
            redo = await submit_jobs(address, [_spec("redo")],
                                     retry_policy=NO_RETRY)
            return service.stats, accepted, redo[0]

        stats, accepted, redo = _serve(tmp_path, scenario)
        assert accepted["event"] == "accepted"
        assert stats.orphaned_results >= 1
        # The work was not wasted: the resubmit re-attaches through the
        # cache (or the still-running leader), never a second rewrite.
        assert redo["status"] == "ok"
        assert redo["cache"] in ("warm", "coalesced")
        assert stats.rewrites == 1


class TestQueueDepthAccounting:
    def test_queue_depth_under_concurrent_submits(self, tmp_path,
                                                  monkeypatch):
        gate = _gate_run_job(monkeypatch)

        async def scenario(service, address):
            specs = [_spec(f"dup-{i}") for i in range(4)]
            task = asyncio.ensure_future(submit_jobs(
                address, specs, concurrency=4, retry_policy=NO_RETRY))
            # Every accepted job (leader and coalesced followers alike)
            # holds a unit of depth until its terminal event.
            assert await _until(lambda: service.stats.queue_depth == 4)
            gate.set()
            records = await task
            return service.stats, records

        stats, records = _serve(tmp_path, scenario, job_threads=6)
        assert all(r["status"] == "ok" for r in records)
        assert stats.jobs_accepted == 4 and stats.jobs_completed == 4
        assert stats.queue_depth == 0

    def test_queue_depth_gauge_drains_after_mixed_batch(self, tmp_path):
        telemetry = Telemetry()

        async def scenario(service, address):
            records = await submit_jobs(
                address,
                [_spec("good"),
                 _spec("bad", workload="no-such-workload"),
                 # Distinct seed: "late" must not share a release key
                 # with "good" and drag it down as a coalesced follower.
                 _spec("late", seed=SEED + 5, deadline_ms=1)],
                concurrency=3, retry_policy=NO_RETRY)
            return service.stats, records

        with use(telemetry):
            stats, records = _serve(tmp_path, scenario)
        by_id = {r["id"]: r for r in records}
        assert by_id["good"]["status"] == "ok"
        assert by_id["bad"]["fault"]["fault"] == JOB_REJECTED
        assert by_id["late"]["fault"]["fault"] == JOB_DEADLINE
        # Success or fault, the depth gauge must end drained.
        assert stats.queue_depth == 0
        assert telemetry.metrics.gauge_value("service.queue_depth") == 0
        assert telemetry.metrics.total("service.deadline_exceeded") == 1
