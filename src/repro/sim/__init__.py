"""Machine simulator: memory with permissions, CPU interpreter, faults.

This package stands in for the RISC-V hardware (Banana Pi BPI-F3 /
SOPHGO SG2042) the paper evaluates on.  It executes the real instruction
encodings produced by :mod:`repro.isa`, enforces segment permissions
(so executing from the data segment faults, as SMILE requires), raises
illegal-instruction faults for reserved encodings and for extensions a
core does not implement, and accounts cycles through a cost model.
"""

from repro.sim.faults import (
    SimFault,
    SegmentationFault,
    IllegalInstructionFault,
    EcallTrap,
    BreakpointTrap,
    ExitRequest,
)
from repro.sim.memory import AddressSpace, MemorySegment
from repro.sim.cost import ArchParams, CostModel
from repro.sim.cpu import Cpu
from repro.sim.machine import Core, Machine, Kernel, Process, RunResult

__all__ = [
    "SimFault",
    "SegmentationFault",
    "IllegalInstructionFault",
    "EcallTrap",
    "BreakpointTrap",
    "ExitRequest",
    "AddressSpace",
    "MemorySegment",
    "ArchParams",
    "CostModel",
    "Cpu",
    "Core",
    "Machine",
    "Kernel",
    "Process",
    "RunResult",
]
