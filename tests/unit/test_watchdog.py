"""Step-budget watchdog: structured TIMEOUT faults instead of hangs."""

from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC
from repro.sim.faults import CoreFault, WatchdogTimeout
from repro.sim.machine import Core, Kernel
from repro.workloads.programs import FibonacciWorkload


def build_syscall_spinner():
    """Loops on sched_yield forever: every iteration enters the kernel,
    so only the kernel-entry watchdog (not max_instructions) sees it
    as the pathological case it is."""
    b = ProgramBuilder("spinner")
    b.set_text("""
_start:
    li a7, 124
    ecall
    j _start
""")
    return b.build()


class TestWatchdog:
    def test_kernel_entry_loop_times_out_structurally(self):
        binary = build_syscall_spinner()
        kernel = Kernel()
        result = kernel.run(make_process(binary), Core(0, RV64GC), max_steps=50)
        assert isinstance(result.fault, WatchdogTimeout)
        assert result.fault.kind == "TIMEOUT"
        assert not result.ok
        assert result.exit_code == -1
        assert "max_steps=50" in str(result.fault)

    def test_budget_counts_kernel_entries_not_instructions(self):
        binary = build_syscall_spinner()
        kernel = Kernel()
        # A generous instruction budget still cannot save a kernel-entry
        # loop; the watchdog is what bounds it.
        result = kernel.run(make_process(binary), Core(0, RV64GC),
                            max_instructions=10_000_000, max_steps=100)
        assert isinstance(result.fault, WatchdogTimeout)
        assert result.instret < 10_000_000

    def test_default_budget_leaves_real_workloads_alone(self):
        binary = FibonacciWorkload(iterations=50).build("base")
        kernel = Kernel()
        result = kernel.run(make_process(binary), Core(0, RV64GC))
        assert result.ok
        assert result.fault is None


class TestCoreFaultDispatch:
    def test_core_fault_is_never_dispatched_to_guest_handlers(self):
        """A CoreFault models the hardware dying, not a guest fault: it
        must terminate the run without consulting fault handlers."""
        binary = FibonacciWorkload(iterations=200).build("base")
        kernel = Kernel()
        seen = []

        def spy_handler(kernel, process, cpu, fault):
            seen.append(fault)
            return False

        kernel.register_fault_handler(spy_handler, priority=True)
        process = make_process(binary)
        core = Core(0, RV64GC)
        cpu = kernel.make_cpu(process, core)

        def die_at(c, _at=100):
            if c.instret >= _at:
                raise CoreFault(0, "dead")

        cpu.step_hook = die_at
        result = kernel.run(process, core, cpu=cpu)
        assert isinstance(result.fault, CoreFault)
        assert not any(isinstance(f, CoreFault) for f in seen)
        assert result.fault.pc is not None  # attributed to an instruction
