"""Safer [49]: binary regeneration with proactive indirect-jump checks.

Safer regenerates the binary (instructions shift to make room for
translations; direct control flow is statically retargeted) and keeps
correctness for indirect jumps by *checking and translating every
indirect jump target at runtime*.  That check runs on normal executions
too — the proactive cost Chimera's passive design avoids (§2.2).

Reproduction of the check: each indirect jump in the regenerated code is
replaced by a checkpoint the simulated kernel services inline — it
recomputes the target from the original operands, translates old-layout
addresses through the regeneration map, and resumes.  The charged cost
(``CHECK_COST`` cycles) models Safer's inlined instrumentation sequence,
*not* a trap; the trigger count is exact (one per executed indirect
jump, the quantity Table 2 reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.scan import RecursiveScanner
from repro.baselines.reassemble import reassemble
from repro.core.translate import TranslationContext, Translator, VREGS_REGION_SIZE
from repro.elf.binary import Binary, Perm, Section
from repro.isa.encoding import encode
from repro.isa.extensions import Extension, IsaProfile
from repro.isa.instructions import Instruction
from repro.isa.registers import Reg
from repro.sim.cost import ArchParams, DEFAULT_ARCH
from repro.sim.cpu import Cpu
from repro.sim.faults import BreakpointTrap, SimFault
from repro.sim.machine import Kernel, Process

#: Cycles for Safer's inline target check sequence (save/compute/lookup/
#: restore/jump -- roughly a dozen instructions on the paper's core).
CHECK_COST = 14


@dataclass
class SaferStats:
    """Static rewriting statistics."""

    source_instructions: int = 0
    instrumented_indirects: int = 0
    trap_veneers: int = 0
    code_growth_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


@dataclass
class SaferResult:
    binary: Binary
    stats: SaferStats
    addr_map: dict[int, int]


class SaferRewriter:
    """Regenerate a binary for *target_profile* with indirect checks."""

    def __init__(self, *, arch: ArchParams = DEFAULT_ARCH, mode: str = "full"):
        self.arch = arch
        self.mode = mode

    def rewrite(self, binary: Binary, target_profile: IsaProfile) -> SaferResult:
        scan = RecursiveScanner().scan(binary)
        out = binary.clone(f"{binary.name}@safer-{target_profile.name}")
        data_end = max(s.end for s in out.sections if Perm.W in s.perm)
        vregs_base = (data_end + 0xF) & ~0xF
        out.add_section(Section(".chimera.vregs", vregs_base, bytearray(VREGS_REGION_SIZE), Perm.RW))
        translator = Translator(
            TranslationContext(vregs_base, binary.global_pointer), mode=self.mode
        )

        def needs_translation(instr: Instruction) -> bool:
            if instr.extension in target_profile.extensions:
                return False
            return True if self.mode == "empty" else translator.can_translate(instr)

        text = out.text
        code = reassemble(
            scan, translator, text.addr,
            needs_translation=needs_translation,
            pattern_sites=_loop_sites(scan, binary, target_profile, self.mode),
        )

        stats = SaferStats(
            source_instructions=sum(1 for i in scan.instructions.values() if needs_translation(i)),
            trap_veneers=len(code.trap_veneers),
            code_growth_bytes=len(code.code) - text.size,
        )

        new_text = bytearray(code.code)
        check_sites: dict[int, Instruction] = {}
        for new_addr, instr in code.indirect_jump_sites:
            site = instr.copy()
            site.addr = new_addr
            check_sites[new_addr] = site
            trap = encode(Instruction("c.ebreak", length=2)) if instr.length == 2 else encode(Instruction("ebreak"))
            off = new_addr - text.addr
            new_text[off:off + len(trap)] = trap
            stats.instrumented_indirects += 1

        text.data[:] = b""
        text.data.extend(new_text)
        out.entry = code.addr_map[binary.entry]
        for sym in out.symbols.values():
            if sym.addr in code.addr_map:
                sym.addr = code.addr_map[sym.addr]
        out.metadata["safer"] = {
            "check_sites": check_sites,
            "addr_map": dict(code.addr_map),
            "veneers": dict(code.trap_veneers),
            "gp": binary.global_pointer,
        }
        return SaferResult(out, stats, dict(code.addr_map))


def _loop_sites(scan, binary, target_profile, mode):
    """Loop-level translation sites shared with CHBP (same translator
    quality for every rewriting method; only the mechanism differs)."""
    if mode != "full":
        return []
    from repro.analysis.cfg import build_cfg
    from repro.analysis.liveness import LivenessAnalysis
    from repro.core.downgrade_loops import find_downgrade_loop_sites

    cfg = build_cfg(scan)
    liveness = LivenessAnalysis(cfg).run()
    return find_downgrade_loop_sites(scan, cfg, liveness, target_profile)


class SaferRuntime:
    """Kernel-side servicing of Safer's checkpoints and veneers."""

    def __init__(self, rewritten: Binary):
        meta = rewritten.metadata.get("safer")
        if meta is None:
            raise ValueError(f"{rewritten.name} was not produced by SaferRewriter")
        self.check_sites: dict[int, Instruction] = meta["check_sites"]
        self.addr_map: dict[int, int] = meta["addr_map"]
        self.veneers: dict[int, int] = meta["veneers"]
        self.checks = 0
        self.corrections = 0

    def install(self, kernel: Kernel) -> None:
        kernel.register_fault_handler(self.handle_fault, priority=True)

    def handle_fault(self, kernel: Kernel, process: Process, cpu: Cpu, fault: SimFault) -> bool:
        if not isinstance(fault, BreakpointTrap):
            return False
        site = self.check_sites.get(cpu.pc)
        if site is not None:
            self._do_check(cpu, site)
            return True
        veneer = self.veneers.get(cpu.pc)
        if veneer is not None:
            cpu.pc = self.addr_map.get(veneer, veneer)
            cpu.cycles += cpu.cost.trap_cost
            cpu.bump("safer_veneers")
            return True
        return False

    def _do_check(self, cpu: Cpu, site: Instruction) -> None:
        """Execute the checked indirect jump: translate old-layout targets."""
        rs1 = site.rs1 if site.rs1 is not None else 0
        imm = site.imm or 0
        target = (cpu.get_reg(rs1) + imm) & ~1 & 0xFFFFFFFFFFFFFFFF
        translated = self.addr_map.get(target)
        if translated is not None and translated != target:
            self.corrections += 1
            target = translated
        if site.mnemonic == "jalr" and site.rd:
            cpu.set_reg(site.rd, site.addr + 4)
        elif site.mnemonic == "c.jalr":
            cpu.set_reg(int(Reg.RA), site.addr + 2)
        cpu.pc = target
        cpu.cycles += CHECK_COST
        cpu.bump("safer_checks")
        self.checks += 1
