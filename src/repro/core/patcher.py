"""CHBP: Correct and High-performance Binary Patching (paper §4.2).

Pipeline for one (binary, target profile) pair:

1. recursive scan + CFG + liveness (:mod:`repro.analysis`);
2. find *source instructions* — extension instructions the target core
   lacks (downgrade) or upgradeable idioms (:mod:`repro.core.upgrade`) —
   and group same-block source runs into batches (§4.2's optimization);
3. for each site choose a **trampoline window**: a run of whole original
   instructions covering >= 8 bytes that includes the first source and
   whose overwritten neighbors can be copied (no pc-relative semantics);
4. pick an **exit register**: provably dead at the exit position,
   shifting the exit forward (and copying the skipped instructions into
   the target block) when plain liveness fails (Fig. 8);
5. emit the **target block** into ``.chimera.text`` — gp restore, copied
   neighbors, translated sources, exit trampoline — placed at an address
   the SMILE encoding constraints can reach;
6. overwrite the window with the SMILE trampoline (+ padding parcels)
   and record every interior original instruction boundary in the
   fault-handling table.

Sites where no safe window or exit register exists fall back to
trap-based trampolines, mirroring the paper's ~1% residue.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional

from repro.analysis.cfg import build_cfg
from repro.analysis.liveness import LivenessAnalysis
from repro.analysis.scan import RecursiveScanner
from repro.core.fault_table import FaultTable
from repro.core.smile import (
    SmilePlacementError,
    SmileTextAllocator,
    build_smile,
    padding_parcels,
    vanilla_trampoline,
)
from repro.core.translate import (
    TranslationContext,
    TranslationError,
    Translator,
    VREGS_REGION_SIZE,
)
from repro.core.upgrade import UpgradeSite, find_upgrade_sites
from repro.elf.binary import Binary, Perm, Section
from repro.isa.assembler import Assembler
from repro.isa.encoding import encode
from repro.isa.extensions import Extension, IsaProfile
from repro.isa.instructions import Instruction
from repro.isa.registers import Reg
from repro.sim.cost import ArchParams, DEFAULT_ARCH
from repro.telemetry import current as telemetry_current
from repro.verify.records import PatchRecord

#: Registers never usable as exit registers (ABI-pinned or special).
_EXIT_FORBIDDEN = frozenset({int(Reg.ZERO), int(Reg.SP), int(Reg.GP), int(Reg.TP), int(Reg.RA)})

#: Mnemonics that cannot be copied verbatim to a new address.
_UNCOPYABLE = frozenset({"auipc"})

#: How many instructions the exit-shifting walk may extend past the window.
_MAX_EXIT_SHIFT = 8

#: Registers the data-pointer SMILE variant may anchor on (see
#: :data:`repro.core.smile.SMILE_CAPABLE_REGS`, minus sp/gp themselves).
from repro.core.smile import SMILE_CAPABLE_REGS as _SMILE_CAPABLE

_DP_SMILE_REGS = frozenset(_SMILE_CAPABLE) - {int(Reg.SP), int(Reg.GP)}


@dataclass
class PatchStats:
    """Static rewriting statistics (these rows feed Table 3)."""

    source_instructions: int = 0
    trampolines: int = 0
    trap_fallbacks: int = 0
    batches: int = 0
    batched_sources: int = 0
    table_entries: int = 0
    padding_bytes: int = 0
    target_block_bytes: int = 0
    traditional_liveness_failures: int = 0
    exit_shift_rescues: int = 0
    dead_reg_not_found: int = 0
    exit_candidates: int = 0
    upgrade_sites: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


@dataclass
class _Site:
    """One patch site.

    ``elements`` is the main-path recipe, in original layout order:
    ``("source", Instruction)`` — translate; ``("copy", Instruction)`` —
    copy verbatim; ``("upgrade", UpgradeSite)`` — splice the replacement.
    ``secondary`` marks the preserved per-source trampolines of a batch.
    """

    elements: list[tuple[str, object]]
    first_addr: int
    secondary: bool = False

    @property
    def sources(self) -> list[Instruction]:
        out: list[Instruction] = []
        for kind, payload in self.elements:
            if kind == "source":
                out.append(payload)
            elif kind == "upgrade":
                out.extend(payload.instructions)
        return out

    def end(self) -> int:
        kind, payload = self.elements[-1]
        if kind == "upgrade":
            return payload.end
        return payload.addr + payload.length


class ChbpPatcher:
    """Run CHBP over one binary.

    Prefer :class:`repro.core.rewriter.ChimeraRewriter` as the public
    API; this class exposes the knobs the ablation benchmarks need
    (``batch_blocks``, ``shift_exits``, ``mode="empty"``).
    """

    def __init__(
        self,
        binary: Binary,
        target_profile: IsaProfile,
        *,
        arch: ArchParams = DEFAULT_ARCH,
        mode: str = "full",
        batch_blocks: bool = True,
        shift_exits: bool = True,
        enable_upgrades: bool = True,
        scan_entries: Optional[list[int]] = None,
        scan_address_taken: bool = False,
        smile_register: str = "gp",
        use_smile: bool = True,
    ):
        if smile_register not in ("gp", "data-pointer"):
            raise ValueError("smile_register must be 'gp' or 'data-pointer'")
        self.binary = binary
        self.target_profile = target_profile
        self.arch = arch
        self.mode = mode
        self.batch_blocks = batch_blocks
        self.shift_exits = shift_exits
        self.enable_upgrades = enable_upgrades
        self.scan_entries = scan_entries
        self.scan_address_taken = scan_address_taken
        #: "gp" uses the psABI global pointer (the paper's main design);
        #: "data-pointer" is the Fig. 5 fallback for ISAs without a
        #: gp-like register: the trampoline overwrites a lui+load pair
        #: whose register provably holds a data-segment address.
        self.smile_register = smile_register
        #: False forces every site onto trap-based trampolines — the
        #: all-fallback configuration the chaos harness sweeps alongside
        #: the SMILE design (the paper's baselines live here full-time).
        self.use_smile = use_smile
        #: data-pointer mode: P1 address -> register holding the pointer.
        self.smile_regs: dict[int, int] = {}
        self.compressed = bool(binary.metadata.get("has_rvc", True))
        self.stats = PatchStats()
        self.fault_table = FaultTable()
        self.trap_table: dict[int, int] = {}
        self._covered: set[int] = set()
        #: Original-address ranges whose semantics no longer align across
        #: rewritten variants (patched regions); migration must be delayed
        #: while the pc is inside one (paper §4.3).
        self.migration_unsafe: list[tuple[int, int]] = []
        #: (start, end, kind) for every overwritten byte span; kind is
        #: "smile", "smile-dp" or "trap".  The chaos sweeper enumerates
        #: its attack offsets from these.
        self.patched_regions: list[tuple[int, int, str]] = []
        #: Per-patch provenance collected while patching; finalized into
        #: frozen :class:`PatchRecord`s after ``_resolve_exits`` (trap
        #: resume addresses are re-pointed there).
        self._record_drafts: list[dict] = []

    # -- top level --------------------------------------------------------

    def patch(self) -> Binary:
        """Produce the rewritten binary for the target profile."""
        telemetry = telemetry_current()
        with telemetry.span("patch", binary=self.binary.name,
                            target=self.target_profile.name):
            out = self.binary.clone(f"{self.binary.name}@{self.target_profile.name}")
            with telemetry.span("patch.analyze"):
                self.scan = RecursiveScanner(
                    seed_address_taken=self.scan_address_taken
                ).scan(self.binary, extra_entries=self.scan_entries)
                self.cfg = build_cfg(self.scan)
                self.liveness = LivenessAnalysis(self.cfg).run()

            vregs_base = self._add_vregs_section(out)
            self.translator = Translator(
                TranslationContext(vregs_base, self.binary.global_pointer), mode=self.mode
            )

            with telemetry.span("patch.collect_sites"):
                sites = self._collect_sites()
            ct_base = self._chimera_text_base(out)
            self._alloc = SmileTextAllocator(ct_base, compressed=self.compressed)
            self._blocks: dict[int, bytearray] = {}
            #: (block addr, trampoline offset, exit addr, exit reg) to resolve
            #: once every window is known.
            self._exit_fixups: list[tuple[int, int, int, int]] = []
            text = out.text

            with telemetry.span("patch.rewrite_sites", sites=len(sites)):
                for site in sites:
                    if site.first_addr in self._covered:
                        continue  # already overwritten as an earlier window's neighbor
                    if not self.use_smile:
                        patched = False
                    elif self.smile_register == "data-pointer":
                        patched = self._patch_site_data_pointer(site, text)
                    else:
                        patched = self._patch_site(site, text)
                    if not patched:
                        self._trap_fallback(site, text)

            with telemetry.span("patch.resolve_exits"):
                self._resolve_exits()

        if self._blocks:
            section_base = min(self._blocks) & ~0xF
            ct_data = bytearray(self._alloc.cursor - section_base)
            for addr, blob in self._blocks.items():
                off = addr - section_base
                ct_data[off:off + len(blob)] = blob
            out.add_section(Section(".chimera.text", section_base, ct_data, Perm.RX))
            out.add_symbol("__chimera_text", section_base, len(ct_data), kind="object")
            self.stats.target_block_bytes = len(ct_data)
            # Placement-constraint waste: gaps inside the emitted section
            # (the lead-in from the nominal base is never materialized).
            self.stats.padding_bytes += sum(
                min(ge, self._alloc.cursor) - max(gs, section_base)
                for gs, ge in self._alloc.free
                if ge > section_base and gs < self._alloc.cursor
            )
        out.metadata["chimera"] = {
            "fault_table": self.fault_table,
            "trap_table": dict(self.trap_table),
            "stats": self.stats,
            "gp": self.binary.global_pointer,
            "vregs_base": vregs_base,
            "target_profile": self.target_profile.name,
            "migration_unsafe": sorted(self.migration_unsafe),
            "patched_regions": sorted(self.patched_regions),
            "smile_regs": dict(self.smile_regs),
            "patch_records": self._finalize_records(),
        }
        if telemetry.enabled:
            self._record_metrics(telemetry.metrics)
        return out

    def _finalize_records(self) -> tuple[PatchRecord, ...]:
        """Freeze the per-patch drafts into admission/rollback records.

        Runs after ``_resolve_exits`` so the trap-table values captured
        here are the final (fault-table-re-pointed) ones.
        """
        records = []
        for d in self._record_drafts:
            records.append(PatchRecord(
                start=d["start"],
                end=d["end"],
                kind=d["kind"],
                original_bytes=bytes(d["original"]),
                patched_bytes=bytes(d["patched"]),
                block_addr=d["block"],
                resume=d["resume"],
                smile_reg=d["reg"],
                fault_entries=tuple(d["fault_keys"]),
                trap_entries=tuple(
                    (key, self.trap_table[key])
                    for key in d["trap_keys"] if key in self.trap_table
                ),
                sources=tuple(
                    (addr, bytes(data).hex()) for addr, data in d["sources"]
                ),
            ))
        return tuple(sorted(records, key=lambda r: r.start))

    def _record_metrics(self, metrics) -> None:
        """Publish the patch ledger as ``patch.*`` metric series."""
        kinds = Counter(kind for _, _, kind in self.patched_regions)
        for kind, count in kinds.items():
            metrics.inc("patch.trampolines", count, kind=kind,
                        target=self.target_profile.name)
        for lo, hi, _ in self.patched_regions:
            metrics.observe("patch.region_bytes", hi - lo)
        for name, value in self.stats.as_dict().items():
            if name == "trampolines":
                continue  # covered by the kind-labeled series above
            metrics.inc(f"patch.{name}", value, target=self.target_profile.name)

    # -- setup helpers ---------------------------------------------------

    def _add_vregs_section(self, out: Binary) -> int:
        data_end = max(s.end for s in out.sections if Perm.W in s.perm)
        base = (data_end + 0xF) & ~0xF
        out.add_section(Section(".chimera.vregs", base, bytearray(VREGS_REGION_SIZE), Perm.RW))
        out.add_symbol("__chimera_vregs", base, VREGS_REGION_SIZE, kind="object")
        return base

    def _chimera_text_base(self, out: Binary) -> int:
        top = max(s.end for s in out.sections)
        return (top + 0xFFFF) & ~0xFFFF

    # -- site discovery ----------------------------------------------------

    def _needs_downgrade(self, instr: Instruction) -> bool:
        if instr.extension in self.target_profile.extensions:
            return False
        if self.mode == "empty":
            return True
        return self.translator.can_translate(instr)

    def _collect_sites(self) -> list[_Site]:
        downgrades = [
            instr for _, instr in sorted(self.scan.instructions.items())
            if self._needs_downgrade(instr)
        ]
        pattern_sites: list[UpgradeSite] = []
        if self.enable_upgrades and self.mode == "full":
            pattern_sites = find_upgrade_sites(self.scan, self.cfg, self.liveness, self.target_profile)
        if self.mode == "full":
            from repro.core.downgrade_loops import find_downgrade_loop_sites

            pattern_sites += find_downgrade_loop_sites(
                self.scan, self.cfg, self.liveness, self.target_profile
            )
        upgrade_sites = pattern_sites
        upgraded_addrs = {i.addr for u in upgrade_sites for i in u.instructions}
        downgrades = [i for i in downgrades if i.addr not in upgraded_addrs]
        self.stats.source_instructions = len(downgrades) + sum(
            len(u.instructions) for u in upgrade_sites
        )
        self.stats.upgrade_sites = len(upgrade_sites)

        sites: list[_Site] = []
        if self.batch_blocks:
            sites.extend(self._batch_downgrades(downgrades))
        else:
            sites.extend(_Site([("source", i)], i.addr) for i in downgrades)
        sites.extend(_Site([("upgrade", u)], u.start) for u in upgrade_sites)
        sites.sort(key=lambda s: (s.first_addr, s.secondary))
        return sites

    def _batch_downgrades(self, downgrades: list[Instruction]) -> list[_Site]:
        """Merge same-block source runs; emit preserved secondary sites."""
        sites: list[_Site] = []
        i = 0
        while i < len(downgrades):
            first = downgrades[i]
            block = self.cfg.block_containing(first.addr)
            elements: list[tuple[str, object]] = [("source", first)]
            j = i + 1
            last = first
            while j < len(downgrades):
                nxt = downgrades[j]
                if block is None or self.cfg.block_containing(nxt.addr) is not block:
                    break
                between = self._instructions_between(last, nxt)
                if between is None or any(not self._copyable(b) for b in between):
                    break
                elements.extend(("copy", b) for b in between)
                elements.append(("source", nxt))
                last = nxt
                j += 1
            sites.append(_Site(elements, first.addr))
            if j > i + 1:
                self.stats.batches += 1
                self.stats.batched_sources += j - i
                # Preserve per-source trampolines for external jumps into
                # the block ("all original trampolines ... are preserved").
                # Each is the tail batch starting at that source, so its
                # window may legitimately cover the following sources.
                source_positions = [
                    pos for pos, (kind, _) in enumerate(elements) if kind == "source"
                ]
                for pos in source_positions[1:]:
                    tail = elements[pos:]
                    sites.append(_Site(tail, tail[0][1].addr, secondary=True))
            i = j
        return sites

    def _instructions_between(self, a: Instruction, b: Instruction) -> Optional[list[Instruction]]:
        out: list[Instruction] = []
        addr = a.addr + a.length
        while addr < b.addr:
            instr = self.scan.instructions.get(addr)
            if instr is None:
                return None
            out.append(instr)
            addr += instr.length
        return out if addr == b.addr else None

    def _copyable(self, instr: Instruction) -> bool:
        """True if *instr* keeps its semantics at a different pc."""
        if instr.mnemonic in _UNCOPYABLE:
            return False
        if instr.is_direct_control() or instr.is_terminator():
            return False
        return True

    # -- window selection ----------------------------------------------------

    def _build_window(self, site: _Site) -> Optional[list[Instruction]]:
        first = site.first_addr
        starts = [first]
        if first not in self.scan.direct_targets:
            # Shifting the window start left is only acceptable when no
            # direct jump targets the source (each such jump would fault).
            prev1 = self._prev_instr(first)
            if prev1 is not None and self._copyable(prev1):
                starts.append(prev1.addr)
                prev2 = self._prev_instr(prev1.addr)
                if prev2 is not None and self._copyable(prev2):
                    starts.append(prev2.addr)
        special = self._site_addr_map(site)
        for start in starts:
            window = self._window_from(start, special)
            if window is not None:
                return window
        return None

    def _site_addr_map(self, site: _Site) -> dict[int, tuple[str, object]]:
        """Map original addresses handled specially by this site."""
        out: dict[int, tuple[str, object]] = {}
        for kind, payload in site.elements:
            if kind == "upgrade":
                for instr in payload.instructions:
                    out[instr.addr] = ("upgrade-member", payload)
                out[payload.start] = ("upgrade", payload)
            else:
                out[payload.addr] = (kind, payload)
        return out

    def _prev_instr(self, addr: int) -> Optional[Instruction]:
        for length in (2, 4):
            instr = self.scan.instructions.get(addr - length)
            if instr is not None and instr.addr + instr.length == addr:
                return instr
        return None

    def _window_from(self, start: int, special: dict[int, tuple[str, object]]) -> Optional[list[Instruction]]:
        window: list[Instruction] = []
        span = 0
        addr = start
        while span < 8:
            instr = self.scan.instructions.get(addr)
            if instr is None or instr.addr in self._covered:
                return None
            if addr != start and addr in self.scan.direct_targets:
                # A static branch targets this neighbor: overwriting it
                # would make that branch fault on every execution.
                return None
            if instr.addr not in special:
                if not self._copyable(instr) or self._needs_downgrade(instr):
                    return None
            window.append(instr)
            span += instr.length
            addr += instr.length
        return window

    # -- exit selection ----------------------------------------------------

    def _select_exit(self, natural_exit: int) -> tuple[Optional[int], Optional[int], list[Instruction]]:
        """(exit address, dead register, extra copies) — §4.2 challenge 2."""
        self.stats.exit_candidates += 1
        reg = self._dead_reg_at(natural_exit)
        if reg is not None:
            return natural_exit, reg, []
        self.stats.traditional_liveness_failures += 1
        if not self.shift_exits:
            self.stats.dead_reg_not_found += 1
            return None, None, []
        copies: list[Instruction] = []
        addr = natural_exit
        for _ in range(_MAX_EXIT_SHIFT):
            instr = self.scan.instructions.get(addr)
            if instr is None or not self._copyable(instr) or self._needs_downgrade(instr):
                break
            copies.append(instr)
            addr += instr.length
            reg = self._dead_reg_at(addr)
            if reg is not None:
                self.stats.exit_shift_rescues += 1
                return addr, reg, copies
        self.stats.dead_reg_not_found += 1
        return None, None, []

    def _dead_reg_at(self, addr: int) -> Optional[int]:
        dead = self.liveness.dead_before(addr) - _EXIT_FORBIDDEN
        return min(dead) if dead else None

    # -- patching one site -----------------------------------------------------

    def _patch_site(self, site: _Site, text: Section) -> bool:
        window = self._build_window(site)
        if window is None:
            return False
        window_start = window[0].addr
        window_end = window[-1].addr + window[-1].length
        span = window_end - window_start

        main, epilogue = self._main_path(site, window, window_end)
        if main is None:
            return False

        natural_exit = max(window_end, site.end())
        exit_addr, exit_reg, exit_copies = self._select_exit(natural_exit)
        if exit_addr is None:
            return False
        main = main + [("copy", c) for c in exit_copies]

        try:
            block_addr, block_bytes, entries = self._emit_block(
                main, epilogue, window_start, window_end, exit_addr, exit_reg
            )
        except (TranslationError, SmilePlacementError):
            return False

        self._blocks[block_addr] = block_bytes

        tramp = build_smile(window_start, block_addr, compressed=self.compressed)
        patch = bytearray(tramp.encode())
        if span > 8:
            boundaries = [i.addr for i in window[1:]]
            pad_has_boundary = any(b >= window_start + 8 for b in boundaries)
            patch.extend(padding_parcels(span - 8, boundary_in_padding=pad_has_boundary))
        original_bytes = text.read(window_start, span)
        text.write(window_start, bytes(patch))
        self.stats.trampolines += 1

        restart_head = any(
            kind == "upgrade" and payload.entry_policy == "restart-head"
            for kind, payload in site.elements
        )
        fault_keys: list[tuple[int, int]] = []
        for baddr in (i.addr for i in window[1:]):
            target = entries.get(baddr)
            if target is None and restart_head:
                # Idempotent-loop replacement: erroneous entries restart
                # at the trampoline head (see downgrade_loops docstring).
                target = window_start
            if target is not None:
                self.fault_table.add(baddr, target)
                fault_keys.append((baddr, target))
                self.stats.table_entries += 1
        self._covered.update(i.addr for i in window)
        self.migration_unsafe.append((window_start, max(window_end, site.end())))
        self.patched_regions.append((window_start, window_end, "smile"))
        self._record_drafts.append({
            "kind": "smile",
            "start": window_start,
            "end": window_end,
            "original": original_bytes,
            "patched": bytes(patch),
            "block": block_addr,
            "resume": exit_addr,
            "reg": int(Reg.GP),
            "fault_keys": fault_keys,
            "trap_keys": [],
            "sources": [
                (i.addr, original_bytes[i.addr - window_start:
                                        i.addr - window_start + i.length])
                for i in site.sources
                if window_start <= i.addr < window_end
            ],
        })
        return True

    # -- Fig. 5: SMILE via a general data-pointer register ------------------

    def _patch_site_data_pointer(self, site: _Site, text: Section) -> bool:
        """Patch using the general-register SMILE variant (paper Fig. 5).

        Instead of overwriting the source's neighbors, the trampoline
        replaces a preceding ``lui rX, hi ; <load/store> ..(rX)`` pair
        whose register provably holds a data-segment address — so a
        partial execution (P1) jumps through that stale data pointer and
        faults deterministically.  Sites without such a pair fall back
        to trap trampolines, which is exactly the increased reliance the
        paper predicts for gp-less ISAs (§3.3).
        """
        from repro.elf.binary import Perm
        from repro.isa.fields import sign_extend as _sext

        if any(kind == "upgrade" for kind, _ in site.elements):
            return False  # keep the variant focused on plain downgrades
        first = site.first_addr
        block = self.cfg.block_containing(first)
        if block is None:
            return False
        instrs = block.instructions
        idx = next((i for i, ins in enumerate(instrs) if ins.addr == first), None)
        if idx is None:
            return False
        # Search backwards for the lui/data-access pair.
        pair = None
        for k in range(idx - 2, -1, -1):
            lui, mem = instrs[k], instrs[k + 1]
            if lui.mnemonic != "lui" or lui.length != 4 or mem.length != 4:
                continue
            if mem.mnemonic not in ("lb", "lh", "lw", "ld", "lbu", "lhu", "lwu",
                                    "sb", "sh", "sw", "sd"):
                continue
            if mem.rs1 != lui.rd or lui.rd not in _DP_SMILE_REGS:
                continue
            target = _sext((lui.imm << 12) & 0xFFFFFFFF, 32) + (mem.imm or 0)
            seg = self.binary.section_at(target)
            if seg is None or Perm.X in seg.perm:
                continue  # pointer must land in non-executable data
            if mem.rd == lui.rd:
                continue  # load clobbers the pointer: P1 gp-analog breaks
            # Nothing between the pair and the source may redefine rX or
            # be uncopyable; nothing may be a direct branch target.
            between = instrs[k + 2: idx]
            if any(not self._copyable(i) or lui.rd in i.regs_written() for i in between):
                continue
            if any(i.addr in self.scan.direct_targets for i in instrs[k + 1: idx + 1]):
                continue
            if any(i.addr in self._covered for i in instrs[k:idx + 1]):
                continue
            pair = (lui, mem, between)
            break
        if pair is None:
            return False
        lui, mem, between = pair
        reg = lui.rd

        window = [lui, mem]
        window_start = lui.addr
        window_end = mem.addr + mem.length
        # Main path: reconstructed pair (the lui naturally restores rX
        # after jalr clobbered it), intervening copies, then the site.
        main: list[tuple[str, object]] = [("copy", lui), ("copy", mem)]
        main += [("copy", i) for i in between]
        main += list(site.elements)

        natural_exit = site.end()
        exit_addr, exit_reg, exit_copies = self._select_exit(natural_exit)
        if exit_addr is None:
            return False
        main += [("copy", c) for c in exit_copies]

        try:
            block_addr, block_bytes, entries = self._emit_block(
                main, [], window_start, window_end, exit_addr, exit_reg,
                smile_reg=reg,
            )
            tramp = build_smile(window_start, block_addr,
                                compressed=self.compressed, reg=reg)
        except (TranslationError, SmilePlacementError):
            return False
        self._blocks[block_addr] = block_bytes
        original_bytes = text.read(window_start, window_end - window_start)
        # The sources themselves stay original in text (only the pointer
        # pair is overwritten) — capture them for rollback re-trapping.
        source_bytes = [
            (i.addr, text.read(i.addr, i.length)) for i in site.sources
        ]
        text.write(window_start, tramp.encode())
        self.stats.trampolines += 1
        # P1 = the mem slot; its copied reconstruction is the redirect.
        self.fault_table.add(mem.addr, entries[mem.addr])
        self.smile_regs[mem.addr] = reg
        self.stats.table_entries += 1
        self._covered.update(i.addr for i in window)
        self._covered.update(i.addr for i in site.sources)
        self.migration_unsafe.append((window_start, max(window_end, site.end())))
        self.patched_regions.append((window_start, window_end, "smile-dp"))
        self._record_drafts.append({
            "kind": "smile-dp",
            "start": window_start,
            "end": window_end,
            "original": original_bytes,
            "patched": tramp.encode(),
            "block": block_addr,
            "resume": exit_addr,
            "reg": reg,
            "fault_keys": [(mem.addr, entries[mem.addr])],
            "trap_keys": [],
            "sources": source_bytes,
        })
        return True

    def _main_path(
        self, site: _Site, window: list[Instruction], window_end: int
    ) -> tuple[Optional[list], list]:
        """Split the site into (main-path elements, erroneous-entry epilogue).

        Main path is what normal execution runs inside the target block;
        the epilogue holds duplicate copies of upgrade-pattern members
        that fall inside the window (Fig. 6b) — normal flow skips them,
        erroneous entries land on them and trap back to the window end.
        """
        special = self._site_addr_map(site)
        main: list[tuple[str, object]] = []
        epilogue: list[Instruction] = []
        emitted_upgrades: set[int] = set()
        for instr in window:
            tag = special.get(instr.addr)
            if tag is None:
                main.append(("copy", instr))
                continue
            kind, payload = tag
            if kind == "upgrade":
                main.append(("upgrade", payload))
                emitted_upgrades.add(id(payload))
            elif kind == "upgrade-member":
                if id(payload) not in emitted_upgrades:
                    return None, []  # window starts mid-pattern; unsupported
                if payload.entry_policy == "restart-head":
                    continue  # boundary maps back to the trampoline head
                if not self._copyable(instr):
                    return None, []
                epilogue.append(instr)
            else:
                main.append((kind, payload))
        # Batched elements beyond the window.
        window_addrs = {i.addr for i in window}
        for kind, payload in site.elements:
            if kind == "upgrade":
                continue
            if payload.addr not in window_addrs and payload.addr >= window_end:
                main.append((kind, payload))
        return main, epilogue

    def _emit_block(
        self,
        main: list[tuple[str, object]],
        epilogue: list[Instruction],
        window_start: int,
        window_end: int,
        exit_addr: int,
        exit_reg: int,
        smile_reg: Optional[int] = None,
    ) -> tuple[int, bytes, dict[int, int]]:
        """Assemble one target block; returns (addr, bytes, boundary map).

        With the default gp-based SMILE the prologue restores gp; the
        data-pointer variant needs no restore — its jump register is
        redefined by the reconstructed ``lui`` at the block head.
        """
        if smile_reg is None:
            lines: list[str] = [f"li gp, {self.binary.global_pointer}"]
        else:
            lines = []
        entry_labels: dict[int, str] = {}

        def mark(addr: int) -> None:
            label = f".Lentry_{addr:x}"
            entry_labels[addr] = label
            lines.append(f"{label}:")

        for kind, payload in main:
            if kind == "copy":
                mark(payload.addr)
                lines.append(self._format_copy(payload))
            elif kind == "source":
                mark(payload.addr)
                body, _ = self.translator.translate(payload)
                lines.append(body)
            else:  # upgrade
                mark(payload.start)
                lines.append(payload.replacement_asm)
        lines.append(".Lexit_tramp:")
        lines.append(".space 8")
        if epilogue:
            for instr in epilogue:
                mark(instr.addr)
                lines.append(self._format_copy(instr))
            lines.append(".Lepi_exit:")
            lines.append("ebreak")
        source_text = "\n".join(lines)

        # Blocks contain only pc-relative label references, so one
        # assembly sizes the block and retargets to wherever the
        # allocator places it — no second encode pass.
        program = Assembler(base=0).assemble(source_text)
        block_addr = self._alloc.place(window_start, len(program.code))
        program = program.retarget(block_addr)
        data = bytearray(program.code)

        tramp_off = program.labels[".Lexit_tramp"] - block_addr
        # Deferred: the exit target may later be overwritten by another
        # site's window; _resolve_exits patches the final trampoline.
        self._exit_fixups.append((block_addr, tramp_off, exit_addr, exit_reg))
        if epilogue:
            # Cold path: erroneous entries resume at the window end via a trap.
            self.trap_table[program.labels[".Lepi_exit"]] = window_end

        entries = {addr: program.labels[label] for addr, label in entry_labels.items()}
        return block_addr, data, entries

    def _resolve_exits(self) -> None:
        """Finalize exit trampolines and trap resume addresses.

        An exit position recorded while patching site *i* may since have
        become the interior of site *j*'s trampoline window (j > i);
        jumping there would fault on every execution.  Re-route such
        exits through the fault table: jump straight to the copied
        instruction in *j*'s target block instead.
        """
        for block_addr, tramp_off, exit_addr, exit_reg in self._exit_fixups:
            target = self.fault_table.lookup(exit_addr) or exit_addr
            data = self._blocks[block_addr]
            data[tramp_off:tramp_off + 8] = vanilla_trampoline(
                block_addr + tramp_off, target, exit_reg
            )
        for key, resume in list(self.trap_table.items()):
            redirect = self.fault_table.lookup(resume)
            if redirect is not None:
                self.trap_table[key] = redirect

    def _format_copy(self, instr: Instruction) -> str:
        from repro.isa.disassembler import format_instruction

        if not self._copyable(instr):
            raise TranslationError(f"cannot copy {instr.mnemonic} to a new pc")
        clone = instr.copy()
        clone.addr = None
        return format_instruction(clone)

    # -- trap fallback -------------------------------------------------------

    def _trap_fallback(self, site: _Site, text: Section) -> None:
        """Patch each source with a trap-based trampoline (paper's residue)."""
        for kind, payload in site.elements:
            if kind == "copy":
                continue
            if kind == "upgrade":
                instr = payload.instructions[0]
                body = payload.replacement_asm
                resume = payload.end
            else:
                instr = payload
                if instr.addr in self._covered:
                    continue
                body, _ = self.translator.translate(instr)
                resume = instr.addr + instr.length
            source_text = f"{body}\nebreak"
            program = Assembler(base=0).assemble(source_text)
            block_addr = self._alloc.place_unconstrained(len(program.code))
            program = program.retarget(block_addr)
            self._blocks[block_addr] = bytes(program.code)
            ebreak_addr = block_addr + len(program.code) - 4
            self.trap_table[ebreak_addr] = resume
            trap = (
                encode(Instruction("c.ebreak", length=2))
                if instr.length == 2
                else encode(Instruction("ebreak"))
            )
            original_bytes = text.read(instr.addr, instr.length)
            text.write(instr.addr, trap)
            self.trap_table[instr.addr] = block_addr
            self.stats.trap_fallbacks += 1
            self._covered.add(instr.addr)
            self.migration_unsafe.append((instr.addr, resume))
            self.patched_regions.append((instr.addr, instr.addr + instr.length, "trap"))
            self._record_drafts.append({
                "kind": "trap",
                "start": instr.addr,
                "end": instr.addr + instr.length,
                "original": original_bytes,
                "patched": trap[:instr.length],
                "block": block_addr,
                "resume": resume,
                "reg": int(Reg.GP),
                "fault_keys": [],
                "trap_keys": [instr.addr, ebreak_addr],
                "sources": [],
            })
