"""Execution-tier + verified-rewrite pipeline speedups.

Three headline measurements, all against this repo's own baselines:

* **superblock** — wall-clock of simulating a Fig. 13 SPEC profile with
  the block cache on (trace tier pinned off) vs the plain interpreter
  loop (hooks disabled, the fast path's home turf).  Results must be
  bit-identical; the engine must never be slower than the interpreter
  (the CI ``bench-smoke`` gate).
* **trace tier** — the same profile with hot-trace linking + compiled
  traces on top of the block cache, vs the block-cache-only engine.
  Bit-identical again; the ≥2x gate is armed on ≥4-CPU boxes like the
  pipeline-scale gates.
* **pipeline** — end-to-end rewrite+verify of gcc_r through
  ``rewrite_and_verify`` vs the legacy path (rewrite, then a gate that
  recomputes liveness from scratch), plus the warm rewrite-cache hit.
  Rewritten bytes and verification ledgers must be identical across
  legacy / serial / ``--jobs 4`` / cached.

Wall-clock notes: thread fan-out (``--jobs``) helps only where trials
release the GIL; on a single-core CI box its value is determinism under
parallelism, not speed, and the assertions below only encode floors
that hold there.  ``BENCH_speedup.json`` carries the measured values.
"""

import os
import time

import pytest

from benchmarks.helpers import SCALE, emit_bench, print_table
from repro.core.pipeline import rewrite_and_verify
from repro.core.rewriter import ChimeraRewriter
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.machine import Core, Kernel
from repro.telemetry import MetricsRegistry
from repro.verify.admission import AdmissionGate
from repro.workloads.spec_profiles import PROFILES
from repro.workloads.synthetic import SyntheticBinary

#: Fig. 13 profile both measurements run on.
PROFILE = "gcc_r"
SEED = 20260806


def _binary():
    return SyntheticBinary(PROFILES[PROFILE], scale=SCALE).build()


def _best_of(fn, rounds=3, setup=None):
    """Best wall-clock of *rounds* calls; ``setup`` (untimed) builds the
    per-round arguments so construction cost stays out of the window."""
    best = None
    value = None
    for _ in range(rounds):
        args = setup() if setup is not None else ()
        t0 = time.perf_counter()
        value = fn(*args)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, value


def _simulate(process, *, block_cache=True, trace_cache=False):
    kernel = Kernel(block_cache=block_cache, trace_cache=trace_cache)
    result = kernel.run(process, Core(0, RV64GCV))
    assert result.ok, f"{PROFILE} died: {result.fault!r}"
    return result


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    cache = tmp_path_factory.mktemp("rewrite-cache")
    # Built once: the rewriter clones before patching and the simulator
    # copies sections into fresh segments, so nothing mutates this image.
    original = _binary()

    # -- superblock vs interpreter, trace tier vs superblock -------------
    fresh = lambda: (make_process(original),)
    interp_s, interp = _best_of(
        lambda p: _simulate(p, block_cache=False), setup=fresh)
    super_s, fast = _best_of(
        lambda p: _simulate(p, block_cache=True), setup=fresh)
    trace_s, traced = _best_of(
        lambda p: _simulate(p, block_cache=True, trace_cache=True),
        setup=fresh)
    baseline = (interp.exit_code, interp.instret, interp.cycles,
                interp.output)
    assert (fast.exit_code, fast.instret, fast.cycles, fast.output) == \
        baseline, "superblock run diverged from the interpreter"
    assert (traced.exit_code, traced.instret, traced.cycles,
            traced.output) == baseline, \
        "trace-tier run diverged from the interpreter"
    assert fast.counters.get("block_cache_hits", 0) > 0
    assert traced.counters.get("trace_cache_hits", 0) > 0
    assert traced.counters.get("traces_compiled", 0) > 0

    # -- pipeline vs legacy rewrite+verify -------------------------------
    def legacy():
        result = ChimeraRewriter().rewrite(original, RV64GC)
        report = AdmissionGate(original, result.binary,
                               seed=SEED, oracle_trials=1).verify()
        return result, report

    legacy_s, (legacy_result, legacy_report) = _best_of(legacy)
    serial_s, serial = _best_of(lambda: rewrite_and_verify(
        original, RV64GC, seed=SEED, oracle_trials=1, jobs=1))
    jobs4_s, jobs4 = _best_of(lambda: rewrite_and_verify(
        original, RV64GC, seed=SEED, oracle_trials=1, jobs=4))

    rewrite_and_verify(original, RV64GC, seed=SEED, oracle_trials=1,
                       cache_dir=cache)  # populate
    warm_s, warm = _best_of(lambda: rewrite_and_verify(
        original, RV64GC, seed=SEED, oracle_trials=1, cache_dir=cache))
    assert warm.cache_hit

    def sections(result):
        return {s.name: bytes(s.data) for s in result.binary.sections}

    for other in (serial.result, jobs4.result, warm.result):
        assert sections(other) == sections(legacy_result), \
            "rewritten bytes diverged between pipeline variants"
    for other in (serial.report, jobs4.report, warm.report):
        assert other.as_dict() == legacy_report.as_dict(), \
            "verification ledger diverged between pipeline variants"

    return {
        "interpreter_s": interp_s,
        "superblock_s": super_s,
        "trace_s": trace_s,
        "legacy_s": legacy_s,
        "pipeline_serial_s": serial_s,
        "pipeline_jobs4_s": jobs4_s,
        "warm_cache_s": warm_s,
    }


def test_speedup_regenerate(measurements):
    m = measurements
    superblock = m["interpreter_s"] / m["superblock_s"]
    trace = m["superblock_s"] / m["trace_s"]
    pipeline = m["legacy_s"] / min(m["pipeline_serial_s"],
                                   m["pipeline_jobs4_s"])
    warm = m["legacy_s"] / m["warm_cache_s"]
    print_table(
        f"Speedups on {PROFILE} (scale {SCALE}, best of 3)",
        ["measurement", "baseline", "new", "speedup"],
        [
            ["superblock engine", f"{m['interpreter_s']:.3f}s",
             f"{m['superblock_s']:.3f}s", f"{superblock:.2f}x"],
            ["trace tier (vs superblock)", f"{m['superblock_s']:.3f}s",
             f"{m['trace_s']:.3f}s", f"{trace:.2f}x"],
            ["rewrite+verify (serial)", f"{m['legacy_s']:.3f}s",
             f"{m['pipeline_serial_s']:.3f}s",
             f"{m['legacy_s'] / m['pipeline_serial_s']:.2f}x"],
            ["rewrite+verify (--jobs 4)", f"{m['legacy_s']:.3f}s",
             f"{m['pipeline_jobs4_s']:.3f}s",
             f"{m['legacy_s'] / m['pipeline_jobs4_s']:.2f}x"],
            ["rewrite+verify (warm cache)", f"{m['legacy_s']:.3f}s",
             f"{m['warm_cache_s']:.3f}s", f"{warm:.2f}x"],
        ],
    )
    registry = MetricsRegistry()
    registry.gauge("bench.superblock_speedup", superblock, profile=PROFILE)
    registry.gauge("bench.trace_speedup", trace, profile=PROFILE)
    registry.gauge("bench.pipeline_speedup", pipeline, profile=PROFILE)
    registry.gauge("bench.warm_cache_speedup", warm, profile=PROFILE)
    for key, value in m.items():
        registry.gauge("bench.wall_seconds", value,
                       measurement=key, profile=PROFILE)
    emit_bench("speedup", registry)

    # CI gate: the superblock engine must never lose to the interpreter,
    # and in practice clears 2x (measured 2.3-2.6x on the dev box).
    assert superblock > 1.0, \
        f"superblock slower than interpreter ({superblock:.2f}x)"
    assert superblock >= 1.8, \
        f"superblock speedup regressed to {superblock:.2f}x"
    # The trace tier must never lose to the block cache it sits on; the
    # ≥2x acceptance gate is armed on ≥4-CPU boxes (measured 3.0-4.0x
    # across the Fig. 13 profiles on the dev box) so a starved
    # single-core CI runner can't flake it.
    assert trace > 1.0, \
        f"trace tier slower than the block cache ({trace:.2f}x)"
    if (os.cpu_count() or 1) >= 4:
        assert trace >= 2.0, \
            f"trace-tier speedup regressed to {trace:.2f}x"
    # Pipeline floors that hold even on one core (no thread parallelism):
    # shared liveness + single assembly + cheaper trial scribbles.
    assert pipeline >= 1.1, \
        f"pipeline slower than the legacy path ({pipeline:.2f}x)"
    assert warm >= 5.0, \
        f"warm rewrite-cache hit only {warm:.2f}x over legacy"
