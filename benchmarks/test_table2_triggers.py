"""Table 2: correctness-guarantee mechanism trigger counts.

For CHBP the count is handled deterministic faults; for Safer, pointer
checks; for ARMore and the strawman, trampoline redirections (bounces
and traps).  The paper's claim: CHBP triggers its mechanism orders of
magnitude less often than every baseline (0.005% of baseline triggers on
average) because it is passive.
"""

import pytest

from benchmarks.helpers import emit_bench, print_table, run_profile
from repro.workloads.spec_profiles import APP_PROFILES, PROFILES, SPEC_PROFILES
from repro.telemetry import MetricsRegistry

#: Real-app profiles included alongside SPEC, as in the paper's table.
ALL_ROWS = sorted(APP_PROFILES) + sorted(SPEC_PROFILES)


@pytest.fixture(scope="module")
def sweep():
    return {name: run_profile(name) for name in ALL_ROWS}


def test_table2_regenerate(benchmark, sweep):
    def report():
        rows = []
        for name, run in sweep.items():
            per_kinst = {
                s: 1000.0 * run.triggers[s] / max(1, run.native_instret)
                for s in ("chimera", "safer", "armore", "strawman")
            }
            rows.append([
                name,
                run.triggers["chimera"],
                run.triggers["safer"],
                run.triggers["armore"],
                run.triggers["strawman"],
                f"{per_kinst['safer']:.2f}",
            ])
        print_table(
            "Table 2 — correctness-mechanism trigger counts (this run)",
            ["benchmark", "chbp", "safer", "armore", "strawman", "safer/kinst"],
            rows,
        )
        registry = MetricsRegistry()
        for name, run in sweep.items():
            for system in ("chimera", "safer", "armore", "strawman"):
                registry.gauge("bench.triggers", run.triggers[system],
                               benchmark=name, system=system)
        emit_bench("table2_triggers", registry)
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    assert len(rows) == len(ALL_ROWS)


def test_chbp_triggers_orders_of_magnitude_fewer(sweep):
    total_chbp = sum(r.triggers["chimera"] for r in sweep.values())
    total_base = sum(
        r.triggers[s] for r in sweep.values() for s in ("safer", "armore", "strawman")
    )
    ratio = total_chbp / max(1, total_base)
    print(f"\nCHBP triggers / baseline triggers = {ratio:.6f} "
          f"(paper: ~0.00005)")
    assert ratio < 0.01
    # Per benchmark: CHBP never triggers more than any baseline.
    for name, run in sweep.items():
        assert run.triggers["chimera"] <= run.triggers["safer"], name
        assert run.triggers["chimera"] <= run.triggers["strawman"] + 1, name


def test_chbp_zero_faults_in_fault_free_runs(sweep):
    """Normal executions of these programs contain no erroneous jumps, so
    the passive mechanism should (almost) never fire at all."""
    fired = {name: r.triggers["chimera"] for name, r in sweep.items() if r.triggers["chimera"]}
    # Lazy rewrites of scan-missed instructions may fire once per site;
    # anything in the hot path would show up as thousands.
    assert all(count < 50 for count in fired.values()), fired
