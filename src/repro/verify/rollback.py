"""Per-patch runtime rollback and self-healing.

When the runtime owns a fault it cannot recover (an unexpected fault
inside a patched region — corrupted trampoline bytes, a clobbered
fault-table redirect, a recovery loop), the :class:`PatchHealer`
quarantines exactly that patch instead of killing the task:

1. **attribute** the fault to its :class:`~repro.verify.records
   .PatchRecord` (fault pc, then the last retired pc, then the SMILE
   return-address register);
2. **roll back**: restore ``original_bytes`` over the window, drop the
   record's fault-table entries, and re-trap every extension source the
   restore resurrects with a freshly translated trap-fallback block
   (mapped into a private ``.chimera.heal`` segment) — the quarantined
   site keeps running at trap-trampoline speed;
3. **journal** the quarantine with an instret-denominated backoff from
   :class:`~repro.resilience.policy.RetryPolicy`;
4. **re-admit** opportunistically: once the backoff expires the golden
   patch is re-verified (:func:`~repro.core.smile
   .smile_window_violations`) and re-applied; a patch that keeps
   faulting is re-quarantined with a growing backoff and finally
   **pinned** to the fallback encoding for the life of the task.

The journal round-trips through ``ChimeraRuntime.export_state`` /
``import_state`` as primitive tuples, so checkpointed migration moves
quarantined-patch state across cores (the heal segments themselves ride
in the checkpoint's segment images).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.smile import smile_window_violations
from repro.core.translate import TranslationContext, TranslationError, Translator
from repro.elf.binary import Perm
from repro.isa.assembler import Assembler
from repro.isa.decoding import IllegalEncodingError, decode
from repro.isa.encoding import encode
from repro.isa.extensions import PROFILES
from repro.isa.instructions import Instruction
from repro.isa.registers import Reg
from repro.resilience.policy import RetryPolicy
from repro.verify.records import PatchRecord, record_for

#: Backoff policy for re-admission: instret-denominated waits, pinning
#: after ``max_attempts`` quarantines of the same patch.
DEFAULT_HEAL_POLICY = RetryPolicy(max_attempts=3, base_backoff=2_000)

_HEAL_SEGMENT_PREFIX = ".chimera.heal"


@dataclass
class HealEntry:
    """Journal state for one patch."""

    record: PatchRecord
    #: "admitted" (patch live) | "quarantined" (rolled back, awaiting
    #: re-admission) | "pinned" (permanently on the fallback encoding).
    state: str = "admitted"
    rollbacks: int = 0
    readmissions: int = 0
    #: instret threshold before the next re-admission attempt.
    not_before: int = 0
    #: (source addr, source length, heal block addr, block length,
    #: ebreak addr) for every trap-fallback applied by the rollback.
    heal_patches: list[tuple[int, int, int, int, int]] = field(default_factory=list)

    @property
    def rolled_back(self) -> bool:
        return self.state in ("quarantined", "pinned")

    def as_state(self) -> tuple:
        return (
            self.record.start,
            self.state,
            self.rollbacks,
            self.readmissions,
            self.not_before,
            tuple(tuple(p) for p in self.heal_patches),
            self.record.as_state(),
        )

    @classmethod
    def from_state(cls, state) -> "HealEntry":
        start, st, rollbacks, readmissions, not_before, patches, rec = state
        return cls(
            record=PatchRecord.from_state(rec),
            state=st,
            rollbacks=rollbacks,
            readmissions=readmissions,
            not_before=not_before,
            heal_patches=[tuple(p) for p in patches],
        )


class RollbackJournal:
    """Per-patch quarantine ledger, keyed by region start."""

    def __init__(self):
        self.entries: dict[int, HealEntry] = {}

    def entry(self, rec: PatchRecord) -> HealEntry:
        if rec.start not in self.entries:
            self.entries[rec.start] = HealEntry(record=rec)
        return self.entries[rec.start]

    def get(self, start: int) -> Optional[HealEntry]:
        return self.entries.get(start)

    def is_rolled_back(self, start: int) -> bool:
        entry = self.entries.get(start)
        return entry is not None and entry.rolled_back

    def quarantined(self) -> list[HealEntry]:
        return [e for e in self.entries.values() if e.state == "quarantined"]

    def export(self) -> tuple:
        """Primitive, deterministic form for checkpoints (only entries
        that carry state; pristine-admitted entries are elided)."""
        return tuple(
            entry.as_state()
            for _, entry in sorted(self.entries.items())
            if entry.rolled_back or entry.rollbacks or entry.readmissions
        )

    def import_state(self, state) -> None:
        for item in state:
            entry = HealEntry.from_state(item)
            self.entries[entry.record.start] = entry


class PatchHealer:
    """Rollback / re-admission engine attached to one ChimeraRuntime."""

    def __init__(self, runtime, *, policy: Optional[RetryPolicy] = None):
        self.runtime = runtime
        self.policy = policy or DEFAULT_HEAL_POLICY
        self.journal = RollbackJournal()
        meta = runtime.binary.metadata["chimera"]
        self._target = PROFILES[meta["target_profile"]]
        self._translator = Translator(
            TranslationContext(meta["vregs_base"], meta["gp"]),
            mode="full",
        )
        self._compressed = bool(runtime.binary.metadata.get("has_rvc", True))
        self._heal_cursor: Optional[int] = None

    # -- attribution ---------------------------------------------------------

    def attribute(self, cpu, fault_pc: Optional[int]) -> Optional[PatchRecord]:
        """Which patch owns this fault?  Fault pc first, then the pc of
        the last retired instruction (wild jumps), then the SMILE
        return-address register (a partially executed jalr leaves
        ``trampoline + 8`` in its jump register)."""
        records = self.runtime.patch_records
        rec = record_for(records, fault_pc)
        if rec is None:
            rec = record_for(records, getattr(cpu, "last_pc", None))
        if rec is None:
            ra = (cpu.get_reg(Reg.GP) - 8) & 0xFFFFFFFFFFFFFFFF
            candidate = record_for(records, ra)
            if candidate is not None and candidate.kind == "smile":
                rec = candidate
        return rec

    # -- rollback ------------------------------------------------------------

    def heal(self, kernel, process, cpu, fault, fault_pc: Optional[int]) -> bool:
        """Quarantine the patch that owns this fault; True iff healed."""
        rec = self.attribute(cpu, fault_pc)
        if rec is None:
            return False
        entry = self.journal.entry(rec)
        if entry.rolled_back:
            return False  # already on the fallback path: not the patch's fault
        rt = self.runtime
        if rec.kind == "trap":
            # A trap patch *is* the fallback encoding: repair the golden
            # ebreak and its trap-table entries in place.
            process.space.patch_code(rec.start, rec.patched_bytes)
            for key, target in rec.trap_entries:
                rt.trap_table[key] = target
        else:
            try:
                self._rollback_smile(process, rec, entry)
            except (TranslationError, IllegalEncodingError):
                return False  # cannot build a fallback: let the fault escape
        entry.rollbacks += 1
        if rec.kind != "trap":
            entry.state = "quarantined"
            entry.not_before = cpu.instret + self.policy.backoff(entry.rollbacks)
        cpu.pc = self._resume_pc(rec, fault_pc)
        cpu.set_reg(Reg.GP, rt.gp_value)
        # Only the restored window and the re-trapped sources changed;
        # every other cached decode/superblock stays valid.
        cpu.invalidate_code(rec.start, rec.end - rec.start)
        for saddr, slen, _, _, _ in entry.heal_patches:
            cpu.invalidate_code(saddr, slen)
        cpu.cycles += cpu.cost.fault_handling_cost * 4  # rollback is heavy
        cpu.bump("patch_rollbacks")
        rt.stats.patch_rollbacks += 1
        rt._record("patch_rollback")
        return True

    def _rollback_smile(self, process, rec: PatchRecord, entry: HealEntry) -> None:
        """Restore the window, drop table entries, re-trap the sources."""
        rt = self.runtime
        # Build every heal block *before* mutating any state, so a
        # translation failure leaves the patch untouched.
        heal_blocks = []
        for saddr, shex in rec.sources:
            src = bytes.fromhex(shex)
            instr = decode(src, 0, addr=saddr)
            if instr.extension in self._target.extensions:
                continue  # runs natively on the target core: no trap needed
            heal_blocks.append((saddr, instr, self._build_heal_block(process, instr)))

        process.space.patch_code(rec.start, rec.original_bytes)
        for key, _ in rec.fault_entries:
            rt.fault_table.entries.pop(key, None)
            rt.smile_regs.pop(key, None)
        entry.heal_patches = []
        for saddr, instr, (block_addr, code) in heal_blocks:
            ebreak_addr = block_addr + len(code) - 4
            rt.trap_table[saddr] = block_addr
            rt.trap_table[ebreak_addr] = saddr + instr.length
            trap = (encode(Instruction("c.ebreak", length=2))
                    if instr.length == 2 else encode(Instruction("ebreak")))
            process.space.patch_code(saddr, trap)
            entry.heal_patches.append(
                (saddr, instr.length, block_addr, len(code), ebreak_addr))
        # The quarantined span is no longer a patched region; the trap
        # sites the rollback introduced are.
        rt.patched_regions = [
            (lo, hi) for lo, hi in rt.patched_regions
            if not (rec.start <= lo < rec.end)
        ]
        for saddr, slen, _, _, _ in entry.heal_patches:
            rt.patched_regions.append((saddr, saddr + slen))

    def _build_heal_block(self, process, instr: Instruction) -> tuple[int, bytes]:
        """Translate one source into an ebreak-terminated fallback block
        mapped into a fresh RX heal segment."""
        body, _ = self._translator.translate(instr)
        source_text = f"{body}\nebreak"
        size = len(Assembler(base=0).assemble(source_text).code)
        block_addr = self._place_heal(process, size)
        code = bytes(Assembler(base=block_addr).assemble(source_text).code)
        process.space.map(
            f"{_HEAL_SEGMENT_PREFIX}.{block_addr:x}",
            block_addr, bytearray(code), Perm.RX)
        return block_addr, code

    def _place_heal(self, process, size: int) -> int:
        if self._heal_cursor is None:
            top = max(seg.base + seg.size for seg in process.space.segments)
            self._heal_cursor = (top + 0xFFFF) & ~0xFFFF
        # Resume past any heal segments a checkpoint restore brought in.
        for seg in process.space.segments:
            if seg.name.startswith(_HEAL_SEGMENT_PREFIX):
                self._heal_cursor = max(self._heal_cursor, seg.base + seg.size)
        addr = (self._heal_cursor + 0xF) & ~0xF
        self._heal_cursor = addr + size
        return addr

    def _resume_pc(self, rec: PatchRecord, fault_pc: Optional[int]) -> int:
        """Resume at the faulting original boundary when there is one,
        else re-enter the restored window at its head."""
        if fault_pc is not None and rec.contains(fault_pc):
            addr = rec.start
            data = rec.original_bytes
            while addr < rec.end:
                if addr == fault_pc:
                    return addr
                try:
                    addr += decode(data, addr - rec.start, addr=addr).length
                except IllegalEncodingError:
                    break
        return rec.start

    # -- re-admission --------------------------------------------------------

    def maybe_readmit(self, process, cpu) -> int:
        """Re-apply quarantined patches whose backoff expired; returns
        the number re-admitted.  Called opportunistically after handled
        faults — re-admission needs no extra machinery of its own."""
        readmitted = 0
        for entry in self.journal.quarantined():
            if cpu.instret < entry.not_before:
                continue
            if self.policy.exhausted(entry.rollbacks):
                entry.state = "pinned"
                self.runtime._record("patch_pinned")
                continue
            rec = entry.record
            if self._pc_inside(cpu.pc, entry):
                continue  # never swap code out from under the pc
            if rec.kind in ("smile", "smile-dp") and smile_window_violations(
                    rec.patched_bytes, rec.start,
                    compressed=self._compressed, reg=rec.smile_reg):
                entry.state = "pinned"  # golden patch itself is bad
                self.runtime._record("patch_pinned")
                continue
            # Capture the spans before _reapply clears heal_patches.
            spans = [(rec.start, rec.end - rec.start)]
            spans += [(saddr, slen)
                      for saddr, slen, _, _, _ in entry.heal_patches]
            self._reapply(process, rec, entry)
            entry.state = "admitted"
            entry.readmissions += 1
            readmitted += 1
            for addr, length in spans:
                cpu.invalidate_code(addr, length)
            self.runtime.stats.patch_readmissions += 1
            self.runtime._record("patch_readmission")
        return readmitted

    def _pc_inside(self, pc: int, entry: HealEntry) -> bool:
        if entry.record.contains(pc):
            return True
        return any(
            block <= pc < block + blen or saddr <= pc < saddr + slen
            for saddr, slen, block, blen, _ in entry.heal_patches
        )

    def _reapply(self, process, rec: PatchRecord, entry: HealEntry) -> None:
        rt = self.runtime
        for saddr, slen, block, blen, ebreak_addr in entry.heal_patches:
            rt.trap_table.pop(saddr, None)
            rt.trap_table.pop(ebreak_addr, None)
            process.space.patch_code(saddr, rec.source_bytes(saddr))
            rt.patched_regions = [
                (lo, hi) for lo, hi in rt.patched_regions if lo != saddr
            ]
        process.space.patch_code(rec.start, rec.patched_bytes)
        for key, target in rec.fault_entries:
            rt.fault_table.add(key, target)
        if rec.kind == "smile-dp" and rec.fault_entries:
            rt.smile_regs[rec.fault_entries[0][0]] = rec.smile_reg
        span = (rec.start, rec.end)
        if span not in rt.patched_regions:
            rt.patched_regions.append(span)
        entry.heal_patches = []

    # -- splice / checkpoint interplay ---------------------------------------

    def reapply_after_splice(self, process, cpu) -> None:
        """A runtime rewrite just copied the full patched text over the
        live space, silently un-quarantining rolled-back patches.
        Re-impose every quarantine (original bytes + source traps)."""
        rt = self.runtime
        for entry in self.journal.quarantined():
            rec = entry.record
            process.space.patch_code(rec.start, rec.original_bytes)
            for key, _ in rec.fault_entries:
                rt.fault_table.entries.pop(key, None)
                rt.smile_regs.pop(key, None)
            cpu.invalidate_code(rec.start, rec.end - rec.start)
            for saddr, slen, block, blen, ebreak_addr in entry.heal_patches:
                trap = (encode(Instruction("c.ebreak", length=2))
                        if slen == 2 else encode(Instruction("ebreak")))
                process.space.patch_code(saddr, trap)
                rt.trap_table[saddr] = block
                rt.trap_table[ebreak_addr] = saddr + slen
                cpu.invalidate_code(saddr, slen)

    def apply_imported_state(self) -> None:
        """Fix the runtime's tables after a journal import: a freshly
        constructed runtime starts with every patch admitted, but the
        imported journal may say some are quarantined.  The region bytes
        and heal segments arrive via the checkpoint's segment images;
        only the tables and region ledger need re-aligning here."""
        rt = self.runtime
        for entry in self.journal.entries.values():
            if not entry.rolled_back:
                continue
            rec = entry.record
            for key, _ in rec.fault_entries:
                rt.fault_table.entries.pop(key, None)
                rt.smile_regs.pop(key, None)
            rt.patched_regions = [
                (lo, hi) for lo, hi in rt.patched_regions
                if not (rec.start <= lo < rec.end)
            ]
            for saddr, slen, block, blen, ebreak_addr in entry.heal_patches:
                rt.trap_table[saddr] = block
                rt.trap_table[ebreak_addr] = saddr + slen
                if (saddr, saddr + slen) not in rt.patched_regions:
                    rt.patched_regions.append((saddr, saddr + slen))
