"""Run one task on one core, fault-tolerantly.

The bridge between the schedulers and the simulator: load (or restore) a
process, arm any scripted core failure as a :class:`Cpu.step_hook`, run
through the simulated kernel, and classify the outcome.  A core failure
interrupts execution at an instruction boundary and comes back as a
checkpoint the scheduler can migrate; a corrupt checkpoint is detected
here and reported for a restart from entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.elf.binary import Binary
from repro.elf.loader import make_process
from repro.resilience.checkpoint import Checkpoint
from repro.resilience.failures import CoreFailureInjector, FailureEvent, KILL_CORE
from repro.sim.cost import ArchParams, DEFAULT_ARCH
from repro.sim.faults import CheckpointCorruptFault, CoreFault, SimFault
from repro.sim.machine import Core, Kernel, RunResult


@dataclass
class TaskExecution:
    """Outcome of one execution attempt of one task on one core."""

    cycles: int
    ok: bool
    fault: Optional[SimFault] = None
    exit_code: int = 0
    #: Set when the core failed mid-task: "dead" or "flaky".
    core_failure: Optional[str] = None
    #: Checkpoint taken at the failure boundary (may be corrupt —
    #: detected only at restore time, like the real thing).
    checkpoint: Optional[Checkpoint] = None
    #: The attempt started from a checkpoint that failed validation.
    checkpoint_corrupt: bool = False
    #: The attempt resumed successfully from a checkpoint.
    resumed: bool = False
    #: Self-healing counters from the attempt's runtime (verified
    #: patching): patches quarantined / re-admitted during this run.
    patch_rollbacks: int = 0
    patch_readmissions: int = 0


def run_task_on_core(
    binary: Binary,
    runtime_factory: Optional[Callable[[Kernel], object]],
    core: Core,
    *,
    task_id: int,
    arch: ArchParams = DEFAULT_ARCH,
    max_instructions: int = 5_000_000,
    max_steps: Optional[int] = None,
    checkpoint: Optional[Checkpoint] = None,
    fail_event: Optional[FailureEvent] = None,
    injector: Optional[CoreFailureInjector] = None,
) -> TaskExecution:
    """Execute *binary* on *core*, optionally resuming from *checkpoint*.

    *runtime_factory* installs the system's runtime into the fresh kernel
    and returns it (or None).  *fail_event* arms a mid-task core failure;
    *injector* gets a chance to corrupt the resulting checkpoint.
    """
    kernel = Kernel(arch)
    runtime = runtime_factory(kernel) if runtime_factory is not None else None
    process = make_process(binary)
    cpu = kernel.make_cpu(process, core)

    resumed = False
    if checkpoint is not None:
        try:
            checkpoint.restore(cpu, process, runtime=runtime)
        except CheckpointCorruptFault as fault:
            return TaskExecution(cycles=0, ok=False, fault=fault,
                                 checkpoint_corrupt=True)
        resumed = True
    start_cycles = cpu.cycles

    if fail_event is not None:
        fail_at = cpu.instret + (fail_event.after_instructions or 1)
        mode = "dead" if fail_event.kind == KILL_CORE else "flaky"
        core_id = core.core_id

        def _fail_hook(c, _at=fail_at, _mode=mode, _core=core_id):
            if c.instret >= _at:
                raise CoreFault(_core, _mode)

        cpu.step_hook = _fail_hook

    result: RunResult = kernel.run(
        process, core, cpu=cpu, max_instructions=max_instructions,
        max_steps=max_steps,
    )
    cycles = cpu.cycles - start_cycles

    heal_stats = getattr(runtime, "stats", None)
    rollbacks = getattr(heal_stats, "patch_rollbacks", 0)
    readmissions = getattr(heal_stats, "patch_readmissions", 0)

    if isinstance(result.fault, CoreFault):
        cpu.step_hook = None
        if result.fault.mode == "dead":
            core.mark_dead()
        else:
            core.mark_flaky()
        ck = Checkpoint.take(
            cpu, process, task_id=task_id, core_id=core.core_id,
            pool_ext=core.is_extension_core, runtime=runtime,
        )
        if injector is not None:
            injector.filter_checkpoint(ck)
        return TaskExecution(
            cycles=cycles, ok=False, fault=result.fault,
            core_failure=result.fault.mode, checkpoint=ck, resumed=resumed,
            patch_rollbacks=rollbacks, patch_readmissions=readmissions,
        )
    return TaskExecution(
        cycles=cycles, ok=result.ok, fault=result.fault,
        exit_code=result.exit_code, resumed=resumed,
        patch_rollbacks=rollbacks, patch_readmissions=readmissions,
    )
