"""Verifier/sweeper cross-check: the admission-escape outcome.

The chaos sweeper knows which regions the static gate admitted.  An
admitted region that still produces a hard failure under the sweep
means the verifier's invariants are wrong — that is its own outcome
class and a hard failure, distinct from a plain silent-divergence in
unverified code.
"""

import pytest

from repro.chaos.harness import build_erroneous_workload, sweep_binary
from repro.chaos.outcomes import (
    ADMISSION_ESCAPE,
    HARD_FAILURES,
    SILENT_DIVERGENCE,
    AttackResult,
)
from repro.chaos.sweeper import TrampolineAttackSweeper
from repro.core.rewriter import ChimeraRewriter
from repro.isa.extensions import RV64GC


def test_admission_escape_is_a_hard_failure():
    assert ADMISSION_ESCAPE in HARD_FAILURES


def test_verified_sweep_is_clean():
    """The real pipeline: gate first, then sweep — every admitted
    region survives the full byte-by-byte attack."""
    report = sweep_binary(build_erroneous_workload(), mode="smile")
    assert report.ok
    assert report.verified_regions > 0
    assert report.rejected_regions == 0
    assert not any(r.outcome == ADMISSION_ESCAPE for r in report.results)
    assert "admission gate:" in report.summary()


def test_unverified_sweep_reports_no_gate():
    report = sweep_binary(build_erroneous_workload(), mode="smile", verify=False)
    assert report.ok
    assert report.verified_regions == 0
    assert "admission gate:" not in report.summary()


def test_hard_failure_in_admitted_region_escalates(monkeypatch):
    """Force a silent-divergence verdict inside an admitted region and
    assert the sweeper re-labels it as an admission escape."""
    original = build_erroneous_workload()
    rewritten = ChimeraRewriter().rewrite(original, RV64GC).binary
    regions = rewritten.metadata["chimera"]["patched_regions"]
    start = regions[0][0]
    sweeper = TrampolineAttackSweeper(
        original, rewritten, admitted=frozenset({start}))

    real_attack = TrampolineAttackSweeper._attack

    def lying_attack(self, addr, rstart, rend, kind, boundaries):
        if addr == start:
            return AttackResult(
                addr=addr, region_start=rstart, region_end=rend,
                region_kind=kind, offset=addr - rstart, label="head",
                boundary=True, modified=True, outcome=SILENT_DIVERGENCE,
                detail="executed past the grace window")
        return real_attack(self, addr, rstart, rend, kind, boundaries)

    monkeypatch.setattr(TrampolineAttackSweeper, "_attack", lying_attack)
    report = sweeper.sweep(mode="smile")
    assert not report.ok
    escapes = [r for r in report.results if r.outcome == ADMISSION_ESCAPE]
    assert [r.addr for r in escapes] == [start]
    assert escapes[0].detail.startswith("verifier admitted this region; ")


def test_hard_failure_in_rejected_region_does_not_escalate(monkeypatch):
    """The same forced verdict outside the admitted set stays a plain
    silent-divergence: escapes are specifically the verifier's lie."""
    original = build_erroneous_workload()
    rewritten = ChimeraRewriter().rewrite(original, RV64GC).binary
    regions = rewritten.metadata["chimera"]["patched_regions"]
    start = regions[0][0]
    sweeper = TrampolineAttackSweeper(original, rewritten, admitted=frozenset())

    real_attack = TrampolineAttackSweeper._attack

    def lying_attack(self, addr, rstart, rend, kind, boundaries):
        if addr == start:
            return AttackResult(
                addr=addr, region_start=rstart, region_end=rend,
                region_kind=kind, offset=addr - rstart, label="head",
                boundary=True, modified=True, outcome=SILENT_DIVERGENCE,
                detail="executed past the grace window")
        return real_attack(self, addr, rstart, rend, kind, boundaries)

    monkeypatch.setattr(TrampolineAttackSweeper, "_attack", lying_attack)
    report = sweeper.sweep(mode="smile")
    assert not report.ok
    assert not any(r.outcome == ADMISSION_ESCAPE for r in report.results)
    assert report.rejected_regions == len({r[0] for r in sweeper.regions})
