"""Graceful degradation: structured failures instead of raw tracebacks.

Unit coverage for the chaos-hardened runtime/kernel paths: the
recovery-depth guard, the patched-region ownership kill, the
RuntimeStats counters that account for both, and the kernel's wrapping
of handler exceptions.
"""

import pytest

from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import DEFAULT_MAX_RECOVERY_DEPTH, ChimeraRuntime
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC
from repro.isa.registers import Reg
from repro.sim.faults import (
    IllegalInstructionFault,
    SegmentationFault,
    UnrecoverableFault,
)
from repro.sim.machine import Core, Kernel


def rewritten_vector_binary():
    b = ProgramBuilder("p")
    b.add_words("buf", [3, 4, 5, 6] + [0] * 8)
    b.set_text("""
_start:
    li a0, {buf}
    li a1, 4
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vadd.vv v2, v1, v1
    vse64.v v2, (a0)
    li a7, 93
    li a0, 0
    ecall
""")
    binary = b.build()
    rewriter = ChimeraRewriter()
    result = rewriter.rewrite(binary, RV64GC)
    return binary, result, rewriter


def setup():
    binary, result, _ = rewritten_vector_binary()
    runtime = ChimeraRuntime(result.binary)
    kernel = Kernel()
    runtime.install(kernel)
    proc = make_process(result.binary)
    cpu = kernel.make_cpu(proc, Core(0, RV64GC))
    return binary, runtime, kernel, proc, cpu


class TestPatchedRegionOwnership:
    def test_table_miss_in_patched_region_is_structured(self):
        """A SIGILL at a patched parcel with no table entry cannot be
        declined silently: the region is ours by construction."""
        binary, runtime, kernel, proc, cpu = setup()
        key = next(iter(runtime.fault_table.entries))
        runtime.fault_table.entries.clear()
        cpu.pc = key
        fault = IllegalInstructionFault(key, "reserved-compressed")
        with pytest.raises(UnrecoverableFault) as exc:
            runtime.handle_fault(kernel, proc, cpu, fault)
        assert exc.value.pc == key
        assert exc.value.cause is fault
        assert runtime.stats.unrecoverable_faults == 1
        assert runtime.stats.fault_table_misses == 1

    def test_fault_outside_patched_regions_still_declined(self):
        binary, runtime, kernel, proc, cpu = setup()
        fault = SegmentationFault(0xDEAD, "read")
        assert not runtime.handle_fault(kernel, proc, cpu, fault)
        assert runtime.stats.unrecoverable_faults == 0

    def test_wild_jump_attributed_via_last_pc(self):
        """An exec fault at a garbage address whose *origin* (the last
        retired instruction) was patched is ours: structured kill."""
        binary, runtime, kernel, proc, cpu = setup()
        lo, _hi = runtime.patched_regions[0]
        cpu.last_pc = lo
        cpu.set_reg(Reg.GP, 0)  # clobbered: lookup cannot succeed
        fault = SegmentationFault(binary.global_pointer + 0x100, "exec")
        with pytest.raises(UnrecoverableFault):
            runtime.handle_fault(kernel, proc, cpu, fault)

    def test_describe_carries_diagnostics(self):
        binary, runtime, kernel, proc, cpu = setup()
        key = next(iter(runtime.fault_table.entries))
        runtime.fault_table.entries.clear()
        cpu.pc = key
        with pytest.raises(UnrecoverableFault) as exc:
            runtime.handle_fault(
                kernel, proc, cpu, IllegalInstructionFault(key, "reserved-compressed")
            )
        text = exc.value.describe()
        assert f"{key:#x}" in text
        assert "fault_table_entries" in text
        assert "max_recovery_depth" in text


class TestRecoveryDepthGuard:
    def test_zero_progress_loop_aborts_at_depth(self):
        """Recoveries that never retire an instruction must stop at
        max_recovery_depth with the loop accounted in stats."""
        binary, runtime, kernel, proc, cpu = setup()
        key, redirect = next(iter(runtime.fault_table))
        # Corrupt the redirect into a self-loop: recovery lands back on
        # a faulting parcel without retiring anything.
        runtime.fault_table.entries[key] = key
        cpu.pc = key
        fault = IllegalInstructionFault(key, "reserved-compressed")
        attempts = 0
        with pytest.raises(UnrecoverableFault) as exc:
            for _ in range(DEFAULT_MAX_RECOVERY_DEPTH + 4):
                attempts += 1
                assert runtime.handle_fault(kernel, proc, cpu, fault)
        assert attempts == DEFAULT_MAX_RECOVERY_DEPTH + 1
        assert exc.value.attempts == DEFAULT_MAX_RECOVERY_DEPTH
        assert runtime.stats.recovery_loop_aborts == 1
        assert runtime.stats.unrecoverable_faults == 1

    def test_progress_resets_streak(self):
        binary, runtime, kernel, proc, cpu = setup()
        key, redirect = next(iter(runtime.fault_table))
        cpu.pc = key
        fault = IllegalInstructionFault(key, "reserved-compressed")
        for _ in range(DEFAULT_MAX_RECOVERY_DEPTH * 3):
            assert runtime.handle_fault(kernel, proc, cpu, fault)
            cpu.pc = key
            cpu.instret += 1  # the program retired an instruction
        assert runtime.stats.recovery_loop_aborts == 0

    def test_custom_depth_honored(self):
        binary, result, _ = rewritten_vector_binary()
        runtime = ChimeraRuntime(result.binary, max_recovery_depth=3)
        kernel = Kernel()
        proc = make_process(result.binary)
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        key, _ = next(iter(runtime.fault_table))
        runtime.fault_table.entries[key] = key
        cpu.pc = key
        fault = IllegalInstructionFault(key, "reserved-compressed")
        with pytest.raises(UnrecoverableFault) as exc:
            for _ in range(10):
                runtime.handle_fault(kernel, proc, cpu, fault)
        assert exc.value.attempts == 3


class TestKernelDegradation:
    def test_handler_exception_wrapped_structurally(self):
        """A fault handler blowing up with a raw Python error surfaces
        as UnrecoverableFault naming the handler, never a bare
        KeyError escaping the simulated kernel."""
        binary, runtime, kernel, proc, cpu = setup()

        def broken_handler(kernel, process, cpu, fault):
            raise KeyError("corrupted table")

        kernel.register_fault_handler(broken_handler, priority=True)
        fault = SegmentationFault(0xDEAD, "read", pc=binary.entry)
        with pytest.raises(UnrecoverableFault) as exc:
            kernel.dispatch_fault(proc, cpu, fault)
        assert isinstance(exc.value.cause, KeyError)
        assert "broken_handler" in str(exc.value)

    def test_unrecoverable_fault_never_redispatched(self):
        binary, runtime, kernel, proc, cpu = setup()
        seen = []
        kernel.register_fault_handler(lambda *a: seen.append(a) or False)
        terminal = UnrecoverableFault("done", pc=0x1000)
        assert not kernel.dispatch_fault(proc, cpu, terminal)
        assert not seen
