"""Reassembly-engine edge cases: range overflow, veneers, pc-relative pairs."""

import pytest

from repro.analysis.scan import RecursiveScanner
from repro.baselines.reassemble import ReassemblyError, reassemble
from repro.core.translate import TranslationContext, Translator
from repro.elf.builder import ProgramBuilder
from repro.isa.decoding import decode
from repro.isa.disassembler import disassemble


def scan_and_reassemble(text, data=None, base=0x200000, needs=lambda i: False, **kw):
    b = ProgramBuilder("r")
    for k, v in (data or {"blob": [7]}).items():
        b.add_words(k, v)
    b.set_text(text)
    binary = b.build()
    scan = RecursiveScanner().scan(binary)
    translator = Translator(TranslationContext(0x700000, binary.global_pointer))
    return binary, reassemble(scan, translator, base, needs_translation=needs, **kw)


class TestPcRelativePairs:
    def test_la_pair_recomputed(self):
        binary, code = scan_and_reassemble("""
_start:
    la a0, {blob}
    ld a1, 0(a0)
    ret
""")
        instrs = disassemble(code.code, code.base)
        auipc, addi = instrs[0], instrs[1]
        assert auipc.mnemonic == "auipc"
        from repro.isa.fields import sign_extend

        value = code.base + sign_extend(auipc.imm << 12, 32) + addi.imm
        assert value == binary.symbol_addr("blob")

    def test_unpaired_auipc_rejected(self):
        with pytest.raises(ReassemblyError):
            scan_and_reassemble("""
_start:
    auipc a0, 1
    add a1, a1, a2
    ret
""")


class TestBranchRetargeting:
    def test_compressed_branch_widened(self):
        """c.bnez is re-emitted as a 4-byte bne with a retargeted offset."""
        binary, code = scan_and_reassemble("""
_start:
    li a0, 3
top:
    c.addi a0, -1
    c.bnez a0, top
    ret
""")
        mnems = [i.mnemonic for i in disassemble(code.code, code.base)]
        assert "bne" in mnems
        assert "c.bnez" not in mnems

    def test_call_ra_style_original(self):
        """ARMore mode: calls materialize the ORIGINAL return address."""
        binary, code = scan_and_reassemble("""
_start:
    jal helper
    li a7, 93
    li a0, 0
    ecall
helper:
    ret
""", base=0x300000, needs=lambda i: False, call_ra_style="original")
        instrs = disassemble(code.code, code.base)
        # The call expands to lui ra / addiw ra / jal x0.
        assert instrs[0].mnemonic == "lui" and instrs[0].rd == 1
        assert instrs[1].mnemonic == "addiw" and instrs[1].rd == 1
        assert instrs[2].mnemonic == "jal" and instrs[2].rd == 0
        from repro.isa.fields import sign_extend

        ra = sign_extend((instrs[0].imm << 12) & 0xFFFFFFFF, 32) + instrs[1].imm
        assert ra == binary.entry + 4  # original-layout return address

    def test_invalid_call_ra_style(self):
        with pytest.raises(ValueError):
            scan_and_reassemble("_start:\nret\n", call_ra_style="weird")


class TestPatternSites:
    def test_pattern_head_replaced_members_elided(self):
        from repro.analysis.cfg import build_cfg
        from repro.analysis.liveness import LivenessAnalysis
        from repro.core.downgrade_loops import find_downgrade_loop_sites
        from repro.isa.extensions import RV64GC

        b = ProgramBuilder("p")
        b.add_words("x", list(range(8)))
        b.add_words("z", [0] * 8)
        b.set_text("""
_start:
    li a0, {x}
    li a2, {z}
    li a3, 8
cp:
    vsetvli t0, a3, e64
    vle64.v v1, (a0)
    vse64.v v1, (a2)
    slli t1, t0, 3
    add a0, a0, t1
    add a2, a2, t1
    sub a3, a3, t0
    bnez a3, cp
    li a7, 93
    li a0, 0
    ecall
""")
        binary = b.build()
        scan = RecursiveScanner().scan(binary)
        cfg = build_cfg(scan)
        live = LivenessAnalysis(cfg).run()
        sites = find_downgrade_loop_sites(scan, cfg, live, RV64GC)
        assert sites
        translator = Translator(TranslationContext(0x700000, binary.global_pointer))
        code = reassemble(scan, translator, 0x300000,
                          needs_translation=lambda i: False, pattern_sites=sites)
        # No vector opcodes survive in the output.
        for instr in disassemble(code.code, code.base):
            if hasattr(instr, "extension"):
                from repro.isa.extensions import Extension

                assert instr.extension is not Extension.V
        # Member addresses map to the replacement head.
        head_new = code.addr_map[sites[0].start]
        for member in sites[0].instructions[1:]:
            assert code.addr_map[member.addr] == head_new

    def test_addr_map_monotone_for_plain_items(self):
        binary, code = scan_and_reassemble("""
_start:
    nop
    nop
    c.addi a0, 1
    ret
""")
        addrs = sorted(code.addr_map)
        news = [code.addr_map[a] for a in addrs]
        assert news == sorted(news)
