"""Strawman binary patching (§6.2's fourth baseline).

In-place patching like CHBP, but with single-instruction ``jal``
trampolines instead of SMILE: each 4-byte source instruction is replaced
by ``jal x0, <target block>`` — correct (nothing else is overwritten)
and cheap, **when the block is within the ±1 MB jal reach**.  Everything
else — 2-byte sources (no compressed long jump exists) and blocks beyond
reach — falls back to trap-based trampolines.  Comparing CHBP against
this strawman isolates what the SMILE long-distance trampoline buys
(the paper reports +60.2%).

Target blocks are placed immediately after the code section to maximize
reachability, exactly what a practical implementation would do.
"""

from __future__ import annotations

from repro.core.patcher import ChbpPatcher
from repro.core.rewriter import RewriteResult
from repro.elf.binary import Binary, Section
from repro.isa.assembler import Assembler
from repro.isa.encoding import encode
from repro.isa.extensions import IsaProfile
from repro.isa.instructions import Instruction
from repro.sim.cost import ArchParams, DEFAULT_ARCH


class StrawmanPatcher(ChbpPatcher):
    """CHBP's pipeline with jal/trap patching instead of SMILE."""

    def _chimera_text_base(self, out: Binary) -> int:
        # Place blocks as close to the code as possible: jal reach is
        # the whole game for this method.
        text = out.text
        base = (text.end + 0xF) & ~0xF
        following = [s.addr for s in out.sections if s.addr >= text.end]
        data_start = min(following) if following else None
        if data_start is not None and base + 16 * text.size > data_start:
            base = (max(s.end for s in out.sections) + 0xFFF) & ~0xFFF
        return base

    def _patch_site(self, site, text: Section) -> bool:
        reach = min(self.arch.jal_reach, 1 << 20)
        for kind, payload in site.elements:
            if kind == "copy":
                continue
            if kind == "upgrade":
                instrs = [payload.instructions[0]]
                bodies = [payload.replacement_asm]
                resumes = [payload.end]
            else:
                if payload.addr in self._covered:
                    continue
                instrs = [payload]
                bodies = [self.translator.translate(payload)[0]]
                resumes = [payload.addr + payload.length]
            for instr, body, resume in zip(instrs, bodies, resumes):
                self._patch_one(instr, body, resume, text, reach)
        return True

    def _patch_one(self, instr: Instruction, body: str, resume: int,
                   text: Section, reach: int) -> None:
        # Trial-assemble to size the block, then place it nearby.
        size = len(Assembler(base=0).assemble(body).code) + 4  # + return jump
        block_addr = self._alloc.place_unconstrained(size)
        program = Assembler(base=block_addr).assemble(body)
        block = bytearray(program.code)
        back_pc = block_addr + len(block)
        disp_back = resume - back_pc
        if -reach <= disp_back < reach:
            block.extend(encode(Instruction("jal", rd=0, imm=disp_back)))
        else:
            block.extend(encode(Instruction("ebreak")))
            self.trap_table[back_pc] = resume
        self._blocks[block_addr] = block

        disp = block_addr - instr.addr
        if instr.length == 4 and -reach <= disp < reach:
            text.write(instr.addr, encode(Instruction("jal", rd=0, imm=disp)))
            self.stats.trampolines += 1
        else:
            trap = (encode(Instruction("c.ebreak", length=2))
                    if instr.length == 2 else encode(Instruction("ebreak")))
            text.write(instr.addr, trap)
            self.trap_table[instr.addr] = block_addr
            self.stats.trap_fallbacks += 1
        self._covered.add(instr.addr)
        self.migration_unsafe.append((instr.addr, resume))


def rewrite_strawman(
    binary: Binary,
    target_profile: IsaProfile,
    *,
    arch: ArchParams = DEFAULT_ARCH,
    mode: str = "full",
) -> RewriteResult:
    """Convenience wrapper mirroring :class:`ChimeraRewriter.rewrite`."""
    patcher = StrawmanPatcher(
        binary, target_profile, arch=arch, mode=mode,
        batch_blocks=False, enable_upgrades=False,
    )
    rewritten = patcher.patch()
    return RewriteResult(rewritten, target_profile, patcher.stats)
