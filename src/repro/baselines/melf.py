"""MELF [60]: compilation-based multivariant executables (§2.1).

MELF compiles source code once per ISA level and switches variants at
load/migration time.  It needs source code — which our workload
descriptors play the role of — and represents the *ideal* performance
Chimera is measured against: every variant is natively generated, no
trampolines, no checks.
"""

from __future__ import annotations

from typing import Protocol

from repro.elf.binary import Binary


class SourceWorkload(Protocol):
    """Anything that can be 'compiled' per ISA variant.

    The workload builders in :mod:`repro.workloads.programs` satisfy
    this: ``variants()`` lists the ISA levels the 'source code' can
    target, and ``build(variant)`` emits a native binary for one.
    """

    def variants(self) -> list[str]: ...

    def build(self, variant: str) -> Binary: ...


def build_melf_variants(workload: SourceWorkload) -> dict[str, Binary]:
    """Compile *workload* once per ISA variant (the MELF fat binary).

    Keys are profile names (``rv64gc``, ``rv64gcv``); the scheduler picks
    the variant matching each core, exactly like MELF's loader.
    """
    return {variant: workload.build(variant) for variant in workload.variants()}
