"""``Cpu.run`` hot-loop micro-fixes, measured in isolation.

Two before/after comparisons backing the run-loop changes:

* **counter bump** — the old ``counters.get(name, 0) + 1`` read-modify-
  write against the ``defaultdict(int)`` bump the loop uses now
  (``python -m timeit``-style, best of 5).
* **hook hoist** — the interpreter loop with a live no-op ``step_hook``
  (every step pays the truthiness checks *and* the Python call, the
  shape of the old unhoisted loop) against the hoisted no-hook loop,
  and against the superblock engine on the same program.  All three
  must retire the same architectural state.

Wall-clock floors are deliberately loose — these are micro measurements
on shared CI boxes; ``BENCH_runloop.json`` carries the real numbers.
"""

import timeit
from collections import defaultdict

import pytest

from benchmarks.helpers import emit_bench, print_table
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import PROFILES
from repro.sim.machine import Core, Kernel
from repro.telemetry import MetricsRegistry

RV64GC = PROFILES["rv64gc"]
ITERATIONS = 20_000  # ~3 instructions per loop trip


def _loop_binary():
    b = ProgramBuilder("runloop-microbench")
    b.set_text(f"""
_start:
    li t1, 0
    li t0, {ITERATIONS}
loop:
    addi t1, t1, 1
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
""")
    return b.build()


def _bump_timings():
    """Best-of-5 seconds for each counter-bump pattern (400k bumps)."""
    names = ("instret", "cycles", "loads", "stores") * 100_000

    def before():
        counters = {}
        for name in names:
            counters[name] = counters.get(name, 0) + 1
        return counters

    def after():
        counters = defaultdict(int)
        for name in names:
            counters[name] += 1
        return counters

    assert dict(after()) == before()
    return (min(timeit.repeat(before, repeat=5, number=1)),
            min(timeit.repeat(after, repeat=5, number=1)))


def _run_loop(binary, *, block_cache, hook=None):
    kernel = Kernel(block_cache=block_cache)
    process = make_process(binary)
    cpu = kernel.make_cpu(process, Core(0, RV64GC))
    if hook is not None:
        cpu.step_hook = hook
    t0 = timeit.default_timer()
    result = kernel.run(process, Core(0, RV64GC), cpu=cpu)
    dt = timeit.default_timer() - t0
    assert result.ok, f"microbench loop died: {result.fault!r}"
    return dt, result


def _best_run(binary, *, block_cache, hook=None, rounds=3):
    best, result = None, None
    for _ in range(rounds):
        dt, result = _run_loop(binary, block_cache=block_cache, hook=hook)
        best = dt if best is None else min(best, dt)
    return best, result


@pytest.fixture(scope="module")
def measurements():
    before_bump, after_bump = _bump_timings()
    binary = _loop_binary()
    hooked_s, hooked = _best_run(binary, block_cache=False,
                                 hook=lambda cpu: None)
    hoisted_s, hoisted = _best_run(binary, block_cache=False)
    super_s, fast = _best_run(binary, block_cache=True)
    for other in (hoisted, fast):
        assert (other.exit_code, other.instret, other.cycles) == \
            (hooked.exit_code, hooked.instret, hooked.cycles), \
            "run-loop variants diverged architecturally"
    return {
        "bump_before_s": before_bump,
        "bump_after_s": after_bump,
        "interp_hooked_s": hooked_s,
        "interp_hoisted_s": hoisted_s,
        "superblock_s": super_s,
        "instret": hooked.instret,
    }


def test_runloop_microbench(measurements):
    m = measurements
    bump = m["bump_before_s"] / m["bump_after_s"]
    hoist = m["interp_hooked_s"] / m["interp_hoisted_s"]
    superblock = m["interp_hooked_s"] / m["superblock_s"]
    ips = {key: m["instret"] / m[f"interp_{key}_s"]
           for key in ("hooked", "hoisted")}
    ips["superblock"] = m["instret"] / m["superblock_s"]
    print_table(
        f"Cpu.run micro-fixes ({m['instret']} retired, best of 3)",
        ["measurement", "before", "after", "speedup"],
        [
            ["counter bump (400k)", f"{m['bump_before_s'] * 1e3:.1f}ms",
             f"{m['bump_after_s'] * 1e3:.1f}ms", f"{bump:.2f}x"],
            ["interp loop (hook vs hoisted)",
             f"{m['interp_hooked_s'] * 1e3:.1f}ms",
             f"{m['interp_hoisted_s'] * 1e3:.1f}ms", f"{hoist:.2f}x"],
            ["interp hooked vs superblock",
             f"{m['interp_hooked_s'] * 1e3:.1f}ms",
             f"{m['superblock_s'] * 1e3:.1f}ms", f"{superblock:.2f}x"],
        ],
    )
    registry = MetricsRegistry()
    registry.gauge("bench.counter_bump_speedup", bump)
    registry.gauge("bench.hook_hoist_speedup", hoist)
    registry.gauge("bench.superblock_vs_hooked_speedup", superblock)
    for variant, value in ips.items():
        registry.gauge("bench.interp_instructions_per_second", value,
                       variant=variant)
    emit_bench("runloop", registry)

    # defaultdict bump beats the get() pattern; generous slack for noise.
    assert bump > 0.9, f"defaultdict counter bump regressed ({bump:.2f}x)"
    # Dropping the per-step hook dispatch must never cost time.
    assert hoist > 0.95, f"hoisted loop slower than hooked ({hoist:.2f}x)"
    assert superblock > 1.0, \
        f"superblock lost to the hooked interpreter ({superblock:.2f}x)"
