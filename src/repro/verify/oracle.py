"""Bounded differential oracle: co-execute each patched window against
the original.

For every :class:`~repro.verify.records.PatchRecord` the oracle runs a
handful of trials.  Each trial seeds both sides with the *same*
randomized register file and data-segment bytes, then executes

* the **original** binary from ``record.start`` on a core that supports
  every source extension, and
* the **rewritten** binary from the same pc on the rewrite's target
  core, with a :class:`~repro.core.runtime.ChimeraRuntime` recovering
  the deterministic SMILE faults,

until both reach ``record.resume`` (the first pc where normal flow
rejoins original text).  At sync the live registers (everything not
provably dead at the resume point — the clobbered exit register is dead
by the patcher's own liveness proof) and the writable data segments must
match.  Trials where both sides raise the *same* fault (same type, same
kind/address) also count as a match — the window's observable behavior
is identical.  Trials that exhaust the step budget are reported as
``inconclusive``, never silently folded into a pass.

Randomness is seeded from ``REPRO_FUZZ_SEED`` (see
:mod:`repro.resilience.seeds`) xor'd with the region address and trial
index, so a failing trial reproduces byte-for-byte.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.analysis.cfg import build_cfg
from repro.analysis.liveness import LivenessAnalysis
from repro.analysis.scan import RecursiveScanner
from repro.elf.binary import Binary, Perm
from repro.elf.loader import make_process
from repro.isa.extensions import PROFILES
from repro.isa.registers import Reg
from repro.resilience.seeds import resolve_seed
from repro.sim.faults import (
    EcallTrap,
    ExitRequest,
    IllegalInstructionFault,
    SegmentationFault,
    SimFault,
    UnrecoverableFault,
)
from repro.sim.machine import Core, Kernel
from repro.verify.records import PatchRecord

#: Registers the trials never randomize: zero, and the ABI-pinned
#: sp/gp/tp the SMILE machinery itself depends on.
_PINNED = frozenset({int(Reg.ZERO), int(Reg.SP), int(Reg.GP), int(Reg.TP)})

#: Segment names excluded from scribbling and comparison.
_PRIVATE_PREFIX = ".chimera"
_STACK = "[stack]"


class _SideResult:
    """Terminal state of one side of one trial."""

    def __init__(self, status: str, cpu=None, process=None, signature=None,
                 detail: str = ""):
        self.status = status  # "sync" | "fault" | "inconclusive" | "unrecoverable"
        self.cpu = cpu
        self.process = process
        self.signature = signature
        self.detail = detail


def _fault_signature(fault: SimFault, cpu) -> tuple:
    """Side-independent identity of a fault (pc excluded: the rewritten
    side legally faults at relocated addresses)."""
    if isinstance(fault, ExitRequest):
        return ("exit", fault.code)
    if isinstance(fault, EcallTrap):
        return ("ecall", cpu.get_reg(Reg.A7), cpu.get_reg(Reg.A0))
    if isinstance(fault, SegmentationFault):
        return ("segv", fault.access, fault.addr)
    if isinstance(fault, IllegalInstructionFault):
        return ("sigill", fault.kind)
    return (type(fault).__name__,)


class DifferentialOracle:
    """Co-execute rewritten windows against the original binary."""

    def __init__(
        self,
        original: Binary,
        rewritten: Binary,
        *,
        seed: Optional[int] = None,
        trials: int = 2,
        max_steps: int = 512,
        liveness=None,
    ):
        meta = rewritten.metadata.get("chimera")
        if meta is None:
            raise ValueError(f"{rewritten.name} was not produced by ChimeraRewriter")
        self.original = original
        self.rewritten = rewritten
        self.trials = trials
        self.max_steps = max_steps
        self.seed = resolve_seed(seed)
        self.target_profile = PROFILES[meta["target_profile"]]
        #: The source side runs on a superset core so every original
        #: extension instruction executes natively.
        self.source_profile = PROFILES["rv64gcv"]
        #: Liveness over the *original* binary.  The rewriter already
        #: computed exactly this to prove exit registers dead; passing it
        #: in skips a redundant scan+cfg+dataflow pass.
        self._liveness = liveness

    # -- analysis (matches the patcher's own parameters) --------------------

    def prepare(self) -> None:
        """Force the lazy liveness analysis now.

        Call before fanning ``check_region`` out across threads so the
        one-shot mutation happens on a single thread.
        """
        self._dead_at(self.original.entry)

    def _dead_at(self, addr: int) -> frozenset:
        if self._liveness is None:
            scan = RecursiveScanner(seed_address_taken=False).scan(self.original)
            self._liveness = LivenessAnalysis(build_cfg(scan)).run()
        return self._liveness.dead_before(addr)

    # -- trials -------------------------------------------------------------

    def check_region(self, rec: PatchRecord) -> list[str]:
        """Run all trials for one region; returns per-trial outcomes."""
        outcomes = []
        for trial in range(self.trials):
            rng = random.Random(
                (self.seed * 1_000_003) ^ (rec.start << 2) ^ trial)
            outcomes.append(self._run_trial(rec, rng))
        return outcomes

    def _run_trial(self, rec: PatchRecord, rng: random.Random) -> str:
        o_proc = make_process(self.original, name=f"{self.original.name}@oracle-o")
        r_proc = make_process(self.rewritten, name=f"{self.rewritten.name}@oracle-r")
        regs = self._trial_regs(rng, o_proc)
        self._scribble(rng, o_proc, r_proc)

        o = self._run_side(self.original, o_proc, self.source_profile, rec, regs,
                           runtime=False)
        r = self._run_side(self.rewritten, r_proc, self.target_profile, rec, regs,
                           runtime=True)

        if r.status == "unrecoverable":
            return (f"mismatch: rewritten side raised UnrecoverableFault "
                    f"({r.detail})")
        if o.status == "inconclusive" or r.status == "inconclusive":
            return "inconclusive: step budget exhausted before sync"
        if o.status == "fault" or r.status == "fault":
            if o.signature == r.signature and o.signature is not None:
                return "match"
            return (f"mismatch: original ended {o.status} {o.signature}, "
                    f"rewritten ended {r.status} {r.signature}")
        return self._compare_synced(rec, o, r)

    def _trial_regs(self, rng: random.Random, process) -> list[int]:
        data_addrs = [
            seg.base + 8 * rng.randrange(max(1, seg.size // 8))
            for seg in process.space.segments
            if Perm.W in seg.perm and seg.name != _STACK
            and not seg.name.startswith(_PRIVATE_PREFIX)
            for _ in range(4)
        ]
        regs = [0] * 32
        for r in range(32):
            if r in _PINNED:
                continue
            roll = rng.random()
            if roll < 0.45 and data_addrs:
                regs[r] = rng.choice(data_addrs)
            elif roll < 0.9:
                regs[r] = rng.randrange(0, 64)
            else:
                regs[r] = rng.getrandbits(64)
        return regs

    def _scribble(self, rng: random.Random, *processes) -> None:
        """Write identical seeded bytes into both sides' data segments."""
        names = None
        for process in processes:
            current = {
                seg.name for seg in process.space.segments
                if Perm.W in seg.perm and seg.name != _STACK
                and not seg.name.startswith(_PRIVATE_PREFIX)
            }
            names = current if names is None else (names & current)
        for name in sorted(names or ()):
            size = min(s.size for p in processes
                       for s in p.space.segments if s.name == name)
            blob = rng.randbytes(min(size, 512))
            for process in processes:
                seg = next(s for s in process.space.segments if s.name == name)
                seg.data[:len(blob)] = blob

    def _run_side(self, binary, process, profile, rec: PatchRecord,
                  regs: list[int], *, runtime: bool) -> _SideResult:
        # Imported here, not at module level: the runtime itself imports
        # repro.verify (rollback journal), so a top-level import cycles.
        from repro.core.runtime import ChimeraRuntime

        kernel = Kernel()
        rt = None
        if runtime:
            rt = ChimeraRuntime(binary)
            rt.install(kernel)
        cpu = kernel.make_cpu(process, Core(0, profile))
        for idx, value in enumerate(regs):
            if idx not in _PINNED:
                cpu.set_reg(idx, value)
        cpu.pc = rec.start

        # The exit trampoline may have been re-routed through the fault
        # table (resume landed inside a later site's window); the
        # redirect is the relocated copy of the same architectural point.
        sync_pcs = {rec.resume}
        if rt is not None:
            redirect = rt.fault_table.lookup(rec.resume)
            if redirect is not None:
                sync_pcs.add(redirect)

        for _ in range(self.max_steps):
            if cpu.pc in sync_pcs:
                return _SideResult("sync", cpu, process)
            try:
                cpu.step()
            except SimFault as fault:
                if rt is not None:
                    try:
                        if kernel.dispatch_fault(process, cpu, fault):
                            continue
                    except UnrecoverableFault as unrec:
                        return _SideResult("unrecoverable",
                                           detail=str(unrec.args[0]))
                return _SideResult(
                    "fault", cpu, process,
                    signature=_fault_signature(fault, cpu))
        return _SideResult("inconclusive")

    def _compare_synced(self, rec: PatchRecord, o: _SideResult,
                        r: _SideResult) -> str:
        dead = self._dead_at(rec.resume)
        for idx in range(1, 32):
            if idx in dead:
                continue
            ov, rv = o.cpu.get_reg(idx), r.cpu.get_reg(idx)
            if ov != rv:
                return (f"mismatch: live register x{idx} differs at sync "
                        f"({ov:#x} vs {rv:#x})")
        o_segs = {s.name: s for s in o.process.space.segments}
        r_segs = {s.name: s for s in r.process.space.segments}
        for name in sorted(set(o_segs) & set(r_segs)):
            if name.startswith(_PRIVATE_PREFIX) or Perm.W not in o_segs[name].perm:
                continue
            os_, rs = o_segs[name], r_segs[name]
            if name == _STACK:
                # Compare only at/above sp: translated blocks may leave
                # scratch residue in the red zone below it.
                sp = o.cpu.get_reg(Reg.SP)
                lo = max(0, sp - os_.base)
                if bytes(os_.data[lo:]) != bytes(rs.data[lo:]):
                    return "mismatch: stack bytes above sp differ at sync"
                continue
            if bytes(os_.data) != bytes(rs.data[:os_.size]):
                return f"mismatch: data segment {name} differs at sync"
        return "match"
