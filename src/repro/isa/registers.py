"""Register definitions for the RV64 integer file and the vector file.

The ``gp`` register (x3) is load-bearing for the whole paper: the RISC-V
psABI pins it to ``__global_pointer$`` (a data-segment anchor), it is
read-only for the lifetime of the program, and its value is statically
known at rewriting time.  Those three properties are exactly what the
SMILE trampoline exploits (paper §3.3/§4.2).
"""

from __future__ import annotations

import enum


class Reg(enum.IntEnum):
    """Integer register numbers with their ABI mnemonics."""

    ZERO = 0
    RA = 1
    SP = 2
    GP = 3
    TP = 4
    T0 = 5
    T1 = 6
    T2 = 7
    S0 = 8  # also fp
    S1 = 9
    A0 = 10
    A1 = 11
    A2 = 12
    A3 = 13
    A4 = 14
    A5 = 15
    A6 = 16
    A7 = 17
    S2 = 18
    S3 = 19
    S4 = 20
    S5 = 21
    S6 = 22
    S7 = 23
    S8 = 24
    S9 = 25
    S10 = 26
    S11 = 27
    T3 = 28
    T4 = 29
    T5 = 30
    T6 = 31


class VReg(enum.IntEnum):
    """Vector register numbers v0..v31 (RVV)."""

    V0 = 0
    V1 = 1
    V2 = 2
    V3 = 3
    V4 = 4
    V5 = 5
    V6 = 6
    V7 = 7
    V8 = 8
    V9 = 9
    V10 = 10
    V11 = 11
    V12 = 12
    V13 = 13
    V14 = 14
    V15 = 15
    V16 = 16
    V17 = 17
    V18 = 18
    V19 = 19
    V20 = 20
    V21 = 21
    V22 = 22
    V23 = 23
    V24 = 24
    V25 = 25
    V26 = 26
    V27 = 27
    V28 = 28
    V29 = 29
    V30 = 30
    V31 = 31


ABI_NAMES: tuple[str, ...] = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

#: Lookup from ABI name (and aliases) to register number.
NAME_TO_REG: dict[str, Reg] = {name: Reg(i) for i, name in enumerate(ABI_NAMES)}
NAME_TO_REG["fp"] = Reg.S0
NAME_TO_REG.update({f"x{i}": Reg(i) for i in range(32)})

NAME_TO_VREG: dict[str, VReg] = {f"v{i}": VReg(i) for i in range(32)}

#: Caller-saved (temporary + argument) registers, candidates for scratch
#: use inside translated blocks after a stack save.
CALLER_SAVED: frozenset[Reg] = frozenset(
    {Reg.RA, Reg.T0, Reg.T1, Reg.T2, Reg.A0, Reg.A1, Reg.A2, Reg.A3,
     Reg.A4, Reg.A5, Reg.A6, Reg.A7, Reg.T3, Reg.T4, Reg.T5, Reg.T6}
)

#: Callee-saved registers.
CALLEE_SAVED: frozenset[Reg] = frozenset(
    {Reg.SP, Reg.S0, Reg.S1, Reg.S2, Reg.S3, Reg.S4, Reg.S5, Reg.S6,
     Reg.S7, Reg.S8, Reg.S9, Reg.S10, Reg.S11}
)

#: Registers the rewriter must never pick as a dead/exit register:
#: zero is hardwired, gp/tp are ABI-pinned, sp anchors the stack.
RESERVED_FOR_ABI: frozenset[Reg] = frozenset({Reg.ZERO, Reg.SP, Reg.GP, Reg.TP})

#: The compressed "prime" register set x8..x15 used by most RVC formats.
RVC_REGS: tuple[Reg, ...] = tuple(Reg(i) for i in range(8, 16))


def reg_name(reg: int) -> str:
    """Return the ABI name for integer register number *reg*."""
    return ABI_NAMES[int(reg)]


def vreg_name(vreg: int) -> str:
    """Return the name (``vN``) for vector register number *vreg*."""
    return f"v{int(vreg)}"


def parse_reg(name: str) -> Reg:
    """Parse an integer register name (ABI or ``xN``) to its number.

    Raises ``KeyError`` for unknown names.
    """
    return NAME_TO_REG[name.strip().lower()]


def parse_vreg(name: str) -> VReg:
    """Parse a vector register name ``vN`` to its number."""
    return NAME_TO_VREG[name.strip().lower()]


def is_rvc_reg(reg: int) -> bool:
    """True if *reg* is encodable in the compressed 3-bit register field."""
    return 8 <= int(reg) <= 15


def rvc_encode_reg(reg: int) -> int:
    """Map x8..x15 to the 3-bit compressed register field value."""
    if not is_rvc_reg(reg):
        raise ValueError(f"register {reg_name(reg)} not encodable in RVC 3-bit field")
    return int(reg) - 8


def rvc_decode_reg(field: int) -> Reg:
    """Map a 3-bit compressed register field value back to x8..x15."""
    return Reg(8 + (field & 0x7))
