"""Seed resolution shared by every randomized harness.

One rule everywhere: an explicit seed wins, then the ``REPRO_FUZZ_SEED``
environment variable (the differential fuzz suite's replay knob), then
the caller's historical default.  Harnesses print the *effective* seed on
failure so any run can be replayed exactly.
"""

from __future__ import annotations

import os
from typing import Optional

ENV_SEED = "REPRO_FUZZ_SEED"


def resolve_seed(seed: Optional[int] = None, default: int = 0) -> int:
    """The effective seed: explicit > ``REPRO_FUZZ_SEED`` > *default*."""
    if seed is not None:
        return int(seed)
    env = os.environ.get(ENV_SEED)
    if env is not None and env.strip():
        return int(env)
    return default


def replay_hint(seed: int) -> str:
    """One-line replay instruction printed next to failures."""
    return f"replay with --seed {seed} (or {ENV_SEED}={seed})"
