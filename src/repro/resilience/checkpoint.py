"""Checkpointed task state: CPU context + address-space image, checksummed.

A :class:`Checkpoint` is taken at a fault/preemption boundary — the
resilience layer's :class:`~repro.sim.faults.CoreFault` fires *between*
instructions, so nothing is partially executed — and restored into a
fresh process/CPU on a surviving core of the same flavor.  Restoring a
checkpoint across pools is refused by the scheduler (each core flavor
runs its own rewritten image), so cross-pool recovery restarts from
entry and pays the downgrade cost instead.

Integrity: every checkpoint carries a CRC32 over its full serialized
content.  A corrupted checkpoint (chaos-injected or otherwise) is
*detected* at restore time and surfaces as a structured
:class:`~repro.sim.faults.CheckpointCorruptFault`; the task restarts
from entry rather than silently diverging.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.elf.binary import Perm
from repro.sim.cpu import Cpu
from repro.sim.faults import CheckpointCorruptFault
from repro.sim.machine import Process, SignalFrame
from repro.telemetry import current as telemetry_current


@dataclass
class _SegmentImage:
    """Snapshot of one mapped segment."""

    name: str
    base: int
    data: bytes
    perm: int  # Perm flag value


@dataclass
class Checkpoint:
    """Restorable image of one task mid-execution."""

    task_id: int
    core_id: int            # core the checkpoint was taken on
    pool_ext: bool          # core flavor the running image was built for
    pc: int = 0
    regs: list[int] = field(default_factory=lambda: [0] * 32)
    vl: int = 0
    sew: int = 64
    vregs: list[bytes] = field(default_factory=list)
    instret: int = 0
    cycles: int = 0
    output: bytes = b""
    signal_frames: list[tuple[int, list[int]]] = field(default_factory=list)
    segments: list[_SegmentImage] = field(default_factory=list)
    #: Mutable runtime state (fault/trap tables extended by lazy
    #: rewrites) exported via ``ChimeraRuntime.export_state``; None for
    #: runtimes without checkpointable state.
    runtime_state: Optional[dict] = None
    checksum: int = 0

    # -- capture ------------------------------------------------------------

    @classmethod
    def take(
        cls,
        cpu: Cpu,
        process: Process,
        *,
        task_id: int,
        core_id: int,
        pool_ext: bool,
        runtime=None,
    ) -> "Checkpoint":
        """Snapshot *cpu* + *process* (full segment images) and seal it."""
        export = getattr(runtime, "export_state", None)
        ck = cls(
            task_id=task_id,
            core_id=core_id,
            pool_ext=pool_ext,
            pc=cpu.pc,
            regs=cpu.snapshot_regs(),
            vl=cpu.vector.vl,
            sew=cpu.vector.sew,
            vregs=[bytes(r) for r in cpu.vector.regs],
            instret=cpu.instret,
            cycles=cpu.cycles,
            output=bytes(process.output),
            signal_frames=[(f.pc, list(f.regs)) for f in process.signal_stack],
            segments=[
                _SegmentImage(s.name, s.base, bytes(s.data), s.perm.value)
                for s in process.space.segments
            ],
            runtime_state=export() if export is not None else None,
        )
        ck.checksum = ck._digest()
        telemetry = telemetry_current()
        if telemetry.enabled:
            telemetry.metrics.inc("resilience.checkpoints")
            telemetry.metrics.observe(
                "resilience.checkpoint_bytes",
                sum(len(seg.data) for seg in ck.segments),
            )
        return ck

    # -- integrity ----------------------------------------------------------

    def _digest(self) -> int:
        crc = 0
        head = (
            f"{self.task_id}|{self.pool_ext}|{self.pc}|{self.vl}|{self.sew}|"
            f"{self.instret}|{self.regs}|{self.signal_frames}|"
            f"{sorted(self.runtime_state.items()) if self.runtime_state else None}"
        )
        crc = zlib.crc32(head.encode(), crc)
        for vreg in self.vregs:
            crc = zlib.crc32(vreg, crc)
        crc = zlib.crc32(self.output, crc)
        for seg in self.segments:
            crc = zlib.crc32(f"{seg.name}|{seg.base}|{seg.perm}".encode(), crc)
            crc = zlib.crc32(seg.data, crc)
        return crc

    @property
    def valid(self) -> bool:
        return self._digest() == self.checksum

    def corrupt(self, rng: Optional[random.Random] = None) -> None:
        """Chaos hook: flip bytes in a data segment *without* resealing."""
        rng = rng or random.Random(0)
        targets = [s for s in self.segments if s.data] or None
        if targets is None:
            self.pc ^= 0x4  # no data to damage; skew the context instead
            return
        seg = rng.choice(targets)
        data = bytearray(seg.data)
        for _ in range(max(1, len(data) // 64)):
            data[rng.randrange(len(data))] ^= 0xFF
        seg.data = bytes(data)

    # -- restore ------------------------------------------------------------

    def restore(self, cpu: Cpu, process: Process, *, runtime=None) -> None:
        """Rebuild the checkpointed context into *cpu*/*process*.

        Raises :class:`CheckpointCorruptFault` when the checksum does not
        match — the caller restarts the task from entry.
        """
        if not self.valid:
            raise CheckpointCorruptFault(self.task_id, self.checksum, self._digest())
        by_name = {s.name: s for s in process.space.segments}
        for image in self.segments:
            seg = by_name.get(image.name)
            if seg is not None and seg.base == image.base and seg.size == len(image.data):
                seg.data[:] = image.data
                seg.version += 1
            else:
                if seg is not None:
                    process.space.segments.remove(seg)
                process.space.map(image.name, image.base, bytearray(image.data),
                                  Perm(image.perm))
        cpu.regs[:] = list(self.regs)
        cpu.pc = self.pc
        cpu.instret = self.instret
        cpu.cycles = self.cycles
        cpu.vector.sew = self.sew
        cpu.vector.vl = self.vl
        for reg, image_bytes in zip(cpu.vector.regs, self.vregs):
            reg[:] = image_bytes
        process.output = bytearray(self.output)
        process.signal_stack = [SignalFrame(pc, list(regs)) for pc, regs in self.signal_frames]
        if runtime is not None and self.runtime_state is not None:
            importer = getattr(runtime, "import_state", None)
            if importer is not None:
                importer(self.runtime_state)
        cpu.flush_decode_cache()
