"""Resilience building blocks: policy, seeds, checkpoints, injector."""

import random

import pytest

from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.resilience.checkpoint import Checkpoint
from repro.resilience.executor import run_task_on_core
from repro.resilience.failures import (
    CORRUPT_CHECKPOINT,
    DROP_MIGRATION,
    KILL_CORE,
    CoreFailureInjector,
    DesFailurePlan,
    FailureEvent,
)
from repro.resilience.policy import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    ResilienceStats,
    RetryPolicy,
)
from repro.resilience.seeds import ENV_SEED, replay_hint, resolve_seed
from repro.sim.faults import CheckpointCorruptFault
from repro.sim.machine import Core, CoreHealth, Kernel
from repro.workloads.programs import MatMulWorkload


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        p = RetryPolicy(base_backoff=1000, multiplier=2, max_backoff=3500)
        assert [p.backoff(i) for i in range(1, 5)] == [1000, 2000, 3500, 3500]

    def test_attempt_budget(self):
        p = RetryPolicy(max_attempts=3)
        assert not p.exhausted(3)
        assert p.exhausted(4)

    def test_deadline(self):
        p = RetryPolicy(deadline=10_000)
        assert not p.past_deadline(0, 10_000)
        assert p.past_deadline(0, 10_001)
        assert not RetryPolicy().past_deadline(0, 10**12)  # no deadline

    def test_stats_merge_and_summary(self):
        a = ResilienceStats(core_faults=1, retries=2)
        b = ResilienceStats(core_faults=3, quarantines=1)
        a.merge(b)
        assert a.core_faults == 4 and a.retries == 2 and a.quarantines == 1
        assert "core_faults=4" in a.summary()
        assert ResilienceStats().summary() == "clean run"


class _FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


def _breaker(**kw):
    clock = _FakeClock()
    kw.setdefault("rng", random.Random(0))
    return CircuitBreaker(clock=clock, **kw), clock


class TestCircuitBreaker:
    def test_closed_allows_and_counts_failures(self):
        breaker, _ = _breaker()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED and breaker.allow()

    def test_trips_open_at_threshold_and_fails_fast(self):
        breaker, _ = _breaker(failure_threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        assert breaker.retry_in() > 0.0

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = _breaker(failure_threshold=1, jitter=0.0)
        breaker.record_failure()
        clock.now += breaker.retry_in() + 0.001
        assert breaker.allow()  # the probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow()  # concurrent caller: still shut out

    def test_probe_success_closes_and_resets(self):
        breaker, clock = _breaker(failure_threshold=1, jitter=0.0)
        breaker.record_failure()
        clock.now += breaker.retry_in() + 0.001
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.trips == 0 and breaker.consecutive_failures == 0
        assert breaker.retry_in() == 0.0
        assert breaker.total_trips == 1  # lifetime telemetry survives

    def test_failed_probe_reopens_with_escalating_delay(self):
        breaker, clock = _breaker(failure_threshold=1, jitter=0.0,
                                  reset_seconds=0.5,
                                  open_backoff_multiplier=2.0)
        breaker.record_failure()
        first = breaker.retry_in()
        clock.now += first + 0.001
        assert breaker.allow()
        breaker.record_failure()  # probe failed: open again, doubled
        assert breaker.state == BREAKER_OPEN
        assert breaker.retry_in() == pytest.approx(2 * 0.5, rel=0.01)
        assert breaker.trips == 2

    def test_escalation_caps_at_max_reset(self):
        breaker, clock = _breaker(failure_threshold=1, jitter=0.0,
                                  reset_seconds=1.0, max_reset_seconds=4.0)
        breaker.record_failure()
        for _ in range(5):
            clock.now += breaker.retry_in() + 0.001
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.retry_in() == pytest.approx(4.0, rel=0.01)

    def test_jitter_spreads_probe_times(self):
        delays = set()
        for seed in range(8):
            breaker = CircuitBreaker(failure_threshold=1, jitter=0.25,
                                     rng=random.Random(seed),
                                     clock=_FakeClock())
            breaker.record_failure()
            delays.add(round(breaker.retry_in(), 6))
        assert len(delays) > 1  # a fleet never probes in lockstep


class TestSeeds:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_SEED, "99")
        assert resolve_seed(5) == 5

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(ENV_SEED, "99")
        assert resolve_seed(None, default=7) == 99

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_SEED, raising=False)
        assert resolve_seed(None, default=7) == 7

    def test_replay_hint_names_the_seed(self):
        assert "42" in replay_hint(42)


class TestCoreHealth:
    def test_flaky_does_not_demote_dead(self):
        core = Core(0, RV64GC)
        core.mark_dead()
        core.mark_flaky()
        assert core.health is CoreHealth.DEAD
        assert not core.alive


def _checkpoint_via_kill(core_id=0):
    """Run matmul on an ext core, kill it mid-task, return the pieces."""
    binary = MatMulWorkload(n=6).build("ext")
    core = Core(core_id, RV64GCV)
    execution = run_task_on_core(
        binary, None, core, task_id=1,
        fail_event=FailureEvent(KILL_CORE, after_instructions=150),
    )
    return binary, execution


class TestCheckpoint:
    def test_kill_produces_valid_checkpoint(self):
        _, execution = _checkpoint_via_kill()
        assert execution.core_failure == "dead"
        assert not execution.ok
        ck = execution.checkpoint
        assert ck is not None and ck.valid
        assert ck.instret >= 150 and ck.pool_ext

    def test_resume_on_another_core_completes_correctly(self):
        binary, execution = _checkpoint_via_kill(core_id=0)
        other = Core(1, RV64GCV)
        resumed = run_task_on_core(
            binary, None, other, task_id=1, checkpoint=execution.checkpoint)
        # The workload self-verifies: ok means the matmul result was right
        # even though execution was split across two cores.
        assert resumed.ok and resumed.resumed
        assert resumed.exit_code == 0

    def test_corruption_is_detected_not_trusted(self):
        binary, execution = _checkpoint_via_kill()
        ck = execution.checkpoint
        ck.corrupt(random.Random(0))
        assert not ck.valid
        resumed = run_task_on_core(
            binary, None, Core(1, RV64GCV), task_id=1, checkpoint=ck)
        assert resumed.checkpoint_corrupt
        assert isinstance(resumed.fault, CheckpointCorruptFault)
        assert not resumed.ok

    def test_restore_raises_structured_fault(self):
        binary, execution = _checkpoint_via_kill()
        ck = execution.checkpoint
        ck.corrupt(random.Random(1))
        kernel = Kernel()
        process = make_process(binary)
        cpu = kernel.make_cpu(process, Core(1, RV64GCV))
        with pytest.raises(CheckpointCorruptFault):
            ck.restore(cpu, process)

    def test_digest_covers_registers_and_memory(self):
        _, execution = _checkpoint_via_kill()
        ck = execution.checkpoint
        ck.regs[10] ^= 1
        assert not ck.valid
        ck.regs[10] ^= 1
        assert ck.valid


class TestInjector:
    def test_events_fire_once_by_default(self):
        injector = CoreFailureInjector(
            [FailureEvent(KILL_CORE, core_id=2)], seed=0)
        assert injector.plan_execution(2, 1, "ext") is not None
        assert injector.plan_execution(2, 2, "ext") is None

    def test_flake_count_allows_repeats(self):
        injector = CoreFailureInjector.flake(1, count=2, seed=0)
        assert injector.plan_execution(1, 1) is not None
        assert injector.plan_execution(1, 2) is not None
        assert injector.plan_execution(1, 3) is None

    def test_filters_respect_task_kind(self):
        injector = CoreFailureInjector(
            [FailureEvent(KILL_CORE, core_id=0, task_kind="ext")], seed=0)
        assert injector.plan_execution(0, 1, "base") is None
        assert injector.plan_execution(0, 2, "ext") is not None

    def test_random_depth_is_seeded(self):
        events = [FailureEvent(KILL_CORE, after_instructions=None)]
        a = CoreFailureInjector([FailureEvent(KILL_CORE, after_instructions=None)],
                                seed=3).plan_execution(0, 1)
        b = CoreFailureInjector(events, seed=3).plan_execution(0, 1)
        assert a.after_instructions == b.after_instructions

    def test_drop_and_corrupt_hooks(self):
        _, execution = _checkpoint_via_kill()
        injector = CoreFailureInjector(
            [FailureEvent(DROP_MIGRATION, task_id=7),
             FailureEvent(CORRUPT_CHECKPOINT)], seed=0)
        assert not injector.migration_dropped(1)
        assert injector.migration_dropped(7)
        ck = execution.checkpoint
        assert ck.valid
        injector.filter_checkpoint(ck)
        assert not ck.valid
        assert len(injector.log) == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FailureEvent("segfault-everything")

    def test_des_plan_consumes_failures(self):
        plan = DesFailurePlan.kill_cores([2], at_time=100, seed=0)
        assert plan.check(2, 50) is None     # too early
        assert plan.check(2, 100) == "kill"
        assert plan.check(2, 200) is None    # consumed

    def test_des_fail_fraction_validated(self):
        with pytest.raises(ValueError):
            DesFailurePlan([], fail_fraction=1.5)
