"""Harness wrappers, hetero cost measurement, and openblas model tests."""

import pytest

from repro.harness import (
    run_armore,
    run_chimera,
    run_fam,
    run_native,
    run_safer,
    run_strawman,
)
from repro.isa.extensions import RV64GC, RV64GCV
from repro.workloads.hetero import measure_hetero_costs, run_fig11
from repro.workloads.openblas import _core_split, measure_kernel, run_fig14
from repro.workloads.programs import DotProductWorkload, FibonacciWorkload


@pytest.fixture(scope="module")
def dot_ext():
    return DotProductWorkload(n=16).build("ext")


class TestHarness:
    def test_native(self, dot_ext):
        run = run_native(dot_ext, RV64GCV)
        assert run.ok and run.system == "native"

    def test_chimera_stats_attached(self, dot_ext):
        run = run_chimera(dot_ext, RV64GC)
        assert run.ok
        assert "trampolines" in run.rewrite_stats
        assert "smile_segv_recoveries" in run.runtime_stats

    def test_fam_wrapper(self, dot_ext):
        run = run_fam(dot_ext)
        assert run.ok
        assert run.runtime_stats["migrations"] == 1

    def test_all_rewriters_agree_on_fibonacci(self):
        """A pure-base binary is a no-op for every rewriter."""
        binary = FibonacciWorkload(iterations=100).build("base")
        native = run_native(binary, RV64GC)
        for fn in (run_chimera, run_safer, run_strawman):
            run = fn(binary, RV64GC)
            assert run.ok
            assert abs(run.cycles - native.cycles) <= native.cycles * 0.02


class TestHeteroCosts:
    def test_ext_version_cells(self):
        costs = measure_hetero_costs("ext")
        cells = costs.cells
        # FAM cannot run extension tasks on base cores.
        assert cells["fam"][("ext", False)] is None
        # The 2:2:2:1-ish cost structure (paper's calibration).
        ext_fast = cells["melf"][("ext", True)]
        base_cost = cells["melf"][("base", False)]
        ext_slow = cells["melf"][("ext", False)]
        assert 1.5 <= base_cost / ext_fast <= 3.0
        assert 1.5 <= ext_slow / ext_fast <= 3.0
        # Chimera's downgraded cost tracks MELF's scalar compile.
        assert cells["chimera"][("ext", False)] <= ext_slow * 1.15

    def test_base_version_cells(self):
        costs = measure_hetero_costs("base")
        cells = costs.cells
        # FAM gets no acceleration from upgrade-direction inputs.
        assert cells["fam"][("ext", True)] == cells["fam"][("ext", False)]
        # Chimera's upgraded cost approaches the native vector compile.
        assert cells["chimera"][("ext", True)] <= cells["melf"][("ext", True)] * 1.25

    def test_fig11_rows_complete(self):
        rows = run_fig11("ext", (0.0, 1.0), n_tasks=100)
        assert len(rows) == 2 * 4  # shares x systems
        assert all(r.latency > 0 and r.cpu_time > 0 for r in rows)

    def test_invalid_version(self):
        with pytest.raises(ValueError):
            measure_hetero_costs("avx")


class TestOpenblasModel:
    def test_core_split(self):
        assert _core_split(2, 4, 4) == (1, 1)
        assert _core_split(8, 4, 4) == (4, 4)
        assert _core_split(64, 32, 32) == (32, 32)

    def test_kernel_costs_ordered(self):
        c = measure_kernel("dgemm")
        assert c.native_ext < c.native_scalar
        assert c.chimera_base >= c.native_scalar * 0.9  # downgrade ~= scalar
        assert c.chimera_ext <= c.native_ext * 1.3

    def test_sgemm_vector_cheaper_than_dgemm(self):
        d = measure_kernel("dgemm")
        s = measure_kernel("sgemm")
        assert s.native_ext < d.native_ext
        assert s.native_scalar == d.native_scalar

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            measure_kernel("zgemm")

    def test_fig14_rows(self):
        rows = run_fig14("dgemv", (2, 8), tasks_per_run=64)
        fam_ext = [r for r in rows if r.system == "fam_ext"]
        assert all(r.acceleration_vs_fam_ext == pytest.approx(1.0) for r in fam_ext)
        chim8 = next(r for r in rows if r.system == "chimera" and r.threads == 8)
        assert chim8.acceleration_vs_fam_ext > 1.0
