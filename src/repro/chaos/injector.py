"""Runtime corruption injectors (the adversarial half of the harness).

An :class:`Injector` is a duck-typed hook object the kernel, the
Chimera runtime and the migration-probe manager consult at their most
delicate moments.  Production runs never set one; the chaos harness
installs a concrete injector and asserts that the damage it does
surfaces as a structured :class:`~repro.sim.faults.UnrecoverableFault`
(or, for the survivable scenarios, that recovery still succeeds) —
never as a raw Python traceback and never as silent mis-execution.

Hook points:

* ``on_fault(kernel, process, cpu, fault)`` — kernel dispatch, before
  any handler runs; returning True consumes the fault (models a signal
  delivered ahead of recovery — the fault recurs on resume);
* ``pre_signal(kernel, process, cpu, signum)`` — after the signal frame
  is saved, before the pre-delivery hooks (gp restore) run;
* ``before_recovery(runtime, kernel, process, cpu, fault)`` — the
  Chimera runtime is about to attempt recovery;
* ``after_rewrite(runtime, process, cpu)`` — a lazy runtime rewrite
  just patched code and flushed the decode cache;
* ``on_probe_fire(manager, cpu, addr)`` — a migration probe trapped,
  before the saved bytes are restored and the view switch commits.
"""

from __future__ import annotations

from repro.isa.registers import Reg


class Injector:
    """Base injector: every hook is a no-op.

    ``install`` wires the injector into whichever components a scenario
    uses; components hold a plain ``.injector`` attribute so the sim
    layer never imports this package.
    """

    name = "no-op"

    def install(self, *, kernel=None, runtime=None, probes=None, cpu=None) -> "Injector":
        if kernel is not None:
            kernel.injector = self
        if runtime is not None:
            runtime.injector = self
        if probes is not None:
            probes.injector = self
        if cpu is not None:
            cpu.fault_hook = self.on_cpu_fault
        return self

    # -- hooks (all optional) ---------------------------------------------

    def on_fault(self, kernel, process, cpu, fault):
        return None

    def pre_signal(self, kernel, process, cpu, signum) -> None:
        pass

    def before_recovery(self, runtime, kernel, process, cpu, fault) -> None:
        pass

    def after_rewrite(self, runtime, process, cpu) -> None:
        pass

    def on_probe_fire(self, manager, cpu, addr) -> None:
        pass

    def on_cpu_fault(self, cpu, fault) -> None:
        pass


class PcAssertionInjector(Injector):
    """Not a corruptor: asserts every fault leaving the CPU carries a pc.

    Installed via ``cpu.fault_hook`` in the chaos integration suite so a
    regression in pc propagation fails loudly at the raise site.
    """

    name = "pc-assertion"

    def __init__(self):
        self.checked = 0

    def on_cpu_fault(self, cpu, fault) -> None:
        self.checked += 1
        assert fault.pc is not None, (
            f"{type(fault).__name__} left Cpu.step with pc=None: {fault}"
        )


class DropFaultTableInjector(Injector):
    """Empties the fault-handling table at the first recovery attempt.

    Expected degradation: the SMILE fault can no longer be redirected;
    because it struck a patched region the runtime must raise a
    structured UnrecoverableFault rather than decline silently.
    """

    name = "drop-fault-entries"

    def __init__(self):
        self.dropped = 0

    def before_recovery(self, runtime, kernel, process, cpu, fault) -> None:
        if self.dropped:
            return
        self.dropped = len(runtime.fault_table.entries)
        runtime.fault_table.entries.clear()
        runtime.smile_regs.clear()


class CorruptFaultTableInjector(Injector):
    """Corrupts every fault-table redirect to point at *parcel_addr*.

    With *parcel_addr* aimed at a reserved trampoline parcel (and a
    self-referential entry added for it), each "recovery" lands on the
    parcel, faults again without retiring an instruction, and gets
    "recovered" to the same place — a recovery loop the recovery-depth
    guard must bound and abort.  Without *parcel_addr* the entries point
    back at their own keys, which the runtime must at least surface as
    a structured failure rather than a raw loop.
    """

    name = "corrupt-fault-entry"

    def __init__(self, parcel_addr: int | None = None):
        self.parcel_addr = parcel_addr
        self.corrupted = 0

    def before_recovery(self, runtime, kernel, process, cpu, fault) -> None:
        if self.corrupted:
            return
        entries = runtime.fault_table.entries
        target = self.parcel_addr
        for key in entries:
            entries[key] = target if target is not None else key
        if target is not None:
            entries[target] = target
        self.corrupted = len(entries)


class ClobberGpInjector(Injector):
    """Zeroes gp before the runtime can use it to locate the fault.

    The P1 recovery reads the jalr return address out of gp; with gp
    clobbered the lookup misses, and the runtime must still attribute
    the fault to its patched region (via the faulting jump's pc) and
    kill structurally.
    """

    name = "clobber-gp"

    def __init__(self, value: int = 0):
        self.value = value
        self.fired = 0

    def before_recovery(self, runtime, kernel, process, cpu, fault) -> None:
        if self.fired:
            return
        self.fired = 1
        cpu.set_reg(Reg.GP, self.value)


class SignalMidTrampolineInjector(Injector):
    """Delivers a registered user signal ahead of fault recovery.

    Models a signal arriving while gp is still clobbered mid-trampoline
    (paper Fig. 10): the pre-delivery gp restore must let the handler
    run on the ABI gp, and the original fault recurs and recovers after
    sigreturn.  A survivable scenario: the program must finish correctly.
    """

    name = "signal-mid-trampoline"

    def __init__(self, signum: int):
        self.signum = signum
        self.delivered = 0

    def on_fault(self, kernel, process, cpu, fault):
        if self.delivered or self.signum not in process.signal_handlers:
            return None
        self.delivered = 1
        kernel.deliver_signal(process, cpu, self.signum)
        return True  # fault consumed; it recurs after sigreturn


class CorruptSignalFrameInjector(SignalMidTrampolineInjector):
    """Mid-trampoline signal whose saved frame gets truncated.

    Expected degradation: sigreturn must refuse the mangled frame with
    a structured UnrecoverableFault instead of a ValueError from the
    register-file copy.
    """

    name = "corrupt-signal-frame"

    def pre_signal(self, kernel, process, cpu, signum) -> None:
        frame = process.signal_stack[-1]
        frame.regs = frame.regs[:5]


class StaleDecodeCacheInjector(Injector):
    """Re-inserts pre-rewrite decode-cache entries after a lazy rewrite.

    Models a second hart whose decode cache was not shot down: the
    stale entries make the just-patched pc fault again; the repeated
    rewrite is a no-op, and the runtime must abort structurally instead
    of looping or silently executing stale semantics.
    """

    name = "stale-decode-cache"

    def __init__(self):
        self.restored = 0
        self._snapshot = None

    def before_recovery(self, runtime, kernel, process, cpu, fault) -> None:
        if self._snapshot is None:
            self._snapshot = dict(cpu._dcache)

    def after_rewrite(self, runtime, process, cpu) -> None:
        if self.restored or not self._snapshot:
            return
        for addr, (instr, handler, tag, seg, _version) in self._snapshot.items():
            # Forge the current segment version so the entry looks fresh.
            cpu._dcache[addr] = (instr, handler, tag, seg, seg.version)
        self.restored = len(self._snapshot)


class MigrationCorruptionInjector(Injector):
    """Corrupts the pending migration while its probe is firing.

    Models the §4.3 race window between the probe trap and the view
    commit: the target view name is replaced with garbage, and the
    MMView switch must refuse it structurally (never a KeyError).
    """

    name = "interrupt-migration"

    def __init__(self, bogus: str = "no-such-view"):
        self.bogus = bogus
        self.fired = 0

    def on_probe_fire(self, manager, cpu, addr) -> None:
        if self.fired:
            return
        self.fired = 1
        manager.process.pending_migration = self.bogus


class TrampolineBitrotInjector(Injector):
    """Overwrites a seeded-randomly-chosen SMILE trampoline head with
    zero parcels (canonically illegal on RISC-V) before the run.

    Expected degradation *with self-healing*: the runtime attributes the
    SIGILL to that patch, quarantines it back to the trap-fallback
    encoding, and the workload finishes with correct output — no
    UnrecoverableFault, exactly one rollback.
    """

    name = "trampoline-bitrot"

    def __init__(self, regions, *, seed=None):
        from repro.resilience.seeds import resolve_seed

        smile = [r for r in regions if r[2] in ("smile", "smile-dp")]
        if not smile:
            raise ValueError("no SMILE regions to bitrot")
        import random

        self.target = random.Random(resolve_seed(seed)).choice(smile)
        self.fired = 0

    def corrupt(self, process) -> int:
        """Zero the chosen trampoline head in the live address space."""
        start = self.target[0]
        process.space.patch_code(start, b"\x00\x00\x00\x00")
        self.fired = 1
        return start
