"""Chimera's contribution: CHBP binary patching + runtime mechanisms.

Public entry points:

* :class:`~repro.core.rewriter.ChimeraRewriter` — static rewriting
  (upgrade/downgrade a binary for a target ISA profile);
* :class:`~repro.core.runtime.ChimeraRuntime` — kernel-side fault
  handling that recovers the deterministic faults SMILE raises;
* :class:`~repro.core.mmview.MMViewProcess` — the multi-address-space
  process model used for cross-core migration;
* :class:`~repro.core.scheduler.WorkStealingScheduler` — the
  heterogeneous task scheduler used by the evaluation.
"""

from repro.core.rewriter import ChimeraRewriter, RewriteResult
from repro.core.runtime import ChimeraRuntime
from repro.core.smile import SmileTrampoline
from repro.core.fault_table import FaultTable

__all__ = [
    "ChimeraRewriter",
    "RewriteResult",
    "ChimeraRuntime",
    "SmileTrampoline",
    "FaultTable",
]
