"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.machine import Core, Kernel


@pytest.fixture
def base_core() -> Core:
    """An RV64GC core (no vector extension)."""
    return Core(0, RV64GC)


@pytest.fixture
def ext_core() -> Core:
    """An RV64GCV core."""
    return Core(1, RV64GCV)


@pytest.fixture
def kernel() -> Kernel:
    return Kernel()


def build_program(text: str, data: dict[str, list[int]] | None = None, name: str = "t"):
    """Convenience: assemble a program with named 64-bit data arrays."""
    builder = ProgramBuilder(name)
    for key, values in (data or {}).items():
        builder.add_words(key, values)
    builder.set_text(text)
    return builder.build()


def run_program(text: str, data: dict[str, list[int]] | None = None, *,
                core: Core | None = None, max_instructions: int = 5_000_000):
    """Assemble, load and run; returns (binary, process, result)."""
    binary = build_program(text, data)
    process = make_process(binary)
    result = Kernel().run(process, core or Core(0, RV64GCV),
                          max_instructions=max_instructions)
    return binary, process, result


EXIT0 = """
    li a7, 93
    li a0, 0
    ecall
"""
