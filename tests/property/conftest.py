"""Property-test plumbing: print the fuzz seed on every failure.

The differential fuzz suite seeds Hypothesis from ``REPRO_FUZZ_SEED``
(default 0).  When a property test fails, the seed is attached to the
pytest report so the exact generation sequence can be replayed:

    REPRO_FUZZ_SEED=<seed> PYTHONPATH=src python -m pytest tests/property -q
"""

import os

import pytest


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        fuzz_seed = os.environ.get("REPRO_FUZZ_SEED", "0")
        report.sections.append((
            "fuzz seed",
            f"REPRO_FUZZ_SEED={fuzz_seed} — replay this exact generation "
            f"sequence with: REPRO_FUZZ_SEED={fuzz_seed} PYTHONPATH=src "
            "python -m pytest tests/property -q",
        ))
