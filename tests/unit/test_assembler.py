"""Assembler tests: syntax, labels, pseudo-instructions, errors."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.assembler import Assembler, AssemblyError, assemble
from repro.isa.decoding import decode
from repro.isa.disassembler import disassemble


class TestBasics:
    def test_simple_program_size(self):
        p = assemble("addi a0, a0, 1\nadd a1, a1, a0\n")
        assert len(p.code) == 8

    def test_comments_and_blanks_ignored(self):
        p = assemble("# leading comment\n\naddi a0, a0, 1  # trailing\n")
        assert len(p.code) == 4

    def test_labels_resolve_absolute(self):
        p = assemble("start:\nnop\nend:\nnop\n", base=0x100)
        assert p.labels == {"start": 0x100, "end": 0x104}

    def test_label_same_line(self):
        p = assemble("start: addi a0, a0, 1\n")
        assert p.labels["start"] == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a:\nnop\na:\nnop\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate a0, a1\n")

    def test_unknown_register(self):
        with pytest.raises(AssemblyError):
            assemble("addi q0, a0, 1\n")

    def test_memory_operand_forms(self):
        p = assemble("lw t0, 8(sp)\nsw t0, -4(s0)\nld t1, (a0)\n")
        instrs = disassemble(p.code)
        assert instrs[0].imm == 8
        assert instrs[1].imm == -4
        assert instrs[2].imm == 0


class TestBranchesAndJumps:
    def test_backward_branch(self):
        p = assemble("loop:\naddi a0, a0, -1\nbnez a0, loop\n")
        branch = disassemble(p.code)[1]
        assert branch.imm == -4

    def test_forward_branch(self):
        p = assemble("beq a0, a1, out\nnop\nout:\nnop\n")
        assert disassemble(p.code)[0].imm == 8

    def test_jal_with_and_without_rd(self):
        p = assemble("f:\njal f\njal zero, f\n")
        i1, i2 = disassemble(p.code)
        assert i1.rd == 1 and i2.rd == 0

    def test_j_and_ret(self):
        p = assemble("x:\nj x\nret\n")
        i1, i2 = disassemble(p.code)
        assert i1.mnemonic == "jal" and i1.rd == 0
        assert i2.mnemonic == "jalr" and i2.rd == 0 and i2.rs1 == 1

    def test_call_uses_ra(self):
        p = assemble("f:\ncall f\n")
        assert disassemble(p.code)[0].rd == 1

    def test_compressed_branch_to_label(self):
        p = assemble("top:\nc.bnez a0, top\nc.j top\n")
        i1, i2 = disassemble(p.code)
        assert i1.imm == 0 and i2.imm == -2


class TestPseudoExpansion:
    @given(st.integers(min_value=-2048, max_value=2047))
    def test_li_small(self, value):
        p = assemble(f"li a0, {value}\n")
        assert len(p.code) == 4

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_li_any_value_assembles(self, value):
        assemble(f"li a0, {value}\n")

    def test_la_is_pc_relative(self):
        p = assemble("la a0, target\nnop\ntarget:\nnop\n", base=0x4000)
        auipc, addi = disassemble(p.code, 0x4000)[:2]
        assert auipc.mnemonic == "auipc"
        from repro.isa.fields import sign_extend
        computed = 0x4000 + sign_extend(auipc.imm << 12, 32) + addi.imm
        assert computed == p.labels["target"]

    def test_mv_not_neg_seqz_snez(self):
        p = assemble("mv a0, a1\nnot a2, a3\nneg a4, a5\nseqz a6, a7\nsnez t0, t1\n")
        mnems = [i.mnemonic for i in disassemble(p.code)]
        assert mnems == ["addi", "xori", "sub", "sltiu", "sltu"]

    def test_nop(self):
        p = assemble("nop\n")
        i = disassemble(p.code)[0]
        assert (i.mnemonic, i.rd, i.rs1, i.imm) == ("addi", 0, 0, 0)


class TestDirectives:
    def test_align_pads(self):
        p = assemble("c.nop\n.align 3\nnop\n")
        assert p.labels == {}
        assert len(p.code) == 8 + 4

    def test_space(self):
        p = assemble(".space 6\nnop\n")
        assert len(p.code) == 10

    def test_data_words(self):
        p = assemble(".word 0x11223344\n.dword 1\n.byte 1, 2\n.half 0x5566\n")
        assert p.code[:4] == bytes([0x44, 0x33, 0x22, 0x11])
        assert len(p.code) == 4 + 8 + 2 + 2

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError):
            assemble(".bogus 1\n")


class TestVectorSyntax:
    def test_vsetvli_sew_names(self):
        p = assemble("vsetvli t0, a0, e64\nvsetvli t1, a1, e32\n")
        i1, i2 = disassemble(p.code)
        from repro.isa.encoding import decode_vtype
        assert decode_vtype(i1.imm) == 64
        assert decode_vtype(i2.imm) == 32

    def test_vsetvli_raw_vtype(self):
        p = assemble("vsetvli t0, a0, 24\n")
        assert disassemble(p.code)[0].imm == 24

    def test_vector_mem_requires_zero_offset(self):
        with pytest.raises(AssemblyError):
            assemble("vle64.v v1, 8(a0)\n")

    def test_vv_operand_order(self):
        p = assemble("vsub.vv v3, v1, v2\n")
        i = disassemble(p.code)[0]
        assert (i.vd, i.vs2, i.vs1) == (3, 1, 2)


class TestLiSemantics:
    """li must materialize the exact value (checked via the CPU)."""

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_li_materializes_exact_value(self, value):
        from repro.isa.extensions import RV64GCV
        from repro.sim.cpu import Cpu
        from repro.sim.memory import AddressSpace
        from repro.elf.binary import Perm

        p = assemble(f"li a0, {value}\nebreak\n", base=0x1000)
        space = AddressSpace()
        space.map(".text", 0x1000, bytearray(p.code), Perm.RX)
        cpu = Cpu(space, RV64GCV)
        cpu.pc = 0x1000
        from repro.sim.faults import BreakpointTrap
        try:
            for _ in range(32):
                cpu.step()
        except BreakpointTrap:
            pass
        assert cpu.get_reg(10) == value & (2**64 - 1)
