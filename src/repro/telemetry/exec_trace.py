"""Execution tracing and profiling hooks for the simulator.

Attach a tracer to a :class:`~repro.sim.cpu.Cpu` (``cpu.tracer = ...``)
to observe retired instructions.  Used by the debugging examples, by
tests that need to assert *which* code actually ran (e.g. "the normal
path executed zero trap instructions"), and by the telemetry layer's
:class:`InstructionClassTally`, which feeds the
``cpu.instret{class=...}`` metric series.

This module absorbed the former ``repro.sim.trace`` (which remains as a
backward-compatible shim).  Tracers are deliberately simple callables;
combine them with :class:`MultiTracer` when several views are needed at
once.  None of them is attached unless something asks — an untraced CPU
pays nothing per retired instruction.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable

from repro.isa.extensions import Extension
from repro.isa.instructions import Instruction


class InstructionTrace:
    """Ring buffer of the last *capacity* retired instructions."""

    def __init__(self, capacity: int = 256):
        self.buffer: deque[Instruction] = deque(maxlen=capacity)

    def __call__(self, cpu, instr: Instruction) -> None:
        self.buffer.append(instr)

    def last(self, n: int = 10) -> list[Instruction]:
        """The most recent *n* instructions, oldest first."""
        items = list(self.buffer)
        return items[-n:]

    def format(self, n: int = 10) -> str:
        """Human-readable tail of the trace."""
        from repro.isa.disassembler import format_instruction

        return "\n".join(format_instruction(i) for i in self.last(n))


class HotspotProfile:
    """Execution counts per instruction address."""

    def __init__(self):
        self.counts: Counter[int] = Counter()

    def __call__(self, cpu, instr: Instruction) -> None:
        self.counts[instr.addr] += 1

    def hottest(self, n: int = 10) -> list[tuple[int, int]]:
        """(address, count) pairs, hottest first."""
        return self.counts.most_common(n)

    def count_in_range(self, lo: int, hi: int) -> int:
        """Total executions whose address lies in [lo, hi)."""
        return sum(c for a, c in self.counts.items() if lo <= a < hi)


class RegionProfile:
    """Cycle/instruction attribution to named address regions.

    Feed it (name, lo, hi) regions — e.g. original text vs
    ``.chimera.text`` — and it answers "how much execution happened in
    the rewriter-generated code?"
    """

    def __init__(self, regions: list[tuple[str, int, int]]):
        self.regions = regions
        self.instructions: Counter[str] = Counter()

    def __call__(self, cpu, instr: Instruction) -> None:
        addr = instr.addr
        for name, lo, hi in self.regions:
            if lo <= addr < hi:
                self.instructions[name] += 1
                return
        self.instructions["<other>"] += 1

    def share(self, name: str) -> float:
        total = sum(self.instructions.values())
        return self.instructions.get(name, 0) / total if total else 0.0


class BranchProfile:
    """Taken/not-taken counts per branch site."""

    def __init__(self):
        self.executed: Counter[int] = Counter()

    def __call__(self, cpu, instr: Instruction) -> None:
        if instr.is_branch() or instr.is_jump():
            self.executed[instr.addr] += 1


@dataclass
class MultiTracer:
    """Fan a step event out to several tracers."""

    tracers: list[Callable] = field(default_factory=list)

    def __call__(self, cpu, instr: Instruction) -> None:
        for tracer in self.tracers:
            tracer(cpu, instr)


def attach(cpu, *tracers: Callable) -> Callable:
    """Attach one or more tracers to *cpu*; returns the installed hook."""
    hook = tracers[0] if len(tracers) == 1 else MultiTracer(list(tracers))
    cpu.tracer = hook
    return hook


# -- instruction classification (cpu.instret{class=...}) ---------------------

#: Extension -> metric label for the instret-by-class series.
_EXTENSION_CLASSES = {
    Extension.V: "vector",
    Extension.ZBA: "zba",
    Extension.C: "compressed",
    Extension.M: "muldiv",
}


def instruction_class(instr: Instruction) -> str:
    """The ``class=`` label for one instruction.

    Control flow first (branch/jump), then the extension buckets the
    cost model and Table 3 care about, then plain base-ISA.
    """
    cls = _EXTENSION_CLASSES.get(instr.extension)
    if cls is not None:
        return cls
    if instr.is_branch():
        return "branch"
    if instr.is_jump():
        return "jump"
    return "base"


class InstructionClassTally:
    """Retired-instruction counts bucketed by :func:`instruction_class`."""

    def __init__(self):
        self.counts: Counter[str] = Counter()

    def __call__(self, cpu, instr: Instruction) -> None:
        self.counts[instruction_class(instr)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())


def attach_tally(cpu) -> tuple[InstructionClassTally, Callable]:
    """Chain an :class:`InstructionClassTally` onto *cpu*'s tracer slot.

    Returns ``(tally, previous_tracer)`` so the caller can restore the
    previous hook when the instrumented region ends — keeping repeated
    ``Kernel.run`` calls on one CPU from stacking tallies.  Also flips
    ``cpu.count_decode`` on so cold decodes show up in the counters.
    """
    previous = cpu.tracer
    tally = InstructionClassTally()
    cpu.tracer = tally if previous is None else MultiTracer([previous, tally])
    cpu.count_decode = True
    return tally, previous
