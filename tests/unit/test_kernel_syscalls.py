"""Simulated kernel: syscall servicing, fault dispatch, run loop."""

import pytest

from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.faults import IllegalInstructionFault, SimulationLimitExceeded
from repro.sim.machine import Core, Kernel, Machine


def run(text, data=None, core=None, kernel=None, **kw):
    b = ProgramBuilder("k")
    for k, v in (data or {}).items():
        b.add_words(k, v)
    b.set_text(text)
    binary = b.build()
    proc = make_process(binary)
    result = (kernel or Kernel()).run(proc, core or Core(0, RV64GCV), **kw)
    return binary, proc, result


class TestSyscalls:
    def test_exit_code(self):
        _, _, res = run("_start:\nli a7, 93\nli a0, 7\necall\n")
        assert res.exit_code == 7

    def test_write_collects_output(self):
        b = ProgramBuilder("w")
        msg = b.add_data("msg", b"hello\n")
        b.set_text(f"""
_start:
    li a7, 64
    li a0, 1
    li a1, {msg}
    li a2, 6
    ecall
    li a7, 93
    li a0, 0
    ecall
""")
        binary = b.build()
        proc = make_process(binary)
        res = Kernel().run(proc, Core(0, RV64GCV))
        assert res.output == b"hello\n"
        assert res.ok

    def test_unknown_syscall_returns_enosys(self):
        _, _, res = run("""
_start:
    li a7, 4095
    ecall
    li a7, 93
    mv a0, zero
    ecall
""")
        assert res.ok  # -ENOSYS returned, program continues

    def test_yield_is_noop(self):
        _, _, res = run("""
_start:
    li a7, 124
    ecall
    li a7, 93
    li a0, 0
    ecall
""")
        assert res.ok


class TestRunLoop:
    def test_instruction_budget(self):
        _, _, res = run("_start:\nj _start\n", max_instructions=1000)
        assert isinstance(res.fault, SimulationLimitExceeded)
        assert res.instret <= 1001

    def test_unhandled_fault_ends_run(self):
        _, _, res = run("_start:\nvsetvli t0, a0, e64\n", core=Core(0, RV64GC))
        assert isinstance(res.fault, IllegalInstructionFault)
        assert res.exit_code == -1

    def test_fault_handler_chain_order(self):
        calls = []

        def first(kernel, proc, cpu, fault):
            calls.append("first")
            return False

        def second(kernel, proc, cpu, fault):
            calls.append("second")
            return False

        kernel = Kernel()
        kernel.register_fault_handler(second)
        kernel.register_fault_handler(first, priority=True)
        run("_start:\nvsetvli t0, a0, e64\n", core=Core(0, RV64GC), kernel=kernel)
        assert calls == ["first", "second"]

    def test_handler_can_recover(self):
        def skip_instruction(kernel, proc, cpu, fault):
            cpu.pc += 4
            return True

        kernel = Kernel()
        kernel.register_fault_handler(skip_instruction)
        _, _, res = run(
            "_start:\nvsetvli t0, a0, e64\nli a7, 93\nli a0, 0\necall\n",
            core=Core(0, RV64GC), kernel=kernel,
        )
        assert res.ok

    def test_counters_propagated(self):
        _, _, res = run("_start:\nli a7, 93\nli a0, 0\necall\n")
        assert res.counters.get("syscalls") == 1


class TestMachine:
    def test_isax_machine_partition(self):
        m = Machine.isax(4, 4)
        assert len(m.base_cores) == 4
        assert len(m.extension_cores) == 4
        assert all(not c.is_extension_core for c in m.base_cores)
        assert all(c.is_extension_core for c in m.extension_cores)

    def test_core_str(self):
        m = Machine.isax(1, 1)
        assert "rv64gc" in str(m.cores[0])
        assert "rv64gcv" in str(m.cores[1])
