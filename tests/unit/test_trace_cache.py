"""Trace tier: equivalence with the lower tiers, hot-block profiling,
guard side exits, and the `invalidate_code` edge cases from the
two-tier invalidation contract — ranges that split a trace mid-chain,
overlap only a successor block, or land between two traces sharing a
block must evict exactly the overlapping traces and revalidate the
survivors."""

import pytest

from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.encoding import encode
from repro.isa.extensions import PROFILES
from repro.isa.instructions import Instruction
from repro.sim.faults import SimFault, SimulationLimitExceeded
from repro.sim.machine import Core, Kernel
from repro.workloads.programs import FibonacciWorkload

RV64GC = PROFILES["rv64gc"]


def _loop_binary(iterations=40):
    b = ProgramBuilder("trace-loop")
    b.set_text(f"""
_start:
    li a0, 0
    li t0, {iterations}
loop:
    addi a0, a0, 1
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    ecall
""")
    return b.build()


def _shared_block_binary(iterations=8):
    """Two hot loops whose traces both chain through one shared block.

    Each loop body jumps into ``shared`` which returns through an
    indirect jump (``jr t1``), so the recorder chains loop body →
    shared → resume into one looping trace per phase — two traces
    whose ranges overlap on exactly the ``shared`` block."""
    b = ProgramBuilder("trace-shared")
    b.set_text(f"""
_start:
    li t0, {iterations}
    li a0, 0
    li a1, 0
    li a2, 0
    la t1, back_a
loop_a:
    addi a0, a0, 1
    j shared
back_a:
    addi t0, t0, -1
    bnez t0, loop_a
    li t0, {iterations}
    la t1, back_b
loop_b:
    addi a1, a1, 1
    j shared
back_b:
    addi t0, t0, -1
    bnez t0, loop_b
    li a7, 93
    ecall
shared:
    addi a2, a2, 1
    jr t1
""")
    return b.build()


def _run(binary, **kernel_kwargs):
    kernel = Kernel(**kernel_kwargs)
    return kernel.run(make_process(binary), Core(0, RV64GC))


def _make_cpu(binary, *, trace_threshold=1, **kernel_kwargs):
    kernel = Kernel(trace_threshold=trace_threshold, **kernel_kwargs)
    process = make_process(binary)
    return kernel.make_cpu(process, Core(0, RV64GC)), process


def _trace_over(cpu, addr):
    """Traces whose registered ranges cover *addr*."""
    return [pc for pc, t in cpu._tcache.items()
            if any(s <= addr < e for _sg, _v, s, e in t.ranges)]


class TestEquivalence:
    def test_trace_matches_interpreter_and_block_tier(self):
        binary = FibonacciWorkload(iterations=30).build("base")
        step = _run(FibonacciWorkload(iterations=30).build("base"),
                    block_cache=False)
        block = _run(FibonacciWorkload(iterations=30).build("base"),
                     trace_cache=False)
        trace = _run(binary, trace_threshold=1)
        assert step.exit_code == block.exit_code == trace.exit_code == 0
        assert step.instret == block.instret == trace.instret
        assert step.cycles == block.cycles == trace.cycles
        assert step.output == block.output == trace.output
        assert trace.counters.get("trace_cache_hits", 0) > 0
        assert trace.counters.get("trace_instret", 0) > 0
        assert trace.counters.get("traces_compiled", 0) > 0

    def test_interpreted_traces_match_compiled(self):
        binary = _shared_block_binary()
        cpu_c, _ = _make_cpu(binary)
        cpu_i, _ = _make_cpu(_shared_block_binary())
        cpu_i.trace_compile = False
        for cpu in (cpu_c, cpu_i):
            with pytest.raises(SimFault):  # runs to the exit ecall
                cpu.run(max_instructions=10_000)
        assert cpu_i.instret == cpu_c.instret
        assert cpu_i.cycles == cpu_c.cycles
        assert cpu_i.regs == cpu_c.regs
        assert cpu_i.counters["trace_instret"] > 0
        assert all(t.fn is None for t in cpu_i._tcache.values())
        assert all(t.fn is not None for t in cpu_c._tcache.values())

    def test_no_trace_cache_reports_no_trace_counters(self):
        result = _run(FibonacciWorkload(iterations=30).build("base"),
                      trace_cache=False)
        assert result.counters.get("trace_cache_hits", 0) == 0
        assert result.counters.get("trace_instret", 0) == 0
        assert result.counters.get("traces_compiled", 0) == 0

    def test_step_hook_forces_fallback(self):
        binary = _loop_binary()
        kernel = Kernel(trace_threshold=1)
        process = make_process(binary)
        cpu = kernel.make_cpu(process, Core(0, RV64GC))
        seen = []
        cpu.step_hook = lambda c: seen.append(c.pc)
        kernel.run(process, Core(0, RV64GC), cpu=cpu)
        assert seen
        assert cpu.counters.get("trace_instret", 0) == 0
        assert not cpu._tcache

    def test_budget_cut_mid_trace_accounts_exactly(self):
        """A budget expiring mid-pass must leave instret == budget and
        the same architectural state as pure stepping."""
        for budget in (7, 23, 48, 91):
            cpu_t, _ = _make_cpu(_loop_binary())
            cpu_s, _ = _make_cpu(_loop_binary(), block_cache=False)
            for cpu in (cpu_t, cpu_s):
                with pytest.raises(SimulationLimitExceeded):
                    cpu.run(max_instructions=budget)
            assert cpu_t.instret == cpu_s.instret == budget
            assert cpu_t.pc == cpu_s.pc
            assert cpu_t.cycles == cpu_s.cycles
            assert cpu_t.regs == cpu_s.regs


class TestHotBlocks:
    def test_histogram_reports_loop_entry_hottest(self):
        binary = _loop_binary(iterations=60)
        cpu, _ = _make_cpu(binary, trace_threshold=4)
        with pytest.raises(SimFault):
            cpu.run(max_instructions=10_000)
        hot = cpu.hot_blocks(top=1)
        assert hot
        loop_pc = binary.symbol_addr("loop")
        assert hot[0][0] == loop_pc
        # Counts keep accumulating after trace promotion: the loop runs
        # 60 iterations, far past the threshold of 4.
        assert hot[0][1] > 4

    def test_top_n_limits_the_list(self):
        cpu, _ = _make_cpu(_shared_block_binary())
        with pytest.raises(SimFault):
            cpu.run(max_instructions=10_000)
        assert len(cpu.hot_blocks(top=1)) == 1
        assert len(cpu.hot_blocks()) >= len(cpu.hot_blocks(top=1))


class TestGuardSideExits:
    def test_flip_flop_branch_side_exits_with_exact_state(self):
        b = ProgramBuilder("trace-flip")
        b.set_text("""
_start:
    li a0, 0
    li a1, 0
    li t0, 31
top:
    andi t1, t0, 1
    beqz t1, even
    addi a0, a0, 1
    j join
even:
    addi a1, a1, 1
join:
    addi t0, t0, -1
    bnez t0, top
    li a7, 93
    ecall
""")
        binary = b.build()
        trace = _run(binary, trace_threshold=1)
        step = _run(binary, block_cache=False)
        assert trace.counters.get("trace_side_exits", 0) > 0
        assert trace.instret == step.instret
        assert trace.cycles == step.cycles


class TestInvalidation:
    def _hot_cpu(self, binary):
        cpu, process = _make_cpu(binary)
        with pytest.raises(SimFault):  # runs to the exit ecall
            cpu.run(max_instructions=10_000)
        return cpu, process

    def test_two_traces_share_the_shared_block(self):
        binary = _shared_block_binary()
        cpu, _ = self._hot_cpu(binary)
        # One looping trace per phase (entries fall wherever the first
        # repeated block dispatch happened), both covering ``shared``.
        assert len(cpu._tcache) == 2
        shared = binary.symbol_addr("shared")
        assert sorted(_trace_over(cpu, shared)) == sorted(cpu._tcache)

    def test_invalidating_shared_successor_block_evicts_both(self):
        """The range overlaps only a successor block of each trace —
        neither entry pc — yet both must go."""
        binary = _shared_block_binary()
        cpu, process = self._hot_cpu(binary)
        shared = binary.symbol_addr("shared")
        before = cpu.counters.get("traces_invalidated", 0)
        process.space.patch_code(
            shared, encode(Instruction("addi", rd=12, rs1=12, imm=2)))
        cpu.invalidate_code(shared, 4)
        assert not cpu._tcache
        assert cpu.counters["traces_invalidated"] == before + 2

    def test_invalidation_between_traces_evicts_exactly_overlapping(self):
        """A range inside phase A's loop but outside trace B: exactly
        trace A is evicted, B survives revalidated against the bumped
        segment version."""
        binary = _shared_block_binary()
        cpu, process = self._hot_cpu(binary)
        back_a = binary.symbol_addr("back_a")
        overlapping = _trace_over(cpu, back_a)
        survivors = [pc for pc in cpu._tcache if pc not in overlapping]
        assert overlapping and survivors
        seg = process.space.fetch_segment(back_a)
        process.space.patch_code(
            back_a, encode(Instruction("addi", rd=5, rs1=5, imm=-2)))
        cpu.invalidate_code(back_a, 4)
        assert sorted(cpu._tcache) == sorted(survivors)
        # The survivors were revalidated against the bumped version:
        # they still dispatch (no eviction) on the next run.
        for pc in survivors:
            assert all(v == seg.version for s, v in
                       cpu._tcache[pc].versions if s is seg)

    def test_range_splitting_trace_mid_chain_evicts_it(self):
        """The invalidated range covers a mid-chain block of phase B's
        trace — not its entry — and must still evict it, leaving the
        non-overlapping trace alone."""
        binary = _shared_block_binary()
        cpu, process = self._hot_cpu(binary)
        loop_b = binary.symbol_addr("loop_b")
        overlapping = _trace_over(cpu, loop_b)
        assert overlapping and loop_b not in overlapping  # mid-chain
        survivors = [pc for pc in cpu._tcache if pc not in overlapping]
        assert survivors
        process.space.patch_code(
            loop_b, encode(Instruction("addi", rd=11, rs1=11, imm=2)))
        cpu.invalidate_code(loop_b, 4)
        assert sorted(cpu._tcache) == sorted(survivors)

    def test_bitrot_version_bump_alone_invalidates_trace(self):
        """patch_code with no invalidate_code call (the bitrot injector's
        move): the version check at dispatch must catch it — zero stale
        executions."""
        binary = _loop_binary(iterations=40)
        kernel = Kernel(trace_threshold=2)
        process = make_process(binary)
        cpu = kernel.make_cpu(process, Core(0, RV64GC))
        # Run long enough for the loop trace to form and execute.
        with pytest.raises(SimulationLimitExceeded):
            cpu.run(max_instructions=32)
        loop_pc = binary.symbol_addr("loop")
        assert loop_pc in cpu._tcache
        done = cpu.get_reg(10)
        remaining = 40 - done
        # Patch the increment inside the traced loop to add 2.
        process.space.patch_code(
            loop_pc, encode(Instruction("addi", rd=10, rs1=10, imm=2)))
        with pytest.raises(SimFault):  # runs to the exit ecall
            cpu.run(max_instructions=10_000)
        assert cpu.get_reg(10) == done + 2 * remaining

    def test_reheated_block_retraces_after_invalidation(self):
        """After eviction the entry is still hot; the next block-cache
        dispatch may re-record, and the new trace sees the new bytes."""
        binary = _loop_binary(iterations=60)
        cpu, process = self._hot_cpu(binary)
        loop_pc = binary.symbol_addr("loop")
        assert loop_pc in cpu._tcache
        process.space.patch_code(
            loop_pc, encode(Instruction("addi", rd=10, rs1=10, imm=3)))
        cpu.invalidate_code(loop_pc, 4)
        assert loop_pc not in cpu._tcache
        cpu.pc = binary.entry
        cpu.set_reg(10, 0)
        with pytest.raises(SimFault):
            cpu.run(max_instructions=10_000)
        assert cpu.get_reg(10) == 3 * 60
        assert loop_pc in cpu._tcache  # re-recorded over the new bytes

    def test_flush_decode_cache_drops_traces_and_profile(self):
        binary = _loop_binary()
        cpu, _ = self._hot_cpu(binary)
        assert cpu._tcache and cpu._hot_counts
        cpu.flush_decode_cache()
        assert not cpu._tcache
        assert not cpu._hot_counts
        assert not cpu._trace_attempts
