"""Target-instruction generation (paper §4.1).

Downgrade: translate extension instructions (RVV subset, Zba) into
semantically equivalent base-ISA sequences.  Two register problems are
handled exactly as the paper describes:

* **extra base registers** — scalar scratch registers are stack-saved
  before and restored after the computation, first-in last-out;
* **simulated extension registers** — vector state (v0..v31 images, vl,
  sew) lives in a dedicated RW data section (``.chimera.vregs``) of the
  rewritten binary; vector-register accesses become memory accesses to
  that region, so the computation context survives on cores without the
  extension and across migrations.

Upgrade: fuse ``slli+add`` pairs into Zba ``shNadd``, and vectorize the
two canonical element-wise / reduction loop idioms the workloads'
"compiler" emits (:mod:`repro.core.upgrade`).

Templates are emitted as assembly text and assembled by the patcher at
the target block's final address; QEMU TCG plays this role in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.isa.encoding import decode_vtype
from repro.isa.instructions import Instruction
from repro.isa.registers import Reg, reg_name
from repro.telemetry import current as telemetry_current
from repro.telemetry.exec_trace import instruction_class

#: Byte offsets inside the .chimera.vregs region.
VREG_SIZE = 32          # one 256-bit register image
VL_OFF = 32 * VREG_SIZE
SEW_OFF = VL_OFF + 8
VREGS_REGION_SIZE = SEW_OFF + 8

#: Scratch-register priority order (all caller-saved).
_SCRATCH_POOL: tuple[int, ...] = tuple(
    int(r) for r in (Reg.T0, Reg.T1, Reg.T2, Reg.T3, Reg.T4, Reg.T5,
                     Reg.T6, Reg.A7, Reg.A6, Reg.A5, Reg.A4, Reg.A3)
)


class TranslationError(ValueError):
    """No downgrade template exists for an instruction."""


@dataclass
class TranslationContext:
    """Addresses and state the templates need."""

    vregs_base: int
    gp_value: int
    vlen: int = 256

    def vreg_off(self, v: int) -> int:
        """Offset of v*v*'s image inside the region."""
        return v * VREG_SIZE


def pick_scratch(exclude: set[int], count: int) -> list[int]:
    """Pick *count* scratch registers avoiding *exclude* (and x0/sp/gp/tp)."""
    out = [r for r in _SCRATCH_POOL if r not in exclude]
    if len(out) < count:
        raise TranslationError(f"cannot find {count} scratch registers")
    return out[:count]


class _LabelFactory:
    """Unique local labels across one target block."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.n = 0

    def __call__(self, hint: str) -> str:
        self.n += 1
        return f".L{self.prefix}_{hint}{self.n}"


class Translator:
    """Emit downgrade templates as assembly text.

    ``mode="empty"`` reproduces the evaluation's *empty patching* (§6.2):
    the "translation" replays the source instruction verbatim, isolating
    pure rewriting overhead.
    """

    def __init__(self, ctx: TranslationContext, mode: str = "full"):
        if mode not in ("full", "empty"):
            raise ValueError(f"unknown translation mode {mode!r}")
        self.ctx = ctx
        self.mode = mode
        self._block_counter = 0
        self._probing = False

    # -- public ---------------------------------------------------------

    def translate(self, instr: Instruction) -> tuple[str, list[int]]:
        """Return (asm text, scratch registers used) for *instr*.

        The text includes the FILO stack save/restore of the scratch
        registers; the caller wraps it with gp-restore and trampolines.
        """
        telemetry = telemetry_current()
        if telemetry.enabled and not self._probing:
            telemetry.metrics.inc(
                "translate.instructions",
                mode=self.mode,
                **{"class": instruction_class(instr)},
            )
        self._block_counter += 1
        labels = _LabelFactory(f"t{self._block_counter}")
        if self.mode == "empty":
            return self._emit_verbatim(instr), []
        mnem = instr.mnemonic
        if mnem in ("sh1add", "sh2add", "sh3add"):
            return self._emit_zba(instr)
        if mnem == "vsetvli":
            return self._emit_vsetvli(instr, labels)
        if mnem in ("vle32.v", "vle64.v", "vse32.v", "vse64.v"):
            return self._emit_vmem(instr, labels)
        if mnem in ("vadd.vv", "vsub.vv", "vmul.vv", "vand.vv", "vor.vv",
                    "vxor.vv", "vsll.vv", "vsrl.vv", "vsra.vv"):
            return self._emit_varith_vv(instr, labels)
        if mnem in ("vmin.vv", "vmax.vv", "vminu.vv", "vmaxu.vv"):
            return self._emit_vminmax(instr, labels)
        if mnem == "vmacc.vv":
            return self._emit_vmacc(instr, labels)
        if mnem in ("vadd.vx", "vsub.vx", "vmul.vx", "vsll.vx", "vsrl.vx", "vsra.vx"):
            return self._emit_vadd_vx(instr, labels)
        if mnem == "vadd.vi":
            return self._emit_vadd_vi(instr, labels)
        if mnem == "vmv.x.s":
            return self._emit_vmv_x_s(instr, labels)
        if mnem in ("vmv.v.x", "vmv.v.i"):
            return self._emit_vmv(instr, labels)
        if mnem == "vredsum.vs":
            return self._emit_vredsum(instr, labels)
        raise TranslationError(f"no downgrade template for {mnem}")

    def can_translate(self, instr: Instruction) -> bool:
        """True if a downgrade template exists for *instr*."""
        self._probing = True  # capability probe, not a real translation
        try:
            self.translate(instr)
            return True
        except TranslationError:
            return False
        finally:
            self._probing = False

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _frame_size(scratch: list[int]) -> int:
        return (len(scratch) * 8 + 15) & ~15  # keep sp 16-aligned

    @classmethod
    def _save_restore(cls, scratch: list[int]) -> tuple[str, str]:
        """FILO stack save/restore blocks for *scratch* registers."""
        if not scratch:
            return "", ""
        frame = cls._frame_size(scratch)
        save = [f"addi sp, sp, -{frame}"]
        restore = []
        for i, reg in enumerate(scratch):
            save.append(f"sd {reg_name(reg)}, {i * 8}(sp)")
            restore.append(f"ld {reg_name(reg)}, {i * 8}(sp)")
        restore.reverse()  # first-in, last-out (paper §4.1)
        restore.append(f"addi sp, sp, {frame}")
        return "\n".join(save), "\n".join(restore)

    @classmethod
    def _read_source_reg(cls, dst: int, src: int, scratch: list[int]) -> str:
        """Copy source operand *src* into scratch *dst*.

        The template body runs after the scratch save moved ``sp`` down
        by the frame size; a source operand that *is* ``sp`` must be
        compensated or the translated code would see the wrong pointer.
        """
        if src == int(Reg.SP):
            return f"addi {reg_name(dst)}, sp, {cls._frame_size(scratch)}"
        return f"mv {reg_name(dst)}, {reg_name(src)}"

    def _emit_verbatim(self, instr: Instruction) -> str:
        """Empty-patching body: the source instruction itself."""
        from repro.isa.disassembler import format_instruction

        clone = instr.copy()
        clone.addr = None
        return format_instruction(clone)

    # -- Zba -------------------------------------------------------------

    def _emit_zba(self, instr: Instruction) -> tuple[str, list[int]]:
        shift = {"sh1add": 1, "sh2add": 2, "sh3add": 3}[instr.mnemonic]
        exclude = {instr.rd, instr.rs1, instr.rs2}
        (tmp,) = pick_scratch(exclude, 1)
        save, restore = self._save_restore([tmp])
        tn = reg_name(tmp)
        frame = self._frame_size([tmp])
        if instr.rs1 == int(Reg.SP):
            shifted = f"addi {tn}, sp, {frame}\nslli {tn}, {tn}, {shift}"
        else:
            shifted = f"slli {tn}, {reg_name(instr.rs1)}, {shift}"
        added = f"add {reg_name(instr.rd)}, {tn}, {reg_name(instr.rs2)}"
        if instr.rs2 == int(Reg.SP):
            added += f"\naddi {reg_name(instr.rd)}, {reg_name(instr.rd)}, {frame}"
        body = f"{save}\n{shifted}\n{added}\n{restore}"
        return body, [tmp]

    # -- vector ----------------------------------------------------------

    def _emit_vsetvli(self, instr: Instruction, label) -> tuple[str, list[int]]:
        sew = decode_vtype(instr.imm)
        vlmax = self.ctx.vlen // sew
        exclude = {instr.rd, instr.rs1}
        a, b = pick_scratch(exclude, 2)
        an, bn = reg_name(a), reg_name(b)
        save, restore = self._save_restore([a, b])
        done = label("min")
        if instr.rs1 == 0:
            avl = f"li {bn}, {vlmax}"
        else:
            avl = self._read_source_reg(b, instr.rs1, [a, b])
        set_rd = f"mv {reg_name(instr.rd)}, {an}\n" if instr.rd != 0 else ""
        body = (
            f"{save}\n"
            f"li {an}, {vlmax}\n"
            f"{avl}\n"
            f"bgeu {bn}, {an}, {done}\n"
            f"mv {an}, {bn}\n"
            f"{done}:\n"
            f"li {bn}, {self.ctx.vregs_base}\n"
            f"sd {an}, {VL_OFF}({bn})\n"
            f"{set_rd}"
            f"li {an}, {sew}\n"
            f"sd {an}, {SEW_OFF}({bn})\n"
            f"{restore}"
        )
        return body, [a, b]

    def _emit_vmem(self, instr: Instruction, label) -> tuple[str, list[int]]:
        is_load = instr.mnemonic.startswith("vle")
        exclude = {instr.rs1}
        a, b, c, d = pick_scratch(exclude, 4)
        an, bn, cn, dn = (reg_name(r) for r in (a, b, c, d))
        save, restore = self._save_restore([a, b, c, d])
        l32, l64, done = label("w32"), label("w64"), label("done")
        if is_load:
            body32 = f"lw {an}, 0({cn})\nsw {an}, 0({bn})"
            body64 = f"ld {an}, 0({cn})\nsd {an}, 0({bn})"
        else:
            body32 = f"lw {an}, 0({bn})\nsw {an}, 0({cn})"
            body64 = f"ld {an}, 0({bn})\nsd {an}, 0({cn})"
        body = (
            f"{save}\n"
            f"li {bn}, {self.ctx.vregs_base}\n"
            f"ld {dn}, {VL_OFF}({bn})\n"
            f"ld {an}, {SEW_OFF}({bn})\n"
            f"addi {bn}, {bn}, {self.ctx.vreg_off(instr.vd)}\n"
            + self._read_source_reg(c, instr.rs1, [a, b, c, d]) + "\n"
            f"beqz {dn}, {done}\n"
            f"addi {an}, {an}, -64\n"
            f"beqz {an}, {l64}\n"
            f"{l32}:\n"
            f"{body32}\n"
            f"addi {cn}, {cn}, 4\n"
            f"addi {bn}, {bn}, 4\n"
            f"addi {dn}, {dn}, -1\n"
            f"bnez {dn}, {l32}\n"
            f"j {done}\n"
            f"{l64}:\n"
            f"{body64}\n"
            f"addi {cn}, {cn}, 8\n"
            f"addi {bn}, {bn}, 8\n"
            f"addi {dn}, {dn}, -1\n"
            f"bnez {dn}, {l64}\n"
            f"{done}:\n"
            f"{restore}"
        )
        return body, [a, b, c, d]

    def _emit_varith_vv(self, instr: Instruction, label) -> tuple[str, list[int]]:
        mnem = instr.mnemonic
        op64 = {"vadd.vv": "add", "vsub.vv": "sub", "vmul.vv": "mul",
                "vand.vv": "and", "vor.vv": "or", "vxor.vv": "xor",
                "vsll.vv": "sll", "vsrl.vv": "srl", "vsra.vv": "sra"}[mnem]
        op32 = {"add": "addw", "sub": "subw", "mul": "mulw",
                "sll": "sllw", "srl": "srlw", "sra": "sraw"}.get(op64, op64)
        is_shift = op64 in ("sll", "srl", "sra")
        a, b, d, e = pick_scratch(set(), 4)
        an, bn, dn, en = (reg_name(r) for r in (a, b, d, e))
        save, restore = self._save_restore([a, b, d, e])
        vs1o, vs2o, vdo = (self.ctx.vreg_off(v) for v in (instr.vs1, instr.vs2, instr.vd))
        l32, l64, done = label("w32"), label("w64"), label("done")

        def loop(tag, ld, st, op, step):
            # Hardware masks vector shift amounts to SEW-1 bits.
            mask = f"andi {en}, {en}, {step * 8 - 1}\n" if is_shift else ""
            return (
                f"{tag}:\n"
                f"{ld} {an}, {vs2o}({bn})\n"
                f"{ld} {en}, {vs1o}({bn})\n"
                f"{mask}"
                f"{op} {an}, {an}, {en}\n"
                f"{st} {an}, {vdo}({bn})\n"
                f"addi {bn}, {bn}, {step}\n"
                f"addi {dn}, {dn}, -1\n"
                f"bnez {dn}, {tag}\n"
            )

        body = (
            f"{save}\n"
            f"li {bn}, {self.ctx.vregs_base}\n"
            f"ld {dn}, {VL_OFF}({bn})\n"
            f"ld {an}, {SEW_OFF}({bn})\n"
            f"beqz {dn}, {done}\n"
            f"addi {an}, {an}, -64\n"
            f"beqz {an}, {l64}\n"
            + loop(l32, "lw", "sw", op32, 4)
            + f"j {done}\n"
            + loop(l64, "ld", "sd", op64, 8)
            + f"{done}:\n"
            f"{restore}"
        )
        return body, [a, b, d, e]

    def _emit_vmacc(self, instr: Instruction, label) -> tuple[str, list[int]]:
        a, b, d, e = pick_scratch(set(), 4)
        an, bn, dn, en = (reg_name(r) for r in (a, b, d, e))
        save, restore = self._save_restore([a, b, d, e])
        vs1o, vs2o, vdo = (self.ctx.vreg_off(v) for v in (instr.vs1, instr.vs2, instr.vd))
        l32, l64, done = label("w32"), label("w64"), label("done")

        def loop(tag, ld, st, mul, add, step):
            return (
                f"{tag}:\n"
                f"{ld} {an}, {vs1o}({bn})\n"
                f"{ld} {en}, {vs2o}({bn})\n"
                f"{mul} {an}, {an}, {en}\n"
                f"{ld} {en}, {vdo}({bn})\n"
                f"{add} {an}, {an}, {en}\n"
                f"{st} {an}, {vdo}({bn})\n"
                f"addi {bn}, {bn}, {step}\n"
                f"addi {dn}, {dn}, -1\n"
                f"bnez {dn}, {tag}\n"
            )

        body = (
            f"{save}\n"
            f"li {bn}, {self.ctx.vregs_base}\n"
            f"ld {dn}, {VL_OFF}({bn})\n"
            f"ld {an}, {SEW_OFF}({bn})\n"
            f"beqz {dn}, {done}\n"
            f"addi {an}, {an}, -64\n"
            f"beqz {an}, {l64}\n"
            + loop(l32, "lw", "sw", "mulw", "addw", 4)
            + f"j {done}\n"
            + loop(l64, "ld", "sd", "mul", "add", 8)
            + f"{done}:\n"
            f"{restore}"
        )
        return body, [a, b, d, e]

    def _emit_vadd_vx(self, instr: Instruction, label) -> tuple[str, list[int]]:
        """All implemented ``<op>.vx`` forms: elementwise vs2 op x."""
        op64 = {"vadd.vx": "add", "vsub.vx": "sub", "vmul.vx": "mul",
                "vsll.vx": "sll", "vsrl.vx": "srl", "vsra.vx": "sra"}[instr.mnemonic]
        op32 = {"add": "addw", "sub": "subw", "mul": "mulw",
                "sll": "sllw", "srl": "srlw", "sra": "sraw"}[op64]
        is_shift = op64 in ("sll", "srl", "sra")
        exclude = {instr.rs1}
        a, b, d, e = pick_scratch(exclude, 4)
        an, bn, dn = (reg_name(r) for r in (a, b, d))
        save, restore = self._save_restore([a, b, d, e])
        vs2o, vdo = self.ctx.vreg_off(instr.vs2), self.ctx.vreg_off(instr.vd)
        load_x = self._read_source_reg(e, instr.rs1, [a, b, d, e])
        xn = reg_name(e)
        l32, l64, done = label("w32"), label("w64"), label("done")

        def loop(tag, ld, st, op, step):
            mask = f"andi {xn}, {xn}, {step * 8 - 1}\n" if is_shift else ""
            return (
                f"{mask}"
                f"{tag}:\n"
                f"{ld} {an}, {vs2o}({bn})\n"
                f"{op} {an}, {an}, {xn}\n"
                f"{st} {an}, {vdo}({bn})\n"
                f"addi {bn}, {bn}, {step}\n"
                f"addi {dn}, {dn}, -1\n"
                f"bnez {dn}, {tag}\n"
            )

        body = (
            f"{save}\n"
            f"{load_x}\n"
            f"li {bn}, {self.ctx.vregs_base}\n"
            f"ld {dn}, {VL_OFF}({bn})\n"
            f"ld {an}, {SEW_OFF}({bn})\n"
            f"beqz {dn}, {done}\n"
            f"addi {an}, {an}, -64\n"
            f"beqz {an}, {l64}\n"
            + loop(l32, "lw", "sw", op32, 4)
            + f"j {done}\n"
            + loop(l64, "ld", "sd", op64, 8)
            + f"{done}:\n"
            f"{restore}"
        )
        return body, [a, b, d, e]

    def _emit_vminmax(self, instr: Instruction, label) -> tuple[str, list[int]]:
        """vmin/vmax (signed and unsigned): compare-and-select loops."""
        mnem = instr.mnemonic
        signed = mnem in ("vmin.vv", "vmax.vv")
        is_min = mnem in ("vmin.vv", "vminu.vv")
        branch = ("blt" if signed else "bltu") if is_min else ("bge" if signed else "bgeu")
        a, b, d, e = pick_scratch(set(), 4)
        an, bn, dn, en = (reg_name(r) for r in (a, b, d, e))
        save, restore = self._save_restore([a, b, d, e])
        vs1o, vs2o, vdo = (self.ctx.vreg_off(v) for v in (instr.vs1, instr.vs2, instr.vd))
        l32, l64, done = label("w32"), label("w64"), label("done")

        def loop(tag, ld, st, step, k):
            keep = label(f"keep{k}")
            # 32-bit unsigned compares need zero-extended operands.
            ldu = "lwu" if (step == 4 and not signed) else ld
            return (
                f"{tag}:\n"
                f"{ldu} {an}, {vs2o}({bn})\n"
                f"{ldu} {en}, {vs1o}({bn})\n"
                f"{branch} {an}, {en}, {keep}\n"
                f"mv {an}, {en}\n"
                f"{keep}:\n"
                f"{st} {an}, {vdo}({bn})\n"
                f"addi {bn}, {bn}, {step}\n"
                f"addi {dn}, {dn}, -1\n"
                f"bnez {dn}, {tag}\n"
            )

        body = (
            f"{save}\n"
            f"li {bn}, {self.ctx.vregs_base}\n"
            f"ld {dn}, {VL_OFF}({bn})\n"
            f"ld {an}, {SEW_OFF}({bn})\n"
            f"beqz {dn}, {done}\n"
            f"addi {an}, {an}, -64\n"
            f"beqz {an}, {l64}\n"
            + loop(l32, "lw", "sw", 4, "a")
            + f"j {done}\n"
            + loop(l64, "ld", "sd", 8, "b")
            + f"{done}:\n"
            f"{restore}"
        )
        return body, [a, b, d, e]

    def _emit_vmv_x_s(self, instr: Instruction, label) -> tuple[str, list[int]]:
        """rd <- sign-extended element 0 of vs2."""
        exclude = {instr.rd}
        (b,) = pick_scratch(exclude, 1)
        bn, rdn = reg_name(b), reg_name(instr.rd)
        save, restore = self._save_restore([b])
        vs2o = self.ctx.vreg_off(instr.vs2)
        l64, done = label("w64"), label("done")
        set_rd_32 = f"lw {rdn}, {vs2o}({bn})\n" if instr.rd != 0 else ""
        set_rd_64 = f"ld {rdn}, {vs2o}({bn})\n" if instr.rd != 0 else ""
        body = (
            f"{save}\n"
            f"li {bn}, {self.ctx.vregs_base}\n"
            f"ld {bn}, {SEW_OFF}({bn})\n"
            f"addi {bn}, {bn}, -64\n"
            f"beqz {bn}, {l64}\n"
            f"li {bn}, {self.ctx.vregs_base}\n"
            f"{set_rd_32}"
            f"j {done}\n"
            f"{l64}:\n"
            f"li {bn}, {self.ctx.vregs_base}\n"
            f"{set_rd_64}"
            f"{done}:\n"
            f"{restore}"
        )
        return body, [b]

    def _emit_vadd_vi(self, instr: Instruction, label) -> tuple[str, list[int]]:
        a, b, d = pick_scratch(set(), 3)
        an, bn, dn = (reg_name(r) for r in (a, b, d))
        save, restore = self._save_restore([a, b, d])
        vs2o, vdo = self.ctx.vreg_off(instr.vs2), self.ctx.vreg_off(instr.vd)
        l32, l64, done = label("w32"), label("w64"), label("done")

        def loop(tag, ld, st, add, step):
            return (
                f"{tag}:\n"
                f"{ld} {an}, {vs2o}({bn})\n"
                f"{add} {an}, {an}, {instr.imm}\n"
                f"{st} {an}, {vdo}({bn})\n"
                f"addi {bn}, {bn}, {step}\n"
                f"addi {dn}, {dn}, -1\n"
                f"bnez {dn}, {tag}\n"
            )

        body = (
            f"{save}\n"
            f"li {bn}, {self.ctx.vregs_base}\n"
            f"ld {dn}, {VL_OFF}({bn})\n"
            f"ld {an}, {SEW_OFF}({bn})\n"
            f"beqz {dn}, {done}\n"
            f"addi {an}, {an}, -64\n"
            f"beqz {an}, {l64}\n"
            + loop(l32, "lw", "sw", "addiw", 4)
            + f"j {done}\n"
            + loop(l64, "ld", "sd", "addi", 8)
            + f"{done}:\n"
            f"{restore}"
        )
        return body, [a, b, d]

    def _emit_vmv(self, instr: Instruction, label) -> tuple[str, list[int]]:
        exclude = {instr.rs1} if instr.rs1 is not None else set()
        a, b, d = pick_scratch(exclude, 3)
        an, bn, dn = (reg_name(r) for r in (a, b, d))
        save, restore = self._save_restore([a, b, d])
        vdo = self.ctx.vreg_off(instr.vd)
        l32, l64, done = label("w32"), label("w64"), label("done")
        if instr.mnemonic == "vmv.v.x":
            src = self._read_source_reg(a, instr.rs1, [a, b, d])
        else:
            src = f"li {an}, {instr.imm}"

        def loop(tag, st, step):
            return (
                f"{tag}:\n"
                f"{st} {an}, {vdo}({bn})\n"
                f"addi {bn}, {bn}, {step}\n"
                f"addi {dn}, {dn}, -1\n"
                f"bnez {dn}, {tag}\n"
            )

        # The sew check uses `a` before `src` overwrites it with the value.
        body = (
            f"{save}\n"
            f"li {bn}, {self.ctx.vregs_base}\n"
            f"ld {dn}, {VL_OFF}({bn})\n"
            f"ld {an}, {SEW_OFF}({bn})\n"
            f"beqz {dn}, {done}\n"
            f"addi {an}, {an}, -64\n"
            f"beqz {an}, {l64}\n"
            f"{src}\n"
            + loop(l32, "sw", 4)
            + f"j {done}\n"
            f"{l64}:\n"
            f"{src}\n"
            + loop(l64 + "_b", "sd", 8)
            + f"{done}:\n"
            f"{restore}"
        )
        return body, [a, b, d]

    def _emit_vredsum(self, instr: Instruction, label) -> tuple[str, list[int]]:
        a, b, d, e = pick_scratch(set(), 4)
        an, bn, dn, en = (reg_name(r) for r in (a, b, d, e))
        save, restore = self._save_restore([a, b, d, e])
        vs1o, vs2o, vdo = (self.ctx.vreg_off(v) for v in (instr.vs1, instr.vs2, instr.vd))
        l32, l64 = label("w32"), label("w64")
        st32, st64, done = label("st32"), label("st64"), label("done")

        def loop(tag, ld, add, step):
            return (
                f"{tag}:\n"
                f"{ld} {en}, {vs2o}({bn})\n"
                f"{add} {an}, {an}, {en}\n"
                f"addi {bn}, {bn}, {step}\n"
                f"addi {dn}, {dn}, -1\n"
                f"bnez {dn}, {tag}\n"
            )

        body = (
            f"{save}\n"
            f"li {bn}, {self.ctx.vregs_base}\n"
            f"ld {dn}, {VL_OFF}({bn})\n"
            f"ld {en}, {SEW_OFF}({bn})\n"
            f"addi {en}, {en}, -64\n"
            f"beqz {en}, {l64}\n"
            f"lw {an}, {vs1o}({bn})\n"
            f"beqz {dn}, {st32}\n"
            + loop(l32, "lw", "addw", 4)
            + f"{st32}:\n"
            f"li {bn}, {self.ctx.vregs_base}\n"
            f"sw {an}, {vdo}({bn})\n"
            f"j {done}\n"
            f"{l64}:\n"
            f"ld {an}, {vs1o}({bn})\n"
            f"beqz {dn}, {st64}\n"
            + loop(l64 + "_b", "ld", "add", 8)
            + f"{st64}:\n"
            f"li {bn}, {self.ctx.vregs_base}\n"
            f"sd {an}, {vdo}({bn})\n"
            f"{done}:\n"
            f"{restore}"
        )
        return body, [a, b, d, e]
