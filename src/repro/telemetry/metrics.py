"""Labeled metrics: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every series produced by a run.  A
series is a metric name plus a label set — ``patch.trampolines{kind=smile}``,
``sched.steals{core=3}``, ``cpu.instret{class=vector}`` — mirroring the
Prometheus data model the observability docs describe, but in-process
and dependency-free.

Registries compose: the schedulers keep a *run-local* registry as the
single source of truth for their counters, derive their result ledgers
from it, and then :meth:`~MetricsRegistry.merge` it into the session's
active registry with identifying labels (``system=chimera``,
``engine=des``).  That is the fix for the historical stats drift where
``ResilienceStats`` and the scheduler's loop variables were updated
independently and could disagree.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

#: Values retained per histogram for percentile math.  count/sum/min/max
#: stay exact past the cap; percentiles then come from the retained
#: prefix sample (fine for the bounded populations we record).
HISTOGRAM_RETENTION = 4096

LabelKey = tuple[tuple[str, str], ...]


def label_key(labels: dict) -> LabelKey:
    """Canonical, order-insensitive key for a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def percentile(values: Iterable[float], p: float) -> float:
    """The *p*-th percentile of *values*, linearly interpolated.

    Matches numpy's default ("linear") method: rank ``(n-1) * p/100``
    interpolated between its floor and ceiling neighbors.
    """
    xs = sorted(values)
    if not xs:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be within [0, 100], got {p}")
    rank = (len(xs) - 1) * (p / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(xs[lo])
    frac = rank - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


class Histogram:
    """Streaming value distribution with exact count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max", "_values", "_retention")

    def __init__(self, retention: int = HISTOGRAM_RETENTION):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._values: list[float] = []
        self._retention = retention

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._values) < self._retention:
            self._values.append(value)

    def percentile(self, p: float) -> float:
        return percentile(self._values, p)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def stats(self) -> dict:
        """Summary dict used by the export schema."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound
        room = self._retention - len(self._values)
        if room > 0:
            self._values.extend(other._values[:room])


class MetricsRegistry:
    """All metric series of one run (or one session)."""

    def __init__(self):
        self._counters: dict[tuple[str, LabelKey], int] = {}
        self._gauges: dict[tuple[str, LabelKey], float] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: int = 1, **labels) -> None:
        """Add *amount* to the counter series ``name{labels}``."""
        key = (name, label_key(labels))
        self._counters[key] = self._counters.get(key, 0) + amount

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set the gauge series ``name{labels}`` to *value* (last wins)."""
        self._gauges[(name, label_key(labels))] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record *value* into the histogram series ``name{labels}``."""
        key = (name, label_key(labels))
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram()
        hist.observe(value)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str, **labels) -> int:
        return self._counters.get((name, label_key(labels)), 0)

    def gauge_value(self, name: str, **labels) -> Optional[float]:
        return self._gauges.get((name, label_key(labels)))

    def histogram(self, name: str, **labels) -> Optional[Histogram]:
        return self._histograms.get((name, label_key(labels)))

    def total(self, name: str) -> int:
        """Sum of the counter *name* across every label set."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def series(self, name: str) -> list[tuple[dict, object]]:
        """Every series of *name* as (labels dict, value-or-histogram)."""
        out: list[tuple[dict, object]] = []
        for store in (self._counters, self._gauges, self._histograms):
            for (n, key), value in store.items():
                if n == name:
                    out.append((dict(key), value))
        return out

    def names(self) -> set[str]:
        names: set[str] = set()
        for store in (self._counters, self._gauges, self._histograms):
            names.update(n for n, _ in store)
        return names

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- composition -------------------------------------------------------

    def merge(self, other: "MetricsRegistry", **extra_labels) -> None:
        """Fold *other* into this registry, adding *extra_labels* to every
        incoming series (how a run-local ledger joins the session view)."""
        extra = dict(label_key(extra_labels))

        def rekey(labels: LabelKey) -> LabelKey:
            return tuple(sorted((dict(labels) | extra).items()))

        for (name, labels), value in other._counters.items():
            key = (name, rekey(labels))
            self._counters[key] = self._counters.get(key, 0) + value
        for (name, labels), value in other._gauges.items():
            self._gauges[(name, rekey(labels))] = value
        for (name, labels), hist in other._histograms.items():
            key = (name, rekey(labels))
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms[key] = Histogram()
            mine.merge(hist)

    # -- export ------------------------------------------------------------

    def as_dict(self) -> dict:
        """The documented ``metrics.json`` payload (schema v1)."""
        return {
            "schema": "repro.telemetry/metrics/v1",
            "counters": [
                {"name": n, "labels": dict(k), "value": v}
                for (n, k), v in sorted(self._counters.items())
            ],
            "gauges": [
                {"name": n, "labels": dict(k), "value": v}
                for (n, k), v in sorted(self._gauges.items())
            ],
            "histograms": [
                {"name": n, "labels": dict(k), "stats": h.stats()}
                for (n, k), h in sorted(self._histograms.items())
            ],
        }
