"""Self-checking kernel workloads, buildable per ISA variant.

Every workload builds to a :class:`~repro.elf.binary.Binary` that
computes a kernel, compares the result against expected values baked
into the data segment at build time, and exits 0 on success / 1 on
mismatch — so "passes its test suite" (§6.3) is a property the
simulator can check for any rewritten variant.

The ``base`` variants deliberately emit the *canonical loop idioms*
(map loops, dot loops) a compiler would: those are the shapes
:mod:`repro.core.upgrade` vectorizes, mirroring how the paper's
upgrade path meets compiler-generated RV64GC code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from repro.elf.binary import Binary
from repro.elf.builder import ProgramBuilder

_MASK = (1 << 64) - 1


def _wrap(v: int) -> int:
    v &= _MASK
    return v


_CHECK_EPILOGUE = """
check:
    li a0, {got}
    li a1, {expect}
    li a2, {check_n}
chk_loop:
    ld t0, 0(a0)
    ld t1, 0(a1)
    bne t0, t1, chk_fail
    addi a0, a0, 8
    addi a1, a1, 8
    addi a2, a2, -1
    bnez a2, chk_loop
    li a7, 93
    li a0, 0
    ecall
chk_fail:
    li a7, 93
    li a0, 1
    ecall
"""

#: The strip-mined RVV dot-product fragment (pointers a0/a1, count a3,
#: accumulator a4, temps t0/t1); mirrors what -O3 auto-vectorization
#: emits for a reduction loop.
_VECTOR_DOT = """
    vsetvli t0, zero, e64
    vmv.v.i v1, 0
vdot{tag}:
    vsetvli t0, a3, e64
    vle64.v v2, (a0)
    vle64.v v3, (a1)
    vmacc.vv v1, v2, v3
    slli t1, t0, 3
    add a0, a0, t1
    add a1, a1, t1
    sub a3, a3, t0
    bnez a3, vdot{tag}
    vsetvli t0, zero, e64
    vmv.v.i v2, 0
    vredsum.vs v3, v1, v2
    li t1, 1
    vsetvli t0, t1, e64
    addi sp, sp, -16
    vse64.v v3, (sp)
    ld t1, 0(sp)
    addi sp, sp, 16
    add a4, a4, t1
"""

#: The scalar dot-product loop in the exact shape the upgrade matcher
#: recognizes (ld/ld/mul/add/advance/advance/count/branch).
_SCALAR_DOT = """
dot{tag}:
    ld t0, 0(a0)
    ld t1, 0(a1)
    mul t2, t0, t1
    add a4, a4, t2
    addi a0, a0, 8
    addi a1, a1, 8
    addi a3, a3, -1
    bnez a3, dot{tag}
"""


@dataclass
class KernelWorkload:
    """Base class: a named kernel with per-ISA-variant builders."""

    name: str = "kernel"
    seed: int = 1234

    def variants(self) -> list[str]:
        return ["base", "ext"]

    def build(self, variant: str) -> Binary:
        if variant not in self.variants():
            raise ValueError(f"{self.name} has no variant {variant!r}")
        builder = ProgramBuilder(f"{self.name}-{variant}")
        self._populate(builder, variant)
        binary = builder.build()
        binary.metadata["workload"] = self.name
        binary.metadata["variant"] = variant
        return binary

    def _populate(self, builder: ProgramBuilder, variant: str) -> None:
        raise NotImplementedError

    def _rng(self) -> random.Random:
        return random.Random(self.seed)


@dataclass
class FibonacciWorkload(KernelWorkload):
    """Iterative Fibonacci (mod 2^64): the §6.1 *base task* — pure
    integer work the vector extension cannot accelerate."""

    name: str = "fibonacci"
    iterations: int = 3000

    def _populate(self, builder: ProgramBuilder, variant: str) -> None:
        a, b = 0, 1
        for _ in range(self.iterations):
            a, b = b, _wrap(a + b)
        builder.add_words("got", [0])
        builder.add_words("expect", [a])
        # Both variants are identical: there is nothing to vectorize.
        builder.set_text(
            f"""
_start:
    li a0, {self.iterations}
    li a1, 0
    li a2, 1
fib:
    add a3, a1, a2
    mv a1, a2
    mv a2, a3
    addi a0, a0, -1
    bnez a0, fib
    li t0, {{got}}
    sd a1, 0(t0)
"""
            + _CHECK_EPILOGUE.replace("{check_n}", "1")
        )


@dataclass
class MatMulWorkload(KernelWorkload):
    """Dense int64 matrix multiply C = A x B (B stored transposed so the
    inner loop is a unit-stride dot product): the §6.1 *extension task*."""

    name: str = "matmul"
    n: int = 12

    def _expected(self, rng: random.Random) -> tuple[list[int], list[int], list[int]]:
        n = self.n
        a = [rng.randrange(-50, 50) & _MASK for _ in range(n * n)]
        bt = [rng.randrange(-50, 50) & _MASK for _ in range(n * n)]
        c = []
        for i in range(n):
            for j in range(n):
                acc = 0
                for k in range(n):
                    acc = _wrap(acc + _wrap(a[i * n + k] * bt[j * n + k]))
                c.append(acc)
        return a, bt, c

    def _populate(self, builder: ProgramBuilder, variant: str) -> None:
        n = self.n
        a, bt, c = self._expected(self._rng())
        builder.add_words("a_mat", a)
        builder.add_words("bt_mat", bt)
        builder.add_words("c_mat", [0] * (n * n))
        builder.add_words("c_expect", c)
        inner = _VECTOR_DOT if variant == "ext" else _SCALAR_DOT
        builder.set_text(
            f"""
_start:
    li s3, {n}
    li s5, {{a_mat}}
    li s7, {{c_mat}}
iloop:
    li s6, {{bt_mat}}
    li s4, {n}
jloop:
    mv a0, s5
    mv a1, s6
    li a3, {n}
    li a4, 0
"""
            + inner.format(tag="_mm")
            + f"""
    sd a4, 0(s7)
    addi s7, s7, 8
    addi s6, s6, {8 * n}
    addi s4, s4, -1
    bnez s4, jloop
    addi s5, s5, {8 * n}
    addi s3, s3, -1
    bnez s3, iloop
"""
            + _CHECK_EPILOGUE.replace("{got}", "{c_mat}")
            .replace("{expect}", "{c_expect}")
            .replace("{check_n}", str(n * n))
        )


@dataclass
class GemvWorkload(KernelWorkload):
    """y = A x (int64): one dot product per matrix row (§6.4's gemv)."""

    name: str = "gemv"
    n: int = 16

    def _populate(self, builder: ProgramBuilder, variant: str) -> None:
        n = self.n
        rng = self._rng()
        a = [rng.randrange(-30, 30) & _MASK for _ in range(n * n)]
        x = [rng.randrange(-30, 30) & _MASK for _ in range(n)]
        y = []
        for i in range(n):
            acc = 0
            for k in range(n):
                acc = _wrap(acc + _wrap(a[i * n + k] * x[k]))
            y.append(acc)
        builder.add_words("a_mat", a)
        builder.add_words("x_vec", x)
        builder.add_words("y_vec", [0] * n)
        builder.add_words("y_expect", y)
        inner = _VECTOR_DOT if variant == "ext" else _SCALAR_DOT
        builder.set_text(
            f"""
_start:
    li s3, {n}
    li s5, {{a_mat}}
    li s7, {{y_vec}}
row:
    mv a0, s5
    li a1, {{x_vec}}
    li a3, {n}
    li a4, 0
"""
            + inner.format(tag="_gv")
            + f"""
    sd a4, 0(s7)
    addi s7, s7, 8
    addi s5, s5, {8 * n}
    addi s3, s3, -1
    bnez s3, row
"""
            + _CHECK_EPILOGUE.replace("{got}", "{y_vec}")
            .replace("{expect}", "{y_expect}")
            .replace("{check_n}", str(n))
        )


@dataclass
class VectorAddWorkload(KernelWorkload):
    """Elementwise z = x + y over int64 arrays (the map-loop idiom)."""

    name: str = "vecadd"
    n: int = 64

    def _populate(self, builder: ProgramBuilder, variant: str) -> None:
        n = self.n
        rng = self._rng()
        x = [rng.randrange(0, 1 << 32) for _ in range(n)]
        y = [rng.randrange(0, 1 << 32) for _ in range(n)]
        z = [_wrap(p + q) for p, q in zip(x, y)]
        builder.add_words("x_vec", x)
        builder.add_words("y_vec", y)
        builder.add_words("z_vec", [0] * n)
        builder.add_words("z_expect", z)
        if variant == "ext":
            body = """
vloop:
    vsetvli t0, a3, e64
    vle64.v v1, (a0)
    vle64.v v2, (a1)
    vadd.vv v3, v1, v2
    vse64.v v3, (a2)
    slli t1, t0, 3
    add a0, a0, t1
    add a1, a1, t1
    add a2, a2, t1
    sub a3, a3, t0
    bnez a3, vloop
"""
        else:
            body = """
map:
    ld t0, 0(a0)
    ld t1, 0(a1)
    add t2, t0, t1
    sd t2, 0(a2)
    addi a0, a0, 8
    addi a1, a1, 8
    addi a2, a2, 8
    addi a3, a3, -1
    bnez a3, map
"""
        builder.set_text(
            f"""
_start:
    li a0, {{x_vec}}
    li a1, {{y_vec}}
    li a2, {{z_vec}}
    li a3, {n}
"""
            + body
            + _CHECK_EPILOGUE.replace("{got}", "{z_vec}")
            .replace("{expect}", "{z_expect}")
            .replace("{check_n}", str(n))
        )


@dataclass
class DotProductWorkload(KernelWorkload):
    """acc = sum(x[i] * y[i]) over int64 arrays (the dot-loop idiom)."""

    name: str = "dot"
    n: int = 64

    def _populate(self, builder: ProgramBuilder, variant: str) -> None:
        n = self.n
        rng = self._rng()
        x = [rng.randrange(-99, 99) & _MASK for _ in range(n)]
        y = [rng.randrange(-99, 99) & _MASK for _ in range(n)]
        acc = 0
        for p, q in zip(x, y):
            acc = _wrap(acc + _wrap(p * q))
        builder.add_words("x_vec", x)
        builder.add_words("y_vec", y)
        builder.add_words("got", [0])
        builder.add_words("expect", [acc])
        inner = _VECTOR_DOT if variant == "ext" else _SCALAR_DOT
        builder.set_text(
            f"""
_start:
    li a0, {{x_vec}}
    li a1, {{y_vec}}
    li a3, {n}
    li a4, 0
"""
            + inner.format(tag="_dp")
            + """
    li t0, {got}
    sd a4, 0(t0)
"""
            + _CHECK_EPILOGUE.replace("{check_n}", "1")
        )


@dataclass
class MemcpyWorkload(KernelWorkload):
    """Block copy; the ext variant streams through the vector unit."""

    name: str = "memcpy"
    n: int = 128  # 64-bit words

    def _populate(self, builder: ProgramBuilder, variant: str) -> None:
        n = self.n
        rng = self._rng()
        src = [rng.randrange(0, _MASK) for _ in range(n)]
        builder.add_words("src", src)
        builder.add_words("dst", [0] * n)
        builder.add_words("expect", src)
        if variant == "ext":
            body = """
cp:
    vsetvli t0, a2, e64
    vle64.v v1, (a0)
    vse64.v v1, (a1)
    slli t1, t0, 3
    add a0, a0, t1
    add a1, a1, t1
    sub a2, a2, t0
    bnez a2, cp
"""
        else:
            body = """
cp:
    ld t0, 0(a0)
    sd t0, 0(a1)
    addi a0, a0, 8
    addi a1, a1, 8
    addi a2, a2, -1
    bnez a2, cp
"""
        builder.set_text(
            f"""
_start:
    li a0, {{src}}
    li a1, {{dst}}
    li a2, {n}
"""
            + body
            + _CHECK_EPILOGUE.replace("{got}", "{dst}")
            .replace("{check_n}", str(n))
        )


@dataclass
class IndirectDispatchWorkload(KernelWorkload):
    """Function-pointer dispatch loop: the indirect-control stressor.

    Each iteration loads a handler address from a data-segment table and
    ``jalr``s to it; handlers do a small vector (ext) or scalar (base)
    update and return.  This is the shape that makes regeneration-style
    rewriters pay per-jump checks while CHBP pays nothing (§2.2) — and
    the jump targets are invisible to static analysis, so rewritten
    binaries exercise the fault-table path when handlers get patched.
    """

    name: str = "dispatch"
    iterations: int = 120
    handlers: int = 4

    def _populate(self, builder: ProgramBuilder, variant: str) -> None:
        it = self.iterations
        rng = self._rng()
        start = rng.randrange(1, 1 << 16)
        # Each handler k adds (k+1) to the accumulator; replay in Python.
        acc = start
        for i in range(it):
            acc = _wrap(acc + (i % self.handlers) + 1)
        builder.add_words("got", [0])
        builder.add_words("expect", [acc])
        table = builder.add_words("table", [0] * self.handlers)
        handler_defs = []
        for k in range(self.handlers):
            if variant == "ext" and k == 0:
                # One vector-flavored handler so rewriting has a source
                # instruction to chew on inside indirect-only code.
                handler_defs.append(
                    f"""
handler{k}:
    addi sp, sp, -16
    li t2, 1
    vsetvli t1, t2, e64
    vse64.v v0, (sp)
    ld t1, 0(sp)
    addi sp, sp, 16
    addi a4, a4, {k + 1}
    ret
"""
                )
            else:
                handler_defs.append(
                    f"""
handler{k}:
    addi a4, a4, {k + 1}
    ret
"""
                )
        builder.set_text(
            f"""
_start:
    # fill the dispatch table with handler addresses
    li t0, {table}
    la t1, handler0
    sd t1, 0(t0)
    la t1, handler1
    sd t1, 8(t0)
    la t1, handler2
    sd t1, 16(t0)
    la t1, handler3
    sd t1, 24(t0)
    li a4, {start}
    li s1, 0            # i
    li s2, {it}
disp:
    andi t0, s1, {self.handlers - 1}
    slli t0, t0, 3
    li t1, {table}
    add t0, t0, t1
    ld t0, 0(t0)
    jalr t0
    addi s1, s1, 1
    bne s1, s2, disp
    li t0, {{got}}
    sd a4, 0(t0)
"""
            + _CHECK_EPILOGUE.replace("{check_n}", "1")
            + "".join(handler_defs)
        )
        for k in range(self.handlers):
            builder.mark_function(f"handler{k}")


#: Registry used by tests/benches to sweep every workload.
ALL_WORKLOADS: dict[str, KernelWorkload] = {
    w.name: w
    for w in (
        FibonacciWorkload(),
        MatMulWorkload(),
        GemvWorkload(),
        VectorAddWorkload(),
        DotProductWorkload(),
        MemcpyWorkload(),
        IndirectDispatchWorkload(),
    )
}
