"""``python -m repro submit`` — the fleet campaign client.

Fans a batch of rewrite jobs (workload names or ``.self`` files, e.g. a
directory of binaries) at a running :mod:`repro.service.server` with
bounded concurrency, retries transient failures under a
:class:`~repro.resilience.policy.RetryPolicy`, writes each returned
ledger **verbatim** (the byte-identity contract: ``<id>.report.json``
diffs clean against a serial ``repro verify --report`` run), and ends
with a campaign manifest summarizing cache classes, failures, and
timing.

Retry scope: transport errors (server restarting, socket hiccup),
``job-crash``, and ``job-overloaded`` faults are retried with backoff
(an overloaded server's ``retry_after_ms`` hint stretches the backoff);
``job-rejected`` (the request is wrong), ``job-poisoned`` (the server
quarantined the key), and ``job-deadline-exceeded`` (the job's own time
budget is gone) are terminal — retrying them would just burn the budget.

A reconnect after a transport fault *resumes* rather than redoes: the
server dedups by release key, so the resubmitted job lands as a warm
cache hit or coalesces onto the still-running attempt — never a
duplicate rewrite.  A per-server :class:`~repro.resilience.policy.
CircuitBreaker` (closed→open→half-open, jittered probes) keeps a
campaign against a dead or flapping server failing fast instead of
stacking timeouts, and per-spec ``deadline_ms`` bounds each job's whole
retry ladder so the campaign degrades to partial results with a
faithful ``campaign.json`` instead of hanging.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.resilience.failures import (
    JOB_CRASH,
    JOB_DEADLINE,
    JOB_OVERLOADED,
    JOB_POISONED,
    JOB_REJECTED,
)
from repro.resilience.policy import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    CircuitBreaker,
    RetryPolicy,
)
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL,
    ProtocolError,
    read_message,
    write_message,
)
from repro.telemetry import current as telemetry_current

#: Campaign-level default: a couple of quick retries absorbs a server
#: restart without stretching a dead-server failure past ~a second.
CLIENT_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_backoff=100, multiplier=3, max_backoff=2_000)

#: Client-side pseudo-fault kinds (never sent by the server).
TRANSPORT_FAULT = "transport"
CIRCUIT_OPEN_FAULT = "circuit-open"

#: Faults worth retrying under the campaign policy.
TRANSIENT_FAULTS = (TRANSPORT_FAULT, CIRCUIT_OPEN_FAULT, JOB_CRASH,
                    JOB_OVERLOADED)
#: Faults a retry can never fix — fail the record immediately.
TERMINAL_FAULTS = (JOB_REJECTED, JOB_POISONED, JOB_DEADLINE)

#: Breaker state as a telemetry gauge value.
_BREAKER_GAUGE = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1}


def _gauge_breaker(breaker: CircuitBreaker) -> None:
    telemetry = telemetry_current()
    if telemetry.enabled:
        telemetry.metrics.gauge("service.breaker_state",
                                _BREAKER_GAUGE.get(breaker.state, 2))


async def open_connection(address: str):
    """Dial ``unix:<path>`` / ``tcp:<host>:<port>`` (or a bare socket
    path); returns ``(reader, writer)`` past the server's hello."""
    if address.startswith("unix:"):
        reader, writer = await asyncio.open_unix_connection(
            address[len("unix:"):], limit=MAX_MESSAGE_BYTES)
    elif address.startswith("tcp:"):
        host, _, port = address[len("tcp:"):].rpartition(":")
        reader, writer = await asyncio.open_connection(
            host or "127.0.0.1", int(port), limit=MAX_MESSAGE_BYTES)
    else:
        reader, writer = await asyncio.open_unix_connection(
            address, limit=MAX_MESSAGE_BYTES)
    hello = await read_message(reader)
    if hello is None or hello.get("event") != "hello":
        writer.close()
        raise ProtocolError(f"no hello from server at {address}: {hello!r}")
    if hello.get("protocol") != PROTOCOL:
        writer.close()
        raise ProtocolError(
            f"protocol mismatch: server speaks {hello.get('protocol')!r}, "
            f"client speaks {PROTOCOL!r}")
    return reader, writer


async def _request(address: str, message: dict) -> dict:
    """One op, one terminal response (for stats/ping/shutdown)."""
    reader, writer = await open_connection(address)
    try:
        await write_message(writer, message)
        reply = await read_message(reader)
        if reply is None:
            raise ProtocolError("server closed before replying")
        return reply
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def server_stats(address: str) -> dict:
    return asyncio.run(_request(address, {"op": "stats"}))


def shutdown_server(address: str) -> dict:
    return asyncio.run(_request(address, {"op": "shutdown"}))


def wait_for_server(address: str, *, timeout: float = 30.0,
                    interval: float = 0.1, max_interval: float = 2.0,
                    rng: Optional[random.Random] = None) -> bool:
    """Poll ``ping`` until the server answers (CI startup latch).

    One event loop runs a single probe coroutine for the whole wait
    (not one fresh loop per probe), and the gap between probes grows
    exponentially from *interval* to *max_interval* with ±50% jitter —
    a fleet of waiting clients never hammers a starting server in
    lockstep.
    """
    rand = rng or random.Random()

    async def _probe_until_ready() -> bool:
        deadline = time.monotonic() + timeout
        attempt = 0
        while True:
            try:
                reply = await _request(address, {"op": "ping"})
                if reply.get("event") == "pong":
                    return True
            except (ConnectionError, OSError, ProtocolError):
                pass
            attempt += 1
            delay = min(max_interval, interval * (2 ** (attempt - 1)))
            delay *= 0.5 + rand.random()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            await asyncio.sleep(min(delay, remaining))

    return asyncio.run(_probe_until_ready())


@dataclass
class CampaignResult:
    """The fleet run's ledger of ledgers."""

    records: list = field(default_factory=list)
    seconds: float = 0.0
    manifest_path: Optional[str] = None

    @property
    def by_cache(self) -> dict:
        tally: dict[str, int] = {}
        for record in self.records:
            if record.get("status") == "ok":
                cls = record.get("cache", "unknown")
                tally[cls] = tally.get(cls, 0) + 1
        return tally

    @property
    def succeeded(self) -> int:
        return sum(1 for r in self.records if r.get("status") == "ok")

    @property
    def failed(self) -> int:
        return len(self.records) - self.succeeded

    @property
    def ok(self) -> bool:
        return self.records != [] and self.failed == 0 and all(
            r.get("verify_ok") for r in self.records)

    def as_dict(self) -> dict:
        return {
            "schema": f"{PROTOCOL}/campaign",
            "jobs": len(self.records),
            "succeeded": self.succeeded,
            "failed": self.failed,
            "ok": self.ok,
            "by_cache": self.by_cache,
            "seconds": round(self.seconds, 6),
            "records": self.records,
        }


async def _submit_one(reader, writer, spec: dict, *, out_dir: Optional[Path],
                      on_event) -> dict:
    """Drive one job on an open connection to its terminal event."""
    await write_message(writer, spec)
    record = {"id": spec["id"], "status": "pending",
              "workload": spec.get("workload"), "path": spec.get("path")}
    while True:
        event = await read_message(reader)
        if event is None:
            raise ProtocolError("server closed mid-job")
        if event.get("id") != spec["id"]:
            continue  # another job's frame on a shared connection
        kind = event.get("event")
        if on_event is not None:
            on_event(event)
        if kind == "accepted":
            record["key"] = event.get("key")
            record["shard"] = event.get("shard")
        elif kind == "progress":
            continue
        elif kind == "result":
            record.update(status="ok", cache=event.get("cache"),
                          verify_ok=event.get("ok"),
                          releasable=event.get("releasable"),
                          counts=event.get("counts"),
                          seconds=event.get("seconds"))
            if out_dir is not None and event.get("report_json"):
                ledger = out_dir / f"{spec['id']}.report.json"
                # Verbatim bytes — the point of the whole exercise.
                ledger.write_bytes(event["report_json"].encode("utf-8"))
                record["ledger"] = str(ledger)
            return record
        elif kind == "error":
            record.update(status="failed", fault=event.get("fault"))
            return record


async def submit_jobs(
    address: str,
    specs: Sequence[dict],
    *,
    concurrency: int = 4,
    out_dir: Optional[Union[str, Path]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    on_event: Optional[Callable[[dict], None]] = None,
    breaker: Optional[CircuitBreaker] = None,
) -> list[dict]:
    """Submit every spec with at most *concurrency* jobs in flight.

    Each worker holds its own connection (a dead one is redialed on
    retry; the resubmitted job re-attaches idempotently through the
    server's release-key dedup — a resume, never a duplicate rewrite).
    All workers share one per-server *breaker*: while it is open,
    attempts fail fast as ``circuit-open`` pseudo-faults until a
    jittered probe closes it again.  A spec carrying ``deadline_ms``
    bounds its whole retry ladder, not just the server-side run.
    Returns one record per spec, input order preserved.
    """
    policy = retry_policy or CLIENT_RETRY_POLICY
    breaker = breaker if breaker is not None else CircuitBreaker()
    out_path = Path(out_dir) if out_dir is not None else None
    if out_path is not None:
        out_path.mkdir(parents=True, exist_ok=True)
    queue: asyncio.Queue = asyncio.Queue()
    for index, spec in enumerate(specs):
        queue.put_nowait((index, spec))
    results: list = [None] * len(specs)
    telemetry = telemetry_current()

    async def worker() -> None:
        reader = writer = None
        try:
            while True:
                try:
                    index, spec = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                attempt = 0
                job_deadline = (
                    time.monotonic() + spec["deadline_ms"] / 1000.0
                    if spec.get("deadline_ms") else None)
                saw_transport_fault = False
                while True:
                    attempt += 1
                    if not breaker.allow():
                        record = {
                            "id": spec["id"], "status": "failed",
                            "fault": {
                                "fault": CIRCUIT_OPEN_FAULT,
                                "detail": (f"breaker open for {address}; "
                                           f"probe in "
                                           f"{breaker.retry_in():.2f}s")}}
                    else:
                        try:
                            if writer is None:
                                reader, writer_ = await open_connection(
                                    address)
                            else:
                                writer_ = writer
                            record = await _submit_one(
                                reader, writer_, spec, out_dir=out_path,
                                on_event=on_event)
                        except (ConnectionError, OSError,
                                ProtocolError) as exc:
                            writer = None
                            saw_transport_fault = True
                            breaker.record_failure()
                            _gauge_breaker(breaker)
                            record = {"id": spec["id"], "status": "failed",
                                      "fault": {"fault": TRANSPORT_FAULT,
                                                "detail": str(exc)}}
                        else:
                            writer = writer_
                            breaker.record_success()
                            _gauge_breaker(breaker)
                            if saw_transport_fault:
                                # The job reached a terminal event on a
                                # fresh connection after a transport
                                # fault: a resume, re-attached through
                                # the server's release-key dedup.
                                record["resumed"] = True
                                if telemetry.enabled:
                                    telemetry.metrics.inc(
                                        "service.client_resumes")
                    fault_info = record.get("fault") or {}
                    fault = fault_info.get("fault")
                    transient = (record["status"] == "failed"
                                 and fault in TRANSIENT_FAULTS)
                    backoff = policy.backoff_seconds(attempt)
                    if fault == CIRCUIT_OPEN_FAULT:
                        backoff = max(backoff, breaker.retry_in())
                    retry_after = fault_info.get("retry_after_ms")
                    if retry_after:
                        # An overloaded server's hint dominates the
                        # local schedule — it knows its own backlog.
                        backoff = max(backoff, retry_after / 1000.0)
                    past_deadline = (
                        job_deadline is not None
                        and time.monotonic() + backoff > job_deadline)
                    if (transient and not policy.exhausted(attempt + 1)
                            and not past_deadline):
                        record["retries"] = attempt
                        await asyncio.sleep(backoff)
                        continue
                    if transient and past_deadline:
                        record["deadline_exhausted"] = True
                    if attempt > 1:
                        record["retries"] = attempt - 1
                    results[index] = record
                    break
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    workers = [asyncio.ensure_future(worker())
               for _ in range(max(1, min(concurrency, len(specs) or 1)))]
    await asyncio.gather(*workers)
    return results


def build_specs(
    sources: Sequence[str],
    *,
    target: str = "rv64gc",
    variant: str = "ext",
    scale: int = 128,
    seed: Optional[int] = None,
    oracle_trials: int = 2,
    deadline_ms: Optional[int] = None,
) -> list[dict]:
    """Turn CLI sources into submit specs.

    A source that is a directory expands to every ``*.self`` inside it;
    one that is a ``.self`` file becomes a path job; anything else is a
    workload name.  Spec ids are deterministic (``<stem>`` with a
    ``-<n>`` suffix on collision) so rerunning a campaign overwrites the
    same ledgers.
    """
    expanded: list[tuple[str, str]] = []  # (kind, value)
    for source in sources:
        path = Path(source)
        if path.is_dir():
            files = sorted(path.glob("*.self"))
            if not files:
                raise ValueError(f"no .self binaries under {source}")
            expanded.extend(("path", str(f)) for f in files)
        elif path.suffix == ".self" or path.is_file():
            expanded.append(("path", str(path)))
        else:
            expanded.append(("workload", source))
    specs = []
    seen: dict[str, int] = {}
    for kind, value in expanded:
        stem = Path(value).stem if kind == "path" else value
        count = seen.get(stem, 0)
        seen[stem] = count + 1
        job_id = stem if count == 0 else f"{stem}-{count}"
        spec = {"op": "submit", "id": job_id, "target": target,
                "variant": variant, "scale": scale,
                "oracle_trials": oracle_trials}
        if seed is not None:
            spec["seed"] = seed
        if deadline_ms is not None:
            spec["deadline_ms"] = deadline_ms
        spec["workload" if kind == "workload" else "path"] = value
        specs.append(spec)
    return specs


def run_campaign(
    address: str,
    sources: Sequence[str],
    *,
    concurrency: int = 4,
    out_dir: Optional[Union[str, Path]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    on_event: Optional[Callable[[dict], None]] = None,
    repeat: int = 1,
    breaker: Optional[CircuitBreaker] = None,
    **spec_options,
) -> CampaignResult:
    """The whole fleet run, synchronously: build specs, fan them at the
    server, write ledgers, write ``campaign.json``.

    ``repeat`` duplicates the batch N times — the dedup smoke lever: a
    ``repeat=8`` campaign over one binary must produce exactly one cold
    run and seven coalesced/warm results.
    """
    specs = build_specs(sources, **spec_options)
    if repeat > 1:
        base = specs
        specs = []
        for round_index in range(repeat):
            for spec in base:
                copy = dict(spec)
                if round_index:
                    copy["id"] = f"{spec['id']}~{round_index}"
                specs.append(copy)
    started = time.perf_counter()
    records = asyncio.run(submit_jobs(
        address, specs, concurrency=concurrency, out_dir=out_dir,
        retry_policy=retry_policy, on_event=on_event, breaker=breaker))
    result = CampaignResult(records=records,
                            seconds=time.perf_counter() - started)
    if out_dir is not None:
        manifest = Path(out_dir) / "campaign.json"
        manifest.write_text(
            json.dumps(result.as_dict(), indent=1, sort_keys=True) + "\n",
            encoding="utf-8")
        result.manifest_path = str(manifest)
    return result
