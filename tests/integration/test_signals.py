"""Signal-delivery compatibility (paper Fig. 10 + §4.3 priority rule)."""

import pytest

from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.isa.registers import Reg
from repro.sim.machine import Core, Kernel, SIGILL, SIGSEGV


def vector_binary():
    b = ProgramBuilder("sig")
    b.add_words("buf", [1, 2] + [0] * 8)
    b.set_text("""
_start:
    li a0, {buf}
    li a1, 2
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vse64.v v1, (a0)
    li a7, 93
    li a0, 0
    ecall
""")
    return b.build()


class TestGpRestoreOnSignal:
    def test_handler_observes_abi_gp(self):
        """If a signal lands while gp is clobbered by a SMILE trampoline,
        Chimera's pre-delivery hook must restore the ABI value before the
        user handler runs (Fig. 10)."""
        binary = vector_binary()
        result = ChimeraRewriter().rewrite(binary, RV64GC)
        runtime = ChimeraRuntime(result.binary)
        kernel = Kernel()
        runtime.install(kernel)
        proc = make_process(result.binary)
        proc.signal_handlers[SIGSEGV] = 0xCAFE0  # never executed here
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        cpu.set_reg(Reg.GP, 0x123456)  # mid-trampoline clobbered value
        kernel.deliver_signal(proc, cpu, SIGSEGV)
        assert cpu.get_reg(Reg.GP) == binary.global_pointer
        assert runtime.stats.signals_gp_restored == 1

    def test_no_restore_when_gp_already_correct(self):
        binary = vector_binary()
        result = ChimeraRewriter().rewrite(binary, RV64GC)
        runtime = ChimeraRuntime(result.binary)
        kernel = Kernel()
        runtime.install(kernel)
        proc = make_process(result.binary)
        proc.signal_handlers[SIGILL] = 0xCAFE0
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        kernel.deliver_signal(proc, cpu, SIGILL)
        assert runtime.stats.signals_gp_restored == 0


class TestPriorityOverUserHandlers:
    def test_chbp_fault_not_delivered_to_user_handler(self):
        """A user SIGSEGV handler must NOT intercept CHBP's deterministic
        faults — the kernel checks CHBP first (§4.3)."""
        binary = vector_binary()
        rewriter = ChimeraRewriter()
        result = rewriter.rewrite(binary, RV64GC)
        runtime = ChimeraRuntime(result.binary, rewriter=rewriter, original=binary)
        kernel = Kernel()
        runtime.install(kernel)
        proc = make_process(result.binary)
        # Register a user handler that would exit(42) if ever invoked.
        # (Handler address points at unmapped memory; reaching it would
        # crash the run, which the assertion below would catch.)
        proc.signal_handlers[SIGSEGV] = 0xDEAD000
        proc.signal_handlers[SIGILL] = 0xDEAD000
        res = kernel.run(proc, Core(0, RV64GC))
        assert res.ok, res.fault

    def test_user_handler_still_gets_non_chbp_faults(self):
        """A genuine user segfault falls through to the registered
        handler, which exits the program."""
        b = ProgramBuilder("uh")
        b.add_words("buf", [0] * 4)
        b.set_text("""
_start:
    li a0, 11              # SIGSEGV
    la a1, handler
    li a7, 134             # sigaction
    ecall
    li t0, 0x7f0000000
    ld t1, 0(t0)           # wild read: real user fault
    li a7, 93
    li a0, 1
    ecall
handler:
    li a7, 93
    li a0, 42
    ecall
""")
        b.mark_function("handler")
        binary = b.build()
        rewriter = ChimeraRewriter()
        result = rewriter.rewrite(binary, RV64GC)
        runtime = ChimeraRuntime(result.binary)
        kernel = Kernel()
        runtime.install(kernel)
        proc = make_process(result.binary)
        res = kernel.run(proc, Core(0, RV64GC))
        assert res.exit_code == 42  # user handler ran

    def test_handler_observes_prefault_registers(self):
        """The signal frame hands the user handler the interrupted
        context: registers hold their pre-fault values."""
        b = ProgramBuilder("sr")
        b.set_text("""
_start:
    li a0, 4               # SIGILL
    la a1, handler
    li a7, 134
    ecall
    li s2, 777
    .half 0x0000           # defined-illegal parcel: raises SIGILL
    li a7, 93
    li a0, 1
    ecall
handler:
    andi a0, s2, 0xff      # 777 & 0xff == 9: visible in the exit code
    li a7, 93
    ecall
""")
        b.mark_function("handler")
        binary = b.build()
        proc = make_process(binary)
        kernel = Kernel()
        res = kernel.run(proc, Core(0, RV64GCV))
        assert res.exit_code == 777 & 0xFF
