"""Chaos for the batch translation service itself.

:mod:`repro.chaos.pipeline_chaos` attacks the verification pipeline
inside one process; this module attacks the *service* wrapped around it
— the layer a fleet actually talks to.  Five scenarios, each ending the
only way the tentpole allows: every client record resolves (success or
a structured :class:`~repro.resilience.failures.JobFault`), zero hangs,
zero silent drops, and the byte-identity contract intact:

* **service-kill-restart** — SIGKILL the server subprocess mid-batch,
  restart it on the same socket and cache, and prove the campaign
  resumes to completion with exactly-once rewrites (one cache entry per
  release key, no stale journals, a duplicate-submission counterprobe
  that is 100% warm with the rewrite counter unmoved) and ledgers
  byte-identical to serial verification;
* **service-overload-shed** — flood a 1-slot server and prove bounded
  admission: every shed job carries ``job-overloaded`` with a
  ``retry_after_ms`` hint, admitted jobs still complete, the server
  answers ``stats`` mid-flood, and nothing disappears;
* **service-slow-loris** — a connection stalling mid-frame and one
  squatting idle are evicted by the read deadline while a healthy
  client on another connection is untouched;
* **service-deadline-storm** — a follower with a tiny ``deadline_ms``
  detaches from a shared run without cancelling the leader, and a storm
  of expired jobs all die as ``job-deadline-exceeded`` (never poison),
  after which the same key still verifies cleanly;
* **service-reset-mid-stream** — a client that vanishes after
  ``accepted`` leaves an *observed* ``orphaned_results`` tally, and a
  resubmission re-attaches through the cache instead of rewriting
  twice.

``python -m repro chaos <workload> --service`` drives
:func:`run_service_chaos`.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional

from repro.chaos.outcomes import ChaosReport, ScenarioResult
from repro.core.pipeline import CacheLayout, rewrite_and_verify
from repro.elf.binary import Binary
from repro.elf.fileformat import save_binary
from repro.isa.extensions import RV64GC, IsaProfile
from repro.resilience.failures import JOB_DEADLINE, JOB_OVERLOADED
from repro.resilience.policy import RetryPolicy
from repro.resilience.seeds import resolve_seed
from repro.service import client as client_mod
from repro.service.protocol import read_message, write_message
from repro.service.server import RewriteService

#: Per-scenario wall-clock ceiling: a scenario that cannot finish under
#: this is a hang, which is itself a failure.
_JOIN_SECONDS = 120.0

#: Retry budget for the kill-restart campaign: generous enough to ride
#: out a server restart (~seconds), bounded enough to fail a scenario
#: instead of hanging it.
_RESUME_POLICY = RetryPolicy(
    max_attempts=10, base_backoff=300, multiplier=2, max_backoff=2_000)

#: Surface faults immediately — the storm/flood scenarios assert on the
#: structured faults themselves, so retrying them away would hide the
#: behavior under test.
_NO_RETRY = RetryPolicy(max_attempts=1, base_backoff=10, multiplier=1,
                        max_backoff=10)


def _spec(job_id: str, path: str, *, target: str, seed: int,
          oracle_trials: int = 1, **extra) -> dict:
    spec = {"op": "submit", "id": job_id, "path": path, "target": target,
            "seed": seed, "oracle_trials": oracle_trials}
    spec.update(extra)
    return spec


def _serial_ledger(self_path: Path, target: IsaProfile, *, seed: int,
                   oracle_trials: int = 1) -> bytes:
    """The byte-identity reference: what ``repro verify`` would write."""
    from repro.elf.fileformat import load_binary_file

    pipe = rewrite_and_verify(load_binary_file(str(self_path)), target,
                              seed=seed, oracle_trials=oracle_trials,
                              executor="serial")
    return pipe.report.to_json().encode("utf-8")


# -- in-process service harness ----------------------------------------------


def _with_service(tmp: Path, coro_fn, *, shards: int = 4, jobs: int = 2,
                  **service_kw):
    """Run one async scenario body against a live in-process service."""

    async def main():
        layout = CacheLayout.resolve(tmp / "cache", shards, None)
        service = RewriteService(layout, jobs=jobs, **service_kw)
        address = await service.start(socket_path=str(tmp / "serve.sock"))
        server_task = asyncio.ensure_future(service.serve_until_shutdown())
        try:
            return await coro_fn(service, address)
        finally:
            service.shutdown()
            await server_task

    return asyncio.run(main())


async def _dial(address: str):
    return await client_mod.open_connection(address)


async def _close(writer) -> None:
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


# -- scenario 1: SIGKILL mid-batch, restart, resume --------------------------


def _start_server(sock: str, cache: str, *, env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--cache", cache, "--jobs", "2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _scenario_kill_restart(self_path: Path, *, target: IsaProfile,
                           seed: int, tmp: Path) -> ScenarioResult:
    name = "service-kill-restart"
    sock = str(tmp / "kill.sock")
    cache = tmp / "kill-cache"
    out_dir = tmp / "kill-out"
    address = f"unix:{sock}"
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parent.parent.parent)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")

    seeds = [seed + i for i in range(3)]
    specs = [_spec(f"job-{i}", str(self_path), target=target.name, seed=s)
             for i, s in enumerate(seeds)]

    proc = _start_server(sock, str(cache), env=env)
    proc2: Optional[subprocess.Popen] = None
    try:
        if not client_mod.wait_for_server(address, timeout=30.0):
            return ScenarioResult(name, False, "first server never came up")

        first_accept = threading.Event()
        box: dict = {}

        def on_event(event: dict) -> None:
            if event.get("event") in ("accepted", "progress"):
                first_accept.set()

        def campaign() -> None:
            box["records"] = asyncio.run(client_mod.submit_jobs(
                address, specs, concurrency=3, out_dir=out_dir,
                retry_policy=_RESUME_POLICY, on_event=on_event))

        thread = threading.Thread(target=campaign, daemon=True)
        thread.start()
        if not first_accept.wait(timeout=30.0):
            return ScenarioResult(name, False,
                                  "no job was ever accepted before the kill")
        # The batch is mid-flight: kill -9, no drain, no goodbye.
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10.0)
        proc2 = _start_server(sock, str(cache), env=env)
        if not client_mod.wait_for_server(address, timeout=30.0):
            return ScenarioResult(name, False, "restarted server never came up")
        thread.join(timeout=_JOIN_SECONDS)
        if thread.is_alive():
            return ScenarioResult(
                name, False,
                f"campaign hung past {_JOIN_SECONDS:g}s across the restart")

        records = box.get("records") or []
        if len(records) != len(specs) or any(r is None for r in records):
            return ScenarioResult(name, False,
                                  "campaign lost records (silent drop)")
        failed = [r for r in records if r.get("status") != "ok"]
        if failed:
            return ScenarioResult(
                name, False,
                f"{len(failed)} record(s) never resolved ok across the "
                f"restart: {[(r['id'], (r.get('fault') or {}).get('fault')) for r in failed]}")
        resumed = sum(1 for r in records if r.get("resumed"))
        if resumed < 1:
            return ScenarioResult(
                name, False,
                "no record resumed — the kill landed after the batch "
                "finished, which the accepted-event trigger should prevent")

        # Byte-identity: every ledger equals the serial reference.
        for i, s in enumerate(seeds):
            ledger = (out_dir / f"job-{i}.report.json").read_bytes()
            if ledger != _serial_ledger(self_path, target, seed=s):
                return ScenarioResult(
                    name, False,
                    f"ledger for seed {s} diverged from serial verify")

        # Exactly-once: one published entry per release key, no stale
        # journals, and a duplicate counterprobe that is 100% warm with
        # the rewrite counter unmoved.
        entries = sorted(cache.glob("**/*.self"))
        if len(entries) != len(seeds):
            return ScenarioResult(
                name, False,
                f"expected {len(seeds)} cache entries, found {len(entries)}")
        journals = sorted(cache.glob("**/journal/*.jsonl"))
        if journals:
            return ScenarioResult(
                name, False, f"stale journals left behind: "
                f"{[j.name for j in journals]}")
        before = client_mod.server_stats(address)["stats"]["rewrites"]
        probe_specs = [_spec(f"probe-{i}", str(self_path),
                             target=target.name, seed=s)
                       for i, s in enumerate(seeds)]
        probe = asyncio.run(client_mod.submit_jobs(
            address, probe_specs, concurrency=3,
            retry_policy=_NO_RETRY))
        not_warm = [r for r in probe if r.get("cache") != "warm"]
        if not_warm:
            return ScenarioResult(
                name, False,
                f"counterprobe was not all-warm: "
                f"{[(r['id'], r.get('cache')) for r in not_warm]}")
        after = client_mod.server_stats(address)["stats"]["rewrites"]
        if after != before:
            return ScenarioResult(
                name, False,
                f"counterprobe re-rewrote: rewrites {before} -> {after}")
        client_mod.shutdown_server(address)
        proc2.wait(timeout=30.0)
        proc2 = None
        return ScenarioResult(
            name, True,
            f"SIGKILL mid-batch survived: {len(records)} records ok "
            f"({resumed} resumed), ledgers byte-identical to serial, "
            f"{len(entries)} keys rewritten exactly once, counterprobe "
            "all-warm")
    finally:
        for p in (proc, proc2):
            if p is not None and p.poll() is None:
                p.kill()
                p.wait(timeout=10.0)


# -- scenario 2: overload flood with shedding --------------------------------


def _scenario_overload_shed(self_path: Path, *, target: IsaProfile,
                            seed: int, tmp: Path) -> ScenarioResult:
    name = "service-overload-shed"
    flood = 10

    async def body(service: RewriteService, address: str):
        specs = [_spec(f"flood-{i}", str(self_path), target=target.name,
                       seed=seed + 100 + i) for i in range(flood)]

        async def mid_flood_stats():
            # The event loop must stay responsive while every slot is
            # busy — stats answered from a separate connection mid-flood.
            await asyncio.sleep(0.01)
            reader, writer = await _dial(address)
            try:
                await write_message(writer, {"op": "stats"})
                reply = await asyncio.wait_for(read_message(reader), 10.0)
                return reply is not None and reply.get("event") == "stats"
            finally:
                await _close(writer)

        records, answered = await asyncio.gather(
            client_mod.submit_jobs(address, specs, concurrency=flood,
                                   retry_policy=_NO_RETRY),
            mid_flood_stats())
        return records, answered, service.stats

    with tempfile.TemporaryDirectory(dir=tmp) as sub:
        records, answered, stats = _with_service(
            Path(sub), body, jobs=2, max_inflight=1, max_queue=1)

    if any(r is None for r in records) or len(records) != flood:
        return ScenarioResult(name, False, "flood lost records (silent drop)")
    if not answered:
        return ScenarioResult(
            name, False, "server failed to answer stats mid-flood")
    ok = [r for r in records if r.get("status") == "ok"]
    shed = [r for r in records
            if (r.get("fault") or {}).get("fault") == JOB_OVERLOADED]
    other = [r for r in records if r not in ok and r not in shed]
    if other:
        return ScenarioResult(
            name, False,
            f"records ended outside ok/overloaded: "
            f"{[(r['id'], (r.get('fault') or {}).get('fault')) for r in other]}")
    if not ok:
        return ScenarioResult(name, False,
                              "shedding starved every job (zero goodput)")
    if not shed:
        return ScenarioResult(
            name, False,
            "a 10x flood of a 1-slot server shed nothing — admission "
            "bound is not engaging")
    bad_hint = [r for r in shed
                if not isinstance((r.get("fault") or {}).get("retry_after_ms"),
                                  int)
                or (r.get("fault") or {}).get("retry_after_ms") < 1]
    if bad_hint:
        return ScenarioResult(
            name, False,
            f"{len(bad_hint)} shed fault(s) missing a retry_after_ms hint")
    if stats.jobs_shed != len(shed):
        return ScenarioResult(
            name, False,
            f"stats.jobs_shed={stats.jobs_shed} but clients saw {len(shed)}")
    if stats.queue_depth != 0:
        return ScenarioResult(
            name, False, f"queue_depth={stats.queue_depth} never drained")
    return ScenarioResult(
        name, True,
        f"{len(ok)} admitted jobs completed, {len(shed)} shed with "
        "retry_after_ms, stats answered mid-flood, zero silent drops")


# -- scenario 3: slow-loris eviction -----------------------------------------


def _scenario_slow_loris(self_path: Path, *, target: IsaProfile,
                         seed: int, tmp: Path) -> ScenarioResult:
    name = "service-slow-loris"
    idle = 0.3

    async def body(service: RewriteService, address: str):
        # Connection A: half a frame, then silence — a classic loris.
        loris_r, loris_w = await _dial(address)
        loris_w.write(b'{"op": "submit", "id": "lor')
        await loris_w.drain()
        # Connection B: completes a ping, then squats idle.
        idle_r, idle_w = await _dial(address)
        await write_message(idle_w, {"op": "ping"})
        pong = await read_message(idle_r)

        async def final_event(reader):
            last = None
            try:
                while True:
                    event = await asyncio.wait_for(read_message(reader), 10.0)
                    if event is None:
                        return last
                    last = event
            except (asyncio.TimeoutError, ConnectionError, OSError):
                return last

        loris_seen, idle_seen = await asyncio.gather(
            final_event(loris_r), final_event(idle_r))
        await _close(loris_w)
        await _close(idle_w)

        # Connection C: a healthy client right after the evictions.
        healthy = await client_mod.submit_jobs(
            address,
            [_spec("healthy", str(self_path), target=target.name, seed=seed)],
            retry_policy=_NO_RETRY)
        return pong, loris_seen, idle_seen, healthy, service.stats

    with tempfile.TemporaryDirectory(dir=tmp) as sub:
        pong, loris_seen, idle_seen, healthy, stats = _with_service(
            Path(sub), body, idle_timeout=idle)

    if not pong or pong.get("event") != "pong":
        return ScenarioResult(name, False, "ping before idling failed")
    for label, seen in (("loris", loris_seen), ("idle", idle_seen)):
        detail = ((seen or {}).get("fault") or {}).get("detail", "")
        if "evicted" not in detail:
            return ScenarioResult(
                name, False,
                f"{label} connection was not told it was evicted: {seen!r}")
    if stats.slow_client_evictions != 2:
        return ScenarioResult(
            name, False,
            f"expected 2 evictions, stats says {stats.slow_client_evictions}")
    if len(healthy) != 1 or healthy[0].get("status") != "ok":
        return ScenarioResult(
            name, False,
            f"healthy client was collateral damage: {healthy!r}")
    return ScenarioResult(
        name, True,
        f"mid-frame and idle connections evicted after {idle:g}s, healthy "
        "client unaffected")


# -- scenario 4: deadline storm ----------------------------------------------


def _scenario_deadline_storm(self_path: Path, *, target: IsaProfile,
                             seed: int, tmp: Path) -> ScenarioResult:
    name = "service-deadline-storm"
    storm = 6

    async def body(service: RewriteService, address: str):
        # Leader (no deadline) and a coalescing follower whose 1ms
        # deadline expires while the shared run is still going: the
        # follower must detach without cancelling the leader.
        reader, writer = await _dial(address)
        leader_spec = _spec("leader", str(self_path), target=target.name,
                            seed=seed, oracle_trials=2)
        await write_message(writer, leader_spec)
        accepted = await asyncio.wait_for(read_message(reader), 30.0)
        follower_task = asyncio.ensure_future(client_mod.submit_jobs(
            address, [dict(leader_spec, id="follower", deadline_ms=1)],
            retry_policy=_NO_RETRY))
        leader_events = []
        while True:
            event = await asyncio.wait_for(read_message(reader), 30.0)
            if event.get("id") != "leader":
                continue
            if event.get("event") in ("result", "error"):
                leader_events.append(event)
                break
        await _close(writer)
        follower = (await follower_task)[0]

        storm_specs = [_spec(f"storm-{i}", str(self_path),
                             target=target.name, seed=seed + 200 + i,
                             deadline_ms=1) for i in range(storm)]
        stormed = await client_mod.submit_jobs(
            address, storm_specs, concurrency=storm,
            retry_policy=_NO_RETRY)
        # Storm replies race their runs: each client hears JOB_DEADLINE
        # the moment its wait expires, while the doomed run may still be
        # settling server-side.  Drain the in-flight table so the
        # control below starts a fresh run instead of coalescing onto a
        # dying one (a real client's retry backoff absorbs this race).
        deadline = time.monotonic() + _JOIN_SECONDS
        while service._inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        # Control: one stormed key, resubmitted with no deadline, must
        # verify cleanly — deadline faults never poison a key.
        control = await client_mod.submit_jobs(
            address,
            [_spec("control", str(self_path), target=target.name,
                   seed=seed + 200)],
            retry_policy=_NO_RETRY)
        return accepted, leader_events[0], follower, stormed, control[0], \
            service.stats

    with tempfile.TemporaryDirectory(dir=tmp) as sub:
        accepted, leader, follower, stormed, control, stats = _with_service(
            Path(sub), body, jobs=2, max_inflight=1, max_queue=32)

    if not accepted or accepted.get("event") != "accepted":
        return ScenarioResult(name, False,
                              f"leader was not accepted: {accepted!r}")
    if leader.get("event") != "result" or not leader.get("ok"):
        return ScenarioResult(
            name, False,
            f"leader run was cancelled or failed under the follower's "
            f"deadline: {leader!r}")
    follower_fault = (follower.get("fault") or {}).get("fault")
    if follower_fault != JOB_DEADLINE:
        return ScenarioResult(
            name, False,
            f"follower with deadline_ms=1 ended as {follower_fault!r}, "
            f"expected {JOB_DEADLINE} (cache={follower.get('cache')!r})")
    not_deadline = [r for r in stormed
                    if (r.get("fault") or {}).get("fault") != JOB_DEADLINE]
    if not_deadline:
        return ScenarioResult(
            name, False,
            f"{len(not_deadline)} storm job(s) did not die on deadline: "
            f"{[(r['id'], (r.get('fault') or {}).get('fault'), r.get('status')) for r in not_deadline]}")
    if stats.deadline_exceeded < storm + 1:
        return ScenarioResult(
            name, False,
            f"stats.deadline_exceeded={stats.deadline_exceeded}, expected "
            f">= {storm + 1}")
    if stats.jobs_quarantined or control.get("status") != "ok":
        return ScenarioResult(
            name, False,
            "deadline faults poisoned a key: control resubmit got "
            f"{(control.get('fault') or {}).get('fault') or control.get('status')}")
    if stats.queue_depth != 0:
        return ScenarioResult(
            name, False, f"queue_depth={stats.queue_depth} never drained")
    return ScenarioResult(
        name, True,
        f"follower detached on its deadline (leader ok), {storm} stormed "
        "jobs all died structurally, key stayed healthy")


# -- scenario 5: connection reset mid-result-stream --------------------------


def _scenario_reset_mid_stream(self_path: Path, *, target: IsaProfile,
                               seed: int, tmp: Path) -> ScenarioResult:
    name = "service-reset-mid-stream"

    async def body(service: RewriteService, address: str):
        reader, writer = await _dial(address)
        spec = _spec("reset", str(self_path), target=target.name,
                     seed=seed + 300)
        await write_message(writer, spec)
        accepted = await asyncio.wait_for(read_message(reader), 30.0)
        # Vanish without a goodbye, mid result stream.
        writer.transport.abort()
        # The run must still complete (and be observed as orphaned).
        for _ in range(600):
            if service.stats.queue_depth == 0 and not service._inflight:
                break
            await asyncio.sleep(0.05)
        orphaned = service.stats.orphaned_results
        rewrites_before = service.stats.rewrites
        redo = await client_mod.submit_jobs(
            address, [dict(spec, id="reset-redo")], retry_policy=_NO_RETRY)
        return accepted, orphaned, rewrites_before, redo[0], service.stats

    with tempfile.TemporaryDirectory(dir=tmp) as sub:
        accepted, orphaned, rewrites_before, redo, stats = _with_service(
            Path(sub), body)

    if not accepted or accepted.get("event") != "accepted":
        return ScenarioResult(name, False, f"job not accepted: {accepted!r}")
    if orphaned < 1:
        return ScenarioResult(
            name, False,
            "terminal event to a vanished client was not counted as an "
            "orphaned result")
    if rewrites_before != 1:
        return ScenarioResult(
            name, False,
            f"expected exactly 1 rewrite before the redo, saw "
            f"{rewrites_before}")
    if redo.get("status") != "ok" or redo.get("cache") not in ("warm",
                                                               "coalesced"):
        return ScenarioResult(
            name, False,
            f"redo did not re-attach idempotently: status="
            f"{redo.get('status')!r} cache={redo.get('cache')!r}")
    if stats.rewrites != 1:
        return ScenarioResult(
            name, False,
            f"redo re-rewrote: rewrites={stats.rewrites} (exactly-once "
            "broken)")
    return ScenarioResult(
        name, True,
        "vanished client's result counted orphaned; redo re-attached "
        f"({redo.get('cache')}) with zero extra rewrites")


# -- aggregate ---------------------------------------------------------------


def run_service_chaos(
    original: Binary,
    *,
    target: IsaProfile = RV64GC,
    jobs: int = 2,
    seed: Optional[int] = None,
) -> ChaosReport:
    """Run every service chaos scenario against *original*."""
    seed = resolve_seed(seed)
    report = ChaosReport()
    with tempfile.TemporaryDirectory(prefix="repro-service-chaos-") as tmp:
        root = Path(tmp)
        self_path = root / f"{original.name}.self"
        save_binary(original.clone(), self_path)
        for func in (_scenario_kill_restart,
                     _scenario_overload_shed,
                     _scenario_slow_loris,
                     _scenario_deadline_storm,
                     _scenario_reset_mid_stream):
            report.scenarios.append(
                func(self_path, target=target, seed=seed, tmp=root))
    return report
