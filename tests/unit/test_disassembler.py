"""Disassembler formatting and linear-sweep tests."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, dump, format_instruction
from repro.isa.instructions import Instruction, RawBytes


class TestLinearSweep:
    def test_mixed_width_stream(self):
        p = assemble("addi a0, a0, 1\nc.addi a1, 2\nadd a2, a0, a1\n")
        instrs = disassemble(p.code)
        assert [i.length for i in instrs] == [4, 2, 4]

    def test_data_islands_become_rawbytes(self):
        p = assemble("nop\n.half 0x0000\nnop\n")
        items = disassemble(p.code)
        assert isinstance(items[1], RawBytes)
        assert items[1].length == 2

    def test_stop_on_error_raises(self):
        from repro.isa.decoding import IllegalEncodingError

        p = assemble("nop\n.half 0x0000\n")
        with pytest.raises(IllegalEncodingError):
            disassemble(p.code, stop_on_error=True)

    def test_addresses_assigned(self):
        p = assemble("nop\nnop\n", base=0x2000)
        instrs = disassemble(p.code, 0x2000)
        assert [i.addr for i in instrs] == [0x2000, 0x2004]


class TestFormattingRoundtrip:
    """format_instruction output must re-assemble to identical bytes for
    every copyable instruction — the patcher's _format_copy relies on it."""

    CASES = [
        "addi a0, a1, -5",
        "add t0, t1, t2",
        "sh2add s2, s3, s4",
        "lw a0, 12(sp)",
        "sd s1, -8(s0)",
        "lui a5, 1000",
        "jalr ra, 4(t0)",
        "c.addi s0, 3",
        "c.mv a1, a2",
        "c.ld a2, 16(a0)",
        "c.sdsp s1, 24(sp)",
        "vsetvli t0, a0, e64",
        "vle64.v v3, (a1)",
        "vse32.v v4, (a2)",
        "vadd.vv v1, v2, v3",
        "vmacc.vv v5, v6, v7",
        "vadd.vx v1, v2, a3",
        "vadd.vi v1, v2, -4",
        "vmv.v.x v9, a5",
        "vmv.v.i v9, 11",
        "vredsum.vs v1, v2, v3",
        "ecall",
        "fence",
    ]

    @pytest.mark.parametrize("asm", CASES)
    def test_roundtrip(self, asm):
        original = assemble(asm + "\n").code
        instr = disassemble(original)[0]
        instr.addr = None  # unbound form, as the patcher's copy path uses
        text = format_instruction(instr)
        again = assemble(text + "\n").code
        assert again == original, f"{asm!r} -> {text!r}"

    def test_dump_multiline(self):
        p = assemble("nop\nret\n", base=0x100)
        listing = dump(p.code, 0x100)
        assert listing.count("\n") == 1
        assert "jalr" in listing

    def test_branch_formats_absolute_target(self):
        p = assemble("x:\nbeq a0, a1, x\n", base=0x500)
        text = format_instruction(disassemble(p.code, 0x500)[0])
        assert "0x500" in text
