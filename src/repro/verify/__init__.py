"""Verified patching: static admission gate + runtime rollback.

Two halves over the same :class:`~repro.verify.records.PatchRecord`
provenance the patcher emits:

* :mod:`repro.verify.admission` — re-check every patched region's
  invariants (SMILE bit pinning, target/pointer non-executability, CFG
  integrity of the relocated window) and co-execute it against the
  original under randomized state before release;
* :mod:`repro.verify.rollback` — attribute unexpected runtime faults to
  their patch, quarantine exactly that patch back to the trap-fallback
  encoding, and re-admit it after a verified backoff.
"""

from repro.verify.admission import EXECUTORS, AdmissionGate, verify_binary
from repro.verify.degrade import DegradeError, degrade_region_to_trap
from repro.verify.oracle import DifferentialOracle
from repro.verify.records import PatchRecord, record_for
from repro.verify.report import CheckResult, RegionVerdict, VerifyReport
from repro.verify.rollback import (
    DEFAULT_HEAL_POLICY,
    HealEntry,
    PatchHealer,
    RollbackJournal,
)

__all__ = [
    "AdmissionGate",
    "CheckResult",
    "DEFAULT_HEAL_POLICY",
    "DegradeError",
    "DifferentialOracle",
    "EXECUTORS",
    "degrade_region_to_trap",
    "HealEntry",
    "PatchHealer",
    "PatchRecord",
    "RegionVerdict",
    "RollbackJournal",
    "VerifyReport",
    "record_for",
    "verify_binary",
]
