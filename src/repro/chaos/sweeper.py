"""Trampoline attack sweeper: force a jump to every patched byte.

The paper's determinism argument (§3.2, Fig. 2/4) is quantified over
*every* erroneous entry point: any indirect jump into a SMILE trampoline
— head, the jalr (P1), the pinned mid-parcels (P2/P3), padding,
relocated-neighbor boundaries — must either execute correctly (head) or
raise a fault the runtime recovers or kills deterministically.  The
sweeper checks that claim exhaustively: for each byte offset of each
patched region it builds a fresh process from the rewritten binary,
sets the pc there (the most adversarial indirect jump possible), and
classifies what happens under the real kernel + runtime.

Classification rules (see :mod:`repro.chaos.outcomes`):

* an entry that reaches ``.chimera.text`` or whose fault the runtime
  redirects is ``recovered-redirect``;
* a *modified original instruction boundary* must fault within
  ``GRACE_STEPS`` retired instructions — the P1 jalr legally retires
  once before its fetch faults, hence a grace window rather than zero;
  later (or never) means unintended instructions ran: ``silent-divergence``;
* a prompt fault the runtime declines is a ``deterministic-kill``
  (the kernel's default action), as is a structured
  :class:`~repro.sim.faults.UnrecoverableFault`;
* offsets that are not original boundaries (odd parcels,
  mid-instruction bytes) or whose bytes the rewriter never touched are
  architecturally unreachable / unchanged — ``benign-undefined`` unless
  the simulator crashes, which is always ``python-crash``.
"""

from __future__ import annotations

from typing import Optional

from repro.chaos.outcomes import (
    ADMISSION_ESCAPE,
    BENIGN_UNDEFINED,
    DETERMINISTIC_KILL,
    PYTHON_CRASH,
    RECOVERED_REDIRECT,
    SILENT_DIVERGENCE,
    AttackResult,
    SweepReport,
)
from repro.core.runtime import ChimeraRuntime
from repro.core.smile import smile_offset_label
from repro.elf.binary import Binary
from repro.elf.loader import make_process
from repro.isa.decoding import IllegalEncodingError, decode
from repro.isa.extensions import PROFILES
from repro.sim.faults import (
    EcallTrap,
    ExitRequest,
    SimFault,
    UnrecoverableFault,
)
from repro.sim.machine import Core, Kernel
from repro.sim.syscalls import handle_syscall
from repro.telemetry import current as telemetry_current


class TrampolineAttackSweeper:
    """Sweep every patched byte of one rewritten binary."""

    #: Retired instructions a modified boundary may legally execute
    #: before its deterministic fault (the P1 jalr retires, then the
    #: fetch at its data-pointer target faults).
    GRACE_STEPS = 4
    #: Step budget per attack; entries that run this long without a
    #: fault are classified by the boundary/modified rules.
    MAX_STEPS = 64

    def __init__(
        self,
        original: Binary,
        rewritten: Binary,
        *,
        rewriter=None,
        max_regions: int = 0,
        injector=None,
        admitted: Optional[frozenset[int]] = None,
    ):
        meta = rewritten.metadata.get("chimera")
        if meta is None:
            raise ValueError(f"{rewritten.name} was not produced by ChimeraRewriter")
        self.original = original
        self.rewritten = rewritten
        self.rewriter = rewriter
        self.max_regions = max_regions
        #: Optional observer installed on every attack's CPU (e.g.
        #: PcAssertionInjector, which asserts fault.pc propagation on
        #: each of the thousands of faults a sweep raises).
        self.injector = injector
        #: Region starts the static admission gate admitted.  A hard
        #: failure inside an admitted region escalates to
        #: ``admission-escape``: every admitted region must survive the
        #: full P1/P2/P3 sweep, or the verifier's invariants are wrong.
        self.admitted = admitted
        self.regions: list[tuple[int, int, str]] = [
            tuple(r) for r in meta.get("patched_regions", ())
        ]
        self.core_profile = PROFILES[meta["target_profile"]]
        self._ct_range: Optional[tuple[int, int]] = None
        if rewritten.has_section(".chimera.text"):
            ct = rewritten.section(".chimera.text")
            self._ct_range = (ct.addr, ct.end)

    # -- enumeration -------------------------------------------------------

    def sweep(self, mode: str = "smile") -> SweepReport:
        """Attack every byte offset of every patched region."""
        report = SweepReport(binary=self.rewritten.name, mode=mode)
        regions = self.regions
        if self.max_regions > 0 and len(regions) > self.max_regions:
            report.skipped_regions = len(regions) - self.max_regions
            regions = regions[: self.max_regions]
        telemetry = telemetry_current()
        if self.admitted is not None:
            swept_starts = {start for start, _, _ in regions}
            report.verified_regions = len(self.admitted & swept_starts)
            report.rejected_regions = len(swept_starts - self.admitted)
        for start, end, kind in regions:
            boundaries = self._original_boundaries(start, end)
            for addr in range(start, end):
                result = self._attack(addr, start, end, kind, boundaries)
                if (self.admitted is not None and start in self.admitted
                        and result.outcome in (SILENT_DIVERGENCE, PYTHON_CRASH)):
                    result.outcome = ADMISSION_ESCAPE
                    result.detail = ("verifier admitted this region; "
                                     + result.detail)
                report.results.append(result)
                if telemetry.enabled:
                    telemetry.metrics.inc(
                        "chaos.outcomes", mode=mode, outcome=result.outcome)
        if telemetry.enabled and report.skipped_regions:
            telemetry.metrics.inc(
                "chaos.skipped_regions", report.skipped_regions, mode=mode)
        return report

    def _original_boundaries(self, start: int, end: int) -> dict[int, int]:
        """addr -> original instruction length for boundaries in [start, end).

        A patched region always starts at an original boundary; walking
        the *original* bytes from there recovers every interior one.
        """
        text = self.original.text
        bounds: dict[int, int] = {}
        addr = start
        while addr < end:
            try:
                instr = decode(text.data, addr - text.addr, addr=addr)
                length = instr.length
            except IllegalEncodingError:
                length = 2
            bounds[addr] = length
            addr += length
        return bounds

    def _bytes_modified(self, addr: int, length: int) -> bool:
        o, r = self.original.text, self.rewritten.text
        span = min(length, o.end - addr, r.end - addr)
        return o.read(addr, span) != r.read(addr, span)

    # -- one attack --------------------------------------------------------

    def _attack(
        self,
        addr: int,
        start: int,
        end: int,
        kind: str,
        boundaries: dict[int, int],
    ) -> AttackResult:
        offset = addr - start
        boundary = addr in boundaries
        modified = self._bytes_modified(addr, boundaries.get(addr, 1))
        if kind == "trap":
            label = "trap-site" if boundary else "trap-interior"
        else:
            label = smile_offset_label(offset)

        recovered = False
        entered_ct = False
        killed: Optional[SimFault] = None
        exited = False
        first_fault_step: Optional[int] = None
        steps = 0
        detail = ""
        try:
            kernel = Kernel()
            runtime = ChimeraRuntime(
                self.rewritten, rewriter=self.rewriter, original=self.original
            )
            runtime.install(kernel)
            process = make_process(self.rewritten)
            cpu = kernel.make_cpu(process, Core(0, self.core_profile))
            if self.injector is not None:
                self.injector.install(kernel=kernel, runtime=runtime, cpu=cpu)
            cpu.pc = addr  # the forced indirect jump
            while steps < self.MAX_STEPS:
                try:
                    cpu.step()
                except ExitRequest:
                    exited = True
                    break
                except EcallTrap:
                    try:
                        handle_syscall(kernel, process, cpu)
                    except ExitRequest:
                        exited = True
                        break
                    except UnrecoverableFault as unrec:
                        killed = unrec
                        detail = f"structured: {unrec.args[0]}"
                        break
                except SimFault as fault:
                    if first_fault_step is None:
                        first_fault_step = steps
                    try:
                        handled = kernel.dispatch_fault(process, cpu, fault)
                    except UnrecoverableFault as unrec:
                        killed = unrec
                        detail = f"structured: {unrec.args[0]}"
                        break
                    if handled:
                        recovered = True
                        detail = f"{type(fault).__name__} redirected"
                        break
                    killed = fault
                    detail = f"unhandled {type(fault).__name__}"
                    break
                steps += 1
                if self._ct_range and self._ct_range[0] <= cpu.pc < self._ct_range[1]:
                    entered_ct = True
                    detail = "flowed into .chimera.text"
                    break
        except Exception as exc:  # the one place a broad except is the point
            return AttackResult(
                addr, start, end, kind, offset, label, boundary, modified,
                PYTHON_CRASH, f"{type(exc).__name__}: {exc}",
            )

        outcome = self._classify(
            boundary, modified, recovered or entered_ct, killed, exited,
            first_fault_step,
        )
        return AttackResult(
            addr, start, end, kind, offset, label, boundary, modified,
            outcome, detail,
        )

    def _classify(
        self,
        boundary: bool,
        modified: bool,
        recovered: bool,
        killed: Optional[SimFault],
        exited: bool,
        first_fault_step: Optional[int],
    ) -> str:
        must_fault = boundary and modified
        late = first_fault_step is not None and first_fault_step > self.GRACE_STEPS
        if recovered:
            # Legal head entry, or a fault the runtime redirected.  A
            # *late* recovery still ran unintended instructions first.
            return SILENT_DIVERGENCE if (must_fault and late) else RECOVERED_REDIRECT
        if must_fault and (first_fault_step is None or late):
            # Ran unintended instructions: the hazard the paper rules out.
            return SILENT_DIVERGENCE
        if killed is not None:
            return DETERMINISTIC_KILL
        # No fault at all: step budget ran out or the program exited.
        del exited  # both are benign for non-promised entry points
        return BENIGN_UNDEFINED
