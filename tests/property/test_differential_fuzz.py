"""Differential fuzzing: random programs, original vs rewritten execution.

Hypothesis generates small structured programs (scalar filler, vector
episodes, loops, stores), which run natively on an extension core and —
after rewriting by each system — on a base core.  Exit state (registers
of interest + the data segment) must match exactly.  This is the §6.3
correctness claim tested over a program space rather than a benchmark
list.

Deterministic replay: generation is seeded from the ``REPRO_FUZZ_SEED``
environment variable (default 0), so two runs with the same seed explore
the same program sequence.  On failure the seed is printed in the pytest
report (see ``conftest.py`` here); replay with e.g.::

    REPRO_FUZZ_SEED=1234 PYTHONPATH=src python -m pytest tests/property -q
"""

import os

import pytest
from hypothesis import HealthCheck, given, seed, settings, strategies as st

from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.machine import Core, Kernel

# -- program generator -------------------------------------------------------

SCALAR_OPS = ("add", "sub", "xor", "or", "and", "mul")
VECTOR_OPS = ("vadd.vv", "vsub.vv", "vmul.vv", "vxor.vv")
REGS = ("a2", "a3", "a4", "a5", "t3", "t4")


@st.composite
def scalar_stmt(draw):
    op = draw(st.sampled_from(SCALAR_OPS))
    dst, a, b = (draw(st.sampled_from(REGS)) for _ in range(3))
    return f"    {op} {dst}, {a}, {b}"


@st.composite
def store_stmt(draw):
    reg = draw(st.sampled_from(REGS))
    off = draw(st.integers(min_value=0, max_value=15)) * 8
    return f"    sd {reg}, {off}(s0)"


@st.composite
def load_stmt(draw):
    reg = draw(st.sampled_from(REGS))
    off = draw(st.integers(min_value=0, max_value=15)) * 8
    return f"    ld {reg}, {off}(s0)"


@st.composite
def compressed_stmt(draw):
    reg = draw(st.sampled_from(("a2", "a3", "a4", "a5")))
    imm = draw(st.integers(min_value=1, max_value=15))
    return f"    c.addi {reg}, {imm}"


@st.composite
def vector_episode(draw, idx):
    avl = draw(st.integers(min_value=1, max_value=6))
    op = draw(st.sampled_from(VECTOR_OPS))
    voff = draw(st.integers(min_value=0, max_value=3)) * 64
    lines = [
        f"    li t0, {avl}",
        "    vsetvli t0, t0, e64",
        f"    addi t1, s1, {voff}",
        "    vle64.v v1, (t1)",
        f"    {op} v2, v1, v1",
        "    vse64.v v2, (t1)",
    ]
    if draw(st.booleans()):
        lines.append(f"    sh{draw(st.integers(min_value=1, max_value=3))}add a2, a2, a3")
    return "\n".join(lines)


@st.composite
def block(draw, idx):
    stmts = draw(st.lists(
        st.one_of(scalar_stmt(), store_stmt(), load_stmt(), compressed_stmt()),
        min_size=2, max_size=8,
    ))
    if draw(st.integers(min_value=0, max_value=2)) == 0:
        pos = draw(st.integers(min_value=0, max_value=len(stmts)))
        stmts.insert(pos, draw(vector_episode(idx)))
    return "\n".join(stmts)


@st.composite
def program(draw):
    n_blocks = draw(st.integers(min_value=1, max_value=4))
    loop_count = draw(st.integers(min_value=1, max_value=3))
    body = "\n".join(draw(block(i)) for i in range(n_blocks))
    return f"""
_start:
    li s0, {{buf}}
    li s1, {{vbuf}}
    li s2, {loop_count}
top:
{body}
    addi s2, s2, -1
    bnez s2, top
    li t0, {{out}}
    sd a2, 0(t0)
    sd a3, 8(t0)
    sd a4, 16(t0)
    sd a5, 24(t0)
    li a7, 93
    li a0, 0
    ecall
"""


def build(text: str):
    b = ProgramBuilder("fuzz")
    b.add_words("buf", [(i * 2654435761) % (1 << 62) for i in range(16)])
    b.add_words("vbuf", [(i * 40503) % (1 << 60) for i in range(32)])
    b.add_words("out", [0] * 4)
    b.set_text(text)
    return b.build()


def data_snapshot(binary, proc) -> bytes:
    return bytes(proc.space.segment_at(binary.data.addr).data)


def run_native(binary):
    proc = make_process(binary)
    res = Kernel().run(proc, Core(0, RV64GCV), max_instructions=2_000_000)
    assert res.ok, f"native run failed: {res.fault}"
    return data_snapshot(binary, proc)


#: Deterministic generation: every @given test is seeded with this, so
#: a failing sequence replays exactly under the same REPRO_FUZZ_SEED.
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))

FUZZ_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestChimeraDifferential:
    @seed(FUZZ_SEED)
    @given(text=program())
    @FUZZ_SETTINGS
    def test_downgrade_preserves_state(self, text):
        binary = build(text)
        expected = run_native(binary)
        rewriter = ChimeraRewriter()
        result = rewriter.rewrite(binary, RV64GC)
        proc = make_process(result.binary)
        kernel = Kernel()
        ChimeraRuntime(result.binary, rewriter=rewriter, original=binary).install(kernel)
        res = kernel.run(proc, Core(0, RV64GC), max_instructions=4_000_000)
        assert res.ok, f"rewritten run failed: {res.fault}\nprogram:\n{text}"
        assert data_snapshot(binary, proc) == expected, f"state diverged:\n{text}"

    @seed(FUZZ_SEED)
    @given(text=program())
    @FUZZ_SETTINGS
    def test_empty_patch_identity(self, text):
        """Empty patching on an extension core must be a perfect identity."""
        binary = build(text)
        expected = run_native(binary)
        rewriter = ChimeraRewriter(mode="empty")
        result = rewriter.rewrite(binary, RV64GC)
        proc = make_process(result.binary)
        kernel = Kernel()
        ChimeraRuntime(result.binary).install(kernel)
        res = kernel.run(proc, Core(0, RV64GCV), max_instructions=4_000_000)
        assert res.ok, f"{res.fault}\nprogram:\n{text}"
        assert data_snapshot(binary, proc) == expected


class TestBaselineDifferential:
    @seed(FUZZ_SEED)
    @given(text=program())
    @FUZZ_SETTINGS
    def test_safer_preserves_state(self, text):
        from repro.baselines.safer import SaferRewriter, SaferRuntime

        binary = build(text)
        expected = run_native(binary)
        result = SaferRewriter().rewrite(binary, RV64GC)
        proc = make_process(result.binary)
        kernel = Kernel()
        SaferRuntime(result.binary).install(kernel)
        res = kernel.run(proc, Core(0, RV64GC), max_instructions=4_000_000)
        assert res.ok, f"{res.fault}\nprogram:\n{text}"
        assert data_snapshot(binary, proc) == expected

    @seed(FUZZ_SEED)
    @given(text=program())
    @FUZZ_SETTINGS
    def test_strawman_preserves_state(self, text):
        from repro.baselines.strawman import rewrite_strawman

        binary = build(text)
        expected = run_native(binary)
        result = rewrite_strawman(binary, RV64GC)
        proc = make_process(result.binary)
        kernel = Kernel()
        ChimeraRuntime(result.binary).install(kernel)
        res = kernel.run(proc, Core(0, RV64GC), max_instructions=4_000_000)
        assert res.ok, f"{res.fault}\nprogram:\n{text}"
        assert data_snapshot(binary, proc) == expected

    @seed(FUZZ_SEED)
    @given(text=program())
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_armore_preserves_state(self, text):
        from repro.baselines.armore import ArmoreRewriter, ArmoreRuntime

        binary = build(text)
        expected = run_native(binary)
        result = ArmoreRewriter().rewrite(binary, RV64GC)
        proc = make_process(result.binary)
        kernel = Kernel()
        runtime = ArmoreRuntime(result.binary)
        runtime.install(kernel)
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        runtime.attach_cpu(cpu)
        res = kernel.run(proc, Core(0, RV64GC), cpu=cpu, max_instructions=4_000_000)
        assert res.ok, f"{res.fault}\nprogram:\n{text}"
        assert data_snapshot(binary, proc) == expected

    @seed(FUZZ_SEED)
    @given(text=program())
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_multiverse_preserves_state(self, text):
        from repro.baselines.multiverse import MultiverseRewriter, MultiverseRuntime

        binary = build(text)
        expected = run_native(binary)
        result = MultiverseRewriter().rewrite(binary, RV64GC)
        proc = make_process(result.binary)
        kernel = Kernel()
        MultiverseRuntime(result.binary).install(kernel)
        res = kernel.run(proc, Core(0, RV64GC), max_instructions=4_000_000)
        assert res.ok, f"{res.fault}\nprogram:\n{text}"
        assert data_snapshot(binary, proc) == expected
