"""Baseline systems the paper compares against (Table 1, §6).

* :mod:`repro.baselines.fam` — scheduling-based fault-and-migrate [39];
* :mod:`repro.baselines.melf` — compilation-based multivariant (MELF [60]);
* :mod:`repro.baselines.safer` — binary regeneration with proactive
  indirect-jump checks (Safer [49]);
* :mod:`repro.baselines.armore` — relocate-everything binary patching
  (ARMore [26]), trap-based beyond single-``jal`` reach;
* :mod:`repro.baselines.strawman` — in-place patching with trap-based
  trampolines everywhere (the §6.2 strawman).
"""

from repro.baselines.strawman import StrawmanPatcher
from repro.baselines.safer import SaferRewriter, SaferRuntime
from repro.baselines.armore import ArmoreRewriter, ArmoreRuntime
from repro.baselines.fam import FamRuntime
from repro.baselines.melf import build_melf_variants

__all__ = [
    "StrawmanPatcher",
    "SaferRewriter",
    "SaferRuntime",
    "ArmoreRewriter",
    "ArmoreRuntime",
    "FamRuntime",
    "build_melf_variants",
]
