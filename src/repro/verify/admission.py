"""Static admission gate: verify every patched region before release.

Four checks per :class:`~repro.verify.records.PatchRecord` (DESIGN.md
"Verified patching"):

* **encoding** — the released text bytes equal the record's golden
  patch, the SMILE bit-pinning invariants hold on those live bytes
  (bits 16-20 of the auipc U field pinned to ``11111``, reserved P2/P3
  parcels), padding parcels that cover an original boundary stay
  reserved, and trap patches are real ebreaks;
* **target** — the trampoline's computed target lands inside
  ``.chimera.text`` and decodes, and the P1 data pointer (gp, or the
  Fig. 5 register's reconstructed value) points into non-executable
  memory so partial execution faults;
* **cfg** — every interior original boundary is either redirected by
  the fault table (to a legal, executable target) or sits on a parcel
  that faults deterministically; a bounded walk of the relocated block
  re-resolves every copied branch and refuses unresolvable indirect
  jumps the original window never had;
* **oracle** — the bounded differential oracle
  (:mod:`repro.verify.oracle`) co-executes the window against the
  original under randomized state.

A region is *admitted* iff every check passes.  ``python -m repro
verify`` drives the gate; the chaos sweeper cross-checks admitted
regions against the full P1/P2/P3 attack sweep (any hard failure in an
admitted region is an ``admission-escape``).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Callable, Optional

from repro.core.procpool import (
    FaultIsolatedPool,
    PoolBrokenError,
    PoolPayload,
    RegionWorkItem,
)
from repro.core.smile import smile_window_target, smile_window_violations
from repro.elf.binary import Binary, Perm
from repro.isa.decoding import IllegalEncodingError, decode
from repro.isa.fields import sign_extend
from repro.resilience.failures import (
    POOL_BROKEN,
    RESOLVED_QUARANTINED,
    RESOLVED_RETRIED,
    VERIFY_ERROR,
    WORKER_CRASH,
    WORKER_HANG,
    DeadlineExceededError,
    RegionFault,
)
from repro.resilience.policy import PIPELINE_RETRY_POLICY, RetryPolicy
from repro.resilience.seeds import resolve_seed
from repro.telemetry import current as telemetry_current
from repro.verify.oracle import DifferentialOracle
from repro.verify.records import PatchRecord
from repro.verify.report import CheckResult, RegionVerdict, VerifyReport

#: Bounded relocated-block walk length (instructions).
_WALK_BUDGET = 96

EXECUTORS = ("serial", "thread", "process")


class AdmissionGate:
    """Verify one (original, rewritten) pair region by region."""

    def __init__(
        self,
        original: Binary,
        rewritten: Binary,
        *,
        seed: Optional[int] = None,
        oracle_trials: int = 2,
        oracle_max_steps: int = 512,
        max_oracle_regions: int = 0,
        jobs: int = 1,
        liveness=None,
        executor: str = "thread",
        region_timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        injector=None,
        slots=None,
        job_id=None,
        deadline: Optional[float] = None,
    ):
        meta = rewritten.metadata.get("chimera")
        if meta is None:
            raise ValueError(f"{rewritten.name} was not produced by ChimeraRewriter")
        records = meta.get("patch_records")
        if records is None:
            raise ValueError(
                f"{rewritten.name} carries no patch records; re-rewrite with a "
                "current patcher before verification")
        self.original = original
        self.rewritten = rewritten
        self.meta = meta
        self.records: tuple[PatchRecord, ...] = tuple(records)
        self.seed = resolve_seed(seed)
        self.compressed = bool(original.metadata.get("has_rvc", True))
        #: 0 = run the oracle on every region; a positive cap bounds the
        #: expensive co-execution on large synthetic binaries (static
        #: checks always run on all regions; the skip is reported).
        self.max_oracle_regions = max_oracle_regions
        #: Worker threads for the per-region fan-out (1 = serial).  Every
        #: check is read-only over shared state — the oracle builds fresh
        #: processes per trial and each trial's RNG is derived from
        #: (seed, region, trial) alone — so results are identical for any
        #: job count; only the wall-clock changes.
        self.jobs = max(1, jobs)
        #: Execution substrate for the fan-out: "serial" runs in-line,
        #: "thread" shares the interpreter (debuggable, no isolation),
        #: "process" dispatches picklable work items to a
        #: :class:`~repro.core.procpool.FaultIsolatedPool` so a crashed
        #: or hung region can never take down the release verification.
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}")
        self.executor = executor
        #: Wall-clock watchdog per region (process executor only; a hung
        #: thread cannot be killed).  None disables the watchdog.
        self.region_timeout = region_timeout
        self.retry_policy = retry_policy or PIPELINE_RETRY_POLICY
        #: Optional chaos hook (``before_region(idx, attempt, record)``)
        #: consulted before every verification attempt.
        self.injector = injector
        #: Optional :class:`~repro.core.procpool.WorkerSlotArbiter` the
        #: batch service shares across concurrent jobs (process
        #: executor only): the pool sizes itself to its fair share.
        self.slots = slots
        self.job_id = job_id
        #: Absolute ``time.monotonic()`` instant the whole run must not
        #: outlive; checked between regions and between retry attempts,
        #: and threaded into the process pool's scheduling loop.
        self.deadline = deadline
        self.oracle = DifferentialOracle(
            original, rewritten, seed=self.seed,
            trials=oracle_trials, max_steps=oracle_max_steps,
            liveness=liveness)
        self._ct = (rewritten.section(".chimera.text")
                    if rewritten.has_section(".chimera.text") else None)

    # -- public API ---------------------------------------------------------

    def verify(
        self,
        *,
        on_region: Optional[Callable[[int, RegionVerdict, bool], None]] = None,
        precomputed: Optional[dict[int, tuple[RegionVerdict, bool]]] = None,
    ) -> VerifyReport:
        """Verify every region and assemble the ledger.

        ``on_region(idx, verdict, oracle_ran)`` fires the moment each
        *fresh, non-quarantined* verdict settles — the run journal hangs
        off it.  ``precomputed`` (index -> (verdict, oracle_ran)) skips
        regions a resumed run already settled; verdicts are merged back
        in record order so the report is byte-identical either way.
        """
        telemetry = telemetry_current()
        report = VerifyReport(
            binary=self.rewritten.name,
            target=self.meta["target_profile"],
            seed=self.seed,
        )
        done: dict[int, tuple[RegionVerdict, bool]] = dict(precomputed or {})
        faults: list[RegionFault] = []
        indices = [idx for idx in range(len(self.records)) if idx not in done]
        with telemetry.span("verify.admission", binary=self.rewritten.name,
                            regions=len(self.records), jobs=self.jobs,
                            executor=self.executor):
            if indices:
                if self.executor == "process":
                    self._verify_process(indices, done, faults, on_region,
                                         telemetry)
                elif self.executor == "thread" and self.jobs > 1 \
                        and len(indices) > 1:
                    self._verify_threaded(indices, done, faults, on_region)
                else:
                    for idx in indices:
                        self._check_deadline()
                        self._settle(idx, *self._verify_with_retry(idx),
                                     done=done, faults=faults,
                                     on_region=on_region)
            for idx in sorted(done):
                verdict, oracle_ran = done[idx]
                if not oracle_ran:
                    report.oracle_skipped += 1
                report.regions.append(verdict)
                if telemetry.enabled:
                    telemetry.metrics.inc(
                        "verify.regions", kind=verdict.kind,
                        admitted=str(verdict.admitted).lower())
        faults.sort(key=lambda f: (f.start, f.attempt, f.fault))
        report.faults.extend(faults)
        return report

    # -- executors ----------------------------------------------------------

    def _check_deadline(self) -> None:
        """Raise if the job's end-to-end deadline has passed.  Raised
        *between* units of work, never inside a region's try block —
        the pipeline converts it into a structured fault and the run
        journal keeps every verdict settled so far."""
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise DeadlineExceededError(
                f"job deadline expired during verification of "
                f"{self.rewritten.name}")

    def _settle(self, idx, verdict, oracle_ran, region_faults, *,
                done, faults, on_region) -> None:
        faults.extend(region_faults)
        if verdict is None:  # quarantined: retries exhausted
            done[idx] = (self._quarantine_verdict(idx, region_faults), False)
            return
        done[idx] = (verdict, oracle_ran)
        if on_region is not None:
            on_region(idx, verdict, oracle_ran)

    def _verify_threaded(self, indices, done, faults, on_region) -> None:
        # Settle the oracle's lazy one-shot analysis on this thread;
        # afterwards every worker only reads shared state.
        self.oracle.prepare()
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            futures = {pool.submit(self._verify_with_retry, idx): idx
                       for idx in indices}
            for future in as_completed(futures):
                idx = futures[future]
                self._settle(idx, *future.result(), done=done, faults=faults,
                             on_region=on_region)

    def _verify_process(self, indices, done, faults, on_region,
                        telemetry) -> None:
        """Fan out across a crash-/hang-tolerant process pool.

        Each worker rebuilds the gate from a pickled payload carrying
        the *resolved* seed, so verdicts depend only on (payload, region
        index) — identical bytes regardless of worker, attempt, or a
        mid-run ``REPRO_FUZZ_SEED`` change.
        """
        payload = PoolPayload(
            original=self.original, rewritten=self.rewritten,
            gate_config={
                "seed": self.seed,
                "oracle_trials": self.oracle.trials,
                "oracle_max_steps": self.oracle.max_steps,
                "max_oracle_regions": self.max_oracle_regions,
            },
            liveness=self.oracle._liveness,
            injector=self.injector,
        )
        items = [RegionWorkItem(idx, self.records[idx].start,
                                self.records[idx].end, self.records[idx].kind,
                                self.seed)
                 for idx in indices]
        pool = FaultIsolatedPool(
            payload, self.jobs, region_timeout=self.region_timeout,
            retry_policy=self.retry_policy, telemetry=telemetry,
            labels={"binary": self.rewritten.name},
            slots=self.slots,
            job_id=self.job_id if self.job_id is not None
            else self.rewritten.name,
            deadline=self.deadline)

        pool_quarantined: set[int] = set()

        def on_complete(outcome) -> None:
            faults.extend(outcome.faults)
            if outcome.quarantined:
                if all(f.fault in (WORKER_CRASH, WORKER_HANG)
                       for f in outcome.faults):
                    pool_quarantined.add(outcome.index)
                done[outcome.index] = (
                    self._quarantine_verdict(outcome.index, outcome.faults),
                    False)
                return
            verdict = RegionVerdict.from_dict(outcome.verdict)
            done[outcome.index] = (verdict, outcome.oracle_ran)
            if on_region is not None:
                on_region(outcome.index, verdict, outcome.oracle_ran)

        try:
            pool.run(items, on_complete=on_complete)
        except PoolBrokenError as exc:
            # The pool itself could not be brought up (payload failed to
            # unpickle, fork bomb guard, ...).  Verification must still
            # complete: record the fault and finish in-process.
            if telemetry.enabled:
                telemetry.metrics.inc("pipeline.pool_fallbacks",
                                      binary=self.rewritten.name)
            first, last = self.records[0], self.records[-1]
            faults.append(RegionFault(
                start=first.start, end=last.end, region_kind="pipeline",
                fault=POOL_BROKEN, attempt=1, detail=str(exc)))
            for idx in indices:
                if idx in pool_quarantined:
                    # The quarantine was an artifact of the collapsing
                    # pool (only crash/hang faults, never an in-process
                    # verdict): the serial redo below is its real retry.
                    done.pop(idx, None)
                    rec = self.records[idx]
                    for fault in faults:
                        if fault.start == rec.start and fault.fault in (
                                WORKER_CRASH, WORKER_HANG):
                            fault.resolution = RESOLVED_RETRIED
                if idx in done:
                    continue
                self._settle(idx, *self._verify_with_retry(idx), done=done,
                             faults=faults, on_region=on_region)

    def _verify_with_retry(
        self, idx: int
    ) -> tuple[Optional[RegionVerdict], bool, list[RegionFault]]:
        """In-process retry ladder for the serial/thread executors and
        the pool-broken fallback.  Catches exceptions (``verify-error``
        faults) — a hung region cannot be recovered without a process
        boundary, which is what the process executor is for."""
        rec = self.records[idx]
        telemetry = telemetry_current()
        region_faults: list[RegionFault] = []
        attempt = 1
        while True:
            self._check_deadline()
            try:
                verdict, oracle_ran = self.verify_region_once(idx,
                                                              attempt=attempt)
                return verdict, oracle_ran, region_faults
            except Exception as exc:  # noqa: BLE001 - becomes a RegionFault
                fault = RegionFault(
                    start=rec.start, end=rec.end, region_kind=rec.kind,
                    fault=VERIFY_ERROR, attempt=attempt,
                    detail=f"{type(exc).__name__}: {exc}")
                region_faults.append(fault)
                if self.retry_policy.exhausted(attempt + 1):
                    fault.resolution = RESOLVED_QUARANTINED
                    if telemetry.enabled:
                        telemetry.metrics.inc("pipeline.regions_quarantined",
                                              binary=self.rewritten.name)
                    return None, False, region_faults
                if telemetry.enabled:
                    telemetry.metrics.inc("pipeline.region_retries",
                                          binary=self.rewritten.name)
                time.sleep(self.retry_policy.backoff_seconds(attempt))
                attempt += 1

    def _quarantine_verdict(self, idx: int,
                            region_faults: list[RegionFault]) -> RegionVerdict:
        """Ledger entry for a region whose verification never completed:
        an explicit failed "isolation" check — never a silent drop."""
        rec = self.records[idx]
        attempts = max((f.attempt for f in region_faults), default=0)
        verdict = RegionVerdict(rec.start, rec.end, rec.kind)
        verdict.checks.append(CheckResult(
            "isolation", False,
            f"verification faulted on all {attempts} attempt(s); "
            "region quarantined"))
        return verdict

    def verify_region_once(self, idx: int, *,
                           attempt: int = 1) -> tuple[RegionVerdict, bool]:
        """One verification attempt for region *idx* (no retry, no fault
        capture) — the unit of work a pool worker executes."""
        if self.injector is not None:
            self.injector.before_region(idx, attempt, self.records[idx])
        return self._verify_region(idx)

    def _verify_region(self, idx: int) -> tuple[RegionVerdict, bool]:
        """All four checks for region *idx*; safe to run concurrently."""
        rec = self.records[idx]
        verdict = RegionVerdict(rec.start, rec.end, rec.kind)
        verdict.checks.append(self._check_encoding(rec))
        verdict.checks.append(self._check_target(rec))
        verdict.checks.append(self._check_cfg(rec))
        run_oracle = (self.max_oracle_regions <= 0
                      or idx < self.max_oracle_regions)
        if run_oracle:
            verdict.oracle_trials = self.oracle.check_region(rec)
            mismatches = [t for t in verdict.oracle_trials
                          if t.startswith("mismatch")]
            verdict.checks.append(CheckResult(
                "oracle", not mismatches,
                "; ".join(mismatches)
                or f"{len(verdict.oracle_trials)} trials"))
        return verdict, run_oracle

    # -- live bytes ---------------------------------------------------------

    def _live_bytes(self, rec: PatchRecord) -> bytes:
        return self.rewritten.text.read(rec.start, rec.end - rec.start)

    # -- check 1: encoding invariants ---------------------------------------

    def _check_encoding(self, rec: PatchRecord) -> CheckResult:
        live = self._live_bytes(rec)
        problems: list[str] = []
        if live != rec.patched_bytes:
            problems.append("released bytes differ from the recorded patch")
        if rec.kind in ("smile", "smile-dp"):
            problems.extend(smile_window_violations(
                live, rec.start, compressed=self.compressed, reg=rec.smile_reg))
            problems.extend(self._check_padding(rec, live))
        else:  # trap
            try:
                instr = decode(live, 0, addr=rec.start)
                if instr.mnemonic not in ("ebreak", "c.ebreak"):
                    problems.append(f"trap site decodes as {instr.mnemonic}")
            except IllegalEncodingError:
                problems.append("trap site no longer decodes as an ebreak")
            if not any(key == rec.start for key, _ in rec.trap_entries):
                problems.append("trap site has no trap-table entry")
        return CheckResult("encoding", not problems, "; ".join(problems))

    def _check_padding(self, rec: PatchRecord, live: bytes) -> list[str]:
        """Padding parcels covering an original boundary must stay
        deterministic-fault parcels (reserved encodings)."""
        problems = []
        for baddr in self._original_boundaries(rec):
            off = baddr - rec.start
            if off < 8 or any(key == baddr for key, _ in rec.fault_entries):
                continue  # fault-table boundaries checked by _check_cfg
            try:
                parcel = decode(live, off, addr=baddr)
            except IllegalEncodingError:
                continue  # reserved: faults deterministically
            problems.append(
                f"padding boundary {baddr:#x} decodes as legal "
                f"{parcel.mnemonic} with no fault-table entry")
        return problems

    # -- check 2: target / pointer non-executability ------------------------

    def _check_target(self, rec: PatchRecord) -> CheckResult:
        problems: list[str] = []
        if rec.kind == "trap":
            if not self._in_chimera_text(rec.block_addr):
                problems.append(
                    f"trap block {rec.block_addr:#x} outside .chimera.text")
        else:
            live = self._live_bytes(rec)
            target = smile_window_target(live, rec.start)
            if target is None:
                problems.append("trampoline no longer computes a target")
            elif target != rec.block_addr:
                problems.append(
                    f"trampoline reaches {target:#x}, recorded block is "
                    f"{rec.block_addr:#x}")
            elif not self._in_chimera_text(target):
                problems.append(f"target {target:#x} outside .chimera.text")
            else:
                problems.extend(self._decode_problem(target, "target"))
            problems.extend(self._check_p1_pointer(rec))
        return CheckResult("target", not problems, "; ".join(problems))

    def _check_p1_pointer(self, rec: PatchRecord) -> list[str]:
        """The register a partial execution (P1) jumps through must hold
        a non-executable address, or the P1 fault is not deterministic."""
        if rec.kind == "smile":
            pointer = self.meta["gp"]
            what = "gp"
        else:  # smile-dp: reconstruct the overwritten lui+mem pointer
            try:
                lui = decode(rec.original_bytes, 0, addr=rec.start)
                mem = decode(rec.original_bytes, 4, addr=rec.start + 4)
            except IllegalEncodingError:
                return ["original data-pointer pair no longer decodes"]
            pointer = sign_extend((lui.imm << 12) & 0xFFFFFFFF, 32) + (mem.imm or 0)
            what = f"x{rec.smile_reg} data pointer"
        section = self.rewritten.section_at(pointer)
        if section is not None and Perm.X in section.perm:
            return [f"{what} value {pointer:#x} is executable: P1 would not fault"]
        return []

    # -- check 3: CFG integrity ---------------------------------------------

    def _check_cfg(self, rec: PatchRecord) -> CheckResult:
        problems: list[str] = []
        if rec.kind != "trap":
            problems.extend(self._check_boundaries(rec))
            problems.extend(self._walk_block(rec))
        else:
            for _, target in rec.trap_entries:
                if not (self._in_chimera_text(target)
                        or self._legal_original_pc(rec, target)):
                    problems.append(
                        f"trap redirect {target:#x} is neither a relocated "
                        "block nor a legal original pc")
        return CheckResult("cfg", not problems, "; ".join(problems))

    def _check_boundaries(self, rec: PatchRecord) -> list[str]:
        """Every interior original boundary must fault deterministically
        and, when redirected, redirect somewhere legal."""
        problems = []
        entries = dict(rec.fault_entries)
        for baddr in self._original_boundaries(rec):
            if baddr == rec.start:
                continue
            target = entries.get(baddr)
            if target is not None:
                if target == rec.start:
                    continue  # restart-head: re-enters the trampoline
                if not self._in_chimera_text(target):
                    problems.append(
                        f"boundary {baddr:#x} redirects outside "
                        f".chimera.text ({target:#x})")
                else:
                    problems.extend(self._decode_problem(target, f"redirect of {baddr:#x}"))
                continue
            offset = baddr - rec.start
            if offset in (2, 4, 6):
                continue  # P2/P1/P3: pinned by the encoding check
            if offset >= 8:
                continue  # padding: covered by _check_padding
            problems.append(f"boundary {baddr:#x} is unprotected")
        return problems

    def _walk_block(self, rec: PatchRecord) -> list[str]:
        """Bounded walk of the relocated block: everything decodes, every
        direct branch re-resolves, and the only indirect jump is the
        exit trampoline (whose target is statically computable)."""
        ct = self._ct
        if ct is None:
            return [f"no .chimera.text yet block {rec.block_addr:#x} recorded"]
        problems: list[str] = []
        pc = rec.block_addr
        prev_auipc = None
        for _ in range(_WALK_BUDGET):
            if not ct.contains(pc):
                problems.append(f"block walk left .chimera.text at {pc:#x}")
                break
            try:
                instr = decode(ct.data, pc - ct.addr, addr=pc)
            except IllegalEncodingError as exc:
                problems.append(f"block byte at {pc:#x} does not decode: {exc}")
                break
            if instr.mnemonic in ("ebreak", "c.ebreak"):
                break  # trap epilogue / end of block
            if instr.mnemonic == "jalr":
                if (prev_auipc is not None and prev_auipc.rd == instr.rs1
                        and prev_auipc.addr + prev_auipc.length == pc):
                    exit_target = (prev_auipc.addr
                                   + sign_extend(prev_auipc.imm << 12, 32)
                                   + instr.imm)
                    if not (self._in_chimera_text(exit_target)
                            or self._legal_original_pc(rec, exit_target)):
                        problems.append(
                            f"exit trampoline at {pc:#x} targets "
                            f"{exit_target:#x}: not a legal resume point")
                else:
                    problems.append(
                        f"unresolvable indirect jump at {pc:#x} "
                        "(no preceding auipc pairs with it)")
                break
            if instr.is_branch() or instr.mnemonic in ("jal", "c.j"):
                target = pc + (instr.imm or 0)
                if not (self._in_chimera_text(target)
                        or self._legal_original_pc(rec, target)):
                    problems.append(
                        f"copied branch at {pc:#x} targets {target:#x}: "
                        "inside a patched interior or unmapped")
                if instr.mnemonic in ("jal", "c.j") and instr.rd in (None, 0):
                    break  # unconditional: end of this path
            prev_auipc = instr if instr.mnemonic == "auipc" else prev_auipc
            pc += instr.length
        return problems

    # -- shared helpers -----------------------------------------------------

    def _original_boundaries(self, rec: PatchRecord) -> list[int]:
        bounds = []
        addr = rec.start
        data = rec.original_bytes
        while addr < rec.end:
            bounds.append(addr)
            try:
                instr = decode(data, addr - rec.start, addr=addr)
                addr += instr.length
            except IllegalEncodingError:
                addr += 2
        return bounds

    def _in_chimera_text(self, addr: int) -> bool:
        return self._ct is not None and self._ct.contains(addr)

    def _decode_problem(self, addr: int, what: str) -> list[str]:
        try:
            decode(self._ct.data, addr - self._ct.addr, addr=addr)
            return []
        except IllegalEncodingError as exc:
            return [f"{what} {addr:#x} does not decode: {exc}"]

    def _legal_original_pc(self, rec: PatchRecord, addr: int) -> bool:
        """A resume/branch target in original text is legal when it is
        executable and not the interior of any patched window (region
        heads are legal: they re-enter a trampoline)."""
        section = self.rewritten.section_at(addr)
        if section is None or Perm.X not in section.perm:
            return False
        for other in self.records:
            if other.contains(addr) and addr != other.start:
                # Interior is fine iff the fault table redirects it.
                return any(key == addr for key, _ in other.fault_entries)
        return True


def verify_binary(
    original: Binary,
    rewritten: Binary,
    *,
    seed: Optional[int] = None,
    oracle_trials: int = 2,
    oracle_max_steps: int = 512,
    max_oracle_regions: int = 0,
    jobs: int = 1,
    liveness=None,
    executor: str = "thread",
    region_timeout: Optional[float] = None,
    retry_policy: Optional[RetryPolicy] = None,
    injector=None,
    on_region=None,
    precomputed=None,
    slots=None,
    job_id=None,
    deadline=None,
) -> VerifyReport:
    """Convenience wrapper: gate *rewritten* against *original*."""
    return AdmissionGate(
        original, rewritten, seed=seed, oracle_trials=oracle_trials,
        oracle_max_steps=oracle_max_steps,
        max_oracle_regions=max_oracle_regions, jobs=jobs, liveness=liveness,
        executor=executor, region_timeout=region_timeout,
        retry_policy=retry_policy, injector=injector,
        slots=slots, job_id=job_id, deadline=deadline,
    ).verify(on_region=on_region, precomputed=precomputed)
