"""Basic blocks and control-flow graph over a :class:`ScanResult`.

Indirect jumps with unknown targets get a distinguished ``UNKNOWN``
successor; analyses must treat it maximally conservatively (the paper's
"limitations of binary data flow analysis", §4.2 challenge 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.scan import ScanResult
from repro.isa.instructions import Instruction

#: Sentinel successor for indirect jumps with unknown target sets.
UNKNOWN = -1


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    start: int
    instructions: list[Instruction]
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    @property
    def end(self) -> int:
        """Address one past the last instruction."""
        last = self.instructions[-1]
        return last.addr + last.length

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]

    def addresses(self) -> list[int]:
        """Addresses of the block's instructions."""
        return [i.addr for i in self.instructions]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


class ControlFlowGraph:
    """CFG: blocks keyed by start address plus an address->block index."""

    def __init__(self, blocks: dict[int, BasicBlock]):
        self.blocks = blocks
        self._block_of: dict[int, int] = {}
        for start, block in blocks.items():
            for instr in block.instructions:
                self._block_of[instr.addr] = start

    def block_at(self, addr: int) -> Optional[BasicBlock]:
        """The block whose *start* is addr."""
        return self.blocks.get(addr)

    def block_containing(self, addr: int) -> Optional[BasicBlock]:
        """The block containing the instruction at *addr*."""
        start = self._block_of.get(addr)
        return self.blocks[start] if start is not None else None

    def successors(self, block: BasicBlock) -> list[BasicBlock]:
        """Successor blocks, skipping the UNKNOWN sentinel."""
        return [self.blocks[s] for s in block.successors if s != UNKNOWN and s in self.blocks]

    def has_unknown_successor(self, block: BasicBlock) -> bool:
        """True if control may leave *block* for an unknown target."""
        return UNKNOWN in block.successors

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())


def build_cfg(scan: ScanResult) -> ControlFlowGraph:
    """Partition recovered instructions into blocks and wire edges."""
    addrs = scan.sorted_addrs()
    if not addrs:
        return ControlFlowGraph({})
    addr_set = set(addrs)

    leaders: set[int] = set(scan.entry_points) & addr_set
    leaders.update(t for t in scan.direct_targets if t in addr_set)
    prev_terminates = False
    for addr in addrs:
        if prev_terminates:
            leaders.add(addr)
        instr = scan.instructions[addr]
        prev_terminates = instr.is_terminator()
    # Layout discontinuities also start blocks.
    for prev, cur in zip(addrs, addrs[1:]):
        if prev + scan.instructions[prev].length != cur:
            leaders.add(cur)
    leaders.add(addrs[0])

    blocks: dict[int, BasicBlock] = {}
    current: list[Instruction] = []
    current_start = addrs[0]
    for addr in addrs:
        if addr in leaders and current:
            blocks[current_start] = BasicBlock(current_start, current)
            current = []
            current_start = addr
        if not current:
            current_start = addr
        current.append(scan.instructions[addr])
    if current:
        blocks[current_start] = BasicBlock(current_start, current)

    for block in blocks.values():
        term = block.terminator
        succs: list[int] = []
        fall = term.addr + term.length
        if term.is_branch():
            target = term.target()
            if target is not None:
                succs.append(target)
            succs.append(fall)
        elif term.mnemonic in ("jal", "c.j"):
            if term.mnemonic == "jal" and term.rd == 1:
                # Direct call: control returns to the fall-through; the
                # callee is modeled by ABI clobber semantics in liveness.
                succs.append(fall)
            else:
                target = term.target()
                if target is not None:
                    succs.append(target)
        elif term.is_indirect_jump():
            if _is_return(term):
                pass  # function return: no intra-function successors
            elif term.mnemonic in ("jalr", "c.jalr") and (term.rd == 1 or term.mnemonic == "c.jalr"):
                succs.append(fall)  # indirect call: returns; callee via ABI
            else:
                succs.append(UNKNOWN)
        else:
            # Straight-line block split by a leader, or ecall/ebreak
            # (which resume at the next instruction after servicing).
            succs.append(fall)
        block.successors = succs
    # Resolve successor addresses that point into the middle of a block
    # (possible when a jump targets a non-leader -- shouldn't happen, but
    # direct targets were added as leaders so mid-block targets are rare).
    cfg = ControlFlowGraph(blocks)
    for block in blocks.values():
        block.successors = [
            s if s == UNKNOWN or s in blocks else _containing_start(cfg, s)
            for s in block.successors
        ]
        block.successors = [s for s in block.successors if s is not None]
    for block in blocks.values():
        for s in block.successors:
            if s != UNKNOWN and s in blocks:
                blocks[s].predecessors.append(block.start)
    return cfg


def _containing_start(cfg: ControlFlowGraph, addr: int) -> Optional[int]:
    block = cfg.block_containing(addr)
    return block.start if block else None


def _is_return(instr: Instruction) -> bool:
    """``jalr x0, 0(ra)`` / ``c.jr ra`` is a function return."""
    if instr.mnemonic == "jalr" and instr.rd == 0 and instr.rs1 == 1:
        return True
    if instr.mnemonic == "c.jr" and instr.rs1 == 1:
        return True
    return False
