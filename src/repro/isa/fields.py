"""Bit-manipulation helpers shared by the encoder and decoder.

All helpers operate on plain Python ints treated as fixed-width
two's-complement values.  Encoders validate immediate ranges eagerly so
layout bugs in the rewriter surface as exceptions at patch time rather
than as silently corrupted binaries.
"""

from __future__ import annotations


def bits(value: int, hi: int, lo: int) -> int:
    """Extract bits ``hi..lo`` (inclusive, hi >= lo) of *value*."""
    if hi < lo:
        raise ValueError(f"invalid bit range {hi}..{lo}")
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


def bit(value: int, pos: int) -> int:
    """Extract the single bit at *pos*."""
    return (value >> pos) & 1


def sign_extend(value: int, width: int) -> int:
    """Sign-extend the low *width* bits of *value* to a Python int."""
    value &= (1 << width) - 1
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def to_signed64(value: int) -> int:
    """Wrap *value* into signed 64-bit two's-complement range."""
    return sign_extend(value, 64)


def to_unsigned64(value: int) -> int:
    """Wrap *value* into unsigned 64-bit range."""
    return value & 0xFFFFFFFFFFFFFFFF


def to_signed32(value: int) -> int:
    """Wrap *value* into signed 32-bit two's-complement range."""
    return sign_extend(value, 32)


def fits_signed(value: int, width: int) -> bool:
    """True if *value* fits in a signed immediate of *width* bits."""
    return -(1 << (width - 1)) <= value < (1 << (width - 1))


def fits_unsigned(value: int, width: int) -> bool:
    """True if *value* fits in an unsigned immediate of *width* bits."""
    return 0 <= value < (1 << width)


def check_signed(value: int, width: int, what: str) -> int:
    """Validate a signed immediate, returning it unchanged."""
    if not fits_signed(value, width):
        raise ValueError(f"{what}={value:#x} does not fit in signed {width}-bit field")
    return value


def check_unsigned(value: int, width: int, what: str) -> int:
    """Validate an unsigned immediate, returning it unchanged."""
    if not fits_unsigned(value, width):
        raise ValueError(f"{what}={value:#x} does not fit in unsigned {width}-bit field")
    return value


def check_aligned(value: int, align: int, what: str) -> int:
    """Validate that *value* is a multiple of *align*."""
    if value % align:
        raise ValueError(f"{what}={value:#x} must be {align}-byte aligned")
    return value


def split_hi_lo(offset: int) -> tuple[int, int]:
    """Split a 32-bit pc-relative *offset* into (auipc hi20, lo12) parts.

    The lo12 part is sign-extended by the consuming instruction, so hi20
    absorbs the carry: ``hi20 << 12 + sign_extend(lo12, 12) == offset``.
    """
    check_signed(offset, 32, "pc-relative offset")
    lo = sign_extend(offset & 0xFFF, 12)
    hi = (offset - lo) >> 12
    check_signed(hi, 20, "auipc hi20")
    return hi & 0xFFFFF, lo


def u16(data: bytes | bytearray | memoryview, off: int = 0) -> int:
    """Read a little-endian 16-bit parcel."""
    return data[off] | (data[off + 1] << 8)


def u32(data: bytes | bytearray | memoryview, off: int = 0) -> int:
    """Read a little-endian 32-bit word."""
    return data[off] | (data[off + 1] << 8) | (data[off + 2] << 16) | (data[off + 3] << 24)


def p16(value: int) -> bytes:
    """Pack a 16-bit parcel little-endian."""
    return bytes((value & 0xFF, (value >> 8) & 0xFF))


def p32(value: int) -> bytes:
    """Pack a 32-bit word little-endian."""
    return bytes((value & 0xFF, (value >> 8) & 0xFF, (value >> 16) & 0xFF, (value >> 24) & 0xFF))
