"""Batch-service throughput: the sharded AOT cache must buy jobs/sec.

The service exists to amortize translation across a fleet, so the
headline numbers are jobs/sec cold (every job a full rewrite+verify)
versus warm (every job a shard hit), and warm throughput with one
client versus several concurrent clients hammering the same socket.
Correctness (every job ok, dedup exact) is asserted unconditionally;
the warm-beats-cold gate only arms on boxes with >= 4 CPUs — small CI
runners record the numbers without judging them.
``BENCH_serve_throughput.json`` carries the measurements.
"""

import asyncio
import os
import time

import pytest

from benchmarks.helpers import emit_bench, print_table
from repro.core.pipeline import CacheLayout
from repro.resilience.policy import RetryPolicy
from repro.service.client import submit_jobs
from repro.service.server import RewriteService
from repro.telemetry import MetricsRegistry

SEED = 20260806
WORKLOADS = ("dot", "gemv", "vecadd", "matmul", "memcpy", "fibonacci")
NO_RETRY = RetryPolicy(max_attempts=1)


def _specs(tag: str):
    return [{"op": "submit", "id": f"{tag}-{name}", "workload": name,
             "seed": SEED, "oracle_trials": 1} for name in WORKLOADS]


async def _timed_batch(address: str, specs, *, clients: int):
    t0 = time.perf_counter()
    records = await submit_jobs(address, specs, concurrency=clients,
                                retry_policy=NO_RETRY)
    wall = time.perf_counter() - t0
    assert all(r["status"] == "ok" and r["verify_ok"] for r in records), \
        [r for r in records if r.get("status") != "ok"]
    return wall, records


def test_serve_throughput(benchmark, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_FUZZ_SEED", str(SEED))
    cpus = os.cpu_count() or 1

    async def scenario():
        layout = CacheLayout(tmp_path / "cache", shards=4)
        service = RewriteService(layout, jobs=min(4, cpus))
        address = await service.start(
            socket_path=str(tmp_path / "serve.sock"))
        server_task = asyncio.ensure_future(service.serve_until_shutdown())
        try:
            walls = {}
            cold_wall, cold_records = await _timed_batch(
                address, _specs("cold"), clients=1)
            walls[("cold", 1)] = cold_wall
            assert sum(1 for r in cold_records
                       if r["cache"] == "cold") == len(WORKLOADS)
            for clients in (1, 4):
                wall, records = await _timed_batch(
                    address, _specs(f"warm{clients}"), clients=clients)
                walls[("warm", clients)] = wall
                assert all(r["cache"] == "warm" for r in records)
            assert service.stats.rewrites == len(WORKLOADS)
            return walls
        finally:
            service.shutdown()
            await server_task

    def run():
        return asyncio.run(scenario())

    walls = benchmark.pedantic(run, rounds=1, iterations=1)

    n = len(WORKLOADS)
    rates = {key: n / wall for key, wall in walls.items()}
    warm_speedup = rates[("warm", 1)] / rates[("cold", 1)]
    fanout_speedup = rates[("warm", 4)] / rates[("warm", 1)]
    rows = [[phase, clients, f"{walls[(phase, clients)]:.3f}s",
             f"{rates[(phase, clients)]:.1f}/s"]
            for phase, clients in walls]
    print_table("Service throughput: cold vs warm, 1 vs 4 clients",
                ["phase", "clients", "wall", "jobs/sec"], rows)

    registry = MetricsRegistry()
    for (phase, clients), rate in rates.items():
        registry.gauge("bench.serve_jobs_per_sec", round(rate, 3),
                       phase=phase, clients=str(clients))
    registry.gauge("bench.serve_warm_speedup", round(warm_speedup, 3))
    registry.gauge("bench.serve_client_fanout_speedup",
                   round(fanout_speedup, 3))
    registry.gauge("bench.cpu_count", cpus)
    emit_bench("serve_throughput", registry)

    if cpus >= 4:
        # A shard hit skips translation and verification entirely; if
        # warm jobs are not clearly faster the cache is not working.
        assert warm_speedup > 1.5, (
            f"warm batch not faster than cold on {cpus} CPUs: "
            f"{rates[('warm', 1)]:.1f}/s vs {rates[('cold', 1)]:.1f}/s")
