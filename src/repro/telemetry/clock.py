"""The two clocks telemetry spans run on.

* :class:`WallClock` — microseconds of real time since the clock's
  epoch (``time.perf_counter_ns``-backed, monotonic).
* :class:`SimCycleClock` — the *simulated* cycle counter of whatever CPU
  is currently executing.  The kernel binds it to ``cpu.cycles`` for the
  duration of a run (:meth:`bind`), so spans opened inside simulation
  carry cycle timestamps alongside wall time; outside a run it holds the
  last value it saw, keeping the series monotonic.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class WallClock:
    """Monotonic wall time in integer microseconds since construction."""

    def __init__(self):
        self._epoch_ns = time.perf_counter_ns()

    def now_us(self) -> int:
        return (time.perf_counter_ns() - self._epoch_ns) // 1000


class SimCycleClock:
    """Simulated-cycle time, fed by a bindable cycle source.

    ``now()`` never goes backwards: when no source is bound (or a new
    run rebinds to a CPU whose counter starts at 0) the clock returns
    ``offset + source()`` where *offset* is advanced at each rebind to
    the high-water mark, so spans across several sequential simulations
    still nest monotonically.
    """

    def __init__(self):
        self._source: Optional[Callable[[], int]] = None
        self._offset = 0
        self._last = 0

    def now(self) -> int:
        if self._source is not None:
            value = self._offset + self._source()
            if value > self._last:
                self._last = value
        return self._last

    def bind(self, source: Callable[[], int]) -> "_CycleBinding":
        """Bind *source* (e.g. ``lambda: cpu.cycles``); returns a context
        manager restoring the previous binding on exit."""
        previous = self._source
        self._offset = self._last
        self._source = source
        return _CycleBinding(self, previous)


class _CycleBinding:
    def __init__(self, clock: SimCycleClock, previous):
        self._clock = clock
        self._previous = previous

    def __enter__(self) -> SimCycleClock:
        return self._clock

    def __exit__(self, *exc) -> None:
        self._clock.now()  # latch the high-water mark before unbinding
        self._clock._offset = self._clock._last
        self._clock._source = self._previous
