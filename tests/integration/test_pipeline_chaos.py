"""Pipeline failure-injection scenarios, end to end.

Every scenario of :func:`repro.chaos.run_pipeline_chaos` injects one
failure the process-pool pipeline must absorb — a worker killed
mid-region, an oracle hang, retries exhausted into quarantine-and-
degrade, a cache entry torn mid-publish, the driver killed mid-journal
— and asserts the run still completes with a machine-readable ledger
that attributes the fault to the exact region, and (for survivable
faults) a byte-identical release.
"""

import pytest

from repro.chaos import run_pipeline_chaos
from repro.workloads.spec_profiles import PROFILES as WORKLOADS
from repro.workloads.synthetic import SyntheticBinary


@pytest.fixture(autouse=True)
def _fixed_seed(monkeypatch):
    monkeypatch.setenv("REPRO_FUZZ_SEED", "20260806")


def test_every_injected_failure_completes_with_a_correct_ledger():
    original = SyntheticBinary(WORKLOADS["gcc_r"], scale=32).build()
    report = run_pipeline_chaos(original, jobs=2, executor="process")
    failed = [s for s in report.scenarios if not s.passed]
    assert not failed, "; ".join(f"{s.name}: {s.detail}" for s in failed)
    assert len(report.scenarios) == 5
