"""Per-patch self-healing, end to end (the PR's acceptance criterion).

A trampoline bitrots inside a *running* workload; the self-healing
runtime must quarantine and roll back exactly that patch to the
trap-fallback encoding, the workload must finish with the correct
output, telemetry must record the rollback, and no UnrecoverableFault
may be raised.  Quarantined state must then survive a checkpointed
migration to another core, and the backoff/re-admission/pinning state
machine must run to both of its terminal states.
"""

import pytest

from repro.chaos.harness import build_erroneous_workload
from repro.chaos.injector import TrampolineBitrotInjector
from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC
from repro.resilience.checkpoint import Checkpoint
from repro.sim.faults import CoreFault
from repro.sim.machine import Core, Kernel
from repro.telemetry import Telemetry, use

EXPECTED = (2, 40, 80)  # (out, buf[0], buf[1]) after a correct run


def build_rewrite():
    original = build_erroneous_workload()
    rewritten = ChimeraRewriter().rewrite(original, RV64GC).binary
    regions = rewritten.metadata["chimera"]["patched_regions"]
    # Only the lowest-addressed SMILE window executes on the normal path.
    smile = sorted(r for r in regions if r[2] in ("smile", "smile-dp"))[:1]
    return original, rewritten, smile


def outputs(original, process):
    return (
        process.space.read_u64(original.symbol_addr("out")),
        process.space.read_u64(original.symbol_addr("buf")),
        process.space.read_u64(original.symbol_addr("buf") + 8),
    )


def run_with_bitrot(*, core=0):
    original, rewritten, smile = build_rewrite()
    kernel = Kernel()
    runtime = ChimeraRuntime(rewritten, self_heal=True)
    runtime.install(kernel)
    process = make_process(rewritten)
    start = TrampolineBitrotInjector(smile).corrupt(process)
    cpu = kernel.make_cpu(process, Core(core, RV64GC))
    result = kernel.run(process, Core(core, RV64GC), cpu=cpu)
    return original, rewritten, runtime, process, cpu, start, result


def test_bitrot_is_healed_not_fatal():
    telemetry = Telemetry()
    with use(telemetry):
        original, _, runtime, process, _, start, result = run_with_bitrot()
    assert result.ok, f"workload died after bitrot: {result.fault!r}"
    assert outputs(original, process) == EXPECTED
    stats = runtime.stats
    assert stats.patch_rollbacks >= 1
    assert stats.unrecoverable_faults == 0
    # Exactly the corrupted patch is quarantined; every other patch is
    # untouched.
    quarantined = runtime.healer.journal.quarantined()
    assert [e.record.start for e in quarantined] == [start]
    # Telemetry carries the heal event.
    events = dict()
    for labels, value in telemetry.metrics.series("runtime.events"):
        events[labels.get("kind")] = value
    assert events.get("patch_rollback", 0) >= 1


def test_rollback_restores_original_window_bytes():
    _, _, runtime, process, _, start, result = run_with_bitrot()
    assert result.ok
    entry = runtime.healer.journal.get(start)
    rec = entry.record
    live = bytes(process.space.read(rec.start, len(rec.original_bytes)))
    # The window holds the original bytes again, except where the heal
    # trap-fallback re-trapped an extension source.
    trapped = {s for s, l, *_ in entry.heal_patches for s in range(s, s + l)}
    for i, (got, want) in enumerate(zip(live, rec.original_bytes)):
        if rec.start + i not in trapped:
            assert got == want, f"byte {rec.start + i:#x} not restored"


def test_backoff_then_readmission():
    _, _, runtime, process, cpu, start, result = run_with_bitrot()
    assert result.ok
    healer = runtime.healer
    entry = healer.journal.get(start)
    assert entry.state == "quarantined"
    assert entry.not_before > 0

    # Before the backoff expires nothing happens.
    cpu.instret = max(0, entry.not_before - 1)
    assert healer.maybe_readmit(process, cpu) == 0
    # After it expires the golden patch re-verifies and is re-applied.
    cpu.instret = entry.not_before
    assert healer.maybe_readmit(process, cpu) == 1
    assert entry.state == "admitted"
    assert runtime.stats.patch_readmissions == 1
    rec = entry.record
    live = bytes(process.space.read(rec.start, len(rec.patched_bytes)))
    assert live == rec.patched_bytes
    assert entry.heal_patches == []


def test_exhausted_budget_pins_to_fallback():
    _, _, runtime, process, cpu, start, result = run_with_bitrot()
    assert result.ok
    healer = runtime.healer
    entry = healer.journal.get(start)
    entry.rollbacks = healer.policy.max_attempts + 1
    cpu.instret = entry.not_before
    assert healer.maybe_readmit(process, cpu) == 0
    assert entry.state == "pinned"
    # A pinned patch never comes back.
    cpu.instret = entry.not_before + 10_000_000
    assert healer.maybe_readmit(process, cpu) == 0
    assert entry.state == "pinned"


def test_quarantine_survives_checkpointed_migration():
    """Satellite 3: heal, fail the core, migrate the checkpoint to a
    different core, finish there — the quarantine must ride along."""
    original, rewritten, smile = build_rewrite()
    kernel = Kernel()
    runtime = ChimeraRuntime(rewritten, self_heal=True)
    runtime.install(kernel)
    process = make_process(rewritten)
    start = TrampolineBitrotInjector(smile).corrupt(process)
    cpu = kernel.make_cpu(process, Core(0, RV64GC))

    def _fail_after_heal(c):
        if runtime.stats.patch_rollbacks >= 1:
            raise CoreFault(0, "dead")

    cpu.step_hook = _fail_after_heal
    result = kernel.run(process, Core(0, RV64GC), cpu=cpu)
    assert isinstance(result.fault, CoreFault)
    assert runtime.healer.journal.is_rolled_back(start)
    cpu.step_hook = None
    ck = Checkpoint.take(cpu, process, task_id=1, core_id=0,
                         pool_ext=False, runtime=runtime)

    kernel2 = Kernel()
    runtime2 = ChimeraRuntime(rewritten, self_heal=True)
    runtime2.install(kernel2)
    process2 = make_process(rewritten)
    cpu2 = kernel2.make_cpu(process2, Core(1, RV64GC))
    ck.restore(cpu2, process2, runtime=runtime2)
    entry = runtime2.healer.journal.get(start)
    assert entry is not None and entry.rolled_back

    result2 = kernel2.run(process2, Core(1, RV64GC), cpu=cpu2)
    assert result2.ok, f"resumed run died: {result2.fault!r}"
    assert outputs(original, process2) == EXPECTED
    assert runtime2.stats.unrecoverable_faults == 0


def test_plain_runtime_still_dies_without_self_heal():
    """The contrast case: the same bitrot without self_heal must end in
    a structured UnrecoverableFault, exactly as the chaos suite pins."""
    original, rewritten, smile = build_rewrite()
    kernel = Kernel()
    runtime = ChimeraRuntime(rewritten)
    runtime.install(kernel)
    process = make_process(rewritten)
    TrampolineBitrotInjector(smile).corrupt(process)
    result = kernel.run(process, Core(0, RV64GC))
    assert not result.ok
    assert runtime.stats.patch_rollbacks == 0
