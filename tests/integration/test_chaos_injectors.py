"""Runtime-corruption injector scenarios: graceful degradation, end to end.

Each scenario corrupts the runtime's own state at its most delicate
moment — fault-table entries dropped or redirected into a loop, gp
clobbered before recovery, a signal delivered mid-trampoline, the
decode cache staled behind a lazy rewrite, a migration corrupted
between probe and commit — and asserts the run ends the way graceful
degradation demands: a structured UnrecoverableFault with diagnostics
for the fatal corruptions, a correct finish for the survivable ones.
"""

import pytest

from repro.chaos import ALL_SCENARIOS
from repro.chaos.harness import (
    scenario_clobber_gp,
    scenario_corrupt_fault_entry,
    scenario_drop_fault_entries,
)

SCENARIOS = {fn.__name__: fn for fn in ALL_SCENARIOS}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_passes(name):
    result = SCENARIOS[name]()
    assert result.passed, f"{result.name}: {result.detail}"


def test_scenario_names_unique_and_stable():
    results = [fn() for fn in ALL_SCENARIOS]
    names = [r.name for r in results]
    assert len(set(names)) == len(names) == 9


def test_structured_detail_mentions_degradation():
    """The fatal scenarios must surface *structured* failures — the
    detail strings come from UnrecoverableFault, not raw tracebacks."""
    for fn in (scenario_drop_fault_entries, scenario_clobber_gp):
        result = fn()
        assert result.passed
        assert "structured" in result.detail


def test_loop_guard_bounds_attempts():
    result = scenario_corrupt_fault_entry()
    assert result.passed
    assert "8/8" in result.detail  # default max_recovery_depth
