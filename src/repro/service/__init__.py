"""Rewrite-as-a-service: the batch translation layer.

Chimera's static pipeline translates one binary per CLI invocation;
this package turns it into a machine-wide service the way Rosetta 2's
``aot_shared_cache`` amortizes translation across a fleet:

* :mod:`repro.service.server` — ``python -m repro serve``: an asyncio
  batch server (unix socket or TCP-on-localhost) that accepts many
  rewrite jobs, deduplicates them through the sharded content-addressed
  rewrite cache (in-flight coalescing + warm hits), fans the verified
  pipeline across the machine through one shared
  :class:`~repro.core.procpool.WorkerSlotArbiter`, and streams each
  job's :class:`~repro.verify.report.VerifyReport` ledger back
  byte-identical to a local ``repro verify`` run;
* :mod:`repro.service.client` — ``python -m repro submit``: the fleet
  campaign driver: fan a directory of binaries (or workload names) at
  the server with bounded concurrency, retry transient failures under a
  :class:`~repro.resilience.policy.RetryPolicy`, collect ledgers, and
  write a campaign manifest;
* :mod:`repro.service.protocol` — the newline-delimited-JSON wire
  format both ends speak.

Failure domains: a job that crashes the pipeline becomes a structured
:class:`~repro.resilience.failures.JobFault` streamed to its client —
the server stays up — and a release key that keeps crashing is
*poisoned*: refused on admission so one bad binary can never monopolize
the fleet's workers.
"""

from repro.service.client import CampaignResult, run_campaign, submit_jobs
from repro.service.protocol import ProtocolError, read_message, write_message
from repro.service.server import RewriteService, ServiceStats

__all__ = [
    "CampaignResult",
    "ProtocolError",
    "RewriteService",
    "ServiceStats",
    "read_message",
    "run_campaign",
    "submit_jobs",
    "write_message",
]
