"""CHBP patcher unit tests: windows, batching, exits, tables, stats."""

import pytest

from repro.core.patcher import ChbpPatcher
from repro.core.rewriter import ChimeraRewriter
from repro.elf.binary import Perm
from repro.elf.builder import ProgramBuilder
from repro.isa.decoding import IllegalEncodingError, decode
from repro.isa.extensions import RV64GC, RV64GCV
from repro.isa.registers import Reg


def vector_program(extra_text: str = "", data=None) -> "Binary":
    b = ProgramBuilder("p")
    b.add_words("buf", (data or [1, 2, 3, 4]) + [0] * 16)
    b.set_text(f"""
_start:
    li a0, {{buf}}
    li a1, 4
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vadd.vv v2, v1, v1
    vse64.v v2, (a0)
{extra_text}
    li a7, 93
    li a0, 0
    ecall
""")
    return b.build()


def patch(binary, profile=RV64GC, **kw):
    patcher = ChbpPatcher(binary, profile, **kw)
    return patcher.patch(), patcher


class TestBasicPatching:
    def test_trampoline_replaces_source(self):
        binary = vector_program()
        rewritten, patcher = patch(binary)
        assert patcher.stats.trampolines >= 1
        first_source = binary.symbol_addr("_start") + 12  # after two 4B li + ...
        # The rewritten text differs from the original at the source site.
        assert rewritten.text.data != binary.text.data

    def test_chimera_sections_added(self):
        rewritten, _ = patch(vector_program())
        assert rewritten.has_section(".chimera.text")
        assert rewritten.has_section(".chimera.vregs")
        ct = rewritten.section(".chimera.text")
        assert Perm.X in ct.perm

    def test_original_untouched(self):
        binary = vector_program()
        snapshot = bytes(binary.text.data)
        patch(binary)
        assert bytes(binary.text.data) == snapshot

    def test_metadata_attached(self):
        rewritten, patcher = patch(vector_program())
        meta = rewritten.metadata["chimera"]
        assert meta["fault_table"] is patcher.fault_table
        assert meta["target_profile"] == "rv64gc"

    def test_no_sources_no_sections(self):
        b = ProgramBuilder("plain")
        b.set_text("_start:\nli a7, 93\nli a0, 0\necall\n")
        rewritten, patcher = patch(b.build())
        assert patcher.stats.trampolines == 0
        assert not rewritten.has_section(".chimera.text")

    def test_target_profile_with_extension_no_downgrade(self):
        rewritten, patcher = patch(vector_program(), profile=RV64GCV)
        # Nothing to downgrade when the target supports V.
        assert patcher.stats.trampolines == 0 or patcher.stats.upgrade_sites > 0


class TestWindows:
    def test_interior_boundaries_in_fault_table(self):
        binary = vector_program()
        rewritten, patcher = patch(binary)
        table = patcher.fault_table
        assert len(table) >= 1
        # Every key is an original instruction boundary inside the text.
        for key, value in table:
            assert binary.text.contains(key)

    def test_smile_parcels_fault_deterministically(self):
        """Decode the patched bytes at every table key: each must be a
        deterministic fault (illegal parcel) or the jalr of a SMILE."""
        binary = vector_program()
        rewritten, patcher = patch(binary)
        text = rewritten.text
        for key, _ in patcher.fault_table:
            try:
                instr = decode(text.data, key - text.addr, addr=key)
            except IllegalEncodingError:
                continue  # P2/P3-style parcel: SIGILL, deterministic
            # P1-style: must be the jalr half of a SMILE (gp-based).
            assert instr.mnemonic == "jalr"
            assert instr.rs1 == int(Reg.GP) and instr.rd == int(Reg.GP)

    def test_direct_target_neighbors_not_overwritten(self):
        binary = vector_program(extra_text="""
    bnez a1, hot
hot:
    nop
""")
        rewritten, patcher = patch(binary)
        hot = binary.symbol_addr("hot")
        # `hot` is a branch target: it must never be an interior boundary.
        assert patcher.fault_table.lookup(hot) is None


class TestBatching:
    def test_batching_groups_block_sources(self):
        _, patcher = patch(vector_program(), batch_blocks=True)
        assert patcher.stats.batches >= 1
        assert patcher.stats.batched_sources >= 2

    def test_batching_off_more_trampolines(self):
        b1 = vector_program()
        _, with_batch = patch(b1, batch_blocks=True)
        _, without = patch(vector_program(), batch_blocks=False)
        assert without.stats.trampolines + without.stats.trap_fallbacks >= \
            with_batch.stats.trampolines

    def test_secondary_trampolines_preserved(self):
        """Sources after the first in a batch still get patched so
        external (indirect) jumps to them are covered."""
        binary = vector_program()
        rewritten, patcher = patch(binary, batch_blocks=True)
        covered = patcher.stats.trampolines + patcher.stats.trap_fallbacks
        assert covered >= 2  # head + preserved secondaries (or fallbacks)


class TestExitSelection:
    def test_shift_disabled_counts_not_found(self):
        src = """
_start:
    li s2, 1
    li s3, 2
    li s4, 3
    li a1, 4
    li a0, {buf}
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    add s2, s2, t0
    add s3, s3, s2
    add a0, a0, s3
    li a7, 93
    ecall
"""
        b = ProgramBuilder("x")
        b.add_words("buf", [0] * 8)
        b.set_text(src)
        _, p1 = patch(b.build(), shift_exits=True)
        b2 = ProgramBuilder("x")
        b2.add_words("buf", [0] * 8)
        b2.set_text(src)
        _, p2 = patch(b2.build(), shift_exits=False)
        assert p2.stats.dead_reg_not_found >= p2.stats.exit_shift_rescues
        assert p1.stats.trap_fallbacks <= p2.stats.trap_fallbacks

    def test_stats_accounting_consistent(self):
        _, patcher = patch(vector_program())
        s = patcher.stats
        assert s.exit_shift_rescues + s.dead_reg_not_found <= s.traditional_liveness_failures \
            or s.traditional_liveness_failures == 0
        assert s.exit_candidates >= s.trampolines


class TestEmptyMode:
    def test_empty_mode_replicates_sources(self):
        binary = vector_program()
        rewritten, patcher = patch(binary, mode="empty")
        assert patcher.stats.trampolines >= 1
        # The chimera text must still contain the original vector opcodes.
        ct = rewritten.section(".chimera.text")
        # look for a vsetvli (OP-V opcode 0x57) anywhere in the section
        assert any(
            ct.data[i] & 0x7F == 0x57
            for i in range(0, len(ct.data) - 4, 2)
        )


class TestStrawman:
    def test_in_reach_sources_get_jal_trampolines(self):
        from repro.baselines.strawman import StrawmanPatcher

        binary = vector_program()
        patcher = StrawmanPatcher(binary, RV64GC, batch_blocks=False, enable_upgrades=False)
        patcher.patch()
        # Small binary: blocks sit right after the text, within jal reach.
        assert patcher.stats.trampolines >= 1
        assert patcher.fault_table.entries == {}  # no SMILE, no table

    def test_out_of_reach_sources_trap(self):
        from repro.baselines.strawman import StrawmanPatcher
        from repro.sim.cost import DEFAULT_ARCH

        binary = vector_program()
        arch = DEFAULT_ARCH.scaled(1 << 17)  # jal reach ~8 bytes
        patcher = StrawmanPatcher(binary, RV64GC, arch=arch,
                                  batch_blocks=False, enable_upgrades=False)
        patcher.patch()
        assert patcher.stats.trampolines == 0
        assert patcher.stats.trap_fallbacks >= 1
        assert len(patcher.trap_table) >= 2 * patcher.stats.trap_fallbacks
