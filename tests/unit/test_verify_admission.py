"""Static admission gate: every patched region verified before release.

The gate checks four independent invariants per region — encoding
(golden bytes + SMILE bit pins), trampoline target, CFG of the
relocated window, and a randomized differential oracle — so a single
corrupted byte must trip several of them at once.
"""

import json

import pytest

from repro.chaos.harness import build_erroneous_workload
from repro.core.rewriter import ChimeraRewriter
from repro.isa.extensions import RV64GC
from repro.verify import AdmissionGate, PatchRecord, record_for, verify_binary


@pytest.fixture(scope="module")
def rewrite():
    original = build_erroneous_workload()
    rewritten = ChimeraRewriter().rewrite(original, RV64GC).binary
    return original, rewritten


def fresh_rewrite():
    """A private (original, rewritten) pair tests may corrupt."""
    original = build_erroneous_workload()
    return original, ChimeraRewriter().rewrite(original, RV64GC).binary


def smile_records(rewritten):
    records = rewritten.metadata["chimera"]["patch_records"]
    return [r for r in records if r.kind in ("smile", "smile-dp")]


def test_gate_admits_clean_rewrite(rewrite):
    original, rewritten = rewrite
    report = verify_binary(original, rewritten)
    assert report.ok
    assert report.counts()["rejected"] == 0
    assert report.counts()["admitted"] == len(
        rewritten.metadata["chimera"]["patch_records"])
    assert "admission verdict: PASS" in report.summary()


def test_gate_rejects_corrupted_trampoline():
    original, rewritten = fresh_rewrite()
    rec = smile_records(rewritten)[0]
    rewritten.section_at(rec.start).write(rec.start, b"\x00\x00\x00\x00")
    report = verify_binary(original, rewritten, oracle_trials=1)
    assert not report.ok
    (verdict,) = [r for r in report.rejected if r.start == rec.start]
    failed = {c.name for c in verdict.failures}
    # Corruption must trip the encoding check at minimum; the target
    # check goes with it because the auipc head is gone.
    assert "encoding" in failed
    assert "target" in failed
    assert rec.start not in report.admitted_starts
    assert "admission verdict: FAIL" in report.summary()


def test_gate_rejects_flipped_target_bits():
    """Flipping the jalr offset leaves a well-formed trampoline that
    points somewhere wrong — the target/oracle lenses must catch what
    byte-comparison alone would also catch, independently."""
    original, rewritten = fresh_rewrite()
    rec = smile_records(rewritten)[0]
    sec = rewritten.section_at(rec.start)
    off = rec.start + 4 - sec.addr
    word = int.from_bytes(sec.data[off:off + 4], "little")
    sec.write(rec.start + 4, (word ^ (1 << 22)).to_bytes(4, "little"))
    report = verify_binary(original, rewritten, oracle_trials=1)
    assert not report.ok
    (verdict,) = [r for r in report.rejected if r.start == rec.start]
    assert any(c.name in ("target", "cfg", "oracle") for c in verdict.failures)


def test_gate_requires_chimera_metadata(rewrite):
    original, _ = rewrite
    with pytest.raises(ValueError):
        AdmissionGate(original, original)


def test_max_oracle_regions_reports_skips(rewrite):
    original, rewritten = rewrite
    n_records = len(rewritten.metadata["chimera"]["patch_records"])
    report = AdmissionGate(
        original, rewritten, oracle_trials=1, max_oracle_regions=1,
    ).verify()
    assert report.ok
    assert report.counts()["oracle_skipped"] == max(0, n_records - 1)


def test_report_json_roundtrip(rewrite, tmp_path):
    original, rewritten = rewrite
    report = verify_binary(original, rewritten, oracle_trials=1)
    path = tmp_path / "verify.json"
    report.write_json(path)
    doc = json.loads(path.read_text())
    assert doc["ok"] is True
    assert doc["counts"]["regions"] == len(doc["regions"])
    for region in doc["regions"]:
        assert {"admitted", "checks", "start", "end", "kind"} <= set(region)
        assert all({"name", "passed", "detail"} <= set(c) for c in region["checks"])


def test_patch_record_state_roundtrip(rewrite):
    _, rewritten = rewrite
    for rec in rewritten.metadata["chimera"]["patch_records"]:
        clone = PatchRecord.from_state(rec.as_state())
        assert clone == rec


def test_record_for_covers_interiors(rewrite):
    _, rewritten = rewrite
    records = rewritten.metadata["chimera"]["patch_records"]
    rec = records[0]
    assert record_for(records, rec.start) is rec
    assert record_for(records, rec.end - 1) is rec
    assert record_for(records, rec.end) is not rec
    assert record_for(records, None) is None


def test_oracle_seed_is_deterministic(rewrite):
    original, rewritten = rewrite
    a = verify_binary(original, rewritten, seed=7, oracle_trials=2)
    b = verify_binary(original, rewritten, seed=7, oracle_trials=2)
    assert a.as_dict() == b.as_dict()
