"""SMILE trampoline construction and placement tests — the paper's core.

These tests verify, at the bit level, that every partial execution of a
SMILE trampoline decodes to a deterministic fault (Fig. 7's argument).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.smile import (
    RESERVED_C_PARCEL,
    SmilePlacementError,
    SmileTextAllocator,
    SmileTrampoline,
    achievable_targets,
    build_smile,
    next_achievable,
    padding_parcels,
    vanilla_trampoline,
)
from repro.isa.decoding import IllegalEncodingError, decode
from repro.isa.fields import sign_extend, u16
from repro.isa.registers import Reg

TRAMP_ADDR = st.integers(min_value=0x1_0000, max_value=0x80_0000).map(lambda x: x & ~1)


class TestSmileSemantics:
    def test_reaches_target_compressed(self):
        addr = 0x10000
        target = next_achievable(addr, 0x400000)
        tramp = build_smile(addr, target, compressed=True)
        data = tramp.encode()
        assert len(data) == 8
        auipc = decode(data, 0, addr=addr)
        jalr = decode(data, 4, addr=addr + 4)
        assert auipc.mnemonic == "auipc" and auipc.rd == int(Reg.GP)
        assert jalr.mnemonic == "jalr" and jalr.rd == int(Reg.GP) and jalr.rs1 == int(Reg.GP)
        gp = addr + sign_extend(auipc.imm << 12, 32)
        assert gp + jalr.imm == target

    def test_uncompressed_mode_hits_any_even_target(self):
        tramp = build_smile(0x10000, 0x123456, compressed=False)
        data = tramp.encode()
        auipc = decode(data, 0, addr=0x10000)
        jalr = decode(data, 4)
        assert 0x10000 + sign_extend(auipc.imm << 12, 32) + jalr.imm == 0x123456

    @given(TRAMP_ADDR)
    @settings(max_examples=50)
    def test_p2_parcel_always_faults(self, addr):
        """Jumping into byte 2 of the auipc must raise SIGILL."""
        target = next_achievable(addr, addr + 0x100000)
        data = build_smile(addr, target, compressed=True).encode()
        with pytest.raises(IllegalEncodingError) as exc:
            decode(data, 2)
        assert exc.value.kind == "long-prefix"

    @given(TRAMP_ADDR)
    @settings(max_examples=50)
    def test_p3_parcel_always_faults(self, addr):
        """Jumping into byte 6 of the jalr must raise SIGILL."""
        target = next_achievable(addr, addr + 0x100000)
        data = build_smile(addr, target, compressed=True).encode()
        with pytest.raises(IllegalEncodingError) as exc:
            decode(data, 6)
        assert exc.value.kind == "reserved-compressed"

    def test_p1_entry_is_plain_jalr_via_gp(self):
        """Jumping to byte 4 executes only the jalr: with the ABI gp value
        (data segment) this jumps into non-executable memory."""
        addr = 0x10000
        target = next_achievable(addr, 0x300000)
        data = build_smile(addr, target, compressed=True).encode()
        jalr = decode(data, 4)
        assert jalr.rs1 == int(Reg.GP)
        # Return address (what the fault handler recovers the pc from):
        tramp = build_smile(addr, target, compressed=True)
        assert tramp.p1 == addr + 4
        assert tramp.return_address == addr + 8

    def test_unreachable_target_raises(self):
        with pytest.raises(SmilePlacementError):
            build_smile(0x10000, 0x10400, compressed=True)  # wrong residue


class TestAchievability:
    def test_uncompressed_unconstrained(self):
        assert achievable_targets(0x1234, compressed=False) == ()

    def test_compressed_residues(self):
        res = achievable_targets(0x10000, compressed=True)
        assert len(res) == 16
        assert (0x10000 + 0x200) % 4096 in res
        assert (0x10000 + 0x307) % 4096 in res

    @given(TRAMP_ADDR, st.integers(min_value=0x10_0000, max_value=0x4000_0000))
    @settings(max_examples=50)
    def test_next_achievable_is_buildable(self, addr, cursor):
        target = next_achievable(addr, cursor)
        assert target >= cursor
        tramp = build_smile(addr, target, compressed=True)
        assert tramp.target == target

    def test_monotone(self):
        t1 = next_achievable(0x10000, 0x100000)
        t2 = next_achievable(0x10000, t1 + 2)
        assert t2 > t1


class TestAllocator:
    def test_unconstrained_is_dense(self):
        alloc = SmileTextAllocator(0x1000, compressed=False)
        a1 = alloc.place(0x10000, 100)
        a2 = alloc.place(0x20000, 100)
        assert a2 >= a1 + 100
        assert alloc.gap_bytes <= 2

    def test_constrained_placements_reachable(self):
        alloc = SmileTextAllocator(0x100000, compressed=True)
        for tramp in (0x10000, 0x10100, 0x13342, 0x2000A):
            addr = alloc.place(tramp, 64)
            build_smile(tramp, addr, compressed=True)  # must not raise

    def test_gap_reuse(self):
        alloc = SmileTextAllocator(0x100000, compressed=True)
        a1 = alloc.place(0x10000, 40)
        # A later trampoline with a different phase can land in the gap
        # before a1 or after; either way placements never overlap.
        a2 = alloc.place(0x10802, 40)
        assert a2 + 40 <= a1 or a2 >= a1 + 40

    @given(st.lists(st.tuples(TRAMP_ADDR, st.integers(min_value=8, max_value=400)),
                    min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_no_overlaps_property(self, requests):
        alloc = SmileTextAllocator(0x200000, compressed=True)
        placed = []
        for tramp, size in requests:
            addr = alloc.place(tramp, size)
            for other, osize in placed:
                assert addr + size <= other or addr >= other + osize
            placed.append((addr, size))


class TestVanillaTrampoline:
    @given(st.integers(min_value=0x1000, max_value=0x7000_0000).map(lambda x: x & ~3),
           st.integers(min_value=0x1000, max_value=0x7000_0000).map(lambda x: x & ~1))
    @settings(max_examples=50)
    def test_reaches_target(self, addr, target):
        data = vanilla_trampoline(addr, target, reg=6)
        auipc = decode(data, 0, addr=addr)
        jalr = decode(data, 4)
        assert jalr.rd == 0 and jalr.rs1 == 6
        assert addr + sign_extend(auipc.imm << 12, 32) + jalr.imm == target


class TestPadding:
    def test_nop_padding_when_no_boundary(self):
        data = padding_parcels(4, boundary_in_padding=False)
        assert decode(data, 0).mnemonic == "c.nop"

    def test_reserved_padding_when_boundary(self):
        data = padding_parcels(2, boundary_in_padding=True)
        assert u16(data) == RESERVED_C_PARCEL
        with pytest.raises(IllegalEncodingError):
            decode(data, 0)

    def test_odd_padding_rejected(self):
        with pytest.raises(ValueError):
            padding_parcels(3, boundary_in_padding=False)
