"""Recursive-descent instruction recovery over a Binary's text section.

Follows control flow from the entry point and every function symbol,
decoding as it goes.  Soundness: everything recovered decodes at a real
instruction boundary on some path.  Completeness is *not* guaranteed —
code reachable only via indirect jumps whose targets the scanner cannot
enumerate stays unrecognized, exactly the gap Chimera's runtime
rewriting covers (§4.1/§4.3).

Jump tables may be declared in ``binary.metadata["jump_tables"]`` as a
mapping ``{jump_addr: [target, ...]}`` — the analog of the metadata
heuristics (relocations, IDA switch recovery) the paper mentions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf.binary import Binary, Perm
from repro.isa.decoding import IllegalEncodingError, decode
from repro.isa.instructions import Instruction
from repro.telemetry import current as telemetry_current
from repro.telemetry.exec_trace import instruction_class


@dataclass
class ScanResult:
    """Recovered instructions and derived index structures."""

    instructions: dict[int, Instruction]
    entry_points: set[int]
    #: Addresses that are targets of *direct* control transfers.
    direct_targets: set[int]
    #: Addresses of indirect jumps whose target sets are unknown.
    unresolved_indirect: set[int]
    #: Text bytes never proven to be code.
    unrecognized_ranges: list[tuple[int, int]]

    def sorted_addrs(self) -> list[int]:
        """Recovered instruction addresses in ascending order."""
        return sorted(self.instructions)

    def at(self, addr: int) -> Instruction:
        """The recovered instruction at *addr* (KeyError if unrecovered)."""
        return self.instructions[addr]

    def next_addr(self, addr: int) -> int:
        """Address of the instruction following *addr* in the layout."""
        return addr + self.instructions[addr].length

    def coverage(self, text_size: int) -> float:
        """Fraction of text bytes proven to be code."""
        covered = sum(i.length for i in self.instructions.values())
        return covered / text_size if text_size else 1.0


class RecursiveScanner:
    """Recursive-descent scanner with optional symbol/jump-table seeds.

    ``seed_address_taken`` additionally treats code addresses that the
    program *materializes as constants* (``auipc+addi`` pairs and
    ``lui+addiw`` immediates landing in the text) as entry points —
    the address-taken heuristic real recovery tools use for function
    pointers.  Off by default: the incompleteness it papers over is
    exactly what Chimera's lazy runtime rewriting handles (§4.1).
    """

    def __init__(self, *, follow_calls: bool = True, seed_symbols: bool = True,
                 seed_address_taken: bool = False):
        self.follow_calls = follow_calls
        self.seed_symbols = seed_symbols
        self.seed_address_taken = seed_address_taken

    def scan(self, binary: Binary, extra_entries: list[int] | None = None) -> ScanResult:
        """Recover instructions of every executable section of *binary*."""
        telemetry = telemetry_current()
        with telemetry.span("analysis.scan", binary=binary.name):
            result = self._scan(binary, extra_entries)
        if telemetry.enabled:
            metrics = telemetry.metrics
            for instr in result.instructions.values():
                metrics.inc("scan.instructions", **{"class": instruction_class(instr)})
            metrics.inc("scan.entry_points", len(result.entry_points))
            metrics.inc("scan.unresolved_indirect", len(result.unresolved_indirect))
            metrics.inc("scan.unrecognized_gaps", len(result.unrecognized_ranges))
        return result

    def _scan(self, binary: Binary, extra_entries: list[int] | None = None) -> ScanResult:
        text_sections = [s for s in binary.sections if Perm.X in s.perm]
        bounds = [(s.addr, s.end) for s in text_sections]

        def in_text(addr: int) -> bool:
            return any(lo <= addr < hi for lo, hi in bounds)

        jump_tables: dict[int, list[int]] = dict(binary.metadata.get("jump_tables", {}))  # type: ignore[arg-type]

        worklist: list[int] = [binary.entry]
        entry_points = {binary.entry}
        if self.seed_symbols:
            for sym in binary.symbols.values():
                if sym.kind == "func" and in_text(sym.addr):
                    worklist.append(sym.addr)
                    entry_points.add(sym.addr)
        worklist.extend(extra_entries or [])
        entry_points.update(extra_entries or [])

        instructions: dict[int, Instruction] = {}
        direct_targets: set[int] = set()
        unresolved: set[int] = set()

        def drain() -> None:
            self._drain(worklist, instructions, direct_targets, unresolved,
                        jump_tables, text_sections, in_text)

        drain()
        if self.seed_address_taken:
            # Iterate: materialized code constants reveal new entries,
            # whose code may materialize further constants.
            for _ in range(16):
                fresh = [
                    addr for addr in _address_taken_targets(instructions, in_text)
                    if addr not in instructions
                ]
                if not fresh:
                    break
                worklist.extend(fresh)
                entry_points.update(fresh)
                drain()

        unrecognized = _gaps(instructions, bounds)
        return ScanResult(instructions, entry_points, direct_targets, unresolved, unrecognized)

    def _drain(self, worklist, instructions, direct_targets, unresolved,
               jump_tables, text_sections, in_text) -> None:
        while worklist:
            addr = worklist.pop()
            while in_text(addr) and addr not in instructions:
                section = next(s for s in text_sections if s.contains(addr))
                try:
                    instr = decode(section.data, addr - section.addr, addr=addr)
                except IllegalEncodingError:
                    break  # sound: stop at anything that is not provably code
                instructions[addr] = instr
                target = instr.target()
                if target is not None:
                    direct_targets.add(target)
                    if in_text(target):
                        worklist.append(target)
                if instr.is_indirect_jump():
                    if addr in jump_tables:
                        for t in jump_tables[addr]:
                            direct_targets.add(t)
                            if in_text(t):
                                worklist.append(t)
                    else:
                        unresolved.add(addr)
                    if instr.mnemonic == "jalr" and instr.rd == 1 and self.follow_calls:
                        addr += instr.length  # call returns to fall-through
                        continue
                    if instr.mnemonic == "c.jalr" and self.follow_calls:
                        addr += instr.length
                        continue
                    break
                if instr.is_jump():
                    is_call = (instr.mnemonic == "jal" and instr.rd == 1)
                    if is_call and self.follow_calls:
                        addr += instr.length
                        continue
                    break
                if instr.mnemonic in ("ecall", "ebreak", "c.ebreak"):
                    addr += instr.length
                    continue
                addr += instr.length


def _address_taken_targets(instructions: dict[int, Instruction], in_text) -> set[int]:
    """Code addresses the program materializes as register constants.

    Recognizes the two idioms our toolchain (and compilers generally)
    emit for code pointers: pc-relative ``auipc rd + addi rd, rd, lo``
    (the ``la`` expansion) and absolute ``lui rd + addiw rd, rd, lo``.
    """
    from repro.isa.fields import sign_extend

    out: set[int] = set()
    for addr, instr in instructions.items():
        if instr.mnemonic not in ("auipc", "lui"):
            continue
        nxt = instructions.get(addr + instr.length)
        if nxt is None or nxt.rs1 != instr.rd or nxt.rd != instr.rd:
            continue
        if instr.mnemonic == "auipc" and nxt.mnemonic == "addi":
            value = addr + sign_extend(instr.imm << 12, 32) + nxt.imm
        elif instr.mnemonic == "lui" and nxt.mnemonic == "addiw":
            value = sign_extend((instr.imm << 12) & 0xFFFFFFFF, 32) + nxt.imm
        else:
            continue
        if in_text(value) and value % 2 == 0:
            out.add(value)
    return out


def _gaps(instructions: dict[int, Instruction], bounds: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Compute [start, end) text ranges not covered by recovered code."""
    covered = sorted((a, a + i.length) for a, i in instructions.items())
    gaps: list[tuple[int, int]] = []
    for lo, hi in sorted(bounds):
        cursor = lo
        for start, end in covered:
            if end <= lo or start >= hi:
                continue
            if start > cursor:
                gaps.append((cursor, start))
            cursor = max(cursor, end)
        if cursor < hi:
            gaps.append((cursor, hi))
    return gaps
