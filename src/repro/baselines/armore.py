"""ARMore [26]: relocate-everything binary patching (§2.2).

ARMore copies all original instructions into a new code section (fixing
direct control flow and translating sources there) and turns the
*original* code section into a trampoline array: each original
instruction address holds a jump to its relocated counterpart.  Indirect
jumps keep original addresses as targets — including return addresses,
which ARMore deliberately leaves "original" so address-taken semantics
survive — so every indirect transfer bounces through a trampoline.

On ARM a single branch reaches ±128 MB and the bounce is one cheap
instruction.  On RISC-V ``jal`` reaches only ±1 MB and compressed slots
can hold no long jump at all, so once the relocated section is out of
reach the trampolines degrade to traps — the 171.5% overhead the paper
measures.  ``ArchParams.jal_reach`` (scaled with synthetic binaries)
decides reachability here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.scan import RecursiveScanner
from repro.baselines.reassemble import reassemble
from repro.core.translate import TranslationContext, Translator, VREGS_REGION_SIZE
from repro.elf.binary import Binary, Perm, Section
from repro.isa.encoding import encode
from repro.isa.extensions import IsaProfile
from repro.isa.instructions import Instruction
from repro.sim.cost import ArchParams, DEFAULT_ARCH
from repro.sim.cpu import Cpu
from repro.sim.faults import BreakpointTrap, SimFault
from repro.sim.machine import Kernel, Process


@dataclass
class ArmoreStats:
    """Static rewriting statistics."""

    source_instructions: int = 0
    jal_trampolines: int = 0
    trap_trampolines: int = 0
    relocated_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


@dataclass
class ArmoreResult:
    binary: Binary
    stats: ArmoreStats
    addr_map: dict[int, int]


class ArmoreRewriter:
    """Rewrite a binary ARMore-style for *target_profile*."""

    def __init__(self, *, arch: ArchParams = DEFAULT_ARCH, mode: str = "full"):
        self.arch = arch
        self.mode = mode

    def rewrite(self, binary: Binary, target_profile: IsaProfile) -> ArmoreResult:
        scan = RecursiveScanner().scan(binary)
        out = binary.clone(f"{binary.name}@armore-{target_profile.name}")
        data_end = max(s.end for s in out.sections if Perm.W in s.perm)
        vregs_base = (data_end + 0xF) & ~0xF
        out.add_section(Section(".chimera.vregs", vregs_base, bytearray(VREGS_REGION_SIZE), Perm.RW))
        translator = Translator(
            TranslationContext(vregs_base, binary.global_pointer), mode=self.mode
        )

        def needs_translation(instr: Instruction) -> bool:
            if instr.extension in target_profile.extensions:
                return False
            return True if self.mode == "empty" else translator.can_translate(instr)

        text = out.text
        # ARMore appends the relocated section right after the code, so
        # the original->relocated distance is on the order of the code
        # size (what decides jal reachability).  Fall back above every
        # section if the gap to the data segment is too small.
        reloc_base = (text.end + 0xFFF) & ~0xFFF
        data_start = min(s.addr for s in out.sections if s.addr > text.end)
        if reloc_base + 4 * text.size > data_start:
            reloc_base = (max(s.end for s in out.sections) + 0xFFF) & ~0xFFF
        from repro.baselines.safer import _loop_sites

        code = reassemble(
            scan, translator, reloc_base,
            needs_translation=needs_translation,
            call_ra_style="original",
            pattern_sites=_loop_sites(scan, binary, target_profile, self.mode),
        )
        out.add_section(Section(".armore.text", reloc_base, bytearray(code.code), Perm.RX))

        stats = ArmoreStats(
            source_instructions=sum(1 for i in scan.instructions.values() if needs_translation(i)),
            relocated_bytes=len(code.code),
        )

        # Original section -> trampoline array.
        reach = min(self.arch.jal_reach, 1 << 20)
        trap_table: dict[int, int] = dict(code.trap_veneers)
        trampoline_addrs: list[int] = []
        for addr, instr in sorted(scan.instructions.items()):
            new = code.addr_map[addr]
            disp = new - addr
            if instr.length == 4 and -reach <= disp < reach:
                text.write(addr, encode(Instruction("jal", rd=0, imm=disp)))
                stats.jal_trampolines += 1
            else:
                trap = encode(Instruction("c.ebreak", length=2)) if instr.length == 2 \
                    else encode(Instruction("ebreak"))
                text.write(addr, trap)
                trap_table[addr] = new
                stats.trap_trampolines += 1
            trampoline_addrs.append(addr)

        # Veneer traps inside relocated code resolve through the map too.
        for vaddr, old_target in code.trap_veneers.items():
            trap_table[vaddr] = code.addr_map.get(old_target, old_target)
        out.metadata["armore"] = {
            "trap_table": trap_table,
            "addr_map": dict(code.addr_map),
            "trampoline_addrs": trampoline_addrs,
        }
        return ArmoreResult(out, stats, dict(code.addr_map))


class ArmoreRuntime:
    """Kernel-side trap servicing + bounce counting."""

    def __init__(self, rewritten: Binary):
        meta = rewritten.metadata.get("armore")
        if meta is None:
            raise ValueError(f"{rewritten.name} was not produced by ArmoreRewriter")
        self.trap_table: dict[int, int] = meta["trap_table"]
        self.trampoline_addrs: list[int] = meta["trampoline_addrs"]
        self.traps = 0

    def install(self, kernel: Kernel) -> None:
        kernel.register_fault_handler(self.handle_fault, priority=True)

    def attach_cpu(self, cpu: Cpu) -> None:
        """Tag jal trampolines so executed bounces are counted."""
        for addr in self.trampoline_addrs:
            cpu.tag_addrs.setdefault(addr, "armore_redirects")

    def handle_fault(self, kernel: Kernel, process: Process, cpu: Cpu, fault: SimFault) -> bool:
        if not isinstance(fault, BreakpointTrap):
            return False
        target = self.trap_table.get(cpu.pc)
        if target is None:
            return False
        cpu.pc = target
        cpu.cycles += cpu.cost.trap_cost
        cpu.bump("armore_redirects")
        cpu.bump("traps")
        self.traps += 1
        return True
