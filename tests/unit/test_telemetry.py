"""Unit tests for repro.telemetry: spans, clocks, metrics, export.

Covers the ISSUE's acceptance points that are testable in isolation:
span nesting and clock monotonicity under the sim-cycle clock,
histogram percentile math, the Chrome trace_event round-trip, registry
merge semantics, and the zero-cost-when-disabled guarantee (simulated
cycles/instret must be bit-identical with telemetry off, and the tally
tracer must not be attached).
"""

import json

import pytest

from repro.harness import run_native
from repro.isa.extensions import RV64GC
from repro.telemetry import (
    NULL_TELEMETRY,
    Histogram,
    MetricsRegistry,
    NullTelemetry,
    SimCycleClock,
    SpanTracer,
    Telemetry,
    current,
    percentile,
    profiled,
    spans_from_chrome,
    use,
)
from repro.telemetry.export import (
    METRICS_SCHEMA,
    metrics_payload,
    validate_metrics,
    write_telemetry,
)
from repro.workloads.programs import FibonacciWorkload


class TestSpans:
    def test_nesting_depth(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("mid"):
                with tracer.span("inner"):
                    pass
            with tracer.span("mid2"):
                pass
        depths = {s.name: s.depth for s in tracer.completed}
        assert depths == {"outer": 0, "mid": 1, "inner": 2, "mid2": 1}

    def test_end_closes_stack_beneath(self):
        tracer = SpanTracer()
        outer = tracer.begin("outer")
        tracer.begin("leaked")
        tracer.end(outer)
        assert all(s.closed for s in tracer.spans)
        assert tracer._stack == []

    def test_spans_carry_args(self):
        tracer = SpanTracer()
        with tracer.span("phase", binary="b", n=3) as span:
            pass
        assert span.args == {"binary": "b", "n": 3}

    def test_wall_times_monotonic_and_contained(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.find("outer")[0], tracer.find("inner")[0]
        assert outer.start_us <= inner.start_us
        assert inner.end_us <= outer.end_us
        assert outer.duration_us >= inner.duration_us >= 0


class TestSimCycleClock:
    def test_unbound_clock_holds_last_value(self):
        clock = SimCycleClock()
        assert clock.now() == 0
        cycles = [0]
        with clock.bind(lambda: cycles[0]):
            cycles[0] = 100
            assert clock.now() == 100
        assert clock.now() == 100  # latched after unbind

    def test_rebinding_never_goes_backwards(self):
        """Sequential runs rebind fresh CPUs whose counters start at 0;
        the clock must stay monotonic across them."""
        clock = SimCycleClock()
        observed = []
        for run_cycles in (500, 200, 300):
            cpu = [0]
            with clock.bind(lambda: cpu[0]):
                cpu[0] = run_cycles
                observed.append(clock.now())
        assert observed == [500, 700, 1000]
        assert observed == sorted(observed)

    def test_bind_restores_previous_source(self):
        clock = SimCycleClock()
        outer = [10]
        with clock.bind(lambda: outer[0]):
            assert clock.now() == 10
            inner = [1]
            with clock.bind(lambda: inner[0]):
                inner[0] = 5
                assert clock.now() == 15  # offset latched at rebind
            outer[0] = 100
            # back on the outer source, still monotonic
            assert clock.now() >= 15

    def test_span_cycles_monotonic_across_sequential_runs(self):
        telemetry = Telemetry()
        for run_cycles in (40, 10):
            cpu = [0]
            with telemetry.bind_cycles(lambda: cpu[0]):
                with telemetry.span("sim.run"):
                    cpu[0] = run_cycles
        first, second = telemetry.tracer.find("sim.run")
        assert first.end_cycles <= second.start_cycles
        assert second.duration_cycles == 10


class TestPercentile:
    def test_linear_interpolation(self):
        xs = [10, 20, 30, 40]
        assert percentile(xs, 0) == 10
        assert percentile(xs, 100) == 40
        assert percentile(xs, 50) == pytest.approx(25.0)
        assert percentile(xs, 25) == pytest.approx(17.5)
        assert percentile(xs, 90) == pytest.approx(37.0)

    def test_singleton_and_empty(self):
        assert percentile([7], 99) == 7.0
        assert percentile([], 50) == 0.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 101)
        with pytest.raises(ValueError):
            percentile([1, 2], -1)


class TestHistogram:
    def test_stats(self):
        h = Histogram()
        for v in (1, 2, 3, 4):
            h.observe(v)
        s = h.stats()
        assert s["count"] == 4
        assert s["sum"] == 10
        assert s["min"] == 1 and s["max"] == 4
        assert s["mean"] == pytest.approx(2.5)
        assert s["p50"] == pytest.approx(2.5)

    def test_retention_cap_keeps_exact_aggregates(self):
        h = Histogram(retention=4)
        for v in range(10):
            h.observe(v)
        assert h.count == 10
        assert h.max == 9
        assert len(h._values) == 4  # percentile sample is the prefix

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.observe(1)
        b.observe(9)
        a.merge(b)
        assert a.count == 2 and a.min == 1 and a.max == 9


class TestMetricsRegistry:
    def test_counters_labels_and_total(self):
        m = MetricsRegistry()
        m.inc("cpu.instret", 5, **{"class": "base"})
        m.inc("cpu.instret", 2, **{"class": "vector"})
        m.inc("cpu.instret", 1, **{"class": "base"})
        assert m.counter("cpu.instret", **{"class": "base"}) == 6
        assert m.total("cpu.instret") == 8
        assert len(m.series("cpu.instret")) == 2

    def test_label_order_insensitive(self):
        m = MetricsRegistry()
        m.inc("x", a="1", b="2")
        m.inc("x", b="2", a="1")
        assert m.counter("x", a="1", b="2") == 2

    def test_merge_adds_extra_labels_and_sums(self):
        run = MetricsRegistry()
        run.inc("sched.steals", 3, core="1")
        run.observe("sched.queue_depth", 4, pool="ext")
        session = MetricsRegistry()
        session.inc("sched.steals", 1, core="1", engine="des")
        session.merge(run, engine="des")
        assert session.counter("sched.steals", core="1", engine="des") == 4
        hist = session.histogram("sched.queue_depth", pool="ext", engine="des")
        assert hist is not None and hist.count == 1

    def test_gauges_last_write_wins(self):
        m = MetricsRegistry()
        m.gauge("bench.latency", 10, system="chimera")
        m.gauge("bench.latency", 20, system="chimera")
        assert m.gauge_value("bench.latency", system="chimera") == 20


class TestChromeRoundTrip:
    def test_round_trip_preserves_structure(self):
        tracer = SpanTracer()
        with tracer.span("pipeline", workload="dot"):
            with tracer.span("build"):
                pass
            with tracer.span("execute"):
                with tracer.span("sim.run", core="0"):
                    pass
        payload = json.loads(json.dumps(tracer.to_chrome()))
        assert payload["otherData"]["schema"] == "chrome-trace-event"
        rebuilt = spans_from_chrome(payload)
        assert len(rebuilt) == len(tracer.completed)
        by_name = {s.name: s for s in rebuilt}
        original = {s.name: s for s in tracer.completed}
        for name, span in by_name.items():
            assert span.depth == original[name].depth, name
            assert span.start_us == original[name].start_us
            assert span.duration_us == original[name].duration_us
        assert by_name["pipeline"].args == {"workload": "dot"}

    def test_open_spans_are_not_exported(self):
        tracer = SpanTracer()
        tracer.begin("never-closed")
        assert tracer.to_chrome()["traceEvents"] == []


class TestActivation:
    def test_current_defaults_to_null(self):
        assert current() is NULL_TELEMETRY
        assert not current().enabled

    def test_use_scopes_and_restores(self):
        t = Telemetry()
        with use(t):
            assert current() is t
            with use(Telemetry()) as inner:
                assert current() is inner
            assert current() is t
        assert current() is NULL_TELEMETRY

    def test_profiled_records_only_when_enabled(self):
        @profiled("work.step")
        def step():
            return 42

        assert step() == 42  # disabled: no error, no recording
        t = Telemetry()
        with use(t):
            assert step() == 42
        assert len(t.tracer.find("work.step")) == 1

    def test_null_write_raises(self):
        with pytest.raises(RuntimeError):
            NullTelemetry().write("/tmp/nowhere")


class TestExport:
    def test_write_and_validate(self, tmp_path):
        t = Telemetry()
        with t.span("phase"):
            pass
        t.metrics.inc("patch.trampolines", 3, kind="smile")
        t.metrics.observe("patch.region_bytes", 8)
        paths = t.write(tmp_path)
        trace = json.loads(open(paths["trace"]).read())
        assert trace["traceEvents"][0]["name"] == "phase"
        metrics = json.loads(open(paths["metrics"]).read())
        assert metrics["schema"] == METRICS_SCHEMA
        assert validate_metrics(metrics) == []

    def test_validate_rejects_malformed(self):
        assert validate_metrics({"schema": "wrong"})
        bad = metrics_payload(MetricsRegistry())
        bad["counters"] = [{"name": "x", "labels": {}, "value": True}]
        assert validate_metrics(bad)


class TestZeroCostDisabled:
    """Telemetry must not perturb simulation, and the disabled path must
    not attach any per-instruction machinery (the ≤2% hot-path budget is
    met structurally: with telemetry off the kernel runs the exact same
    loop as the seed, no tracer, no decode-miss counting)."""

    def _run(self):
        binary = FibonacciWorkload(iterations=30).build("base")
        return run_native(binary, RV64GC)

    def test_simulation_identical_with_and_without_telemetry(self):
        baseline = self._run()
        t = Telemetry()
        with use(t):
            enabled = self._run()
        disabled = self._run()
        assert enabled.cycles == baseline.cycles == disabled.cycles
        assert enabled.result.instret == baseline.result.instret
        # the enabled run actually recorded per-class instret
        assert t.metrics.total("cpu.instret") == enabled.result.instret

    def test_disabled_run_counts_no_decode_misses(self):
        result = self._run().result
        assert "decode_misses" not in result.counters
