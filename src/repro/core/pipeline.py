"""Parallel verified-rewrite pipeline with a content-addressed cache.

``rewrite_and_verify`` is the one-stop producer of a *released* binary:
it translates (``ChimeraRewriter``), then admits every patched region
through the static gate and seeded differential oracle
(:mod:`repro.verify.admission`), fanning the per-region work across a
thread pool when ``jobs > 1``.  Results are deterministic for any job
count: each oracle trial's RNG is derived from ``(seed, region, trial)``
alone and verdicts are collected in record order, so the rewritten bytes
and the :class:`~repro.verify.report.VerifyReport` ledger are identical
whether the pipeline ran serial, parallel, or from cache.

The cache is content-addressed: the key hashes the *input* binary's
sections, the rewriter configuration, and the gate configuration
(including the resolved seed).  A hit loads the previously released
``.self`` image plus its verification ledger and skips both translation
and verification — safe precisely because every key ingredient that
could change the output is part of the key.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.core.rewriter import ChimeraRewriter, RewriteResult
from repro.elf.binary import Binary
from repro.elf.fileformat import FileFormatError, load_binary_file, save_binary
from repro.isa.extensions import IsaProfile
from repro.resilience.seeds import resolve_seed
from repro.telemetry import current as telemetry_current
from repro.verify.report import VerifyReport

#: Bump whenever the rewrite or verification output format changes in a
#: way the key ingredients do not capture.
_CACHE_SCHEMA = "chimera-rewrite-cache/v1"


@dataclass
class PipelineResult:
    """Everything ``rewrite_and_verify`` produced for one binary."""

    result: RewriteResult
    report: VerifyReport
    cache_hit: bool = False
    #: Wall-clock seconds; zero for the skipped halves of a cache hit.
    rewrite_seconds: float = 0.0
    verify_seconds: float = 0.0

    @property
    def binary(self) -> Binary:
        return self.result.binary

    @property
    def ok(self) -> bool:
        return self.report.ok


def _rewriter_config(rewriter: ChimeraRewriter) -> dict:
    arch = rewriter.arch
    return {
        "mode": rewriter.mode,
        "batch_blocks": rewriter.batch_blocks,
        "shift_exits": rewriter.shift_exits,
        "enable_upgrades": rewriter.enable_upgrades,
        "scan_address_taken": rewriter.scan_address_taken,
        "smile_register": rewriter.smile_register,
        "use_smile": rewriter.use_smile,
        "arch": {k: v for k, v in vars(arch).items()},
    }


def cache_key(
    binary: Binary,
    target_profile: IsaProfile,
    rewriter: ChimeraRewriter,
    gate_config: dict,
) -> str:
    """Content hash of everything that determines the pipeline output."""
    h = hashlib.sha256()
    h.update(_CACHE_SCHEMA.encode())
    h.update(json.dumps({
        "entry": binary.entry,
        "gp": binary.global_pointer,
        "target": target_profile.name,
        "rewriter": _rewriter_config(rewriter),
        "gate": gate_config,
    }, sort_keys=True).encode())
    for section in sorted(binary.sections, key=lambda s: (s.name, s.addr)):
        h.update(f"\x00{section.name}\x00{section.addr}"
                 f"\x00{section.perm.value}\x00".encode())
        h.update(bytes(section.data))
    return h.hexdigest()


def _load_cached(
    cache_dir: Path, key: str, target_profile: IsaProfile
) -> Optional[tuple[RewriteResult, VerifyReport]]:
    binary_path = cache_dir / f"{key}.self"
    report_path = cache_dir / f"{key}.report.json"
    if not (binary_path.is_file() and report_path.is_file()):
        return None
    try:
        binary = load_binary_file(binary_path)
        report = VerifyReport.load(report_path)
    except (FileFormatError, OSError, KeyError, ValueError):
        return None  # treat a corrupt entry as a miss; it gets rewritten
    meta = binary.metadata.get("chimera")
    if meta is None or meta.get("patch_records") is None:
        return None  # pre-record cache entry: not enough to re-release
    result = RewriteResult(binary, target_profile, meta.get("stats"))
    return result, report


def _store_cached(cache_dir: Path, key: str, result: RewriteResult,
                  report: VerifyReport) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    # Write via temp names then rename: a concurrent reader never sees a
    # half-written entry (rename is atomic within the directory).
    binary_tmp = cache_dir / f".{key}.self.tmp"
    report_tmp = cache_dir / f".{key}.report.json.tmp"
    save_binary(result.binary, binary_tmp)
    report.write_json(report_tmp)
    binary_tmp.rename(cache_dir / f"{key}.self")
    report_tmp.rename(cache_dir / f"{key}.report.json")


def rewrite_and_verify(
    binary: Binary,
    target_profile: IsaProfile,
    *,
    rewriter: Optional[ChimeraRewriter] = None,
    seed: Optional[int] = None,
    oracle_trials: int = 2,
    oracle_max_steps: int = 512,
    max_oracle_regions: int = 0,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> PipelineResult:
    """Translate *binary* for *target_profile* and admission-verify it."""
    rewriter = rewriter or ChimeraRewriter()
    seed = resolve_seed(seed)
    telemetry = telemetry_current()
    gate_config = {
        "seed": seed,
        "oracle_trials": oracle_trials,
        "oracle_max_steps": oracle_max_steps,
        "max_oracle_regions": max_oracle_regions,
    }

    cache_path = Path(cache_dir) if cache_dir is not None else None
    key = None
    if cache_path is not None:
        key = cache_key(binary, target_profile, rewriter, gate_config)
        cached = _load_cached(cache_path, key, target_profile)
        if cached is not None:
            if telemetry.enabled:
                telemetry.metrics.inc("pipeline.rewrite_cache_hits",
                                      binary=binary.name,
                                      target=target_profile.name)
            result, report = cached
            return PipelineResult(result, report, cache_hit=True)
        if telemetry.enabled:
            telemetry.metrics.inc("pipeline.rewrite_cache_misses",
                                  binary=binary.name,
                                  target=target_profile.name)

    # Attribute access at call time so tests monkeypatching
    # ``repro.verify.verify_binary`` intercept the pipeline too.
    from repro import verify as verify_mod

    with telemetry.span("pipeline.rewrite_verify", binary=binary.name,
                        target=target_profile.name, jobs=jobs):
        t0 = time.perf_counter()
        result = rewriter.rewrite(binary, target_profile)
        t1 = time.perf_counter()
        report = verify_mod.verify_binary(
            binary, result.binary, seed=seed,
            oracle_trials=oracle_trials, oracle_max_steps=oracle_max_steps,
            max_oracle_regions=max_oracle_regions, jobs=jobs,
            liveness=result.liveness,
        )
        t2 = time.perf_counter()

    if cache_path is not None:
        _store_cached(cache_path, key, result, report)
    return PipelineResult(result, report, cache_hit=False,
                          rewrite_seconds=t1 - t0, verify_seconds=t2 - t1)
