"""Bit-manipulation helper tests."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.fields import (
    bit,
    bits,
    check_aligned,
    check_signed,
    check_unsigned,
    fits_signed,
    fits_unsigned,
    p16,
    p32,
    sign_extend,
    split_hi_lo,
    to_signed64,
    to_unsigned64,
    u16,
    u32,
)


class TestBits:
    def test_bits_extracts_inclusive_range(self):
        assert bits(0b1101100, 5, 2) == 0b1011

    def test_bits_full_width(self):
        assert bits(0xDEADBEEF, 31, 0) == 0xDEADBEEF

    def test_bits_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            bits(0, 1, 3)

    def test_bit_single(self):
        assert bit(0b100, 2) == 1
        assert bit(0b100, 1) == 0


class TestSignExtend:
    def test_positive_unchanged(self):
        assert sign_extend(0x7F, 8) == 0x7F

    def test_negative_extends(self):
        assert sign_extend(0x80, 8) == -128
        assert sign_extend(0xFFF, 12) == -1

    def test_to_signed64_wraps(self):
        assert to_signed64(2**64 - 1) == -1
        assert to_signed64(5) == 5

    def test_to_unsigned64_wraps(self):
        assert to_unsigned64(-1) == 2**64 - 1

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_32(self, value):
        assert to_unsigned64(sign_extend(value, 32)) & 0xFFFFFFFF == value


class TestFits:
    def test_signed_boundaries(self):
        assert fits_signed(2047, 12)
        assert fits_signed(-2048, 12)
        assert not fits_signed(2048, 12)
        assert not fits_signed(-2049, 12)

    def test_unsigned_boundaries(self):
        assert fits_unsigned(0, 5)
        assert fits_unsigned(31, 5)
        assert not fits_unsigned(32, 5)
        assert not fits_unsigned(-1, 5)

    def test_check_signed_raises(self):
        with pytest.raises(ValueError):
            check_signed(4096, 12, "imm")
        assert check_signed(-5, 12, "imm") == -5

    def test_check_unsigned_raises(self):
        with pytest.raises(ValueError):
            check_unsigned(64, 6, "shamt")

    def test_check_aligned(self):
        assert check_aligned(8, 4, "x") == 8
        with pytest.raises(ValueError):
            check_aligned(6, 4, "x")


class TestSplitHiLo:
    @given(st.integers(min_value=-(2**31) + 2048, max_value=2**31 - 2049))
    def test_recombination(self, offset):
        hi, lo = split_hi_lo(offset)
        assert sign_extend(hi << 12, 32) + lo == offset

    def test_carry_case(self):
        hi, lo = split_hi_lo(0x801)  # lo sign-extends negative, hi absorbs
        assert sign_extend(hi << 12, 32) + lo == 0x801
        assert -2048 <= lo < 2048


class TestPacking:
    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_u16_roundtrip(self, value):
        assert u16(p16(value)) == value

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_u32_roundtrip(self, value):
        assert u32(p32(value)) == value

    def test_little_endian_order(self):
        assert p32(0x11223344) == bytes([0x44, 0x33, 0x22, 0x11])
