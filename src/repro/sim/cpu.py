"""The interpreter core: fetch, decode (cached), execute, account cycles.

One :class:`Cpu` models one hart running one task.  Its
:class:`~repro.isa.extensions.IsaProfile` is the ISAX capability mask:
executing an instruction from an extension the profile lacks raises
``IllegalInstructionFault(kind="unsupported-extension")`` — the
architectural event FAM migrates on and Chimera's runtime rewriter
repairs.

Faults propagate as exceptions with ``cpu.pc`` still pointing at the
faulting instruction; the simulated kernel (:mod:`repro.sim.machine`)
catches them, adjusts state, and resumes by calling :meth:`Cpu.run`
again.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Optional

from repro.isa.decoding import IllegalEncodingError, decode
from repro.isa.extensions import Extension, IsaProfile, RV64GCV
from repro.isa.fields import sign_extend, to_unsigned64
from repro.isa.instructions import Instruction
from repro.sim.cost import CostModel, DEFAULT_ARCH
from repro.sim.faults import (
    BreakpointTrap,
    EcallTrap,
    IllegalInstructionFault,
    SimFault,
    SimulationLimitExceeded,
)
from repro.sim.memory import AddressSpace
from repro.sim.vector import VectorUnit

_MASK64 = 0xFFFFFFFFFFFFFFFF
_MASK32 = 0xFFFFFFFF

#: Mnemonics that may redirect control flow; they terminate superblocks.
#: ecall/ebreak raise, so they end a block the same way a jump does.
_CTRL_MNEMONICS = frozenset({
    "jal", "jalr", "beq", "bne", "blt", "bge", "bltu", "bgeu",
    "ecall", "ebreak",
    "c.j", "c.jr", "c.jalr", "c.beqz", "c.bnez", "c.ebreak",
})

#: Straight-line run length cap per superblock.
_MAX_BLOCK_OPS = 128


def _s(value: int) -> int:
    """Unsigned-64 storage -> signed value."""
    return value - 0x1_0000_0000_0000_0000 if value & 0x8000_0000_0000_0000 else value


class Cpu:
    """A single simulated hart."""

    def __init__(
        self,
        space: AddressSpace,
        profile: IsaProfile = RV64GCV,
        cost_model: Optional[CostModel] = None,
        name: str = "hart0",
        block_cache: bool = True,
    ):
        self.space = space
        self.profile = profile
        self.cost = cost_model or CostModel(DEFAULT_ARCH)
        self.name = name
        self.regs: list[int] = [0] * 32
        self.pc = 0
        self.vector = VectorUnit(vlen=self.cost.params.vlen)
        self.cycles = 0
        self.instret = 0
        #: pc of the most recently *retired* instruction; lets fault
        #: handlers attribute a fetch fault to the jump that caused it
        #: (e.g. a SMILE jalr whose gp was clobbered before recovery).
        self.last_pc: Optional[int] = None
        #: Optional per-retired-instruction hook (see repro.sim.trace).
        self.tracer = None
        #: Optional pre-fetch hook called with this cpu before every
        #: instruction; may raise a structured :class:`SimFault`.  The
        #: resilience layer arms it to kill/flake a core mid-task at a
        #: precise instruction boundary (nothing partially executed).
        self.step_hook: Optional[Callable[["Cpu"], None]] = None
        #: Optional hook called with (cpu, fault) for every SimFault that
        #: propagates out of :meth:`step`, after the faulting pc has been
        #: filled in.  The chaos harness installs an assertion here that
        #: ``fault.pc`` is never None once the CPU knows it.
        self.fault_hook: Optional[Callable[["Cpu", "SimFault"], None]] = None
        #: Counts of interesting dynamic events, keyed by name.
        self.counters: dict[str, int] = defaultdict(int)
        #: Optional address tags: executing a tagged address bumps the
        #: named counter (used to count e.g. ARMore trampoline bounces).
        self.tag_addrs: dict[int, str] = {}
        #: When True, decode-cache misses bump the ``decode_misses``
        #: counter.  Off by default — telemetry flips it on so existing
        #: tests asserting exact counter contents are unaffected.
        self.count_decode = False
        # decode cache: addr -> (instr, handler, tag, seg, seg_version)
        self._dcache: dict[int, tuple[Instruction, Callable, Optional[str], object, int]] = {}
        #: Superblock engine switch: when True, :meth:`run` executes
        #: straight-line runs from a basic-block cache; when any hook
        #: (step_hook/tracer/tag_addrs) is live it falls back to
        #: :meth:`step` so chaos/self-heal/telemetry semantics hold.
        self.block_cache = block_cache
        # superblock cache: entry pc -> (ops, seg, seg_version, start, end)
        # where ops = [(pc, next_pc, instr, handler, cost, cost_taken)].
        self._bcache: dict[int, tuple[list, object, int, int, int]] = {}

    # -- register helpers --------------------------------------------------

    def get_reg(self, idx: int) -> int:
        """Read an integer register (x0 reads as 0)."""
        return self.regs[idx] if idx else 0

    def set_reg(self, idx: int, value: int) -> None:
        """Write an integer register (writes to x0 are discarded)."""
        if idx:
            self.regs[idx] = value & _MASK64

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named event counter."""
        self.counters[counter] += amount

    def flush_decode_cache(self) -> None:
        """Drop all cached decodes and superblocks (after code patching)."""
        self._dcache.clear()
        self._bcache.clear()

    def invalidate_code(self, addr: int, length: int) -> None:
        """Targeted invalidation after a code patch at ``[addr, addr+length)``.

        Evicts decode-cache entries and superblocks overlapping the
        patched range.  Surviving entries in the patched segment are
        re-validated in place when the segment advanced by exactly the
        one version bump this patch made — so a ranged patch costs only
        the overlapping entries, not the whole cache.  Correctness never
        depends on this being called: every cache probe checks the
        segment version and rebuilds stale entries lazily.
        """
        end = addr + length
        dcache = self._dcache
        for pc in [pc for pc, e in dcache.items()
                   if pc < end and pc + e[0].length > addr]:
            del dcache[pc]
        for pc, entry in dcache.items():
            instr, handler, tag, seg, version = entry
            if seg.contains(addr) and version == seg.version - 1:
                dcache[pc] = (instr, handler, tag, seg, seg.version)
        bcache = self._bcache
        for pc in [pc for pc, b in bcache.items()
                   if b[3] < end and b[4] > addr]:
            del bcache[pc]
        for pc, block in bcache.items():
            ops, seg, version, start, stop = block
            if seg.contains(addr) and version == seg.version - 1:
                bcache[pc] = (ops, seg, seg.version, start, stop)

    def snapshot_regs(self) -> list[int]:
        """Copy of the integer register file."""
        return list(self.regs)

    # -- fetch/decode --------------------------------------------------------

    def _decode_at(self, pc: int) -> tuple[Instruction, Callable, Optional[str]]:
        cached = self._dcache.get(pc)
        if cached is not None:
            instr, handler, tag, seg, version = cached
            if seg.version == version:
                return instr, handler, tag
        seg = self.space.fetch_segment(pc)  # raises SegmentationFault(exec)
        if self.count_decode:
            self.bump("decode_misses")
        try:
            instr = decode(seg.data, pc - seg.base, addr=pc)
        except IllegalEncodingError as exc:
            raise IllegalInstructionFault(pc, exc.kind, str(exc)) from exc
        handler = _HANDLERS.get(instr.mnemonic)
        if handler is None:
            raise IllegalInstructionFault(pc, "unknown", f"no semantics for {instr.mnemonic}")
        if instr.extension not in self.profile.extensions:
            handler = _unsupported
        tag = self.tag_addrs.get(pc) if self.tag_addrs else None
        self._dcache[pc] = (instr, handler, tag, seg, seg.version)
        return instr, handler, tag

    # -- execution -----------------------------------------------------------

    def step(self) -> Instruction:
        """Execute one instruction; returns it.  Faults propagate.

        Every :class:`SimFault` leaving this method carries the faulting
        pc: raise sites that only know an address (memory faults) get it
        filled in here, where the pc is authoritative.
        """
        pc = self.pc
        try:
            if self.step_hook is not None:
                self.step_hook(self)
            instr, handler, tag = self._decode_at(pc)
            self.pc = pc + instr.length
            try:
                taken = handler(self, instr)
            except Exception:
                self.pc = pc  # leave pc at the faulting instruction
                raise
        except SimFault as fault:
            if fault.pc is None:
                fault.pc = pc
            if self.fault_hook is not None:
                self.fault_hook(self, fault)
            raise
        if tag is not None:
            self.counters[tag] = self.counters.get(tag, 0) + 1
        if self.tracer is not None:
            self.tracer(self, instr)
        self.last_pc = pc
        self.instret += 1
        self.cycles += self.cost.instruction_cost(instr, taken=bool(taken))
        return instr

    def run(self, max_instructions: int = 50_000_000) -> None:
        """Run until a fault propagates or the budget is exhausted.

        With :attr:`block_cache` on and no per-step hook live, execution
        goes through the superblock engine: straight-line runs are
        decoded once into a flat dispatch list and replayed in a tight
        loop with precomputed costs.  Any live ``step_hook``/``tracer``/
        ``tag_addrs`` drops back to :meth:`step` per instruction, so
        instrumented runs observe every architectural event.
        """
        step = self.step
        remaining = max_instructions
        if not self.block_cache:
            while remaining > 0:
                step()
                remaining -= 1
            raise SimulationLimitExceeded(max_instructions)
        bcache = self._bcache
        hits = 0
        retired = 0
        try:
            while remaining > 0:
                if (self.step_hook is not None or self.tracer is not None
                        or self.tag_addrs):
                    step()
                    remaining -= 1
                    continue
                pc = self.pc
                block = bcache.get(pc)
                if block is None or block[1].version != block[2]:
                    try:
                        block = self._build_block(pc)
                    except SimFault as fault:
                        if fault.pc is None:
                            fault.pc = pc
                        if self.fault_hook is not None:
                            self.fault_hook(self, fault)
                        raise
                else:
                    hits += 1
                executed = self._exec_block(block[0], remaining)
                retired += executed
                remaining -= executed
        finally:
            if retired:
                self.counters["superblock_instret"] += retired
            if hits:
                self.counters["block_cache_hits"] += hits
        raise SimulationLimitExceeded(max_instructions)

    def _build_block(self, pc: int) -> tuple[list, object, int, int, int]:
        """Decode the straight-line run starting at *pc* into a superblock.

        The block ends at the first control-flow instruction, at the
        segment edge, at an instruction the profile cannot execute, or
        at the op cap.  A decode failure past the entry just ends the
        block early: execution reaches that pc architecturally and the
        fault is raised from there with the exact :meth:`step` protocol.
        """
        seg = self.space.fetch_segment(pc)  # raises SegmentationFault(exec)
        version = seg.version
        seg_end = seg.end
        instruction_cost = self.cost.instruction_cost
        ops: list = []
        cur = pc
        while len(ops) < _MAX_BLOCK_OPS:
            try:
                instr, handler, _tag = self._decode_at(cur)
            except SimFault:
                if ops:
                    break  # fault raised when execution actually gets there
                raise
            fn = handler
            if handler is not _unsupported:
                spec = _SPECIALIZERS.get(instr.mnemonic)
                if spec is not None:
                    fn = spec(instr) or handler
            nxt = cur + instr.length
            ops.append((cur, nxt, instr, fn,
                        instruction_cost(instr, taken=False),
                        instruction_cost(instr, taken=True)))
            if instr.mnemonic in _CTRL_MNEMONICS or handler is _unsupported:
                break
            cur = nxt
            if cur >= seg_end:
                break
        block = (ops, seg, version, pc, ops[-1][1])
        self._bcache[pc] = block
        return block

    def _exec_block(self, ops: list, limit: int) -> int:
        """Execute up to *limit* ops of one superblock; returns retired count.

        Mirrors :meth:`step` exactly on the fault path: pc restored to
        the faulting instruction, ``fault.pc`` filled, ``fault_hook``
        fired, and only retired ops counted toward instret/cycles.
        """
        if len(ops) > limit:
            ops = ops[:limit]
        executed = 0
        cycles = 0
        pc = self.pc
        try:
            for pc, nxt, instr, handler, cost, cost_taken in ops:
                self.pc = nxt
                if handler(self, instr):
                    cycles += cost_taken
                else:
                    cycles += cost
                executed += 1
                if self.pc != nxt:
                    break
        except SimFault as fault:
            self.pc = pc
            self._commit(executed, cycles, ops, count=True)
            if fault.pc is None:
                fault.pc = pc
            if self.fault_hook is not None:
                self.fault_hook(self, fault)
            raise
        except Exception:
            self.pc = pc
            self._commit(executed, cycles, ops, count=True)
            raise
        self._commit(executed, cycles, ops)
        return executed

    def _commit(self, executed: int, cycles: int, ops: list,
                count: bool = False) -> None:
        """Account a (possibly partial) superblock's retired ops.

        ``count=True`` (the fault paths) also settles the
        ``superblock_instret`` counter here, because :meth:`run` only
        sums the retired counts of blocks that return normally.
        """
        if not executed:
            return
        self.instret += executed
        self.cycles += cycles
        self.last_pc = ops[executed - 1][0]
        if count:
            self.counters["superblock_instret"] += executed


# ---------------------------------------------------------------------------
# Instruction semantics.  Handlers take (cpu, instr), return truthy when a
# conditional branch is taken (for the cost model).
# ---------------------------------------------------------------------------

def _unsupported(cpu: Cpu, i: Instruction):
    raise IllegalInstructionFault(
        i.addr if i.addr is not None else cpu.pc,
        "unsupported-extension",
        f"{i.mnemonic} needs {i.extension.value}",
    )


def _exec_lui(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, sign_extend(i.imm << 12, 32))


def _exec_auipc(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, (i.addr + sign_extend(i.imm << 12, 32)) & _MASK64)


def _exec_jal(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, i.addr + 4)
    cpu.pc = (i.addr + i.imm) & _MASK64


def _exec_jalr(cpu: Cpu, i: Instruction):
    target = (cpu.get_reg(i.rs1) + i.imm) & _MASK64 & ~1
    cpu.set_reg(i.rd, i.addr + 4)
    cpu.pc = target


def _branch(op):
    def handler(cpu: Cpu, i: Instruction):
        if op(cpu.get_reg(i.rs1), cpu.get_reg(i.rs2)):
            cpu.pc = (i.addr + i.imm) & _MASK64
            return True
        return False
    return handler


def _exec_load(width: int, signed: bool):
    def handler(cpu: Cpu, i: Instruction):
        addr = (cpu.get_reg(i.rs1) + i.imm) & _MASK64
        raw = cpu.space.read(addr, width)
        value = int.from_bytes(raw, "little")
        if signed:
            value = sign_extend(value, width * 8) & _MASK64
        cpu.set_reg(i.rd, value)
    return handler


def _exec_store(width: int):
    def handler(cpu: Cpu, i: Instruction):
        addr = (cpu.get_reg(i.rs1) + i.imm) & _MASK64
        cpu.space.write(addr, (cpu.get_reg(i.rs2) & ((1 << (width * 8)) - 1)).to_bytes(width, "little"))
    return handler


def _exec_addi(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rs1) + i.imm)


def _exec_addiw(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, sign_extend((cpu.get_reg(i.rs1) + i.imm) & _MASK32, 32))


def _exec_slti(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, 1 if _s(cpu.get_reg(i.rs1)) < i.imm else 0)


def _exec_sltiu(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, 1 if cpu.get_reg(i.rs1) < (i.imm & _MASK64) else 0)


def _exec_xori(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rs1) ^ (i.imm & _MASK64))


def _exec_ori(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rs1) | (i.imm & _MASK64))


def _exec_andi(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rs1) & (i.imm & _MASK64))


def _exec_slli(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rs1) << i.imm)


def _exec_srli(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rs1) >> i.imm)


def _exec_srai(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, _s(cpu.get_reg(i.rs1)) >> i.imm)


def _exec_slliw(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, sign_extend((cpu.get_reg(i.rs1) << i.imm) & _MASK32, 32))


def _exec_srliw(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, sign_extend((cpu.get_reg(i.rs1) & _MASK32) >> i.imm, 32))


def _exec_sraiw(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, sign_extend(cpu.get_reg(i.rs1) & _MASK32, 32) >> i.imm)


def _rr(op):
    def handler(cpu: Cpu, i: Instruction):
        cpu.set_reg(i.rd, op(cpu.get_reg(i.rs1), cpu.get_reg(i.rs2)))
    return handler


def _rrw(op):
    def handler(cpu: Cpu, i: Instruction):
        cpu.set_reg(i.rd, sign_extend(op(cpu.get_reg(i.rs1), cpu.get_reg(i.rs2)) & _MASK32, 32))
    return handler


def _div(a: int, b: int) -> int:
    if b == 0:
        return _MASK64
    sa, sb = _s(a), _s(b)
    if sa == -(1 << 63) and sb == -1:
        return a
    q = abs(sa) // abs(sb)
    return to_unsigned64(-q if (sa < 0) != (sb < 0) else q)


def _rem(a: int, b: int) -> int:
    if b == 0:
        return a
    sa, sb = _s(a), _s(b)
    if sa == -(1 << 63) and sb == -1:
        return 0
    r = abs(sa) % abs(sb)
    return to_unsigned64(-r if sa < 0 else r)


def _divw(a: int, b: int) -> int:
    aw, bw = sign_extend(a & _MASK32, 32), sign_extend(b & _MASK32, 32)
    if bw == 0:
        return _MASK32
    if aw == -(1 << 31) and bw == -1:
        return a & _MASK32
    q = abs(aw) // abs(bw)
    return (-q if (aw < 0) != (bw < 0) else q) & _MASK32


def _remw(a: int, b: int) -> int:
    aw, bw = sign_extend(a & _MASK32, 32), sign_extend(b & _MASK32, 32)
    if bw == 0:
        return a & _MASK32
    if aw == -(1 << 31) and bw == -1:
        return 0
    r = abs(aw) % abs(bw)
    return (-r if aw < 0 else r) & _MASK32


def _exec_ecall(cpu: Cpu, i: Instruction):
    raise EcallTrap(i.addr)


def _exec_ebreak(cpu: Cpu, i: Instruction):
    raise BreakpointTrap(i.addr, compressed=i.length == 2)


def _exec_fence(cpu: Cpu, i: Instruction):
    return None


# -- compressed --------------------------------------------------------------

def _exec_c_nop(cpu: Cpu, i: Instruction):
    return None


def _exec_c_j(cpu: Cpu, i: Instruction):
    cpu.pc = (i.addr + i.imm) & _MASK64


def _exec_c_jr(cpu: Cpu, i: Instruction):
    cpu.pc = cpu.get_reg(i.rs1) & ~1


def _exec_c_jalr(cpu: Cpu, i: Instruction):
    target = cpu.get_reg(i.rs1) & ~1
    cpu.set_reg(1, i.addr + 2)
    cpu.pc = target


def _exec_c_beqz(cpu: Cpu, i: Instruction):
    if cpu.get_reg(i.rs1) == 0:
        cpu.pc = (i.addr + i.imm) & _MASK64
        return True
    return False


def _exec_c_bnez(cpu: Cpu, i: Instruction):
    if cpu.get_reg(i.rs1) != 0:
        cpu.pc = (i.addr + i.imm) & _MASK64
        return True
    return False


def _exec_c_li(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, i.imm)


def _exec_c_lui(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, sign_extend((i.imm & 0x3F) << 12, 18))


def _exec_c_mv(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rs2))


def _exec_c_add(cpu: Cpu, i: Instruction):
    cpu.set_reg(i.rd, cpu.get_reg(i.rd) + cpu.get_reg(i.rs2))


def _exec_c_addi16sp(cpu: Cpu, i: Instruction):
    cpu.set_reg(2, cpu.get_reg(2) + i.imm)


# -- vector -------------------------------------------------------------------

def _exec_vsetvli(cpu: Cpu, i: Instruction):
    from repro.isa.encoding import decode_vtype

    sew = decode_vtype(i.imm)
    if i.rs1 == 0:
        # rs1=x0: AVL = ~0 (vl = VLMAX) per the RVV spec.
        avl = cpu.vector.vlen // sew
    else:
        avl = cpu.get_reg(i.rs1)
    vl = cpu.vector.set_vl(avl, sew)
    cpu.set_reg(i.rd, vl)


def _exec_vload(width: int):
    def handler(cpu: Cpu, i: Instruction):
        vu = cpu.vector
        base = cpu.get_reg(i.rs1)
        step = width // 8
        for idx in range(vu.vl):
            value = int.from_bytes(cpu.space.read(base + idx * step, step), "little")
            vu.write_elem(i.vd, idx, value)
    return handler


def _exec_vstore(width: int):
    def handler(cpu: Cpu, i: Instruction):
        vu = cpu.vector
        base = cpu.get_reg(i.rs1)
        step = width // 8
        for idx in range(vu.vl):
            cpu.space.write(base + idx * step, (vu.read_elem(i.vd, idx) & ((1 << width) - 1)).to_bytes(step, "little"))
    return handler


def _vv(op):
    def handler(cpu: Cpu, i: Instruction):
        vu = cpu.vector
        for idx in range(vu.vl):
            vu.write_elem(i.vd, idx, op(vu.read_elem(i.vs2, idx), vu.read_elem(i.vs1, idx)))
    return handler


def _vx(op):
    def handler(cpu: Cpu, i: Instruction):
        vu = cpu.vector
        x = cpu.get_reg(i.rs1)
        for idx in range(vu.vl):
            vu.write_elem(i.vd, idx, op(vu.read_elem(i.vs2, idx), x))
    return handler


def _vv_sew(op):
    """Elementwise op that needs the SEW (shifts, signed compares)."""
    def handler(cpu: Cpu, i: Instruction):
        vu = cpu.vector
        sew = vu.sew
        for idx in range(vu.vl):
            vu.write_elem(i.vd, idx, op(vu.read_elem(i.vs2, idx), vu.read_elem(i.vs1, idx), sew))
    return handler


def _vx_sew(op):
    def handler(cpu: Cpu, i: Instruction):
        vu = cpu.vector
        sew = vu.sew
        x = cpu.get_reg(i.rs1)
        for idx in range(vu.vl):
            vu.write_elem(i.vd, idx, op(vu.read_elem(i.vs2, idx), x, sew))
    return handler


def _smin(a: int, b: int, sew: int) -> int:
    sa, sb = sign_extend(a, sew), sign_extend(b, sew)
    return a if sa <= sb else b


def _smax(a: int, b: int, sew: int) -> int:
    sa, sb = sign_extend(a, sew), sign_extend(b, sew)
    return a if sa >= sb else b


def _vsra(a: int, b: int, sew: int) -> int:
    return sign_extend(a, sew) >> (b & (sew - 1))


def _exec_vmv_x_s(cpu: Cpu, i: Instruction):
    vu = cpu.vector
    cpu.set_reg(i.rd, sign_extend(vu.read_elem(i.vs2, 0), vu.sew) & _MASK64)


_exec_vadd_vx = _vx(lambda a, x: a + x)


def _exec_vadd_vi(cpu: Cpu, i: Instruction):
    vu = cpu.vector
    for idx in range(vu.vl):
        vu.write_elem(i.vd, idx, vu.read_elem(i.vs2, idx) + i.imm)


def _exec_vmacc(cpu: Cpu, i: Instruction):
    vu = cpu.vector
    for idx in range(vu.vl):
        vu.write_elem(
            i.vd, idx,
            vu.read_elem(i.vd, idx) + vu.read_elem(i.vs1, idx) * vu.read_elem(i.vs2, idx),
        )


def _exec_vmv_v_x(cpu: Cpu, i: Instruction):
    vu = cpu.vector
    x = cpu.get_reg(i.rs1)
    for idx in range(vu.vl):
        vu.write_elem(i.vd, idx, x)


def _exec_vmv_v_i(cpu: Cpu, i: Instruction):
    vu = cpu.vector
    for idx in range(vu.vl):
        vu.write_elem(i.vd, idx, i.imm)


def _exec_vredsum(cpu: Cpu, i: Instruction):
    vu = cpu.vector
    total = vu.read_elem(i.vs1, 0)
    for idx in range(vu.vl):
        total += vu.read_elem(i.vs2, idx)
    vu.write_elem(i.vd, 0, total)


_HANDLERS: dict[str, Callable] = {
    "lui": _exec_lui,
    "auipc": _exec_auipc,
    "jal": _exec_jal,
    "jalr": _exec_jalr,
    "beq": _branch(lambda a, b: a == b),
    "bne": _branch(lambda a, b: a != b),
    "blt": _branch(lambda a, b: _s(a) < _s(b)),
    "bge": _branch(lambda a, b: _s(a) >= _s(b)),
    "bltu": _branch(lambda a, b: a < b),
    "bgeu": _branch(lambda a, b: a >= b),
    "lb": _exec_load(1, True),
    "lh": _exec_load(2, True),
    "lw": _exec_load(4, True),
    "ld": _exec_load(8, True),
    "lbu": _exec_load(1, False),
    "lhu": _exec_load(2, False),
    "lwu": _exec_load(4, False),
    "sb": _exec_store(1),
    "sh": _exec_store(2),
    "sw": _exec_store(4),
    "sd": _exec_store(8),
    "addi": _exec_addi,
    "addiw": _exec_addiw,
    "slti": _exec_slti,
    "sltiu": _exec_sltiu,
    "xori": _exec_xori,
    "ori": _exec_ori,
    "andi": _exec_andi,
    "slli": _exec_slli,
    "srli": _exec_srli,
    "srai": _exec_srai,
    "slliw": _exec_slliw,
    "srliw": _exec_srliw,
    "sraiw": _exec_sraiw,
    "add": _rr(lambda a, b: a + b),
    "sub": _rr(lambda a, b: a - b),
    "sll": _rr(lambda a, b: a << (b & 63)),
    "slt": _rr(lambda a, b: 1 if _s(a) < _s(b) else 0),
    "sltu": _rr(lambda a, b: 1 if a < b else 0),
    "xor": _rr(lambda a, b: a ^ b),
    "srl": _rr(lambda a, b: a >> (b & 63)),
    "sra": _rr(lambda a, b: _s(a) >> (b & 63)),
    "or": _rr(lambda a, b: a | b),
    "and": _rr(lambda a, b: a & b),
    "addw": _rrw(lambda a, b: a + b),
    "subw": _rrw(lambda a, b: a - b),
    "sllw": _rrw(lambda a, b: a << (b & 31)),
    "srlw": _rrw(lambda a, b: (a & _MASK32) >> (b & 31)),
    "sraw": _rrw(lambda a, b: sign_extend(a & _MASK32, 32) >> (b & 31)),
    "mul": _rr(lambda a, b: a * b),
    "mulh": _rr(lambda a, b: (_s(a) * _s(b)) >> 64),
    "mulhsu": _rr(lambda a, b: (_s(a) * b) >> 64),
    "mulhu": _rr(lambda a, b: (a * b) >> 64),
    "div": _rr(_div),
    "divu": _rr(lambda a, b: _MASK64 if b == 0 else a // b),
    "rem": _rr(_rem),
    "remu": _rr(lambda a, b: a if b == 0 else a % b),
    "mulw": _rrw(lambda a, b: a * b),
    "divw": _rrw(_divw),
    "divuw": _rrw(lambda a, b: _MASK32 if (b & _MASK32) == 0 else (a & _MASK32) // (b & _MASK32)),
    "remw": _rrw(_remw),
    "remuw": _rrw(lambda a, b: (a & _MASK32) if (b & _MASK32) == 0 else (a & _MASK32) % (b & _MASK32)),
    "sh1add": _rr(lambda a, b: (a << 1) + b),
    "sh2add": _rr(lambda a, b: (a << 2) + b),
    "sh3add": _rr(lambda a, b: (a << 3) + b),
    "ecall": _exec_ecall,
    "ebreak": _exec_ebreak,
    "fence": _exec_fence,
    # compressed
    "c.nop": _exec_c_nop,
    "c.addi": _exec_addi,
    "c.addiw": _exec_addiw,
    "c.li": _exec_c_li,
    "c.lui": _exec_c_lui,
    "c.addi16sp": _exec_c_addi16sp,
    "c.addi4spn": _exec_addi,
    "c.slli": _exec_slli,
    "c.srli": _exec_srli,
    "c.srai": _exec_srai,
    "c.andi": _exec_andi,
    "c.sub": _rr(lambda a, b: a - b),
    "c.xor": _rr(lambda a, b: a ^ b),
    "c.or": _rr(lambda a, b: a | b),
    "c.and": _rr(lambda a, b: a & b),
    "c.subw": _rrw(lambda a, b: a - b),
    "c.addw": _rrw(lambda a, b: a + b),
    "c.j": _exec_c_j,
    "c.jr": _exec_c_jr,
    "c.jalr": _exec_c_jalr,
    "c.beqz": _exec_c_beqz,
    "c.bnez": _exec_c_bnez,
    "c.mv": _exec_c_mv,
    "c.add": _exec_c_add,
    "c.lw": _exec_load(4, True),
    "c.ld": _exec_load(8, True),
    "c.lwsp": _exec_load(4, True),
    "c.ldsp": _exec_load(8, True),
    "c.sw": _exec_store(4),
    "c.sd": _exec_store(8),
    "c.swsp": _exec_store(4),
    "c.sdsp": _exec_store(8),
    "c.ebreak": _exec_ebreak,
    # vector
    "vsetvli": _exec_vsetvli,
    "vle32.v": _exec_vload(32),
    "vle64.v": _exec_vload(64),
    "vse32.v": _exec_vstore(32),
    "vse64.v": _exec_vstore(64),
    "vadd.vv": _vv(lambda a, b: a + b),
    "vsub.vv": _vv(lambda a, b: a - b),
    "vmul.vv": _vv(lambda a, b: a * b),
    "vand.vv": _vv(lambda a, b: a & b),
    "vor.vv": _vv(lambda a, b: a | b),
    "vxor.vv": _vv(lambda a, b: a ^ b),
    "vadd.vx": _exec_vadd_vx,
    "vadd.vi": _exec_vadd_vi,
    "vsub.vx": _vx(lambda a, x: a - x),
    "vmul.vx": _vx(lambda a, x: a * x),
    "vmin.vv": _vv_sew(_smin),
    "vmax.vv": _vv_sew(_smax),
    "vminu.vv": _vv(lambda a, b: min(a, b)),
    "vmaxu.vv": _vv(lambda a, b: max(a, b)),
    "vsll.vv": _vv_sew(lambda a, b, sew: a << (b & (sew - 1))),
    "vsll.vx": _vx_sew(lambda a, x, sew: a << (x & (sew - 1))),
    "vsrl.vv": _vv_sew(lambda a, b, sew: a >> (b & (sew - 1))),
    "vsrl.vx": _vx_sew(lambda a, x, sew: a >> (x & (sew - 1))),
    "vsra.vv": _vv_sew(_vsra),
    "vsra.vx": _vx_sew(_vsra),
    "vmacc.vv": _exec_vmacc,
    "vmv.v.x": _exec_vmv_v_x,
    "vmv.v.i": _exec_vmv_v_i,
    "vmv.x.s": _exec_vmv_x_s,
    "vredsum.vs": _exec_vredsum,
}


# ---------------------------------------------------------------------------
# Superblock operand specialization.  At block-build time the decoded
# operands are baked into small closures that index the register file
# directly — the same architectural semantics as the generic handlers
# (x0 stays zero because nothing ever writes regs[0] and writes to it
# are compiled out; results are masked exactly as set_reg would), minus
# the per-step attribute and method dispatch.  A specializer may return
# None to decline an encoding, falling back to the generic handler.
# ---------------------------------------------------------------------------

def _spec_nop(cpu, _i):
    return None


def _spec_const(i, value):
    rd = i.rd
    if rd == 0:
        return _spec_nop
    value &= _MASK64

    def fn(cpu, _i, rd=rd, value=value):
        cpu.regs[rd] = value
    return fn


def _spec_lui(i):
    return _spec_const(i, sign_extend(i.imm << 12, 32))


def _spec_c_lui(i):
    return _spec_const(i, sign_extend((i.imm & 0x3F) << 12, 18))


def _spec_c_li(i):
    return _spec_const(i, i.imm)


def _spec_auipc(i):
    return _spec_const(i, i.addr + sign_extend(i.imm << 12, 32))


def _spec_addi(i):
    rd, rs1, imm = i.rd, i.rs1, i.imm
    if rd == 0:
        return _spec_nop

    def fn(cpu, _i, rd=rd, rs1=rs1, imm=imm):
        regs = cpu.regs
        regs[rd] = (regs[rs1] + imm) & _MASK64
    return fn


def _spec_addiw(i):
    rd, rs1, imm = i.rd, i.rs1, i.imm
    if rd == 0:
        return _spec_nop

    def fn(cpu, _i, rd=rd, rs1=rs1, imm=imm):
        regs = cpu.regs
        v = (regs[rs1] + imm) & _MASK32
        regs[rd] = (v - 0x1_0000_0000 if v & 0x8000_0000 else v) & _MASK64
    return fn


def _spec_c_addi16sp(i):
    imm = i.imm

    def fn(cpu, _i, imm=imm):
        regs = cpu.regs
        regs[2] = (regs[2] + imm) & _MASK64
    return fn


def _spec_logic_imm(op):
    def make(i):
        rd, rs1 = i.rd, i.rs1
        if rd == 0:
            return _spec_nop
        imm = i.imm & _MASK64

        def fn(cpu, _i, rd=rd, rs1=rs1, imm=imm, op=op):
            regs = cpu.regs
            regs[rd] = op(regs[rs1], imm)
        return fn
    return make


def _spec_shift_imm(op):
    """Immediate shifts: result masked, shamt literal."""
    def make(i):
        rd, rs1, sh = i.rd, i.rs1, i.imm
        if rd == 0:
            return _spec_nop

        def fn(cpu, _i, rd=rd, rs1=rs1, sh=sh, op=op):
            regs = cpu.regs
            regs[rd] = op(regs[rs1], sh) & _MASK64
        return fn
    return make


def _spec_rr(op):
    """Register-register ALU: result masked like set_reg."""
    def make(i):
        rd, rs1, rs2 = i.rd, i.rs1, i.rs2
        if rd == 0:
            return _spec_nop

        def fn(cpu, _i, rd=rd, rs1=rs1, rs2=rs2, op=op):
            regs = cpu.regs
            regs[rd] = op(regs[rs1], regs[rs2]) & _MASK64
        return fn
    return make


def _spec_c_mv(i):
    rd, rs2 = i.rd, i.rs2
    if rd == 0:
        return _spec_nop

    def fn(cpu, _i, rd=rd, rs2=rs2):
        regs = cpu.regs
        regs[rd] = regs[rs2]
    return fn


def _spec_c_add(i):
    rd, rs2 = i.rd, i.rs2
    if rd == 0:
        return _spec_nop

    def fn(cpu, _i, rd=rd, rs2=rs2):
        regs = cpu.regs
        regs[rd] = (regs[rd] + regs[rs2]) & _MASK64
    return fn


def _spec_load(width, signed):
    bits = width * 8

    def make(i):
        rd, rs1, imm = i.rd, i.rs1, i.imm

        def fn(cpu, _i, rd=rd, rs1=rs1, imm=imm, width=width,
               bits=bits, signed=signed):
            regs = cpu.regs
            addr = (regs[rs1] + imm) & _MASK64
            value = int.from_bytes(cpu.space.read(addr, width), "little")
            if signed and value >> (bits - 1):
                value = (value - (1 << bits)) & _MASK64
            if rd:
                regs[rd] = value
        return fn
    return make


def _spec_store(width):
    mask = (1 << (width * 8)) - 1

    def make(i):
        rs1, rs2, imm = i.rs1, i.rs2, i.imm

        def fn(cpu, _i, rs1=rs1, rs2=rs2, imm=imm, width=width, mask=mask):
            regs = cpu.regs
            cpu.space.write((regs[rs1] + imm) & _MASK64,
                            (regs[rs2] & mask).to_bytes(width, "little"))
        return fn
    return make


def _spec_branch(op):
    def make(i):
        rs1, rs2 = i.rs1, i.rs2
        target = (i.addr + i.imm) & _MASK64

        def fn(cpu, _i, rs1=rs1, rs2=rs2, target=target, op=op):
            regs = cpu.regs
            if op(regs[rs1], regs[rs2]):
                cpu.pc = target
                return True
            return False
        return fn
    return make


def _spec_c_branch(zero_taken):
    def make(i):
        rs1 = i.rs1
        target = (i.addr + i.imm) & _MASK64

        def fn(cpu, _i, rs1=rs1, target=target, zero_taken=zero_taken):
            if (cpu.regs[rs1] == 0) is zero_taken:
                cpu.pc = target
                return True
            return False
        return fn
    return make


def _spec_jal(i):
    rd, link = i.rd, i.addr + 4
    target = (i.addr + i.imm) & _MASK64

    def fn(cpu, _i, rd=rd, link=link, target=target):
        if rd:
            cpu.regs[rd] = link
        cpu.pc = target
    return fn


def _spec_c_j(i):
    target = (i.addr + i.imm) & _MASK64

    def fn(cpu, _i, target=target):
        cpu.pc = target
    return fn


def _spec_jalr(i):
    rd, rs1, imm, link = i.rd, i.rs1, i.imm, i.addr + 4

    def fn(cpu, _i, rd=rd, rs1=rs1, imm=imm, link=link):
        target = (cpu.regs[rs1] + imm) & _MASK64 & ~1
        if rd:
            cpu.regs[rd] = link
        cpu.pc = target
    return fn


_SPECIALIZERS: dict[str, Callable[[Instruction], Optional[Callable]]] = {
    "lui": _spec_lui,
    "auipc": _spec_auipc,
    "c.lui": _spec_c_lui,
    "c.li": _spec_c_li,
    "addi": _spec_addi,
    "c.addi": _spec_addi,
    "c.addi4spn": _spec_addi,
    "addiw": _spec_addiw,
    "c.addiw": _spec_addiw,
    "c.addi16sp": _spec_c_addi16sp,
    "andi": _spec_logic_imm(lambda a, b: a & b),
    "c.andi": _spec_logic_imm(lambda a, b: a & b),
    "ori": _spec_logic_imm(lambda a, b: a | b),
    "xori": _spec_logic_imm(lambda a, b: a ^ b),
    "slli": _spec_shift_imm(lambda a, sh: a << sh),
    "c.slli": _spec_shift_imm(lambda a, sh: a << sh),
    "srli": _spec_shift_imm(lambda a, sh: a >> sh),
    "c.srli": _spec_shift_imm(lambda a, sh: a >> sh),
    "srai": _spec_shift_imm(lambda a, sh: _s(a) >> sh),
    "c.srai": _spec_shift_imm(lambda a, sh: _s(a) >> sh),
    "add": _spec_rr(lambda a, b: a + b),
    "sub": _spec_rr(lambda a, b: a - b),
    "c.sub": _spec_rr(lambda a, b: a - b),
    "and": _spec_rr(lambda a, b: a & b),
    "c.and": _spec_rr(lambda a, b: a & b),
    "or": _spec_rr(lambda a, b: a | b),
    "c.or": _spec_rr(lambda a, b: a | b),
    "xor": _spec_rr(lambda a, b: a ^ b),
    "c.xor": _spec_rr(lambda a, b: a ^ b),
    "sll": _spec_rr(lambda a, b: a << (b & 63)),
    "srl": _spec_rr(lambda a, b: a >> (b & 63)),
    "sra": _spec_rr(lambda a, b: _s(a) >> (b & 63)),
    "slt": _spec_rr(lambda a, b: 1 if _s(a) < _s(b) else 0),
    "sltu": _spec_rr(lambda a, b: 1 if a < b else 0),
    "mul": _spec_rr(lambda a, b: a * b),
    "remu": _spec_rr(lambda a, b: a if b == 0 else a % b),
    "divu": _spec_rr(lambda a, b: _MASK64 if b == 0 else a // b),
    "c.mv": _spec_c_mv,
    "c.add": _spec_c_add,
    "lb": _spec_load(1, True),
    "lh": _spec_load(2, True),
    "lw": _spec_load(4, True),
    "ld": _spec_load(8, True),
    "c.lw": _spec_load(4, True),
    "c.ld": _spec_load(8, True),
    "c.lwsp": _spec_load(4, True),
    "c.ldsp": _spec_load(8, True),
    "lbu": _spec_load(1, False),
    "lhu": _spec_load(2, False),
    "lwu": _spec_load(4, False),
    "sb": _spec_store(1),
    "sh": _spec_store(2),
    "sw": _spec_store(4),
    "sd": _spec_store(8),
    "c.sw": _spec_store(4),
    "c.sd": _spec_store(8),
    "c.swsp": _spec_store(4),
    "c.sdsp": _spec_store(8),
    "beq": _spec_branch(lambda a, b: a == b),
    "bne": _spec_branch(lambda a, b: a != b),
    "blt": _spec_branch(lambda a, b: _s(a) < _s(b)),
    "bge": _spec_branch(lambda a, b: _s(a) >= _s(b)),
    "bltu": _spec_branch(lambda a, b: a < b),
    "bgeu": _spec_branch(lambda a, b: a >= b),
    "c.beqz": _spec_c_branch(True),
    "c.bnez": _spec_c_branch(False),
    "jal": _spec_jal,
    "c.j": _spec_c_j,
    "jalr": _spec_jalr,
}
