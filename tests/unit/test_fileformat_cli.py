"""SELF file format and CLI tests."""

import pytest

from repro.cli import main
from repro.elf.fileformat import FileFormatError, load_binary_file, save_binary
from repro.isa.extensions import RV64GC
from repro.workloads.programs import MatMulWorkload, VectorAddWorkload


@pytest.fixture
def image(tmp_path):
    binary = VectorAddWorkload(n=8).build("ext")
    path = tmp_path / "app.self"
    save_binary(binary, path)
    return binary, path


class TestFileFormat:
    def test_roundtrip_sections_and_symbols(self, image):
        binary, path = image
        loaded = load_binary_file(path)
        assert loaded.entry == binary.entry
        assert loaded.global_pointer == binary.global_pointer
        assert bytes(loaded.text.data) == bytes(binary.text.data)
        assert loaded.symbol_addr("x_vec") == binary.symbol_addr("x_vec")
        assert loaded.text.perm == binary.text.perm

    def test_roundtrip_chimera_metadata(self, image, tmp_path):
        from repro.core.rewriter import ChimeraRewriter

        binary, _ = image
        result = ChimeraRewriter().rewrite(binary, RV64GC)
        path = tmp_path / "rw.self"
        save_binary(result.binary, path)
        loaded = load_binary_file(path)
        meta = loaded.metadata["chimera"]
        assert dict(meta["fault_table"].entries) == dict(result.fault_table.entries)
        assert meta["trap_table"] == result.trap_table
        assert meta["gp"] == binary.global_pointer

    def test_loaded_rewritten_binary_runs(self, image, tmp_path):
        from repro.core.rewriter import ChimeraRewriter
        from repro.core.runtime import ChimeraRuntime
        from repro.elf.loader import make_process
        from repro.sim.machine import Core, Kernel

        binary, _ = image
        result = ChimeraRewriter().rewrite(binary, RV64GC)
        path = tmp_path / "rw.self"
        save_binary(result.binary, path)
        loaded = load_binary_file(path)
        kernel = Kernel()
        ChimeraRuntime(loaded).install(kernel)
        res = kernel.run(make_process(loaded), Core(0, RV64GC))
        assert res.ok

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.self"
        path.write_bytes(b"\x7fELF-not-self".ljust(64, b"\0"))
        with pytest.raises(FileFormatError):
            load_binary_file(path)

    def test_truncated_rejected(self, image, tmp_path):
        _, path = image
        data = path.read_bytes()
        trunc = tmp_path / "t.self"
        trunc.write_bytes(data[: len(data) // 2])
        with pytest.raises(FileFormatError):
            load_binary_file(trunc)


class TestCli:
    def test_build_run_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "dot.self"
        assert main(["build", "dot", "--variant", "ext", "-o", str(out)]) == 0
        assert main(["run", str(out), "--core", "rv64gcv"]) == 0
        stdout = capsys.readouterr().out
        assert "exit=0" in stdout

    def test_rewrite_then_run_on_base_core(self, tmp_path, capsys):
        src = tmp_path / "a.self"
        dst = tmp_path / "b.self"
        main(["build", "vecadd", "--variant", "ext", "-o", str(src)])
        assert main(["rewrite", str(src), "--target", "rv64gc", "-o", str(dst)]) == 0
        assert main(["run", str(dst), "--core", "rv64gc"]) == 0
        assert "exit=0" in capsys.readouterr().out

    def test_ext_image_fails_on_base_core_without_rewrite(self, tmp_path, capsys):
        src = tmp_path / "a.self"
        main(["build", "vecadd", "--variant", "ext", "-o", str(src)])
        assert main(["run", str(src), "--core", "rv64gc"]) == 1
        assert "fault" in capsys.readouterr().out

    def test_disasm(self, tmp_path, capsys):
        src = tmp_path / "a.self"
        main(["build", "fibonacci", "--variant", "base", "-o", str(src)])
        assert main(["disasm", str(src)]) == 0
        assert "addi" in capsys.readouterr().out

    def test_profiles_listing(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out and "perlbench_r" in out

    def test_synthetic_build(self, tmp_path, capsys):
        out = tmp_path / "syn.self"
        assert main(["build", "omnetpp_r", "--scale", "256", "-o", str(out)]) == 0

    def test_unknown_workload(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["build", "nope", "-o", str(tmp_path / "x.self")])

    def test_unknown_isa(self, tmp_path):
        src = tmp_path / "a.self"
        main(["build", "dot", "-o", str(src)])
        with pytest.raises(SystemExit):
            main(["run", str(src), "--core", "rv128"])

    def test_strawman_rewrite_cli(self, tmp_path, capsys):
        src = tmp_path / "a.self"
        dst = tmp_path / "b.self"
        main(["build", "dot", "--variant", "ext", "-o", str(src)])
        assert main(["rewrite", str(src), "--system", "strawman",
                     "--target", "rv64gc", "-o", str(dst)]) == 0
        assert main(["run", str(dst), "--core", "rv64gc"]) == 0

    @pytest.mark.parametrize("system", ["safer", "multiverse", "armore"])
    def test_regeneration_systems_roundtrip_through_files(self, tmp_path, capsys, system):
        """Saved Safer/Multiverse/ARMore images keep their runtime tables
        and execute correctly after loading."""
        src = tmp_path / "a.self"
        dst = tmp_path / "b.self"
        main(["build", "dispatch", "--variant", "ext", "-o", str(src)])
        if system == "multiverse":
            # Route through the harness (no CLI flag spares the sweep).
            from repro.baselines.multiverse import MultiverseRewriter
            from repro.elf.fileformat import load_binary_file, save_binary
            from repro.isa.extensions import RV64GC

            result = MultiverseRewriter().rewrite(load_binary_file(src), RV64GC)
            save_binary(result.binary, dst)
        else:
            assert main(["rewrite", str(src), "--system", system,
                         "--target", "rv64gc", "-o", str(dst)]) == 0
        assert main(["run", str(dst), "--core", "rv64gc"]) == 0
        assert "exit=0" in capsys.readouterr().out
