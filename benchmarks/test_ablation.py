"""Ablations of CHBP's design choices (DESIGN.md experiment A1).

* SMILE vs trap-based trampolines (what passive fault handling buys);
* basic-block batching on/off (§4.2's optimization);
* exit-position shifting on/off (challenge 2's rescue strategy);
* allocator density (the compressed-encoding placement constraints).
"""

import pytest

from benchmarks.helpers import SCALE, emit_bench, print_table, scaled_arch
from repro.telemetry import MetricsRegistry
from repro.core.patcher import ChbpPatcher
from repro.harness import run_chimera, run_native, run_strawman
from repro.isa.extensions import RV64GC, RV64GCV
from repro.workloads.programs import ALL_WORKLOADS
from repro.workloads.spec_profiles import PROFILES
from repro.workloads.synthetic import SyntheticBinary

ABLATION_PROFILES = ("perlbench_r", "cam4_r", "xalancbmk_r")


@pytest.fixture(scope="module")
def binaries():
    return {
        name: SyntheticBinary(PROFILES[name], scale=SCALE).build()
        for name in ABLATION_PROFILES
    }


def test_ablation_smile_vs_trap(benchmark, binaries):
    """Replacing SMILE with trap-based trampolines (the strawman) on the
    same binaries: the cost of *not* having passive fault handling."""
    def run():
        rows = []
        arch = scaled_arch()
        for name, binary in binaries.items():
            native = run_native(binary, RV64GCV, arch=arch)
            chbp = run_chimera(binary, RV64GC, arch=arch, mode="empty", run_profile=RV64GCV)
            straw = run_strawman(binary, RV64GC, arch=arch, mode="empty", run_profile=RV64GCV)
            improvement = 100.0 * (straw.cycles - chbp.cycles) / straw.cycles
            rows.append([name, native.cycles, chbp.cycles, straw.cycles, f"{improvement:.1f}%"])
        print_table("ablation — SMILE vs trap trampolines",
                    ["benchmark", "native", "chbp", "strawman", "chbp gain"],
                    rows)
        registry = MetricsRegistry()
        for name, native_c, chbp_c, straw_c, _gain in rows:
            registry.gauge("bench.cycles", native_c, benchmark=name, config="native")
            registry.gauge("bench.cycles", chbp_c, benchmark=name, config="chbp")
            registry.gauge("bench.cycles", straw_c, benchmark=name, config="strawman")
        emit_bench("ablation_smile_vs_trap", registry)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    gains = [float(row[4].rstrip("%")) for row in rows]
    # CHBP always wins, and the average gain is substantial (paper: 60.2%).
    assert all(g > 0 for g in gains)
    assert sum(gains) / len(gains) > 30.0


def test_ablation_batching(benchmark, binaries):
    """Same-block batching trades extra target-block bytes for fewer
    executed trampolines."""
    def run():
        rows = []
        arch = scaled_arch()
        for name, binary in binaries.items():
            on = run_chimera(binary, RV64GC, arch=arch, mode="empty",
                             run_profile=RV64GCV, batch_blocks=True)
            off = run_chimera(binary, RV64GC, arch=arch, mode="empty",
                              run_profile=RV64GCV, batch_blocks=False)
            rows.append([name, on.cycles, off.cycles,
                         on.rewrite_stats["batches"],
                         f"{100.0 * (off.cycles - on.cycles) / off.cycles:+.2f}%"])
        print_table("ablation — basic-block batching",
                    ["benchmark", "batched", "unbatched", "batches", "gain"],
                    rows)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Batching never hurts on these profiles.
    for row in rows:
        assert row[1] <= row[2] * 1.02


def test_ablation_exit_shifting(benchmark, binaries):
    """Without exit shifting, liveness failures become trap fallbacks."""
    def run():
        rows = []
        arch = scaled_arch()
        for name, binary in binaries.items():
            p_on = ChbpPatcher(binary, RV64GC, arch=arch, mode="empty", shift_exits=True)
            p_on.patch()
            p_off = ChbpPatcher(binary, RV64GC, arch=arch, mode="empty", shift_exits=False)
            p_off.patch()
            rows.append([
                name,
                p_on.stats.trap_fallbacks, p_off.stats.trap_fallbacks,
                p_on.stats.exit_shift_rescues,
            ])
        print_table("ablation — exit-position shifting",
                    ["benchmark", "traps (shift on)", "traps (shift off)", "rescues"],
                    rows)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        assert row[1] <= row[2]
    assert any(row[3] > 0 for row in rows)


def test_ablation_placement_constraints(benchmark, binaries):
    """The compressed-mode SMILE constraints cost target-section bytes;
    measure the allocator's gap overhead."""
    def run():
        rows = []
        arch = scaled_arch()
        for name, binary in binaries.items():
            patcher = ChbpPatcher(binary, RV64GC, arch=arch, mode="empty")
            out = patcher.patch()
            s = patcher.stats
            ct = out.section(".chimera.text") if out.has_section(".chimera.text") else None
            useful = (ct.size - s.padding_bytes) if ct else 0
            rows.append([
                name, s.trampolines,
                ct.size if ct else 0, useful,
                f"{100.0 * s.padding_bytes / max(1, ct.size):.0f}%" if ct else "-",
            ])
        print_table("ablation — SMILE placement constraints (section density)",
                    ["benchmark", "trampolines", "section bytes", "useful bytes", "padding"],
                    rows)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_ablation_smile_register_variant(benchmark, binaries):
    """gp-based vs general-register (Fig. 5) SMILE: the paper predicts
    the data-pointer variant leans harder on trap trampolines because
    not every source has a usable lui+load pair nearby."""
    def run():
        rows = []
        arch = scaled_arch()
        for name, binary in binaries.items():
            gp = ChbpPatcher(binary, RV64GC, arch=arch, mode="empty",
                             enable_upgrades=False)
            gp.patch()
            dp = ChbpPatcher(binary, RV64GC, arch=arch, mode="empty",
                             enable_upgrades=False, smile_register="data-pointer")
            dp.patch()
            rows.append([
                name,
                f"{gp.stats.trampolines}/{gp.stats.trap_fallbacks}",
                f"{dp.stats.trampolines}/{dp.stats.trap_fallbacks}",
            ])
        print_table("ablation — SMILE register: gp vs data-pointer (tramp/traps)",
                    ["benchmark", "gp", "data-pointer"], rows)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        gp_traps = int(row[1].split("/")[1])
        dp_traps = int(row[2].split("/")[1])
        assert dp_traps >= gp_traps  # the paper's predicted reliance


def test_ablation_full_vs_loop_translation(benchmark):
    """Loop-level vs per-instruction downgrade translation quality."""
    def run():
        rows = []
        for name in ("matmul", "dot", "vecadd"):
            binary = ALL_WORKLOADS[name].build("ext")
            native_scalar = run_native(ALL_WORKLOADS[name].build("base"), RV64GC)
            loop_level = run_chimera(binary, RV64GC)
            per_instr = run_chimera(binary, RV64GC, enable_upgrades=False)
            # disable loop downgrades by monkey-free path: empty mode is
            # not comparable; instead reuse strawman's per-instruction
            # translation through CHBP with patterns suppressed.
            from repro.core import downgrade_loops
            saved = downgrade_loops.find_downgrade_loop_sites
            downgrade_loops.find_downgrade_loop_sites = lambda *a, **k: []
            try:
                instr_only = run_chimera(binary, RV64GC)
            finally:
                downgrade_loops.find_downgrade_loop_sites = saved
            rows.append([name, native_scalar.cycles, loop_level.cycles, instr_only.cycles,
                         f"{instr_only.cycles / loop_level.cycles:.1f}x"])
        print_table("ablation — loop-level vs per-instruction downgrade",
                    ["kernel", "native-scalar", "loop-level", "per-instr", "slowdown"],
                    rows)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        assert row[2] < row[3]  # loop-level always faster
