"""Property test: trace-tier accounting versus pure ``step()`` execution.

Hypothesis generates small branchy loop programs (data-dependent
branches force guard side exits, optional vector episodes exercise the
compiled vector fast paths) and runs each one three ways — pure
interpreter, trace tier compiled, trace tier interpreted — plus a
budget-truncated run that expires mid-trace.  Registers, pc, instret,
cycles, and the data segment must match exactly in every mode: a guard
side exit or budget cut mid-block never double- or under-counts
retired instructions.

Deterministic replay: seeded from ``REPRO_FUZZ_SEED`` like the
differential fuzzer (see ``conftest.py`` here).
"""

import os

import pytest
from hypothesis import HealthCheck, given, seed, settings, strategies as st

from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GCV
from repro.sim.faults import SimFault, SimulationLimitExceeded
from repro.sim.machine import Core, Kernel

SCALAR_OPS = ("add", "sub", "xor", "or", "and", "mul", "sltu", "srl")
REGS = ("a2", "a3", "a4", "a5", "t3", "t4")


@st.composite
def scalar_stmt(draw):
    op = draw(st.sampled_from(SCALAR_OPS))
    dst, a, b = (draw(st.sampled_from(REGS)) for _ in range(3))
    return f"    {op} {dst}, {a}, {b}"


@st.composite
def mem_stmt(draw):
    reg = draw(st.sampled_from(REGS))
    off = draw(st.integers(min_value=0, max_value=15)) * 8
    mnem = draw(st.sampled_from(("sd", "ld", "sw", "lw")))
    return f"    {mnem} {reg}, {off}(s0)"


@st.composite
def vector_episode(draw):
    avl = draw(st.integers(min_value=1, max_value=4))
    op = draw(st.sampled_from(("vadd.vv", "vsub.vv", "vmul.vv", "vxor.vv")))
    voff = draw(st.integers(min_value=0, max_value=3)) * 64
    return "\n".join([
        f"    li t0, {avl}",
        "    vsetvli t0, t0, e64",
        f"    addi t1, s1, {voff}",
        "    vle64.v v1, (t1)",
        f"    {op} v2, v1, v1",
        "    vse64.v v2, (t1)",
    ])


@st.composite
def program(draw):
    iterations = draw(st.integers(min_value=6, max_value=24))
    mask = draw(st.sampled_from((1, 3)))
    stmts = draw(st.lists(st.one_of(scalar_stmt(), mem_stmt()),
                          min_size=1, max_size=5))
    if draw(st.booleans()):
        stmts.append(draw(vector_episode()))
    body = "\n".join(stmts)
    return f"""
_start:
    li s0, {{buf}}
    li s1, {{vbuf}}
    li s2, {iterations}
    li a2, 3
    li a3, 5
    li a4, 7
    li a5, 11
top:
{body}
    andi t2, s2, {mask}
    beqz t2, even
    add a2, a2, a3
    j join
even:
    add a3, a3, a5
join:
    addi s2, s2, -1
    bnez s2, top
    li t0, {{out}}
    sd a2, 0(t0)
    sd a3, 8(t0)
    li a7, 93
    li a0, 0
    ecall
"""


def build(text: str):
    b = ProgramBuilder("trace-fuzz")
    b.add_words("buf", [(i * 2654435761) % (1 << 62) for i in range(16)])
    b.add_words("vbuf", [(i * 40503) % (1 << 60) for i in range(32)])
    b.add_words("out", [0] * 2)
    b.set_text(text)
    return b.build()


def _run_cpu(binary, *, budget, block_cache=True, trace_cache=True,
             trace_compile=True):
    kernel = Kernel(block_cache=block_cache, trace_cache=trace_cache,
                    trace_threshold=1)
    process = make_process(binary)
    cpu = kernel.make_cpu(process, Core(0, RV64GCV))
    cpu.trace_compile = trace_compile
    try:
        cpu.run(max_instructions=budget)
    except (SimFault, SimulationLimitExceeded):
        pass
    data = bytes(process.space.segment_at(binary.data.addr).data)
    return cpu, data


def _state(cpu, data):
    return (cpu.instret, cpu.cycles, cpu.pc, tuple(cpu.regs),
            cpu.vector.snapshot()["regs"], data)


FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))

FUZZ_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestTraceAccounting:
    @seed(FUZZ_SEED)
    @given(text=program())
    @FUZZ_SETTINGS
    def test_full_run_matches_pure_step(self, text):
        binary = build(text)
        step, step_data = _run_cpu(binary, budget=1_000_000,
                                   block_cache=False)
        compiled, comp_data = _run_cpu(build(text), budget=1_000_000)
        interp, int_data = _run_cpu(build(text), budget=1_000_000,
                                    trace_compile=False)
        expected = _state(step, step_data)
        assert _state(compiled, comp_data) == expected, \
            f"compiled trace diverged:\n{text}"
        assert _state(interp, int_data) == expected, \
            f"interpreted trace diverged:\n{text}"
        assert compiled.counters.get("trace_instret", 0) > 0

    @seed(FUZZ_SEED)
    @given(text=program(), budget=st.integers(min_value=5, max_value=300))
    @FUZZ_SETTINGS
    def test_budget_cut_matches_pure_step(self, text, budget):
        """A budget expiring mid-trace (or mid-block) must leave the
        exact architectural state pure stepping reaches at the same
        instruction count."""
        binary = build(text)
        step, step_data = _run_cpu(binary, budget=budget, block_cache=False)
        traced, traced_data = _run_cpu(build(text), budget=budget)
        assert _state(traced, traced_data) == _state(step, step_data), \
            f"budget={budget} diverged:\n{text}"
