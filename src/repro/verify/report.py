"""Admission-gate report structures (JSON-exportable for CI artifacts)."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.resilience.failures import (
    RESOLVED_DEGRADED,
    RESOLVED_RETRIED,
    RegionFault,
)


@dataclass
class CheckResult:
    """One static check over one patched region."""

    name: str  # "encoding" | "target" | "cfg" | "oracle"
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        return f"{'ok  ' if self.passed else 'FAIL'} {self.name}: {self.detail or 'clean'}"


@dataclass
class RegionVerdict:
    """Every check outcome for one patched region."""

    start: int
    end: int
    kind: str
    checks: list[CheckResult] = field(default_factory=list)
    #: Per-trial differential-oracle outcomes ("match", "mismatch: ...",
    #: "inconclusive: ..."); empty when the oracle was capped out.
    oracle_trials: list[str] = field(default_factory=list)

    @property
    def admitted(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> list[CheckResult]:
        return [c for c in self.checks if not c.passed]

    def as_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "kind": self.kind,
            "admitted": self.admitted,
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.checks
            ],
            "oracle_trials": list(self.oracle_trials),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RegionVerdict":
        return cls(
            start=data["start"],
            end=data["end"],
            kind=data["kind"],
            checks=[CheckResult(c["name"], c["passed"], c.get("detail", ""))
                    for c in data.get("checks", ())],
            oracle_trials=list(data.get("oracle_trials", ())),
        )


@dataclass
class VerifyReport:
    """Admission verdict for one rewritten binary."""

    binary: str
    target: str
    seed: int
    regions: list[RegionVerdict] = field(default_factory=list)
    #: Regions whose differential oracle was skipped by the region cap
    #: (static checks always run on every region; never silent).
    oracle_skipped: int = 0
    #: Every fault the isolated pipeline attributed to a region: worker
    #: crashes, watchdog kills, in-process verify errors — with the
    #: attempt that faulted and how it was resolved.  Empty on
    #: fault-free runs, so serial/thread/process ledgers stay identical.
    faults: list[RegionFault] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.admitted for r in self.regions)

    @property
    def degraded_starts(self) -> frozenset[int]:
        """Regions quarantined and re-admitted on the trap fallback."""
        return frozenset(f.start for f in self.faults
                         if f.resolution == RESOLVED_DEGRADED)

    @property
    def quarantined_starts(self) -> frozenset[int]:
        """Regions whose fault was not healed by a retry (degraded or
        excluded — either way, not the fault-free output)."""
        return frozenset(f.start for f in self.faults
                         if f.resolution != RESOLVED_RETRIED)

    @property
    def releasable(self) -> bool:
        """True when every region was either admitted outright or
        successfully degraded to the verified trap fallback.  Strictly
        weaker than :attr:`ok` (which refuses degraded releases)."""
        degraded = self.degraded_starts
        return all(r.admitted or r.start in degraded for r in self.regions)

    @property
    def admitted_starts(self) -> frozenset[int]:
        return frozenset(r.start for r in self.regions if r.admitted)

    @property
    def rejected(self) -> list[RegionVerdict]:
        return [r for r in self.regions if not r.admitted]

    def counts(self) -> dict[str, int]:
        return {
            "regions": len(self.regions),
            "admitted": sum(r.admitted for r in self.regions),
            "rejected": len(self.rejected),
            "oracle_skipped": self.oracle_skipped,
            "region_faults": len(self.faults),
            "degraded": len(self.degraded_starts),
        }

    def as_dict(self) -> dict:
        return {
            "binary": self.binary,
            "target": self.target,
            "seed": self.seed,
            "ok": self.ok,
            "counts": self.counts(),
            "regions": [r.as_dict() for r in self.regions],
            "faults": [f.as_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VerifyReport":
        return cls(
            binary=data["binary"],
            target=data["target"],
            seed=data["seed"],
            regions=[RegionVerdict.from_dict(r)
                     for r in data.get("regions", ())],
            oracle_skipped=data.get("counts", {}).get("oracle_skipped", 0),
            faults=[RegionFault.from_dict(f)
                    for f in data.get("faults", ())],
        )

    def to_json(self) -> str:
        """The canonical ledger serialization.  Every producer — the
        ``verify`` CLI, the rewrite cache, the batch service streaming
        ledgers to fleet clients — goes through this one function, so a
        ledger fetched over the service is *byte-identical* to one
        written locally for the same release."""
        return json.dumps(self.as_dict(), indent=1, sort_keys=True) + "\n"

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "VerifyReport":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def summary(self) -> str:
        c = self.counts()
        head = (f"verify {self.binary} -> {self.target}: "
                f"{c['admitted']}/{c['regions']} regions admitted")
        lines = [head]
        if self.oracle_skipped:
            lines.append(
                f"  note: oracle skipped on {self.oracle_skipped} regions (cap)")
        for fault in self.faults:
            lines.append(f"  FAULT {fault}")
        for region in self.rejected:
            for failure in region.failures:
                lines.append(
                    f"  REJECT {region.start:#x}..{region.end:#x} "
                    f"[{region.kind}] {failure.name}: {failure.detail}")
        if self.degraded_starts:
            lines.append(
                f"  degraded to trap fallback: {len(self.degraded_starts)} region(s)")
        lines.append(f"admission verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)
