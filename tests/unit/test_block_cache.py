"""Superblock execution engine: equivalence with the interpreter,
versioned invalidation when code under a cached block is patched, and
the targeted ``invalidate_code`` range semantics."""

import pytest

from repro.chaos.harness import scenario_self_heal_bitrot
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.encoding import encode
from repro.isa.instructions import Instruction
from repro.sim.faults import SimFault, SimulationLimitExceeded
from repro.sim.machine import Core, Kernel
from repro.isa.extensions import PROFILES
from repro.workloads.programs import FibonacciWorkload

RV64GC = PROFILES["rv64gc"]


def _loop_binary(iterations=5):
    b = ProgramBuilder("bcache-loop")
    b.set_text(f"""
_start:
    li a0, 0
    li t0, {iterations}
loop:
    addi a0, a0, 1
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    ecall
""")
    return b.build()


def _run(binary, *, block_cache):
    kernel = Kernel(block_cache=block_cache)
    process = make_process(binary)
    result = kernel.run(process, Core(0, RV64GC))
    return result


class TestEquivalence:
    def test_superblock_matches_interpreter(self):
        binary = FibonacciWorkload(iterations=20).build("base")
        fast = _run(binary, block_cache=True)
        slow = _run(FibonacciWorkload(iterations=20).build("base"),
                    block_cache=False)
        assert fast.exit_code == slow.exit_code == 0
        assert fast.instret == slow.instret
        assert fast.cycles == slow.cycles
        assert fast.output == slow.output

    def test_superblock_counters_reported(self):
        result = _run(FibonacciWorkload(iterations=20).build("base"),
                      block_cache=True)
        assert result.counters.get("block_cache_hits", 0) > 0
        assert result.counters.get("superblock_instret", 0) > 0

    def test_interpreter_path_reports_no_superblocks(self):
        result = _run(FibonacciWorkload(iterations=20).build("base"),
                      block_cache=False)
        assert result.counters.get("block_cache_hits", 0) == 0
        assert result.counters.get("superblock_instret", 0) == 0

    def test_step_hook_forces_fallback(self):
        binary = _loop_binary()
        kernel = Kernel(block_cache=True)
        process = make_process(binary)
        cpu = kernel.make_cpu(process, Core(0, RV64GC))
        seen = []
        cpu.step_hook = lambda c: seen.append(c.pc)
        kernel.run(process, Core(0, RV64GC), cpu=cpu)
        assert seen  # the hook observed every instruction
        assert cpu.counters.get("superblock_instret", 0) == 0


class TestPatchInvalidation:
    def test_patch_inside_cached_superblock_takes_effect(self):
        """Bitrot-style patch (version bump only, no explicit
        invalidation): the next execution of the cached block must see
        the new bytes."""
        binary = _loop_binary(iterations=5)
        kernel = Kernel(block_cache=True)
        process = make_process(binary)
        cpu = kernel.make_cpu(process, Core(0, RV64GC))
        # 2 setup instructions + 2 full loop iterations (3 each).
        with pytest.raises(SimulationLimitExceeded):
            cpu.run(max_instructions=8)
        assert cpu.get_reg(10) == 2  # a0 after two increments
        loop_pc = binary.symbol_addr("loop")
        assert any(start <= loop_pc < end
                   for (_, _, _, start, end) in cpu._bcache.values())
        # Patch the cached `addi a0, a0, 1` to add 2 instead — exactly
        # what TrampolineBitrotInjector does: patch_code, no cpu in hand.
        process.space.patch_code(
            loop_pc, encode(Instruction("addi", rd=10, rs1=10, imm=2)))
        with pytest.raises(SimFault):  # runs to the exit ecall
            cpu.run(max_instructions=50)
        assert cpu.get_reg(10) == 2 + 3 * 2  # three patched iterations

    def test_invalidate_code_is_targeted(self):
        """Patching one block must not evict unrelated cached blocks."""
        binary = _loop_binary(iterations=5)
        kernel = Kernel(block_cache=True)
        process = make_process(binary)
        cpu = kernel.make_cpu(process, Core(0, RV64GC))
        with pytest.raises(SimFault):
            cpu.run(max_instructions=50)
        assert len(cpu._bcache) >= 2  # entry block + loop body
        loop_pc = binary.symbol_addr("loop")
        survivors = [pc for pc, b in cpu._bcache.items()
                     if not (b[3] <= loop_pc < b[4])]
        assert survivors
        process.space.patch_code(
            loop_pc, encode(Instruction("addi", rd=10, rs1=10, imm=2)))
        cpu.invalidate_code(loop_pc, 4)
        assert all(not (b[3] <= loop_pc < b[4])
                   for b in cpu._bcache.values())
        seg = process.space.fetch_segment(loop_pc)
        for pc in survivors:
            # Refreshed in place: still cached and still valid.
            assert cpu._bcache[pc][2] == seg.version

    def test_concurrent_quarantine_of_two_windows(self):
        """Two patches quarantined back-to-back (the healer's
        patch_code + invalidate_code sequence) while both windows sit
        inside cached superblocks: both windows must execute the new
        bytes, every unrelated block must survive revalidated, and no
        block over either window may serve stale bytes."""
        b = ProgramBuilder("bcache-quarantine")
        b.set_text("""
_start:
    li a0, 0
    li a1, 0
    li t0, 4
loop_a:
    addi a0, a0, 1
    addi t0, t0, -1
    bnez t0, loop_a
    li t0, 4
loop_b:
    addi a1, a1, 1
    addi t0, t0, -1
    bnez t0, loop_b
    li a7, 93
    ecall
""")
        binary = b.build()
        kernel = Kernel(block_cache=True)
        process = make_process(binary)
        cpu = kernel.make_cpu(process, Core(0, RV64GC))
        with pytest.raises(SimFault):  # runs to the exit ecall
            cpu.run(max_instructions=100)
        assert cpu.get_reg(10) == 4 and cpu.get_reg(11) == 4
        pc_a = binary.symbol_addr("loop_a")
        pc_b = binary.symbol_addr("loop_b")
        cached = {pc: blk for pc, blk in cpu._bcache.items()}
        assert any(blk[3] <= pc_a < blk[4] for blk in cached.values())
        assert any(blk[3] <= pc_b < blk[4] for blk in cached.values())
        survivors = [pc for pc, blk in cached.items()
                     if not (blk[3] <= pc_a < blk[4])
                     and not (blk[3] <= pc_b < blk[4])]
        # Quarantine both windows, one after the other, with no
        # execution in between — the rollback journal's batch path.
        for pc in (pc_a, pc_b):
            process.space.patch_code(
                pc, encode(Instruction("addi",
                                       rd=10 if pc == pc_a else 11,
                                       rs1=10 if pc == pc_a else 11,
                                       imm=2)))
            cpu.invalidate_code(pc, 4)
        for pc in (pc_a, pc_b):
            assert all(not (blk[3] <= pc < blk[4])
                       for blk in cpu._bcache.values())
        seg = process.space.fetch_segment(pc_a)
        for pc in survivors:
            assert cpu._bcache[pc][2] == seg.version  # revalidated, not stale
        # Re-run from scratch: both quarantined windows execute the
        # patched (doubled) increments.
        cpu.pc = binary.entry
        for reg in (10, 11):
            cpu.set_reg(reg, 0)
        with pytest.raises(SimFault):
            cpu.run(max_instructions=100)
        assert cpu.get_reg(10) == 8 and cpu.get_reg(11) == 8

    def test_rollback_heal_invalidates_cached_window(self):
        """The chaos self-heal scenario patches original text mid-run
        via PatchHealer rollback; with the block cache on (the default)
        the freshly healed bytes must be the ones that execute."""
        result = scenario_self_heal_bitrot()
        assert result.passed, result.detail


class TestWriteToExecutableMemory:
    def test_store_into_wx_segment_bumps_version(self):
        from repro.elf.binary import Perm
        from repro.sim.memory import AddressSpace

        space = AddressSpace("wx")
        seg = space.map("wx-seg", 0x1000, bytearray(64), Perm.R | Perm.W | Perm.X)
        before = seg.version
        space.write(0x1000, b"\x13\x00\x00\x00")
        assert seg.version == before + 1
