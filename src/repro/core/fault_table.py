"""The per-binary fault-handling table (paper §4.3).

Maps potential fault addresses — original instruction boundaries that a
SMILE trampoline overwrote — to the address of the corresponding copied
instruction inside the target-instruction section.  Built statically by
the patcher, consumed read-only by the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class FaultTable:
    """Read-only (after construction) redirection table."""

    #: original boundary address -> redirect target in .chimera.text
    entries: dict[int, int] = field(default_factory=dict)

    def add(self, fault_addr: int, redirect_to: int) -> None:
        """Record that an erroneous jump to *fault_addr* resumes at *redirect_to*."""
        existing = self.entries.get(fault_addr)
        if existing is not None and existing != redirect_to:
            raise ValueError(
                f"conflicting fault-table entries for {fault_addr:#x}: "
                f"{existing:#x} vs {redirect_to:#x}"
            )
        self.entries[fault_addr] = redirect_to

    def lookup(self, fault_addr: int) -> Optional[int]:
        """Redirect target for *fault_addr*, or None if not a known key."""
        return self.entries.get(fault_addr)

    def __contains__(self, addr: int) -> bool:
        return addr in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.entries.items())
