"""End-to-end resilience: named scenarios + the 1000-task fault run."""

import pytest

from repro.core.machine_runner import HeteroTask, MeasuredScheduler, varied_taskset
from repro.resilience.failures import (
    FLAKE_CORE,
    KILL_CORE,
    CoreFailureInjector,
    FailureEvent,
)
from repro.resilience.scenarios import SCENARIOS, run_all, run_scenario


class TestNamedScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_passes(self, name):
        result = run_scenario(name, seed=0)
        assert result.passed, f"{name}: {result.detail}"

    def test_run_all_covers_the_required_five(self):
        names = {r.name for r in run_all(seed=0)}
        assert names == {
            "ext-core-loss", "flaky-core", "lost-migration",
            "corrupted-checkpoint", "all-ext-cores-dead",
        }

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_scenario("meteor-strike")


def thousand_task_mix() -> list[HeteroTask]:
    """1000 tasks, half extension, sizes cycled over a few small values
    so the per-cell binary cache keeps the run fast."""
    tasks = []
    for i in range(1000):
        if i % 2 == 0:
            tasks.append(HeteroTask(i, "ext", (4, 6, 8)[i % 3]))
        else:
            tasks.append(HeteroTask(i, "base", (60, 100, 140)[i % 3]))
    return tasks


class TestThousandTaskFaultRun:
    def test_measured_scheduler_survives_injected_failures(self):
        tasks = thousand_task_mix()
        injector = CoreFailureInjector(
            [FailureEvent(KILL_CORE, core_id=2, task_kind="ext",
                          after_instructions=150),
             FailureEvent(FLAKE_CORE, core_id=0, after_instructions=80)],
            seed=0)
        result = MeasuredScheduler(2, 2).run(tasks, "chimera",
                                             injector=injector)
        stats = result.resilience
        # Every task is accounted for: completed or structurally failed.
        assert result.completed + result.unrecoverable == 1000
        assert result.unrecoverable == 0
        assert result.failures == 0  # workloads self-verify
        # The ladder actually engaged.
        assert stats.quarantines >= 1
        assert stats.checkpointed_migrations >= 1
        assert stats.core_faults == 2
        assert 2 in result.quarantined_cores
        # Three cores kept the system productive.
        assert result.makespan > 0
        assert result.ext_tasks == 500


class TestSeededVariedTaskset:
    def test_env_seed_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUZZ_SEED", "321")
        a = varied_taskset(30, 0.5)
        monkeypatch.delenv("REPRO_FUZZ_SEED")
        b = varied_taskset(30, 0.5, seed=321)
        assert a == b

    def test_default_seed_stable_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FUZZ_SEED", raising=False)
        assert varied_taskset(20, 0.5) == varied_taskset(20, 0.5)

    def test_explicit_seed_changes_sizes(self):
        a = varied_taskset(30, 0.5, seed=1)
        b = varied_taskset(30, 0.5, seed=2)
        assert a != b
        # Kinds are seed-independent; only sizes vary.
        assert [t.kind for t in a] == [t.kind for t in b]
