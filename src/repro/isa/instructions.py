"""The ``Instruction`` IR shared by assembler, decoder, rewriter and CPU.

An ``Instruction`` is a decoded, architecture-level view of one machine
instruction: mnemonic plus register/immediate operands, its byte length
(2 for compressed, 4 otherwise), its raw encoding, and the extension it
belongs to.  The rewriter manipulates lists of these; the CPU executes
them via a mnemonic-keyed dispatch table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.isa.extensions import Extension
from repro.isa.registers import reg_name, vreg_name

#: Mnemonics that unconditionally transfer control.
JUMP_MNEMONICS = frozenset({"jal", "jalr", "c.j", "c.jr", "c.jalr", "ret"})

#: Conditional branch mnemonics.
BRANCH_MNEMONICS = frozenset(
    {"beq", "bne", "blt", "bge", "bltu", "bgeu", "c.beqz", "c.bnez"}
)

#: Mnemonics that terminate a basic block.
TERMINATORS = JUMP_MNEMONICS | BRANCH_MNEMONICS | frozenset({"ecall", "ebreak", "c.ebreak"})


@dataclass(slots=True)
class Instruction:
    """One decoded instruction.

    Integer operands are register *numbers*; ``imm`` is a plain signed
    Python int.  Vector operands live in ``vd``/``vs1``/``vs2``; ``vm``
    is the RVV mask bit (1 = unmasked).  ``addr`` is filled in by the
    disassembler/scanner when the instruction came from a binary.
    """

    mnemonic: str
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None
    vd: Optional[int] = None
    vs1: Optional[int] = None
    vs2: Optional[int] = None
    vm: int = 1
    length: int = 4
    encoding: Optional[int] = None
    extension: Extension = Extension.I
    addr: Optional[int] = None

    # -- classification ------------------------------------------------

    def is_compressed(self) -> bool:
        """True for 2-byte RVC instructions."""
        return self.length == 2

    def is_jump(self) -> bool:
        """True for unconditional control transfers."""
        return self.mnemonic in JUMP_MNEMONICS

    def is_branch(self) -> bool:
        """True for conditional branches."""
        return self.mnemonic in BRANCH_MNEMONICS

    def is_terminator(self) -> bool:
        """True if this instruction ends a basic block."""
        return self.mnemonic in TERMINATORS

    def is_direct_control(self) -> bool:
        """True for control transfers whose target is pc-relative."""
        return self.is_branch() or self.mnemonic in ("jal", "c.j")

    def is_indirect_jump(self) -> bool:
        """True for register-target jumps (the control-flow-recovery pain)."""
        return self.mnemonic in ("jalr", "c.jr", "c.jalr")

    def is_vector(self) -> bool:
        """True for RVV instructions."""
        return self.extension is Extension.V

    def target(self) -> Optional[int]:
        """Absolute target address for direct control transfers.

        Requires ``addr`` to be set; returns ``None`` for indirect jumps.
        """
        if self.addr is None or self.imm is None or not self.is_direct_control():
            return None
        return self.addr + self.imm

    def regs_read(self) -> frozenset[int]:
        """Integer registers this instruction reads (best effort, used by liveness)."""
        out: set[int] = set()
        if self.rs1 is not None:
            out.add(self.rs1)
        if self.rs2 is not None:
            out.add(self.rs2)
        return frozenset(out)

    def regs_written(self) -> frozenset[int]:
        """Integer registers this instruction writes."""
        if self.rd is not None and self.rd != 0:
            return frozenset({self.rd})
        return frozenset()

    def with_addr(self, addr: int) -> "Instruction":
        """Return a copy of this instruction bound to *addr*."""
        return replace(self, addr=addr)

    def copy(self) -> "Instruction":
        """Return a shallow copy."""
        return replace(self)

    # -- formatting ----------------------------------------------------

    def __str__(self) -> str:
        parts = []
        if self.vd is not None:
            parts.append(vreg_name(self.vd))
        if self.rd is not None:
            parts.append(reg_name(self.rd))
        if self.vs2 is not None:
            parts.append(vreg_name(self.vs2))
        if self.vs1 is not None:
            parts.append(vreg_name(self.vs1))
        if self.rs1 is not None:
            parts.append(reg_name(self.rs1))
        if self.rs2 is not None:
            parts.append(reg_name(self.rs2))
        if self.imm is not None:
            parts.append(hex(self.imm) if abs(self.imm) > 255 else str(self.imm))
        body = f"{self.mnemonic} {', '.join(parts)}".rstrip()
        if self.addr is not None:
            return f"{self.addr:#x}: {body}"
        return body


@dataclass(slots=True)
class RawBytes:
    """Opaque bytes in an instruction stream (data islands, padding).

    The scanner emits these for regions it could not prove are code;
    the patcher refuses to place trampolines over them.
    """

    data: bytes
    addr: Optional[int] = None

    @property
    def length(self) -> int:
        return len(self.data)

    def __str__(self) -> str:
        prefix = f"{self.addr:#x}: " if self.addr is not None else ""
        return f"{prefix}.bytes {self.data.hex()}"
