#!/usr/bin/env python3
"""Passive fault handling, live: force an erroneous execution and watch
Chimera recover it.

An old function pointer in the data segment targets the *second*
instruction of a vector episode.  After rewriting, that address is the
interior of a SMILE trampoline — the jump partially executes the
trampoline, raises a deterministic fault (the whole point of SMILE), and
the runtime redirects to the copied instruction with zero cost to normal
executions.

Run:  python examples/fault_recovery_demo.py
"""

from repro import (
    ChimeraRewriter,
    ChimeraRuntime,
    Core,
    Kernel,
    ProgramBuilder,
    RV64GC,
    make_process,
)


def build():
    b = ProgramBuilder("recovery")
    b.add_words("buf", [10, 20] + [0] * 8)
    b.add_words("out", [0])
    b.set_text("""
_start:
    li a0, {buf}
    li a1, 2
    jal episode            # pass 1: normal entry (hits the trampoline head)
    la t0, ep_mid
    jalr t0                # pass 2: stale pointer into the episode interior!
    li t1, {out}
    sd a4, 0(t1)
    li a7, 93
    li a0, 0
    ecall

episode:
    vsetvli t0, a1, e64
ep_mid:
    vle64.v v1, (a0)
    vadd.vv v2, v1, v1
    vse64.v v2, (a0)
    addi a4, a4, 1
    ret
""")
    b.mark_function("episode")
    return b.build()


def main():
    binary = build()
    rewriter = ChimeraRewriter()
    result = rewriter.rewrite(binary, RV64GC)

    ep_mid = binary.symbol_addr("ep_mid")
    redirect = result.fault_table.lookup(ep_mid)
    print(f"ep_mid = {ep_mid:#x} is an interior trampoline boundary")
    print(f"fault table maps it to the copied instruction at {redirect:#x}"
          if redirect else "fault table does not cover ep_mid (layout variance)")

    kernel = Kernel()
    runtime = ChimeraRuntime(result.binary, rewriter=rewriter, original=binary)
    runtime.install(kernel)
    proc = make_process(result.binary)
    res = kernel.run(proc, Core(0, RV64GC))

    buf = binary.symbol_addr("buf")
    out = binary.symbol_addr("out")
    print(f"\nexit code: {res.exit_code}")
    print(f"episode executions (a4): {proc.space.read_u64(out)}  (expected 2)")
    print(f"buf after two doublings: "
          f"{[proc.space.read_u64(buf + 8 * i) for i in range(2)]}  (expected [40, 80])")
    print(f"\nruntime statistics: {runtime.stats.as_dict()}")
    print("The erroneous jump raised exactly one deterministic fault;")
    print("the normal pass paid only the SMILE trampoline's two instructions.")


if __name__ == "__main__":
    main()
