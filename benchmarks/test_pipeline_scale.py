"""Pipeline scaling: the process pool must buy wall-clock on real cores.

The fault-isolated pipeline exists for robustness, but the pool must
not *cost* scaling: on a multi-core box the process executor at
``jobs = min(4, cpu_count)`` should beat the thread executor (which
serializes the oracle on the GIL).  Byte-identity between the two is
asserted unconditionally; the speedup gate only arms when the machine
actually has >= 4 CPUs — single-core CI boxes record the numbers
without judging them.  ``BENCH_pipeline_scale.json`` carries the
measured wall-clocks.
"""

import os
import time

import pytest

from benchmarks.helpers import SCALE, emit_bench, print_table
from repro.core.pipeline import rewrite_and_verify
from repro.isa.extensions import RV64GC
from repro.telemetry import MetricsRegistry
from repro.workloads.spec_profiles import PROFILES
from repro.workloads.synthetic import SyntheticBinary


def _gcc():
    return SyntheticBinary(PROFILES["gcc_r"], scale=SCALE).build()


def _section_bytes(result):
    return {s.name: bytes(s.data) for s in result.binary.sections}


def test_pipeline_scale(benchmark, monkeypatch):
    monkeypatch.setenv("REPRO_FUZZ_SEED", "20260806")
    jobs = min(4, os.cpu_count() or 1)

    def run():
        timings = {}
        outputs = {}
        for executor in ("thread", "process"):
            t0 = time.perf_counter()
            out = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=2,
                                     jobs=jobs, executor=executor)
            timings[executor] = time.perf_counter() - t0
            outputs[executor] = out
        return timings, outputs

    timings, outputs = benchmark.pedantic(run, rounds=1, iterations=1)

    assert (_section_bytes(outputs["thread"].result)
            == _section_bytes(outputs["process"].result))
    assert (outputs["thread"].report.as_dict()
            == outputs["process"].report.as_dict())

    speedup = timings["thread"] / timings["process"]
    rows = [[executor, jobs, f"{timings[executor]:.2f}s",
             f"{speedup:.2f}x" if executor == "process" else "1.00x"]
            for executor in ("thread", "process")]
    print_table("Pipeline wall-clock: thread vs process pool",
                ["executor", "jobs", "wall", "vs thread"], rows)

    registry = MetricsRegistry()
    for executor, wall in timings.items():
        registry.gauge("bench.pipeline_wall_seconds", round(wall, 3),
                       executor=executor, jobs=str(jobs))
    registry.gauge("bench.pipeline_process_speedup", round(speedup, 3),
                   jobs=str(jobs))
    registry.gauge("bench.cpu_count", os.cpu_count() or 1)
    emit_bench("pipeline_scale", registry)

    if (os.cpu_count() or 1) >= 4:
        # With 4 real cores the pool must recover at least some of the
        # GIL serialization; the bar is deliberately modest so machine
        # noise cannot flake it.
        assert speedup > 1.1, (
            f"process pool slower than threads on {os.cpu_count()} CPUs: "
            f"{timings['process']:.2f}s vs {timings['thread']:.2f}s")
