"""CLI exit codes: failures must be visible to shells and CI, not just
printed — ``run``/``chaos``/``resilience`` return nonzero on failure.
``run --json`` must keep the same semantics while emitting machine-
readable output."""

import json

import pytest

import repro.chaos
import repro.resilience.scenarios
from repro.chaos.outcomes import ChaosReport, ScenarioResult, SweepReport
from repro.cli import main
from repro.elf.builder import ProgramBuilder
from repro.elf.fileformat import save_binary
from repro.workloads.programs import FibonacciWorkload


def exit_image(tmp_path, code: int):
    b = ProgramBuilder(f"exit{code}")
    b.set_text(f"""
_start:
    li a0, {code}
    li a7, 93
    ecall
""")
    path = tmp_path / f"exit{code}.self"
    save_binary(b.build(), path)
    return str(path)


class TestRunExitCodes:
    def test_success_returns_zero(self, tmp_path):
        path = tmp_path / "ok.self"
        save_binary(FibonacciWorkload(iterations=20).build("base"), path)
        assert main(["run", str(path), "--core", "rv64gc"]) == 0

    def test_guest_failure_returns_nonzero(self, tmp_path):
        assert main(["run", exit_image(tmp_path, 1), "--core", "rv64gc"]) == 1

    def test_guest_success_exit_code_zero(self, tmp_path):
        assert main(["run", exit_image(tmp_path, 0), "--core", "rv64gc"]) == 0


class TestRunJsonMode:
    def test_success_emits_parseable_json(self, tmp_path, capsys):
        path = tmp_path / "ok.self"
        save_binary(FibonacciWorkload(iterations=20).build("base"), path)
        code = main(["run", str(path), "--core", "rv64gc", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["exit_code"] == 0 and payload["ok"] is True
        assert payload["cycles"] > 0 and payload["instret"] > 0
        assert payload["fault"] is None
        assert all(v for v in payload["counters"].values())

    def test_guest_failure_reflected_in_json_and_exit_code(self, tmp_path, capsys):
        code = main(["run", exit_image(tmp_path, 3), "--core", "rv64gc", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["exit_code"] == 3 and payload["ok"] is False

    def test_workload_name_run_includes_workload_field(self, capsys):
        code = main(["run", "dot", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["workload"] == "dot"

    def test_telemetry_out_writes_artifacts(self, tmp_path, capsys):
        outdir = tmp_path / "t"
        code = main(["run", "dot", "--json", "--telemetry-out", str(outdir)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0 and payload["ok"] is True
        assert (outdir / "trace.json").exists()
        assert (outdir / "metrics.json").exists()


class TestChaosExitCodes:
    def _report(self, ok: bool) -> ChaosReport:
        report = ChaosReport()
        report.sweeps = [SweepReport(binary="b", mode="smile")]
        report.scenarios = [ScenarioResult("stub", ok, "stub detail")]
        return report

    def test_failure_is_nonzero_and_prints_seed(self, monkeypatch, capsys):
        monkeypatch.setattr(repro.chaos, "run_chaos",
                            lambda *a, **k: self._report(False))
        code = main(["chaos", "matmul", "--seed", "77"])
        out = capsys.readouterr().out
        assert code == 1
        assert "77" in out and "REPRO_FUZZ_SEED" in out

    def test_success_is_zero(self, monkeypatch, capsys):
        monkeypatch.setattr(repro.chaos, "run_chaos",
                            lambda *a, **k: self._report(True))
        assert main(["chaos", "matmul"]) == 0
        assert "seed:" not in capsys.readouterr().out


class TestResilienceExitCodes:
    def test_failure_is_nonzero_and_prints_seed(self, monkeypatch, capsys):
        monkeypatch.setattr(
            repro.resilience.scenarios, "run_scenario",
            lambda name, seed=None: ScenarioResult(name, False, "boom"))
        code = main(["resilience", "ext-core-loss", "--seed", "13"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out and "13" in out

    def test_all_success_is_zero(self, monkeypatch, capsys):
        monkeypatch.setattr(
            repro.resilience.scenarios, "run_all",
            lambda seed=None: [ScenarioResult("stub", True, "fine")])
        assert main(["resilience", "all"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_unknown_scenario_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["resilience", "not-a-scenario"])

    def test_real_single_scenario_round_trip(self):
        # No monkeypatching: the cheapest real scenario end-to-end.
        assert main(["resilience", "ext-core-loss", "--seed", "0"]) == 0


class TestVerifyExitCodes:
    def test_clean_workload_passes_and_writes_report(self, tmp_path, capsys):
        report = tmp_path / "verify.json"
        code = main(["verify", "dot", "--oracle-trials", "1",
                     "--report", str(report)])
        out = capsys.readouterr().out
        assert code == 0
        assert "admission verdict: PASS" in out
        assert json.loads(report.read_text())["ok"] is True

    def test_rejection_is_nonzero_and_prints_seed(self, monkeypatch, capsys):
        import repro.verify

        class FailReport:
            ok = False

            def summary(self):
                return "admission verdict: FAIL"

        monkeypatch.setattr(repro.verify, "verify_binary",
                            lambda *a, **k: FailReport())
        code = main(["verify", "dot", "--seed", "21"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out and "21" in out and "REPRO_FUZZ_SEED" in out


class TestPerfFlagExitCodes:
    """--jobs / --no-block-cache / --rewrite-cache keep the exit-code
    contract on every command that accepts them."""

    def test_run_image_no_block_cache_success(self, tmp_path):
        path = tmp_path / "ok.self"
        save_binary(FibonacciWorkload(iterations=20).build("base"), path)
        assert main(["run", str(path), "--core", "rv64gc",
                     "--no-block-cache"]) == 0

    def test_run_image_no_block_cache_failure(self, tmp_path):
        assert main(["run", exit_image(tmp_path, 1), "--core", "rv64gc",
                     "--no-block-cache"]) == 1

    def test_no_block_cache_restores_global_default(self, tmp_path):
        from repro.sim import machine

        assert machine.BLOCK_CACHE_DEFAULT is True
        main(["run", exit_image(tmp_path, 0), "--core", "rv64gc",
              "--no-block-cache"])
        assert machine.BLOCK_CACHE_DEFAULT is True

    def test_run_matches_interpreter_counters(self, tmp_path, capsys):
        path = tmp_path / "ok.self"
        save_binary(FibonacciWorkload(iterations=20).build("base"), path)
        main(["run", str(path), "--core", "rv64gc", "--json"])
        fast = json.loads(capsys.readouterr().out)
        main(["run", str(path), "--core", "rv64gc", "--json",
              "--no-block-cache"])
        slow = json.loads(capsys.readouterr().out)
        assert fast["instret"] == slow["instret"]
        assert fast["cycles"] == slow["cycles"]
        assert fast["counters"].get("block_cache_hits", 0) > 0
        assert slow["counters"].get("block_cache_hits", 0) == 0

    def test_verify_jobs_and_cache_success(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["verify", "dot", "--oracle-trials", "1",
                     "--jobs", "2", "--rewrite-cache", str(cache)]) == 0
        capsys.readouterr()
        # Second invocation hits the cache and keeps the verdict.
        assert main(["verify", "dot", "--oracle-trials", "1",
                     "--jobs", "2", "--rewrite-cache", str(cache)]) == 0
        assert "rewrite-cache hit" in capsys.readouterr().err

    def test_verify_rejection_still_nonzero_with_jobs(self, monkeypatch):
        import repro.verify

        class FailReport:
            ok = False

            def summary(self):
                return "admission verdict: FAIL"

        monkeypatch.setattr(repro.verify, "verify_binary",
                            lambda *a, **k: FailReport())
        assert main(["verify", "dot", "--seed", "21", "--jobs", "4"]) == 1

    def test_chaos_accepts_perf_flags(self, monkeypatch, capsys):
        report = ChaosReport()
        report.sweeps = [SweepReport(binary="b", mode="smile")]
        report.scenarios = [ScenarioResult("stub", True, "fine")]
        monkeypatch.setattr(repro.chaos, "run_chaos",
                            lambda *a, **k: report)
        assert main(["chaos", "matmul", "--jobs", "2",
                     "--no-block-cache"]) == 0
        capsys.readouterr()

    def test_resilience_accepts_perf_flags(self, monkeypatch, capsys):
        monkeypatch.setattr(
            repro.resilience.scenarios, "run_all",
            lambda seed=None: [ScenarioResult("stub", True, "fine")])
        assert main(["resilience", "all", "--no-block-cache",
                     "--jobs", "2"]) == 0
        capsys.readouterr()


class TestTraceFlagExitCodes:
    """--no-trace-cache / --trace-threshold / --hot-blocks keep the
    exit-code contract and the bit-identity contract on ``run``."""

    def test_run_image_no_trace_cache_success(self, tmp_path):
        path = tmp_path / "ok.self"
        save_binary(FibonacciWorkload(iterations=20).build("base"), path)
        assert main(["run", str(path), "--core", "rv64gc",
                     "--no-trace-cache"]) == 0

    def test_run_image_no_trace_cache_failure(self, tmp_path):
        assert main(["run", exit_image(tmp_path, 1), "--core", "rv64gc",
                     "--no-trace-cache"]) == 1

    def test_trace_flags_restore_global_defaults(self, tmp_path):
        from repro.sim import machine

        assert machine.TRACE_CACHE_DEFAULT is True
        before = machine.TRACE_THRESHOLD_DEFAULT
        main(["run", exit_image(tmp_path, 0), "--core", "rv64gc",
              "--no-trace-cache", "--trace-threshold", "3"])
        assert machine.TRACE_CACHE_DEFAULT is True
        assert machine.TRACE_THRESHOLD_DEFAULT == before

    def test_trace_tier_is_bit_identical_via_cli(self, tmp_path, capsys):
        path = tmp_path / "ok.self"
        save_binary(FibonacciWorkload(iterations=40).build("base"), path)
        main(["run", str(path), "--core", "rv64gc", "--json",
              "--trace-threshold", "1"])
        fast = json.loads(capsys.readouterr().out)
        main(["run", str(path), "--core", "rv64gc", "--json",
              "--no-trace-cache"])
        slow = json.loads(capsys.readouterr().out)
        assert fast["instret"] == slow["instret"]
        assert fast["cycles"] == slow["cycles"]
        assert fast["counters"].get("trace_cache_hits", 0) > 0
        assert slow["counters"].get("trace_cache_hits", 0) == 0
        assert slow["counters"].get("trace_instret", 0) == 0

    def test_run_workload_hot_blocks_json(self, capsys):
        code = main(["run", "dot", "--json", "--hot-blocks", "4"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        hot = payload.get("hot_blocks", [])
        assert 0 < len(hot) <= 4
        for entry in hot:
            assert entry["pc"].startswith("0x") and entry["hits"] > 0
        hits = [entry["hits"] for entry in hot]
        assert hits == sorted(hits, reverse=True)

    def test_trace_command_hot_blocks_json(self, capsys):
        code = main(["trace", "dot", "--json", "--hot-blocks", "3"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["workload"] == "dot"
        assert 0 < len(payload.get("hot_blocks", [])) <= 3

    def test_serve_parser_accepts_trace_flags(self, tmp_path):
        from repro.cli import make_parser

        args = make_parser().parse_args(
            ["serve", "--cache", str(tmp_path), "--no-trace-cache",
             "--trace-threshold", "5"])
        assert args.no_trace_cache is True
        assert args.trace_threshold == 5
