"""Backward register-liveness analysis over the CFG.

The rewriter needs *dead registers*: registers whose current value no
subsequent execution path reads before writing (§4.2 challenge 2).  The
analysis is classic backward may-liveness with two conservatisms that
reproduce why "traditional register liveness analysis" fails in ~36% of
the paper's cases (Table 3):

* a block with an UNKNOWN successor (unresolved indirect jump) gets the
  full register set as live-out;
* function returns treat the ABI-visible registers (sp/gp/tp, s-regs,
  a0/a1, ra) as live.

:class:`LivenessResult` answers "which registers are dead just before
address A" queries; the CHBP exit-position-shifting strategy walks
forward through these answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import UNKNOWN, ControlFlowGraph
from repro.isa.instructions import Instruction
from repro.isa.registers import Reg

#: All integer registers except x0.
ALL_REGS: frozenset[int] = frozenset(range(1, 32))

#: Registers considered live at a function return under the psABI.
ABI_LIVE_AT_RETURN: frozenset[int] = frozenset(
    {int(Reg.RA), int(Reg.SP), int(Reg.GP), int(Reg.TP), int(Reg.A0), int(Reg.A1)}
    | {int(r) for r in (Reg.S0, Reg.S1, Reg.S2, Reg.S3, Reg.S4, Reg.S5,
                        Reg.S6, Reg.S7, Reg.S8, Reg.S9, Reg.S10, Reg.S11)}
)


#: Argument registers assumed read by any callee at a call site.
_CALL_USES: frozenset[int] = frozenset(range(int(Reg.A0), int(Reg.A7) + 1)) | {int(Reg.SP), int(Reg.GP)}

#: Caller-saved registers clobbered (defined) by any call per the psABI.
_CALL_DEFS: frozenset[int] = frozenset(
    {int(Reg.RA), int(Reg.T0), int(Reg.T1), int(Reg.T2), int(Reg.T3),
     int(Reg.T4), int(Reg.T5), int(Reg.T6)}
    | frozenset(range(int(Reg.A0), int(Reg.A7) + 1))
)


def _is_call(instr: Instruction) -> bool:
    """True for direct/indirect calls (link register written)."""
    if instr.mnemonic == "jal" and instr.rd == 1:
        return True
    if instr.mnemonic == "jalr" and instr.rd == 1:
        return True
    return instr.mnemonic == "c.jalr"


def _uses(instr: Instruction) -> frozenset[int]:
    regs = set(instr.regs_read())
    if _is_call(instr):
        regs |= _CALL_USES
    regs.discard(0)
    return frozenset(regs)


def _defs(instr: Instruction) -> frozenset[int]:
    if _is_call(instr):
        return _CALL_DEFS
    return instr.regs_written()


@dataclass
class LivenessResult:
    """Per-address live-before sets plus query helpers."""

    live_before: dict[int, frozenset[int]]
    live_out: dict[int, frozenset[int]]  # per block start

    def dead_before(self, addr: int) -> frozenset[int]:
        """Registers (x1..x31) provably dead just before *addr*.

        Unknown addresses answer the empty set — maximally conservative.
        """
        live = self.live_before.get(addr)
        if live is None:
            return frozenset()
        return ALL_REGS - live

    def is_dead_before(self, addr: int, reg: int) -> bool:
        """True if *reg* is provably dead just before *addr*."""
        return reg in self.dead_before(addr)


class LivenessAnalysis:
    """Run the fixpoint once per CFG; reuse the result for many queries."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg

    def run(self) -> LivenessResult:
        """Iterate block-level liveness to a fixpoint, then expand."""
        blocks = list(self.cfg.blocks.values())
        use: dict[int, frozenset[int]] = {}
        defs: dict[int, frozenset[int]] = {}
        for block in blocks:
            u: set[int] = set()
            d: set[int] = set()
            for instr in block.instructions:
                u |= (_uses(instr) - d)
                d |= _defs(instr)
            use[block.start] = frozenset(u)
            defs[block.start] = frozenset(d)

        live_in: dict[int, frozenset[int]] = {b.start: frozenset() for b in blocks}
        live_out: dict[int, frozenset[int]] = {b.start: frozenset() for b in blocks}

        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                out: set[int] = set()
                for succ in block.successors:
                    if succ == UNKNOWN:
                        out |= ALL_REGS
                    elif succ in live_in:
                        out |= live_in[succ]
                term = block.terminator
                if _is_return(term):
                    out |= ABI_LIVE_AT_RETURN
                elif not block.successors:
                    if term.mnemonic == "ecall":
                        # A trailing ecall with no mapped fall-through is
                        # the program-exit idiom: only syscall args live.
                        out |= {int(Reg.A0), int(Reg.A7)}
                    else:
                        # Fell off the analyzed region: be conservative.
                        out |= ALL_REGS
                new_out = frozenset(out)
                new_in = frozenset(use[block.start] | (new_out - defs[block.start]))
                if new_out != live_out[block.start] or new_in != live_in[block.start]:
                    live_out[block.start] = new_out
                    live_in[block.start] = new_in
                    changed = True

        live_before: dict[int, frozenset[int]] = {}
        for block in blocks:
            live = set(live_out[block.start])
            if _is_return(block.terminator):
                live |= ABI_LIVE_AT_RETURN
            for instr in reversed(block.instructions):
                live -= _defs(instr)
                live |= _uses(instr)
                live_before[instr.addr] = frozenset(live)
        return LivenessResult(live_before, live_out)


def _is_return(instr: Instruction) -> bool:
    """Heuristic: ``jalr x0, 0(ra)`` / ``c.jr ra`` is a function return."""
    if instr.mnemonic == "jalr" and instr.rd == 0 and instr.rs1 == int(Reg.RA):
        return True
    if instr.mnemonic == "c.jr" and instr.rs1 == int(Reg.RA):
        return True
    return False
