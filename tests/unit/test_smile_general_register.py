"""Bit-level checks for the general-register SMILE variant (Fig. 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.smile import (
    SMILE_CAPABLE_REGS,
    SmilePlacementError,
    build_smile,
    next_achievable,
)
from repro.isa.decoding import IllegalEncodingError, decode
from repro.isa.fields import sign_extend
from repro.isa.registers import Reg

#: Usable anchors (sp/gp excluded by the patcher, included here for the
#: encoding property: ANY capable register's parcels must fault).
CAPABLE = sorted(SMILE_CAPABLE_REGS)


class TestCapableSet:
    def test_gp_is_capable(self):
        assert int(Reg.GP) in SMILE_CAPABLE_REGS

    def test_a0_a1_are_capable(self):
        # The paper's Fig. 5 example anchors on a0.
        assert int(Reg.A0) in SMILE_CAPABLE_REGS
        assert int(Reg.A1) in SMILE_CAPABLE_REGS

    def test_ra_t0_not_capable(self):
        assert int(Reg.RA) not in SMILE_CAPABLE_REGS
        assert int(Reg.T0) not in SMILE_CAPABLE_REGS

    def test_incapable_register_rejected(self):
        with pytest.raises(SmilePlacementError):
            build_smile(0x10000, next_achievable(0x10000, 0x300000),
                        compressed=True, reg=int(Reg.T0))


class TestParcelFaultsForAllCapableRegs:
    @pytest.mark.parametrize("reg", CAPABLE)
    def test_p2_p3_fault_deterministically(self, reg):
        addr = 0x10000
        target = next_achievable(addr, 0x800000)
        data = build_smile(addr, target, compressed=True, reg=reg).encode()
        with pytest.raises(IllegalEncodingError):
            decode(data, 2)  # P2: mid-auipc
        with pytest.raises(IllegalEncodingError):
            decode(data, 6)  # P3: mid-jalr

    @pytest.mark.parametrize("reg", CAPABLE)
    def test_trampoline_semantics(self, reg):
        addr = 0x12340
        target = next_achievable(addr, 0x600000)
        data = build_smile(addr, target, compressed=True, reg=reg).encode()
        auipc = decode(data, 0, addr=addr)
        jalr = decode(data, 4)
        assert auipc.rd == reg
        assert jalr.rd == reg and jalr.rs1 == reg
        assert addr + sign_extend(auipc.imm << 12, 32) + jalr.imm == target

    @given(st.sampled_from(CAPABLE),
           st.integers(min_value=0x1_0000, max_value=0x40_0000).map(lambda x: x & ~1))
    @settings(max_examples=40)
    def test_property_over_addresses(self, reg, addr):
        target = next_achievable(addr, addr + 0x200000)
        data = build_smile(addr, target, compressed=True, reg=reg).encode()
        for mid in (2, 6):
            with pytest.raises(IllegalEncodingError):
                decode(data, mid)
