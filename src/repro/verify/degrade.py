"""Static quarantine-and-degrade: re-admit a region on the trap fallback.

When a region exhausts its verification retry budget the pipeline must
still release *something* with an honest ledger.  For smile/smile-dp
regions the answer is the same degradation the runtime
:class:`~repro.verify.rollback.PatchHealer` performs on a live process,
applied statically to the released image:

1. restore ``original_bytes`` over the window and drop the record's
   fault-table entries (and data-pointer register pins);
2. re-trap every extension source the restore resurrects with a freshly
   translated, ``ebreak``-terminated fallback block appended to
   ``.chimera.text`` (sources native to the target need no trap);
3. replace the region's :class:`~repro.verify.records.PatchRecord` with
   the trap records, keeping ``patched_regions`` / ``migration_unsafe``
   aligned.

The caller then verifies the replacement records through a fresh
admission gate — a degraded region re-enters the release only through
the same four checks as everything else, just on the slow encoding.

Trap regions cannot degrade (they *are* the fallback); the pipeline
excludes them instead.
"""

from __future__ import annotations

from repro.core.translate import TranslationContext, TranslationError, Translator
from repro.elf.binary import Binary
from repro.isa.assembler import Assembler
from repro.isa.decoding import IllegalEncodingError, decode
from repro.isa.encoding import encode
from repro.isa.extensions import PROFILES
from repro.isa.instructions import Instruction
from repro.isa.registers import Reg
from repro.verify.records import PatchRecord


class DegradeError(Exception):
    """The region cannot be re-admitted on the trap fallback."""


def degrade_region_to_trap(
    rewritten: Binary, rec: PatchRecord
) -> tuple[PatchRecord, ...]:
    """Degrade one quarantined region in place; returns the replacement
    trap records (possibly empty when every source is target-native).

    Mutates *rewritten* (text bytes, ``.chimera.text``, and the chimera
    metadata tables) only after every fallback block translated — a
    translation failure raises :class:`DegradeError` with the binary
    untouched.
    """
    if rec.kind == "trap":
        raise DegradeError(
            f"region {rec.start:#x} is already the trap-fallback encoding")
    meta = rewritten.metadata.get("chimera")
    if meta is None:
        raise DegradeError(f"{rewritten.name} carries no chimera metadata")
    target = PROFILES[meta["target_profile"]]
    translator = Translator(
        TranslationContext(meta["vregs_base"], meta["gp"]), mode="full")
    ct = rewritten.section(".chimera.text")

    # Translate every non-native source up front: all-or-nothing.
    planned: list[tuple[int, Instruction, str]] = []
    try:
        for saddr, shex in rec.sources:
            src = bytes.fromhex(shex)
            instr = decode(src, 0, addr=saddr)
            if instr.extension in target.extensions:
                continue  # runs natively on the target core: no trap needed
            body, _ = translator.translate(instr)
            planned.append((saddr, instr, f"{body}\nebreak"))
    except (TranslationError, IllegalEncodingError) as exc:
        raise DegradeError(
            f"cannot build trap fallback for region {rec.start:#x}: {exc}"
        ) from exc

    text = rewritten.text
    text.write(rec.start, rec.original_bytes)
    fault_table = meta["fault_table"]
    smile_regs = meta["smile_regs"]
    # A neighbouring site whose resume point landed inside this window had
    # its block exit statically re-routed to fault_table[resume] — the
    # relocated copy of that boundary.  Those redirects must survive the
    # restore: the neighbour's exit jump is baked into its block, and the
    # admission oracle derives the neighbour's sync pc from this entry.
    # The kept redirect lands past the window's translated sources (it is
    # the copy of a boundary the neighbour architecturally reaches), and
    # the neighbour re-verifies through it on re-admission.
    shared_resumes = {
        r.resume for r in meta["patch_records"] if r.start != rec.start}
    for key, _ in rec.fault_entries:
        if key in shared_resumes:
            continue
        fault_table.entries.pop(key, None)
        smile_regs.pop(key, None)

    trap_table = meta["trap_table"]
    new_records: list[PatchRecord] = []
    for saddr, instr, source_text in planned:
        block_addr = (ct.end + 0xF) & ~0xF
        code = bytes(Assembler(base=block_addr).assemble(source_text).code)
        ct.data.extend(b"\x00" * (block_addr - ct.end))
        ct.data.extend(code)
        ebreak_addr = block_addr + len(code) - 4
        resume = saddr + instr.length
        trap_table[saddr] = block_addr
        trap_table[ebreak_addr] = resume
        trap = (encode(Instruction("c.ebreak", length=2))
                if instr.length == 2 else encode(Instruction("ebreak")))
        text.write(saddr, trap)
        new_records.append(PatchRecord(
            start=saddr,
            end=saddr + instr.length,
            kind="trap",
            original_bytes=rec.source_bytes(saddr),
            patched_bytes=bytes(trap[:instr.length]),
            block_addr=block_addr,
            resume=resume,
            smile_reg=int(Reg.GP),
            fault_entries=(),
            trap_entries=((saddr, block_addr), (ebreak_addr, resume)),
            sources=(),
        ))

    records = [r for r in meta["patch_records"] if r.start != rec.start]
    records.extend(new_records)
    meta["patch_records"] = tuple(sorted(records, key=lambda r: r.start))
    meta["patched_regions"] = sorted(
        [(lo, hi, kind) for lo, hi, kind in meta["patched_regions"]
         if not rec.start <= lo < rec.end]
        + [(r.start, r.end, "trap") for r in new_records])
    meta["migration_unsafe"] = sorted(
        [(lo, hi) for lo, hi in meta["migration_unsafe"]
         if not rec.start <= lo < rec.end]
        + [(r.start, r.resume) for r in new_records])
    return tuple(new_records)
