"""Simplified executable format ("SELF") used by the rewriter and loader.

Real Chimera consumes RISC-V ELF binaries.  We reproduce the properties
the paper actually depends on — named sections with permissions, fixed
link-time addresses (control flow coupled to addresses), symbols, and a
``__global_pointer$`` anchored in the data segment — without the ELF
container bytes, which carry no experimental weight.
"""

from repro.elf.binary import Binary, Section, Symbol, Perm
from repro.elf.builder import ProgramBuilder, BuildError
from repro.elf.loader import load_binary

__all__ = [
    "Binary",
    "Section",
    "Symbol",
    "Perm",
    "ProgramBuilder",
    "BuildError",
    "load_binary",
]
