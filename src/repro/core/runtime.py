"""Chimera's runtime fault handling (paper §4.3).

The runtime registers a *priority* fault handler with the simulated
kernel (mirroring the paper's kernel modification: CHBP-generated
signals are checked first, everything else falls back to standard
handling).  It recovers the two deterministic fault shapes SMILE
produces and lazily rewrites unrecognized extension instructions:

* **SIGSEGV, exec access, address in a non-executable data segment** —
  a partially executed SMILE ``jalr`` (P1).  The fault address is the
  return address the jalr wrote into gp, minus 4.  If the fault-handling
  table knows it, restore gp and redirect to the copied instruction.
* **SIGILL at a table key** — a mid-trampoline parcel (P2/P3): redirect.
* **SIGILL, unsupported extension, unknown address** — an instruction
  the static scan missed.  Rewrite it in place at runtime (patch the
  code, extend the tables), flush decode caches, resume.
* **ebreak at a trap-table key** — trap-based trampoline (the fallback
  path and all baseline rewriters): redirect, charging the trap cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.fault_table import FaultTable
from repro.elf.binary import Binary, Perm
from repro.isa.registers import Reg
from repro.sim.cpu import Cpu
from repro.sim.faults import (
    BreakpointTrap,
    IllegalInstructionFault,
    SegmentationFault,
    SimFault,
    UnrecoverableFault,
)
from repro.sim.machine import Kernel, Process
from repro.telemetry import current as telemetry_current

#: Default bound on consecutive zero-progress recoveries before the
#: runtime declares a fault loop and aborts with diagnostics.
DEFAULT_MAX_RECOVERY_DEPTH = 8


@dataclass
class RuntimeStats:
    """Dynamic fault-handling counters (these feed Table 2)."""

    smile_segv_recoveries: int = 0
    smile_sigill_recoveries: int = 0
    runtime_rewrites: int = 0
    trap_redirects: int = 0
    signals_gp_restored: int = 0
    #: Faults the runtime owned (patched-region pc) but could not
    #: recover — corrupted/missing fault-table entries and the like.
    unrecoverable_faults: int = 0
    #: Patched-region fault-table lookups that came back empty.
    fault_table_misses: int = 0
    #: Recovery chains aborted by the recovery-depth guard.
    recovery_loop_aborts: int = 0
    #: Owned faults whose patched region no longer held the recorded
    #: patch bytes (corruption, distinct from a table miss on an
    #: intact trampoline).
    corrupted_patch_faults: int = 0
    #: Self-healing: patches quarantined back to the fallback encoding,
    #: and patches re-verified and re-applied after their backoff.
    patch_rollbacks: int = 0
    patch_readmissions: int = 0

    @property
    def deterministic_faults(self) -> int:
        """Total Chimera correctness-mechanism triggers."""
        return self.smile_segv_recoveries + self.smile_sigill_recoveries + self.runtime_rewrites

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


class ChimeraRuntime:
    """Kernel-side runtime for one rewritten binary."""

    def __init__(
        self,
        rewritten: Binary,
        *,
        rewriter=None,
        original: Optional[Binary] = None,
        max_recovery_depth: int = DEFAULT_MAX_RECOVERY_DEPTH,
        self_heal: bool = False,
        heal_policy=None,
    ):
        meta = rewritten.metadata.get("chimera")
        if meta is None:
            raise ValueError(f"{rewritten.name} was not produced by ChimeraRewriter")
        self.binary = rewritten
        self.fault_table: FaultTable = meta["fault_table"]
        self.trap_table: dict[int, int] = meta["trap_table"]
        if self_heal:
            # Healing mutates the tables per-task; never through the
            # metadata objects other runtimes of this binary share.
            table = FaultTable()
            table.entries.update(self.fault_table.entries)
            self.fault_table = table
            self.trap_table = dict(self.trap_table)
        self.gp_value: int = meta["gp"]
        #: Fig. 5 variant: P1 address -> the general register whose
        #: return-address value identifies the fault (gp otherwise).
        self.smile_regs: dict[int, int] = dict(meta.get("smile_regs", {}))
        #: Original-address ranges the rewriter overwrote; a fault inside
        #: one of these is ours by construction, so failing to recover it
        #: is a structured kill, never a silent fallthrough.
        self.patched_regions: list[tuple[int, int]] = [
            (lo, hi) for lo, hi in meta.get("migration_unsafe", ())
        ]
        self.stats = RuntimeStats()
        #: Recovery-depth guard: a recovered fault that faults again
        #: before retiring a single instruction is a loop (e.g. a
        #: corrupted redirect, or a runtime rewrite that re-faults);
        #: after this many zero-progress recoveries the runtime aborts.
        self.max_recovery_depth = max_recovery_depth
        self._recovery_streak = 0
        self._last_recovery_instret: Optional[int] = None
        self._last_redirect: Optional[int] = None
        #: Optional chaos injector (repro.chaos.injector); None normally.
        self.injector = None
        #: Optional lazy-rewriting support: the rewriter and the original
        #: binary are needed to translate instructions the scan missed.
        self._rewriter = rewriter
        self._original = original
        #: Per-patch provenance (verified patching): golden bytes and
        #: table ownership for every patch, by original address.
        self.patch_records = tuple(meta.get("patch_records", ()))
        #: Self-healing (opt-in): attribute unexpected owned faults to
        #: their patch, quarantine/roll back that one patch, and keep
        #: the task running instead of raising UnrecoverableFault.
        self.healer = None
        if self_heal:
            from repro.verify.rollback import PatchHealer

            self.healer = PatchHealer(self, policy=heal_policy)

    # -- installation -------------------------------------------------------

    def install(self, kernel: Kernel) -> None:
        """Register the priority fault handler and the signal gp hook."""
        kernel.register_fault_handler(self.handle_fault, priority=True)
        kernel.pre_signal_hooks.append(self._signal_gp_restore)

    @staticmethod
    def _record(event: str) -> None:
        """Mirror a runtime event into the active telemetry (if any)."""
        telemetry = telemetry_current()
        if telemetry.enabled:
            telemetry.metrics.inc("runtime.events", kind=event)

    # -- fault handling -------------------------------------------------------

    def handle_fault(self, kernel: Kernel, process: Process, cpu: Cpu, fault: SimFault) -> bool:
        """The priority handler: return True iff the fault was CHBP's.

        Graceful degradation (chaos hardening): a fault that lands in a
        patched region but cannot be recovered, or a recovery chain that
        makes no progress for :attr:`max_recovery_depth` rounds, raises
        a structured :class:`UnrecoverableFault` instead of silently
        declining or looping forever.
        """
        if self.injector is not None:
            self.injector.before_recovery(self, kernel, process, cpu, fault)
        fault_pc = fault.pc if fault.pc is not None else cpu.pc
        looping = (
            self._last_recovery_instret is not None
            and cpu.instret == self._last_recovery_instret
        )
        if looping:
            self._recovery_streak += 1
            if self._recovery_streak >= self.max_recovery_depth:
                if self._try_heal(kernel, process, cpu, fault, fault_pc):
                    return True
                self.stats.recovery_loop_aborts += 1
                self._record("recovery_loop_abort")
                self.stats.unrecoverable_faults += 1
                self._record("unrecoverable_fault")
                raise UnrecoverableFault(
                    f"fault-recovery loop: {self._recovery_streak} consecutive "
                    "recoveries without retiring an instruction",
                    pc=fault_pc,
                    cause=fault,
                    attempts=self._recovery_streak,
                    context=self._fault_context(cpu),
                )
        else:
            self._recovery_streak = 0

        handled = False
        if isinstance(fault, SegmentationFault) and fault.access == "exec":
            handled = self._handle_segv(kernel, process, cpu, fault)
        elif isinstance(fault, IllegalInstructionFault):
            handled = self._handle_sigill(kernel, process, cpu, fault)
        elif isinstance(fault, BreakpointTrap):
            handled = self._handle_trap(kernel, process, cpu, fault)
        if handled:
            self._last_recovery_instret = cpu.instret
            self._last_redirect = cpu.pc
            if self.healer is not None:
                # Opportunistic re-admission: quarantined patches whose
                # backoff expired are re-verified and re-applied here.
                self.healer.maybe_readmit(process, cpu)
            return True
        # Unhandled.  If the fault struck one of our patched regions, or
        # immediately followed one of our own redirects, it is ours by
        # construction: the failure to recover means the fault table or
        # a redirect target is corrupt -> abort with diagnostics.
        # last_pc covers *exec* faults whose pc is useless (a wild jump
        # target) but whose *origin* was a patched instruction — e.g. a
        # SMILE jalr jumping through a clobbered gp.  Only exec faults:
        # other fault kinds (a migration probe's ebreak) can legally
        # follow a patched instruction and belong to other handlers.
        wild_jump = (
            isinstance(fault, SegmentationFault)
            and fault.access == "exec"
            and self._in_patched_region(getattr(cpu, "last_pc", None))
        )
        if looping or self._in_patched_region(fault_pc) or wild_jump:
            if self._try_heal(kernel, process, cpu, fault, fault_pc):
                return True
            if not looping:
                self.stats.fault_table_misses += 1
                self._record("fault_table_miss")
            self.stats.unrecoverable_faults += 1
            self._record("unrecoverable_fault")
            verdict = self._classify_patched_encoding(process, fault_pc)
            if verdict == "corrupted":
                self.stats.corrupted_patch_faults += 1
                self._record("corrupted_patch_fault")
            context = self._fault_context(cpu)
            context["patch_encoding"] = verdict
            raise UnrecoverableFault(
                f"{type(fault).__name__} at {fault_pc:#x} inside a patched "
                f"region could not be recovered (patch encoding: {verdict})",
                pc=fault_pc,
                cause=fault,
                attempts=self._recovery_streak,
                context=context,
            )
        return False

    def _try_heal(self, kernel: Kernel, process: Process, cpu: Cpu,
                  fault: SimFault, fault_pc: Optional[int]) -> bool:
        """Self-heal an owned-but-unrecoverable fault by quarantining
        the patch it belongs to (no-op unless ``self_heal`` is on)."""
        if self.healer is None:
            return False
        if not self.healer.heal(kernel, process, cpu, fault, fault_pc):
            return False
        self._recovery_streak = 0
        self._last_recovery_instret = cpu.instret
        self._last_redirect = cpu.pc
        return True

    def _classify_patched_encoding(self, process: Process,
                                   fault_pc: Optional[int]) -> str:
        """Satellite diagnosis: did the patched region still hold the
        recorded patch bytes when it faulted?  "intact" means the fault
        came from a well-formed SMILE trampoline whose table entry is
        missing or wrong; "corrupted" means the encoding itself was
        damaged; "unknown" when no record covers the pc."""
        from repro.verify.records import record_for

        rec = record_for(self.patch_records, fault_pc)
        if rec is None:
            return "unknown"
        if self.healer is not None and self.healer.journal.is_rolled_back(rec.start):
            return "quarantined"
        live = bytes(process.space.read(rec.start, len(rec.patched_bytes)))
        return "intact" if live == rec.patched_bytes else "corrupted"

    def _patch_intact(self, process: Process, addr: Optional[int]) -> bool:
        """False iff *addr* falls in a patch record whose live bytes no
        longer match the recorded patch (and it is not a deliberate
        rollback).  Redirect paths consult this before trusting a table
        entry: a corrupted trampoline that still happens to produce a
        plausible-looking fault must not be 'recovered' silently."""
        from repro.verify.records import record_for

        rec = record_for(self.patch_records, addr)
        if rec is None:
            return True
        if self.healer is not None and self.healer.journal.is_rolled_back(rec.start):
            return True
        live = bytes(process.space.read(rec.start, len(rec.patched_bytes)))
        return live == rec.patched_bytes

    def _in_patched_region(self, pc: Optional[int]) -> bool:
        if pc is None:
            return False
        return any(lo <= pc < hi for lo, hi in self.patched_regions)

    def _fault_context(self, cpu: Cpu) -> dict:
        """Diagnostic snapshot attached to every UnrecoverableFault."""
        return {
            "fault_table_entries": len(self.fault_table.entries)
            if hasattr(self.fault_table, "entries") else "corrupt",
            "trap_table_entries": len(self.trap_table),
            "last_redirect": hex(self._last_redirect) if self._last_redirect is not None else None,
            "gp": hex(cpu.get_reg(Reg.GP)),
            "cpu_pc": hex(cpu.pc),
            "instret": cpu.instret,
            "max_recovery_depth": self.max_recovery_depth,
        }

    def _handle_segv(self, kernel: Kernel, process: Process, cpu: Cpu, fault: SegmentationFault) -> bool:
        # Ours are exec faults into non-executable (or unmapped) memory;
        # the fault-table lookup below is the real discriminator.
        seg = process.space.segment_at(fault.addr)
        if seg is not None and Perm.X in seg.perm:
            return False
        # The jalr stored its return address (trampoline + 8) in gp.
        fault_addr = (cpu.get_reg(Reg.GP) - 4) & 0xFFFFFFFFFFFFFFFF
        if not self._patch_intact(process, fault_addr):
            return False  # corrupted trampoline: never a silent recovery
        redirect = self.fault_table.lookup(fault_addr)
        if redirect is not None:
            cpu.set_reg(Reg.GP, self.gp_value)  # undo the SMILE clobber
            cpu.pc = redirect
            cpu.cycles += cpu.cost.fault_handling_cost
            cpu.bump("chimera_faults")
            self.stats.smile_segv_recoveries += 1
            self._record("smile_segv_recovery")
            return True
        # Fig. 5 variant: the return address sits in a general register;
        # probe the armed trampolines' registers (rare path, tiny table).
        for p1_addr, reg in self.smile_regs.items():
            if (cpu.get_reg(reg) - 4) & 0xFFFFFFFFFFFFFFFF == p1_addr:
                if not self._patch_intact(process, p1_addr):
                    continue
                redirect = self.fault_table.lookup(p1_addr)
                if redirect is None:
                    continue
                # No restore needed: the block's reconstructed lui
                # redefines the register immediately.
                cpu.pc = redirect
                cpu.cycles += cpu.cost.fault_handling_cost
                cpu.bump("chimera_faults")
                self.stats.smile_segv_recoveries += 1
                self._record("smile_segv_recovery")
                return True
        return False

    def _handle_sigill(self, kernel: Kernel, process: Process, cpu: Cpu, fault: IllegalInstructionFault) -> bool:
        if not self._patch_intact(process, cpu.pc):
            # A SIGILL from damaged patch bytes is corruption, not a
            # SMILE parcel; declining routes it to healing/diagnosis.
            return False
        redirect = self.fault_table.lookup(cpu.pc)
        if redirect is not None:
            cpu.set_reg(Reg.GP, self.gp_value)
            cpu.pc = redirect
            cpu.cycles += cpu.cost.fault_handling_cost
            cpu.bump("chimera_faults")
            self.stats.smile_sigill_recoveries += 1
            self._record("smile_sigill_recovery")
            return True
        if fault.kind == "unsupported-extension":
            return self._rewrite_at_runtime(process, cpu)
        return False

    def _handle_trap(self, kernel: Kernel, process: Process, cpu: Cpu, fault: BreakpointTrap) -> bool:
        target = self.trap_table.get(cpu.pc)
        if target is None:
            return False
        if not self._patch_intact(process, cpu.pc):
            return False
        cpu.pc = target
        cpu.cycles += cpu.cost.trap_cost
        cpu.bump("traps")
        self.stats.trap_redirects += 1
        self._record("trap_redirect")
        return True

    # -- lazy rewriting -------------------------------------------------------

    def _rewrite_at_runtime(self, process: Process, cpu: Cpu) -> bool:
        """Rewrite an unrecognized source instruction the scan missed.

        Re-runs the patcher with the faulting pc as an extra scan entry;
        splices the new trampolines/blocks into the live address space
        and merges the new tables.  Returns False when the instruction
        is genuinely untranslatable (the fault is not ours).
        """
        if self._rewriter is None or self._original is None:
            return False
        try:
            meta = self.binary.metadata["chimera"]
            profile = _profile_by_name(meta["target_profile"])
        except KeyError as exc:
            # Structured degradation: corrupted rewriting metadata must
            # never escape as a bare KeyError traceback.
            self.stats.unrecoverable_faults += 1
            self._record("unrecoverable_fault")
            raise UnrecoverableFault(
                f"runtime rewrite at {cpu.pc:#x}: rewriting metadata is corrupt",
                pc=cpu.pc,
                cause=exc,
                context=self._fault_context(cpu),
            ) from exc
        result = self._rewriter.rewrite(
            self._original,
            profile,
            scan_entries=[cpu.pc],
        )
        new = result.binary
        new_meta = new.metadata["chimera"]
        # The re-scan must actually have patched the faulting site --
        # otherwise the instruction is untranslatable and not ours.
        width = min(4, new.text.end - cpu.pc)
        if new.text.read(cpu.pc, width) == bytes(process.space.read(cpu.pc, width)):
            return False
        # Splice: copy the patched text and the chimera sections into the
        # live space (kernel privilege: ignores W permission on text).
        text = new.text
        process.space.patch_code(text.addr, bytes(text.data))
        self._sync_section(process, new, ".chimera.text", Perm.RX)
        self._sync_section(process, new, ".chimera.vregs", Perm.RW)
        self.fault_table.entries.update(new_meta["fault_table"].entries)
        self.trap_table.update(new_meta["trap_table"])
        for lo, hi in new_meta.get("migration_unsafe", ()):
            if (lo, hi) not in self.patched_regions:
                self.patched_regions.append((lo, hi))
        # Adopt the re-scan's provenance: same-start records are
        # superseded (the splice replaced their blocks and tables too).
        merged = {rec.start: rec for rec in self.patch_records}
        for rec in new_meta.get("patch_records", ()):
            merged[rec.start] = rec
        self.patch_records = tuple(sorted(merged.values(), key=lambda r: r.start))
        cpu.flush_decode_cache()
        if self.healer is not None:
            # The full-text splice just silently un-quarantined every
            # rolled-back patch; re-impose the quarantines.
            self.healer.reapply_after_splice(process, cpu)
        if self.injector is not None:
            self.injector.after_rewrite(self, process, cpu)
        cpu.cycles += cpu.cost.fault_handling_cost * 4  # rewrite is heavier
        cpu.bump("runtime_rewrites")
        self.stats.runtime_rewrites += 1
        self._record("runtime_rewrite")
        return True

    def _sync_section(self, process: Process, new: Binary, name: str, perm: Perm) -> None:
        if not new.has_section(name):
            return
        section = new.section(name)
        seg = process.space.segment_at(section.addr)
        if seg is not None and seg.size == section.size:
            seg.data[:] = section.data
            seg.version += 1
            return
        if seg is not None:
            process.space.segments.remove(seg)
        process.space.map(name, section.addr, bytearray(section.data), perm)

    # -- checkpointing --------------------------------------------------------

    def export_state(self) -> dict:
        """Mutable runtime state for a checkpoint.

        Lazy rewriting extends the fault/trap tables and patched regions
        while the task runs; a task restored from a checkpoint must see
        the extended view or re-fault on already-rewritten sites.
        """
        state = {
            "fault_table": sorted(self.fault_table.entries.items()),
            "trap_table": sorted(self.trap_table.items()),
            "smile_regs": sorted(self.smile_regs.items()),
            "patched_regions": sorted(tuple(r) for r in self.patched_regions),
        }
        if self.healer is not None:
            state["heal_journal"] = self.healer.journal.export()
        return state

    def import_state(self, state: dict) -> None:
        """Merge checkpointed runtime state back in (see export_state)."""
        self.fault_table.entries.update(dict(state.get("fault_table", ())))
        self.trap_table.update(dict(state.get("trap_table", ())))
        self.smile_regs.update(dict(state.get("smile_regs", ())))
        for region in state.get("patched_regions", ()):
            region = tuple(region)
            if region not in self.patched_regions:
                self.patched_regions.append(region)
        journal = state.get("heal_journal")
        if journal:
            if self.healer is None:
                from repro.verify.rollback import PatchHealer

                # Detach from the shared metadata tables before healing
                # starts mutating them (same copy __init__ makes when
                # constructed with self_heal=True).
                table = FaultTable()
                table.entries.update(self.fault_table.entries)
                self.fault_table = table
                self.trap_table = dict(self.trap_table)
                self.healer = PatchHealer(self)
            self.healer.journal.import_state(journal)
            # A fresh runtime starts with every patch admitted; imported
            # quarantines must re-align the tables (region bytes and
            # heal segments arrive via the checkpoint segment images).
            self.healer.apply_imported_state()

    # -- signals -------------------------------------------------------------

    def _signal_gp_restore(self, kernel: Kernel, process: Process, cpu: Cpu, signum: int) -> None:
        """Fig. 10: if a signal lands while gp is temporarily clobbered by a
        SMILE trampoline/target block, the user handler must still observe
        the ABI gp value."""
        if cpu.get_reg(Reg.GP) != self.gp_value:
            cpu.set_reg(Reg.GP, self.gp_value)
            self.stats.signals_gp_restored += 1
            self._record("signal_gp_restored")


def _profile_by_name(name: str):
    from repro.isa.extensions import PROFILES

    return PROFILES[name]
