"""Fault-isolated process pool for per-region verification.

The per-region admission checks (and above all the differential oracle)
are pure-Python, CPU-bound work, so a thread pool never scales past one
core.  :class:`FaultIsolatedPool` dispatches picklable
:class:`RegionWorkItem` tasks to worker *processes* and treats every
worker failure as a structured, attributable event:

* a worker that **dies** mid-region (segfault-equivalent raise deep in
  the oracle, OOM-style kill) is attributed to the exact region it was
  verifying and respawned — ``worker-crash``;
* a worker that **hangs** past the wall-clock ``region_timeout`` is
  killed by the watchdog and respawned — ``worker-hang``;
* an exception the worker catches itself comes back as a structured
  ``verify-error`` message, never a raw traceback.

Failed regions are re-dispatched under a
:class:`~repro.resilience.policy.RetryPolicy` (exponential backoff,
attempt budget); a region that exhausts its budget is *quarantined* and
reported to the caller, which degrades it (trap fallback or exclusion)
instead of aborting the release.

Determinism: each worker builds an identical
:class:`~repro.verify.admission.AdmissionGate` from the pickled payload
— the resolved seed rides in the payload *and* in every work item, so a
mid-run ``REPRO_FUZZ_SEED`` change can never make process workers drift
from a serial run.  Verdicts depend only on ``(payload, region index)``,
so the results are byte-identical no matter which worker or attempt
produced them.

This module must not import :mod:`repro.verify.admission` at module
level (the gate imports this pool); workers import it lazily.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from multiprocessing import connection as mp_connection
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.resilience.failures import (
    RESOLVED_QUARANTINED,
    WORKER_CRASH,
    WORKER_HANG,
    VERIFY_ERROR,
    DeadlineExceededError,
    RegionFault,
)
from repro.resilience.policy import PIPELINE_RETRY_POLICY, RetryPolicy

#: Parent-loop poll tick (seconds): outbox waits and watchdog checks.
_TICK = 0.05
#: Grace after terminate() before escalating to kill().
_KILL_GRACE = 1.0
#: Consecutive pre-ready worker deaths (with no work dispatched) before
#: the pool declares itself broken and the caller falls back in-process.
_MAX_STILLBIRTHS = 3


class PoolBrokenError(RuntimeError):
    """The pool could not be brought up (workers die before ready)."""


class WorkerSlotArbiter:
    """Fair division of one machine-wide worker budget across live jobs.

    The batch service (`python -m repro serve`) runs many
    ``rewrite_and_verify`` jobs concurrently, each of which would
    otherwise fork its own ``jobs``-sized pool and oversubscribe the
    box.  Every job registers here instead, and each job's
    :class:`FaultIsolatedPool` asks for its **allowance** before
    (re)spawning workers: with ``J`` live jobs on a ``total``-slot
    budget a job may run up to ``max(1, total // J)`` workers.  Pools
    re-consult the arbiter every scheduling tick, so when a job
    finishes, the survivors grow into the freed slots, and when new
    jobs arrive, idle workers are retired down to the fair share —
    the whole machine stays saturated without ever stacking ``J *
    jobs`` processes.

    Thread-safe: jobs register/ask from concurrent driver threads.
    """

    def __init__(self, total: int):
        self.total = max(1, int(total))
        self._lock = threading.Lock()
        self._active: set = set()

    def register(self, job_id) -> None:
        with self._lock:
            self._active.add(job_id)

    def unregister(self, job_id) -> None:
        with self._lock:
            self._active.discard(job_id)

    @property
    def active_jobs(self) -> int:
        with self._lock:
            return len(self._active)

    def allowance(self, want: Optional[int] = None) -> int:
        """Worker slots one job may hold right now (>= 1 always, so a
        wave of tiny jobs can never starve anyone to zero)."""
        with self._lock:
            share = max(1, self.total // max(1, len(self._active)))
        return share if want is None else max(1, min(want, share))


@dataclass(frozen=True)
class RegionWorkItem:
    """One picklable unit of verification work.

    The resolved trial seed is hoisted into the item so a worker can
    cross-check it against its gate — process workers must never
    re-derive the seed from the environment mid-run.
    """

    index: int
    start: int
    end: int
    kind: str
    seed: int
    attempt: int = 1

    def retried(self) -> "RegionWorkItem":
        return replace(self, attempt=self.attempt + 1)


@dataclass
class RegionOutcome:
    """What the pool concluded about one region."""

    index: int
    #: ``RegionVerdict.as_dict()`` payload; None when quarantined.
    verdict: Optional[dict] = None
    oracle_ran: bool = False
    faults: list[RegionFault] = field(default_factory=list)

    @property
    def quarantined(self) -> bool:
        return self.verdict is None


@dataclass
class PoolPayload:
    """Everything a worker needs to rebuild the gate, pickled once.

    ``gate_config`` carries the *resolved* seed (an int, never None):
    workers must not consult ``REPRO_FUZZ_SEED`` — the parent resolved
    it exactly once before fan-out.
    """

    original: object
    rewritten: object
    gate_config: dict
    liveness: object = None
    injector: object = None


def _worker_main(worker_id: int, inbox, outbox, payload_bytes: bytes) -> None:
    """Worker entry: build the gate once, then verify region by region.

    ``outbox`` is this worker's *private* pipe end — results never cross
    a lock shared with other workers, so an OOM-style kill mid-message
    can corrupt only this worker's own channel (see ``_drain``).
    """
    try:
        payload: PoolPayload = pickle.loads(payload_bytes)
        from repro.verify.admission import AdmissionGate

        cfg = payload.gate_config
        gate = AdmissionGate(
            payload.original, payload.rewritten,
            seed=cfg["seed"],
            oracle_trials=cfg["oracle_trials"],
            oracle_max_steps=cfg["oracle_max_steps"],
            max_oracle_regions=cfg["max_oracle_regions"],
            jobs=1, executor="serial",
            liveness=payload.liveness,
            injector=payload.injector,
        )
    except BaseException as exc:  # noqa: BLE001 - must surface, not die raw
        outbox.send(("init-error", worker_id, None,
                     f"{type(exc).__name__}: {exc}"))
        return
    outbox.send(("ready", worker_id, None, None))
    while True:
        item = inbox.get()
        if item is None:
            return
        try:
            if item.seed != gate.seed:
                raise RuntimeError(
                    f"seed drift: work item carries {item.seed}, worker gate "
                    f"resolved {gate.seed}")
            verdict, oracle_ran = gate.verify_region_once(
                item.index, attempt=item.attempt)
            outbox.send(("verdict", worker_id, item.index,
                         (verdict.as_dict(), oracle_ran)))
        except Exception as exc:  # noqa: BLE001 - structured, not raw
            outbox.send(("error", worker_id, item.index,
                         f"{type(exc).__name__}: {exc}"))


class _Worker:
    """Parent-side handle for one worker process.

    Each worker reports back over its **own** one-way pipe rather than a
    queue shared by the whole pool: a shared ``multiprocessing.Queue``
    has one writer lock, and a worker SIGKILLed while its feeder thread
    holds it leaves the semaphore acquired forever — every later worker
    (including freshly spawned replacements) then blocks trying to send
    ``ready`` and the pool spins without ever dispatching again.  With
    private pipes a dying worker can only ever corrupt its own channel.
    """

    def __init__(self, ctx, worker_id: int, payload_bytes: bytes):
        self.id = worker_id
        self.inbox = ctx.Queue()
        self.conn, child_conn = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.inbox, child_conn, payload_bytes),
            daemon=True,
        )
        self.process.start()
        # Drop the parent's copy of the send end immediately: EOF on
        # `conn` then tracks the worker's lifetime, and workers forked
        # later cannot inherit this worker's send end.
        child_conn.close()
        self.item: Optional[RegionWorkItem] = None
        self.deadline: Optional[float] = None
        self.ready = False
        self.dispatched = 0

    def dispatch(self, item: RegionWorkItem, timeout: Optional[float]) -> None:
        self.item = item
        self.deadline = (time.monotonic() + timeout) if timeout else None
        self.dispatched += 1
        self.inbox.put(item)

    def settle(self) -> None:
        self.item = None
        self.deadline = None

    def stop(self) -> None:
        """Best-effort shutdown: sentinel, short join, then kill."""
        try:
            self.inbox.put(None)
        except (ValueError, OSError):  # queue already closed
            pass
        self.process.join(timeout=_KILL_GRACE)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=_KILL_GRACE)
            if self.process.is_alive():
                self.process.kill()
                self.process.join()
        self.inbox.close()
        self.inbox.cancel_join_thread()
        self.close_conn()

    def kill(self) -> None:
        """Hard-kill (watchdog path): no sentinel, no grace."""
        self.process.terminate()
        self.process.join(timeout=_KILL_GRACE)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
        self.inbox.close()
        self.inbox.cancel_join_thread()
        self.close_conn()

    def close_conn(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class FaultIsolatedPool:
    """Crash-/hang-tolerant process pool over region work items."""

    def __init__(
        self,
        payload: PoolPayload,
        jobs: int,
        *,
        region_timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        telemetry=None,
        labels: Optional[dict] = None,
        slots: Optional[WorkerSlotArbiter] = None,
        job_id=None,
        deadline: Optional[float] = None,
    ):
        self.payload_bytes = pickle.dumps(payload)
        self.jobs = max(1, jobs)
        self.region_timeout = region_timeout
        #: Absolute ``time.monotonic()`` instant the run must not
        #: outlive; checked each scheduling tick.  Expiry raises
        #: :class:`~repro.resilience.failures.DeadlineExceededError`
        #: *after* already-settled regions reached ``on_complete`` (and
        #: through it the run journal), so an expired job resumes.
        self.deadline = deadline
        self.policy = retry_policy or PIPELINE_RETRY_POLICY
        self.telemetry = telemetry
        self.labels = labels or {}
        #: Optional machine-wide slot arbiter (the serve path): the pool
        #: grows and shrinks to its fair share instead of holding
        #: ``jobs`` workers unconditionally.
        self.slots = slots
        self.job_id = job_id if job_id is not None else id(self)
        try:
            self.ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self.ctx = multiprocessing.get_context("spawn")

    def _inc(self, name: str, **extra) -> None:
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.metrics.inc(name, **self.labels, **extra)

    def run(
        self,
        items: list[RegionWorkItem],
        on_complete: Optional[Callable[[RegionOutcome], None]] = None,
    ) -> list[RegionOutcome]:
        """Verify every item; returns outcomes in submission order.

        ``on_complete`` fires (on the caller's thread) the moment each
        region settles — verdicts reach the run journal before a crash
        of the *driver* can lose them.
        """
        outcomes: dict[int, RegionOutcome] = {}
        faults: dict[int, list[RegionFault]] = {item.index: [] for item in items}
        pending: deque[RegionWorkItem] = deque(items)
        delayed: list[tuple[float, RegionWorkItem]] = []
        workers: dict[int, _Worker] = {}
        next_id = 0
        #: Consecutive pre-ready deaths; any ready handshake resets it.
        state = {"stillbirths": 0}
        total = len(items)

        def spawn() -> _Worker:
            nonlocal next_id
            worker = _Worker(self.ctx, next_id, self.payload_bytes)
            workers[worker.id] = worker
            next_id += 1
            return worker

        def settle(idx: int, verdict: Optional[dict], oracle_ran: bool) -> None:
            outcome = RegionOutcome(idx, verdict, oracle_ran, faults[idx])
            outcomes[idx] = outcome
            if on_complete is not None:
                on_complete(outcome)

        def fail(worker: Optional[_Worker], item: RegionWorkItem,
                 kind: str, detail: str) -> None:
            fault = RegionFault(
                start=item.start, end=item.end, region_kind=item.kind,
                fault=kind, attempt=item.attempt, detail=detail,
                worker=worker.id if worker is not None else None)
            faults[item.index].append(fault)
            if self.policy.exhausted(item.attempt + 1):
                fault.resolution = RESOLVED_QUARANTINED
                self._inc("pipeline.regions_quarantined")
                settle(item.index, None, False)
            else:
                self._inc("pipeline.region_retries")
                ready_at = (time.monotonic()
                            + self.policy.backoff_seconds(item.attempt))
                delayed.append((ready_at, item.retried()))

        if self.slots is not None:
            self.slots.register(self.job_id)
        for _ in range(min(self._allowance(), total)):
            spawn()
        try:
            while len(outcomes) < total:
                now = time.monotonic()
                if self.deadline is not None and now > self.deadline:
                    raise DeadlineExceededError(
                        f"job deadline expired with "
                        f"{total - len(outcomes)} region(s) unsettled")
                for ready_at, item in list(delayed):
                    if ready_at <= now:
                        delayed.remove((ready_at, item))
                        pending.append(item)
                self._rebalance(workers, spawn, pending)
                for worker in workers.values():
                    # Dispatch only after the ready handshake: a worker
                    # holding an item is then *by construction* ready, so
                    # a death with an item is always a real region crash
                    # and a pre-ready death is always a stillbirth.
                    if worker.ready and worker.item is None and pending:
                        worker.dispatch(pending.popleft(), self.region_timeout)
                self._drain(workers, outcomes, settle, fail, state)
                self._reap(workers, spawn, fail, state, pending, delayed,
                           outcomes, settle)
                if state["stillbirths"] >= _MAX_STILLBIRTHS:
                    raise PoolBrokenError(
                        f"{state['stillbirths']} workers died before becoming "
                        "ready; payload or pool setup is broken")
        finally:
            if self.slots is not None:
                self.slots.unregister(self.job_id)
            for worker in list(workers.values()):
                worker.stop()
        return [outcomes[item.index] for item in items]

    # -- parent loop helpers ------------------------------------------------

    def _allowance(self) -> int:
        """How many workers this pool may hold right now."""
        if self.slots is None:
            return self.jobs
        return self.slots.allowance(self.jobs)

    def _rebalance(self, workers, spawn, pending) -> None:
        """Grow into freed arbiter slots; retire idle workers past the
        fair share.  A worker holding an item is never retired — shrink
        is lazy, so fairness converges at region granularity."""
        if self.slots is None:
            return
        target = self._allowance()
        while len(workers) < target and pending:
            spawn()
        if len(workers) > target:
            for worker in list(workers.values()):
                if len(workers) <= target:
                    break
                if worker.ready and worker.item is None:
                    del workers[worker.id]
                    worker.stop()
                    self._inc("pipeline.workers_retired")

    def _drain(self, workers, outcomes, settle, fail, state) -> None:
        """Pull every delivered message, waiting up to one tick for the
        first.  Each worker is read over its private pipe; a channel
        torn mid-message (worker killed mid-``send``) is simply dropped
        here — ``_reap`` attributes the death itself."""
        conns = {w.conn: w for w in workers.values()}
        if not conns:
            time.sleep(_TICK)
            return
        for conn in mp_connection.wait(list(conns), timeout=_TICK):
            self._drain_conn(conns[conn], workers, outcomes, settle, fail,
                             state)

    def _drain_conn(self, worker, workers, outcomes, settle, fail,
                    state) -> None:
        """Deliver every complete message currently in one worker's pipe."""
        conn = worker.conn
        while True:
            try:
                if not conn.poll():
                    return
                message = conn.recv()
            except (EOFError, OSError):
                return  # torn channel; the death is _reap's to attribute
            kind, worker_id, idx, body = message
            sender = workers.get(worker_id)
            if kind == "ready":
                state["stillbirths"] = 0
                if sender is not None:
                    sender.ready = True
                continue
            if kind == "init-error":
                raise PoolBrokenError(
                    f"worker {worker_id} failed to start: {body}")
            if idx is None or idx in outcomes:
                continue  # stale message from a worker the watchdog retired
            item = worker.item if (worker.item is not None
                                   and worker.item.index == idx) else None
            if item is not None:
                worker.settle()
            if kind == "verdict":
                verdict, oracle_ran = body
                settle(idx, verdict, oracle_ran)
            elif kind == "error" and item is not None:
                self._inc("pipeline.verify_errors")
                fail(worker, item, VERIFY_ERROR, body)

    def _reap(self, workers, spawn, fail, state, pending, delayed,
              outcomes, settle) -> None:
        """Crash and hang detection; respawns replacements."""
        now = time.monotonic()
        for worker in list(workers.values()):
            if not worker.process.is_alive():
                # Deliver any last words first: a worker that sent its
                # verdict and then died settled the region, so its death
                # is an idle death, not a region crash.
                self._drain_conn(worker, workers, outcomes, settle, fail,
                                 state)
                del workers[worker.id]
                victim = worker.item
                exitcode = worker.process.exitcode
                worker.inbox.close()
                worker.inbox.cancel_join_thread()
                worker.close_conn()
                if victim is not None:
                    self._inc("pipeline.worker_crashes")
                    fail(worker, victim, WORKER_CRASH,
                         f"worker process died (exit code {exitcode})")
                elif not worker.ready:
                    state["stillbirths"] += 1
                if pending or delayed or any(w.item for w in workers.values()) \
                        or victim is not None:
                    spawn()
            elif (worker.deadline is not None and now > worker.deadline
                    and worker.item is not None):
                # A verdict racing the watchdog wins: drain before
                # condemning, and spare the worker if the region settled.
                self._drain_conn(worker, workers, outcomes, settle, fail,
                                 state)
                if worker.item is None:
                    continue
                victim = worker.item
                del workers[worker.id]
                worker.kill()
                self._inc("pipeline.worker_hangs")
                fail(worker, victim, WORKER_HANG,
                     f"watchdog killed worker after {self.region_timeout:.1f}s")
                spawn()
