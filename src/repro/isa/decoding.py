"""Decoder: machine bytes -> ``Instruction`` IR.

Besides decoding the implemented subset, this module is the reproduction
of the *fault surface* the paper's SMILE trampoline is built on
(§3.3, Fig. 7).  Two classes of encodings must raise deterministic
illegal-instruction conditions:

* **reserved long-encoding prefix** — any parcel whose low five bits are
  ``11111`` announces a >=48-bit instruction; no such extension exists,
  so real cores fault.  SMILE pins bits 16–20 of its ``auipc`` to
  ``11111`` so a mid-trampoline jump (P2) lands on this prefix.
* **reserved compressed encodings** — e.g. the all-zero parcel, or
  ``c.addiw`` with ``rd=x0``.  SMILE chooses the ``jalr`` immediate so
  the parcel at its bit 16 (P3) decodes to one of these.

``decode`` raises :class:`IllegalEncodingError` (with a ``kind``) for
all of these, and the simulated CPU converts that into a SIGILL.
"""

from __future__ import annotations

from repro.isa import opcodes as op
from repro.isa.encoding import _BRANCH_TABLE, _LOAD_TABLE, _OP32_TABLE, _OP_TABLE, _OPIMM_TABLE, _STORE_TABLE
from repro.isa.extensions import Extension
from repro.isa.fields import bit, bits, sign_extend, u16, u32
from repro.isa.instructions import Instruction
from repro.isa.registers import rvc_decode_reg


class IllegalEncodingError(ValueError):
    """The bytes do not decode to any implemented/legal instruction.

    ``kind`` distinguishes the architectural reason:

    * ``"long-prefix"`` — reserved >=48-bit length prefix (low5 = 11111);
    * ``"reserved-compressed"`` — a reserved RVC encoding;
    * ``"unknown"`` — an encoding outside the implemented subset (on a
      real core this may be a legal instruction of an extension we do
      not model; the scanner treats it as unrecognized).
    * ``"truncated"`` — fewer bytes available than the encoding needs.
    """

    def __init__(self, message: str, kind: str = "unknown"):
        super().__init__(message)
        self.kind = kind


def instruction_length(first_parcel: int) -> int:
    """Return the byte length implied by the low bits of a 16-bit parcel.

    Raises :class:`IllegalEncodingError` for the reserved >=48-bit prefix.
    """
    if first_parcel & 0b11 != 0b11:
        return 2
    if first_parcel & 0b11111 == 0b11111:
        raise IllegalEncodingError(
            f"reserved long-encoding prefix in parcel {first_parcel:#06x}",
            kind="long-prefix",
        )
    return 4


# -- inverse tables built from the encoder's forward tables ----------------

_OP_INV = {v: k for k, v in _OP_TABLE.items()}
_OP32_INV = {v: k for k, v in _OP32_TABLE.items()}
_OPIMM_INV = {v: k for k, v in _OPIMM_TABLE.items()}
_LOAD_INV = {v: k for k, v in _LOAD_TABLE.items()}
_STORE_INV = {v: k for k, v in _STORE_TABLE.items()}
_BRANCH_INV = {v: k for k, v in _BRANCH_TABLE.items()}

_VARITH_INV = {
    (op.V_ADD, op.OPIVV): "vadd.vv",
    (op.V_ADD, op.OPIVX): "vadd.vx",
    (op.V_ADD, op.OPIVI): "vadd.vi",
    (op.V_SUB, op.OPIVV): "vsub.vv",
    (op.V_SUB, op.OPIVX): "vsub.vx",
    (op.V_MIN, op.OPIVV): "vmin.vv",
    (op.V_MINU, op.OPIVV): "vminu.vv",
    (op.V_MAX, op.OPIVV): "vmax.vv",
    (op.V_MAXU, op.OPIVV): "vmaxu.vv",
    (op.V_AND, op.OPIVV): "vand.vv",
    (op.V_OR, op.OPIVV): "vor.vv",
    (op.V_XOR, op.OPIVV): "vxor.vv",
    (op.V_SLL, op.OPIVV): "vsll.vv",
    (op.V_SLL, op.OPIVX): "vsll.vx",
    (op.V_SRL, op.OPIVV): "vsrl.vv",
    (op.V_SRL, op.OPIVX): "vsrl.vx",
    (op.V_SRA, op.OPIVV): "vsra.vv",
    (op.V_SRA, op.OPIVX): "vsra.vx",
    (op.V_MUL, op.OPMVV): "vmul.vv",
    (op.V_MUL, op.OPMVX): "vmul.vx",
    (op.V_MACC, op.OPMVV): "vmacc.vv",
    (op.V_MV, op.OPIVX): "vmv.v.x",
    (op.V_MV, op.OPIVI): "vmv.v.i",
    (op.V_WXUNARY, op.OPMVV): "vmv.x.s",
    (op.V_ADD, op.OPMVV): "vredsum.vs",
}

_VWIDTH_INV = {op.VWIDTH_32: "32", op.VWIDTH_64: "64"}

_MULDIV_MNEMONICS = frozenset(
    {"mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
     "mulw", "divw", "divuw", "remw", "remuw"}
)
_ZBA_MNEMONICS = frozenset({"sh1add", "sh2add", "sh3add"})


def _ext_for(mnemonic: str) -> Extension:
    if mnemonic in _MULDIV_MNEMONICS:
        return Extension.M
    if mnemonic in _ZBA_MNEMONICS:
        return Extension.ZBA
    return Extension.I


def _decode32(word: int) -> Instruction:
    """Decode a 32-bit instruction word."""
    opcode = word & 0x7F
    rd = bits(word, 11, 7)
    funct3 = bits(word, 14, 12)
    rs1 = bits(word, 19, 15)
    rs2 = bits(word, 24, 20)
    funct7 = bits(word, 31, 25)

    if opcode == op.LUI:
        return Instruction("lui", rd=rd, imm=bits(word, 31, 12), encoding=word)
    if opcode == op.AUIPC:
        return Instruction("auipc", rd=rd, imm=bits(word, 31, 12), encoding=word)
    if opcode == op.JAL:
        imm = (
            (bit(word, 31) << 20) | (bits(word, 19, 12) << 12)
            | (bit(word, 20) << 11) | (bits(word, 30, 21) << 1)
        )
        return Instruction("jal", rd=rd, imm=sign_extend(imm, 21), encoding=word)
    if opcode == op.JALR and funct3 == 0:
        return Instruction("jalr", rd=rd, rs1=rs1, imm=sign_extend(bits(word, 31, 20), 12), encoding=word)
    if opcode == op.BRANCH:
        if funct3 not in _BRANCH_INV:
            raise IllegalEncodingError(f"bad branch funct3 {funct3:#b}")
        imm = (
            (bit(word, 31) << 12) | (bit(word, 7) << 11)
            | (bits(word, 30, 25) << 5) | (bits(word, 11, 8) << 1)
        )
        return Instruction(_BRANCH_INV[funct3], rs1=rs1, rs2=rs2, imm=sign_extend(imm, 13), encoding=word)
    if opcode == op.LOAD:
        if funct3 not in _LOAD_INV:
            raise IllegalEncodingError(f"bad load funct3 {funct3:#b}")
        return Instruction(_LOAD_INV[funct3], rd=rd, rs1=rs1, imm=sign_extend(bits(word, 31, 20), 12), encoding=word)
    if opcode == op.STORE:
        if funct3 not in _STORE_INV:
            raise IllegalEncodingError(f"bad store funct3 {funct3:#b}")
        imm = (bits(word, 31, 25) << 5) | bits(word, 11, 7)
        return Instruction(_STORE_INV[funct3], rs1=rs1, rs2=rs2, imm=sign_extend(imm, 12), encoding=word)
    if opcode == op.OP_IMM:
        if funct3 == op.F3_SLL:
            if bits(word, 31, 26) != 0:
                raise IllegalEncodingError("bad slli funct6")
            return Instruction("slli", rd=rd, rs1=rs1, imm=bits(word, 25, 20), encoding=word)
        if funct3 == op.F3_SRL_SRA:
            f6 = bits(word, 31, 26)
            shamt = bits(word, 25, 20)
            if f6 == 0:
                return Instruction("srli", rd=rd, rs1=rs1, imm=shamt, encoding=word)
            if f6 == 0b010000:
                return Instruction("srai", rd=rd, rs1=rs1, imm=shamt, encoding=word)
            raise IllegalEncodingError("bad shift-right funct6")
        mnem = _OPIMM_INV[funct3]
        return Instruction(mnem, rd=rd, rs1=rs1, imm=sign_extend(bits(word, 31, 20), 12), encoding=word)
    if opcode == op.OP_IMM_32:
        shamt = bits(word, 24, 20)
        if funct3 == op.F3_ADD_SUB:
            return Instruction("addiw", rd=rd, rs1=rs1, imm=sign_extend(bits(word, 31, 20), 12), encoding=word)
        if funct3 == op.F3_SLL and funct7 == 0:
            return Instruction("slliw", rd=rd, rs1=rs1, imm=shamt, encoding=word)
        if funct3 == op.F3_SRL_SRA and funct7 == 0:
            return Instruction("srliw", rd=rd, rs1=rs1, imm=shamt, encoding=word)
        if funct3 == op.F3_SRL_SRA and funct7 == op.F7_SUB_SRA:
            return Instruction("sraiw", rd=rd, rs1=rs1, imm=shamt, encoding=word)
        raise IllegalEncodingError("bad OP-IMM-32 encoding")
    if opcode == op.OP:
        key = (funct3, funct7)
        if key not in _OP_INV:
            raise IllegalEncodingError(f"bad OP funct3/funct7 {funct3:#b}/{funct7:#b}")
        mnem = _OP_INV[key]
        return Instruction(mnem, rd=rd, rs1=rs1, rs2=rs2, encoding=word, extension=_ext_for(mnem))
    if opcode == op.OP_32:
        key = (funct3, funct7)
        if key not in _OP32_INV:
            raise IllegalEncodingError(f"bad OP-32 funct3/funct7 {funct3:#b}/{funct7:#b}")
        mnem = _OP32_INV[key]
        return Instruction(mnem, rd=rd, rs1=rs1, rs2=rs2, encoding=word, extension=_ext_for(mnem))
    if opcode == op.SYSTEM and funct3 == 0:
        imm12 = bits(word, 31, 20)
        if imm12 == 0:
            return Instruction("ecall", encoding=word)
        if imm12 == 1:
            return Instruction("ebreak", encoding=word)
        raise IllegalEncodingError("bad SYSTEM encoding")
    if opcode == op.MISC_MEM:
        return Instruction("fence", encoding=word)
    # -- vector --------------------------------------------------------
    if opcode == op.OP_V:
        if funct3 == op.OPCFG:
            if bit(word, 31) != 0:
                raise IllegalEncodingError("only vsetvli is implemented")
            return Instruction(
                "vsetvli", rd=rd, rs1=rs1, imm=bits(word, 30, 20),
                encoding=word, extension=Extension.V,
            )
        funct6 = bits(word, 31, 26)
        vm = bit(word, 25)
        key = (funct6, funct3)
        if key not in _VARITH_INV:
            raise IllegalEncodingError(f"unimplemented OP-V funct6/cat {funct6:#b}/{funct3:#b}")
        mnem = _VARITH_INV[key]
        if mnem == "vmv.x.s":
            if rs1 != 0:
                raise IllegalEncodingError("unimplemented VWXUNARY0 variant")
            return Instruction("vmv.x.s", rd=rd, vs2=rs2, vm=vm, encoding=word, extension=Extension.V)
        instr = Instruction(mnem, vd=rd, vs2=rs2, vm=vm, encoding=word, extension=Extension.V)
        if funct3 in (op.OPIVV, op.OPMVV):
            instr.vs1 = rs1
        elif funct3 == op.OPIVI:
            instr.imm = sign_extend(rs1, 5)
        else:
            instr.rs1 = rs1
        return instr
    if opcode in (op.LOAD_FP, op.STORE_FP):
        if bits(word, 28, 26) != 0 or bits(word, 31, 29) != 0:
            raise IllegalEncodingError("only unit-stride vector memory ops are implemented")
        if funct3 not in _VWIDTH_INV:
            raise IllegalEncodingError(f"unimplemented vector element width {funct3:#b}")
        if rs2 != 0:
            raise IllegalEncodingError("bad lumop/sumop")
        width = _VWIDTH_INV[funct3]
        vm = bit(word, 25)
        if opcode == op.LOAD_FP:
            return Instruction(f"vle{width}.v", vd=rd, rs1=rs1, vm=vm, encoding=word, extension=Extension.V)
        return Instruction(f"vse{width}.v", vd=rd, rs1=rs1, vm=vm, encoding=word, extension=Extension.V)
    raise IllegalEncodingError(f"unknown major opcode {opcode:#09b}")


def _decode_c(parcel: int) -> Instruction:
    """Decode a 16-bit compressed parcel."""
    if parcel == 0:
        raise IllegalEncodingError("all-zero parcel is defined illegal", kind="reserved-compressed")
    quadrant = parcel & 0b11
    funct3 = bits(parcel, 15, 13)
    ext = Extension.C

    if quadrant == op.C_Q0:
        rs1 = rvc_decode_reg(bits(parcel, 9, 7))
        rdrs2 = rvc_decode_reg(bits(parcel, 4, 2))
        if funct3 == 0b000:
            imm = (
                (bits(parcel, 12, 11) << 4) | (bits(parcel, 10, 7) << 6)
                | (bit(parcel, 6) << 2) | (bit(parcel, 5) << 3)
            )
            if imm == 0:
                raise IllegalEncodingError("c.addi4spn nzuimm=0 reserved", kind="reserved-compressed")
            return Instruction("c.addi4spn", rd=rdrs2, rs1=2, imm=imm, length=2, encoding=parcel, extension=ext)
        if funct3 in (0b010, 0b011, 0b110, 0b111):
            is_word = funct3 in (0b010, 0b110)
            if is_word:
                imm = (bits(parcel, 12, 10) << 3) | (bit(parcel, 6) << 2) | (bit(parcel, 5) << 6)
            else:
                imm = (bits(parcel, 12, 10) << 3) | (bits(parcel, 6, 5) << 6)
            mnem = {0b010: "c.lw", 0b011: "c.ld", 0b110: "c.sw", 0b111: "c.sd"}[funct3]
            if funct3 in (0b010, 0b011):
                return Instruction(mnem, rd=rdrs2, rs1=rs1, imm=imm, length=2, encoding=parcel, extension=ext)
            return Instruction(mnem, rs1=rs1, rs2=rdrs2, imm=imm, length=2, encoding=parcel, extension=ext)
        raise IllegalEncodingError(f"unimplemented Q0 funct3 {funct3:#b}", kind="reserved-compressed")

    if quadrant == op.C_Q1:
        rd = bits(parcel, 11, 7)
        imm6 = sign_extend((bit(parcel, 12) << 5) | bits(parcel, 6, 2), 6)
        if funct3 == 0b000:
            if rd == 0:
                return Instruction("c.nop", length=2, encoding=parcel, extension=ext)
            return Instruction("c.addi", rd=rd, rs1=rd, imm=imm6, length=2, encoding=parcel, extension=ext)
        if funct3 == 0b001:
            if rd == 0:
                # This is the reserved encoding SMILE's jalr parcel maps to.
                raise IllegalEncodingError("c.addiw rd=x0 reserved", kind="reserved-compressed")
            return Instruction("c.addiw", rd=rd, rs1=rd, imm=imm6, length=2, encoding=parcel, extension=ext)
        if funct3 == 0b010:
            if rd == 0:
                raise IllegalEncodingError("c.li rd=x0 is a hint", kind="reserved-compressed")
            return Instruction("c.li", rd=rd, imm=imm6, length=2, encoding=parcel, extension=ext)
        if funct3 == 0b011:
            if imm6 == 0:
                raise IllegalEncodingError("c.lui/addi16sp imm=0 reserved", kind="reserved-compressed")
            if rd == 2:
                imm = sign_extend(
                    (bit(parcel, 12) << 9) | (bit(parcel, 6) << 4) | (bit(parcel, 5) << 6)
                    | (bits(parcel, 4, 3) << 7) | (bit(parcel, 2) << 5),
                    10,
                )
                return Instruction("c.addi16sp", rd=2, rs1=2, imm=imm, length=2, encoding=parcel, extension=ext)
            if rd == 0:
                raise IllegalEncodingError("c.lui rd=x0 is a hint", kind="reserved-compressed")
            return Instruction("c.lui", rd=rd, imm=imm6, length=2, encoding=parcel, extension=ext)
        if funct3 == 0b100:
            funct2 = bits(parcel, 11, 10)
            rdc = rvc_decode_reg(bits(parcel, 9, 7))
            if funct2 == 0b00 or funct2 == 0b01:
                shamt = (bit(parcel, 12) << 5) | bits(parcel, 6, 2)
                if shamt == 0:
                    raise IllegalEncodingError("c.srli/c.srai shamt=0 reserved", kind="reserved-compressed")
                mnem = "c.srli" if funct2 == 0b00 else "c.srai"
                return Instruction(mnem, rd=rdc, rs1=rdc, imm=shamt, length=2, encoding=parcel, extension=ext)
            if funct2 == 0b10:
                return Instruction("c.andi", rd=rdc, rs1=rdc, imm=imm6, length=2, encoding=parcel, extension=ext)
            rs2c = rvc_decode_reg(bits(parcel, 4, 2))
            sel = bits(parcel, 6, 5)
            if bit(parcel, 12) == 0:
                mnem = ("c.sub", "c.xor", "c.or", "c.and")[sel]
            else:
                if sel == 0b00:
                    mnem = "c.subw"
                elif sel == 0b01:
                    mnem = "c.addw"
                else:
                    raise IllegalEncodingError("reserved Q1 misc-alu", kind="reserved-compressed")
            return Instruction(mnem, rd=rdc, rs1=rdc, rs2=rs2c, length=2, encoding=parcel, extension=ext)
        if funct3 == 0b101:
            imm = sign_extend(
                (bit(parcel, 12) << 11) | (bit(parcel, 11) << 4) | (bits(parcel, 10, 9) << 8)
                | (bit(parcel, 8) << 10) | (bit(parcel, 7) << 6) | (bit(parcel, 6) << 7)
                | (bits(parcel, 5, 3) << 1) | (bit(parcel, 2) << 5),
                12,
            )
            return Instruction("c.j", imm=imm, length=2, encoding=parcel, extension=ext)
        # funct3 110/111: c.beqz / c.bnez
        rs1c = rvc_decode_reg(bits(parcel, 9, 7))
        imm = sign_extend(
            (bit(parcel, 12) << 8) | (bits(parcel, 11, 10) << 3) | (bits(parcel, 6, 5) << 6)
            | (bits(parcel, 4, 3) << 1) | (bit(parcel, 2) << 5),
            9,
        )
        mnem = "c.beqz" if funct3 == 0b110 else "c.bnez"
        return Instruction(mnem, rs1=rs1c, imm=imm, length=2, encoding=parcel, extension=ext)

    # quadrant 2
    rd = bits(parcel, 11, 7)
    if funct3 == 0b000:
        shamt = (bit(parcel, 12) << 5) | bits(parcel, 6, 2)
        if rd == 0 or shamt == 0:
            raise IllegalEncodingError("c.slli rd=0/shamt=0 hint or reserved", kind="reserved-compressed")
        return Instruction("c.slli", rd=rd, rs1=rd, imm=shamt, length=2, encoding=parcel, extension=ext)
    if funct3 == 0b010:
        if rd == 0:
            raise IllegalEncodingError("c.lwsp rd=x0 reserved", kind="reserved-compressed")
        imm = (bit(parcel, 12) << 5) | (bits(parcel, 6, 4) << 2) | (bits(parcel, 3, 2) << 6)
        return Instruction("c.lwsp", rd=rd, rs1=2, imm=imm, length=2, encoding=parcel, extension=ext)
    if funct3 == 0b011:
        if rd == 0:
            raise IllegalEncodingError("c.ldsp rd=x0 reserved", kind="reserved-compressed")
        imm = (bit(parcel, 12) << 5) | (bits(parcel, 6, 5) << 3) | (bits(parcel, 4, 2) << 6)
        return Instruction("c.ldsp", rd=rd, rs1=2, imm=imm, length=2, encoding=parcel, extension=ext)
    if funct3 == 0b100:
        rs2 = bits(parcel, 6, 2)
        if bit(parcel, 12) == 0:
            if rs2 == 0:
                if rd == 0:
                    raise IllegalEncodingError("c.jr rs1=x0 reserved", kind="reserved-compressed")
                return Instruction("c.jr", rs1=rd, length=2, encoding=parcel, extension=ext)
            if rd == 0:
                raise IllegalEncodingError("c.mv rd=x0 is a hint", kind="reserved-compressed")
            return Instruction("c.mv", rd=rd, rs2=rs2, length=2, encoding=parcel, extension=ext)
        if rs2 == 0:
            if rd == 0:
                return Instruction("c.ebreak", length=2, encoding=parcel, extension=ext)
            return Instruction("c.jalr", rd=1, rs1=rd, length=2, encoding=parcel, extension=ext)
        if rd == 0:
            raise IllegalEncodingError("c.add rd=x0 is a hint", kind="reserved-compressed")
        return Instruction("c.add", rd=rd, rs1=rd, rs2=rs2, length=2, encoding=parcel, extension=ext)
    if funct3 == 0b110:
        rs2 = bits(parcel, 6, 2)
        imm = (bits(parcel, 12, 9) << 2) | (bits(parcel, 8, 7) << 6)
        return Instruction("c.swsp", rs1=2, rs2=rs2, imm=imm, length=2, encoding=parcel, extension=ext)
    if funct3 == 0b111:
        rs2 = bits(parcel, 6, 2)
        imm = (bits(parcel, 12, 10) << 3) | (bits(parcel, 9, 7) << 6)
        return Instruction("c.sdsp", rs1=2, rs2=rs2, imm=imm, length=2, encoding=parcel, extension=ext)
    raise IllegalEncodingError(f"unimplemented Q2 funct3 {funct3:#b}", kind="reserved-compressed")


def decode(data: bytes | bytearray | memoryview, offset: int = 0, addr: int | None = None) -> Instruction:
    """Decode one instruction starting at *offset* in *data*.

    ``addr`` (if given) is recorded on the returned instruction so
    pc-relative targets can be resolved.  Raises
    :class:`IllegalEncodingError` for truncated input, reserved
    encodings, and encodings outside the implemented subset.
    """
    if offset + 2 > len(data):
        raise IllegalEncodingError("truncated instruction stream", kind="truncated")
    parcel = u16(data, offset)
    length = instruction_length(parcel)
    if length == 2:
        instr = _decode_c(parcel)
    else:
        if offset + 4 > len(data):
            raise IllegalEncodingError("truncated 32-bit instruction", kind="truncated")
        instr = _decode32(u32(data, offset))
    if addr is not None:
        instr.addr = addr
    return instr
