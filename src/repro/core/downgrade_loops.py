"""Loop-granularity downgrade translation.

Per-instruction downgrade templates are always correct but slow: every
vector instruction becomes a memory-backed element loop, costing ~10x a
natively compiled scalar loop.  The paper's translation (QEMU TCG
templates over *blocks* of code) keeps values in registers and lands
within a few percent of compiled code — which is what makes offloading
extension tasks to base cores worthwhile at all (§6.1's 2:2:2:1 task
cost ratio, §6.4's "gap arises mainly from the lower quality of
instructions produced by binary translation").

This module reproduces that quality level for the strip-mined RVV loop
idioms compilers emit (and :mod:`repro.core.upgrade` generates): the
dot-reduction, elementwise-map and memcpy shapes.  A matched region is
replaced wholesale by the equivalent scalar loop; anything that does not
match still goes through the per-instruction templates.

Erroneous-entry policy: a replaced region's interior boundaries cannot
be mapped to copied instructions (scalar code has no positional
correspondence to vector code), so an erroneous jump into the replaced
window restarts at the loop head ("restart-head").  Matching therefore
requires that no *static* control flow targets the region's interior
from outside the region; the loop shapes are idempotent from their head
for any pointer/counter state, which is what makes the restart sound.
"""

from __future__ import annotations

from itertools import count

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.liveness import LivenessResult
from repro.analysis.scan import ScanResult
from repro.core.upgrade import UpgradeSite
from repro.isa.encoding import decode_vtype
from repro.isa.extensions import Extension, IsaProfile
from repro.isa.instructions import Instruction
from repro.isa.registers import Reg, reg_name

_counter = count(1)

#: Registers never usable as replacement scratch.
_FORBIDDEN = {int(Reg.ZERO), int(Reg.SP), int(Reg.GP), int(Reg.TP), int(Reg.RA)}

_VOP_TO_SCALAR = {"vadd.vv": "add", "vsub.vv": "sub", "vmul.vv": "mul",
                  "vand.vv": "and", "vor.vv": "or", "vxor.vv": "xor"}


def find_downgrade_loop_sites(
    scan: ScanResult,
    cfg: ControlFlowGraph,
    liveness: LivenessResult,
    target_profile: IsaProfile,
) -> list[UpgradeSite]:
    """Match whole vector strip-mine loops for scalar replacement."""
    if target_profile.supports(Extension.V):
        return []
    jump_sources = _direct_jump_sources(scan)
    sites: list[UpgradeSite] = []
    taken: set[int] = set()
    for block in cfg:
        for matcher in (_match_dot, _match_map, _match_memcpy):
            site = matcher(block, scan, cfg, liveness)
            if site is None:
                continue
            addrs = [i.addr for i in site.instructions]
            if taken & set(addrs):
                continue
            if not _interior_unreachable(site, jump_sources):
                continue
            sites.append(site)
            taken.update(addrs)
            break
    sites.sort(key=lambda s: s.start)
    return sites


def _direct_jump_sources(scan: ScanResult) -> dict[int, list[int]]:
    """target address -> addresses of direct jumps/branches hitting it."""
    out: dict[int, list[int]] = {}
    for addr, instr in scan.instructions.items():
        target = instr.target()
        if target is not None:
            out.setdefault(target, []).append(addr)
    return out


def _interior_unreachable(site: UpgradeSite, jump_sources: dict[int, list[int]]) -> bool:
    """No static control flow enters the replaced region's interior from
    outside the region itself."""
    region = {i.addr for i in site.instructions}
    for instr in site.instructions[1:]:
        for src in jump_sources.get(instr.addr, ()):
            if src not in region:
                return False
    return True


def _pick_scratch(liveness: LivenessResult, at: int, exclude: set[int]) -> int | None:
    dead = liveness.dead_before(at) - _FORBIDDEN - exclude
    return min(dead) if dead else None


def _seq_from(scan: ScanResult, addr: int, n: int) -> list[Instruction] | None:
    """*n* layout-consecutive recovered instructions starting at *addr*."""
    out: list[Instruction] = []
    for _ in range(n):
        instr = scan.instructions.get(addr)
        if instr is None:
            return None
        out.append(instr)
        addr += instr.length
    return out


def _is_vsetvli_e64(i: Instruction) -> bool:
    if i.mnemonic != "vsetvli":
        return False
    try:
        return decode_vtype(i.imm) == 64
    except Exception:
        return False


def _match_dot(block, scan: ScanResult, cfg: ControlFlowGraph, liveness: LivenessResult):
    """The reduction idiom: init / strip-mined vmacc loop / vredsum tail."""
    ins = block.instructions
    if len(ins) != 9:
        return None
    vset, vl1, vl2, macc, sll, ax, ay, an, br = ins
    if not _is_vsetvli_e64(vset) or vset.rs1 == 0:
        return None
    if vl1.mnemonic != "vle64.v" or vl2.mnemonic != "vle64.v" or macc.mnemonic != "vmacc.vv":
        return None
    if sll.mnemonic != "slli" or sll.imm != 3 or sll.rs1 != vset.rd:
        return None
    if br.mnemonic != "bne" or br.rs2 != 0 or br.target() != block.start:
        return None
    n = vset.rs1
    px, py = vl1.rs1, vl2.rs1
    t_vl, t_step = vset.rd, sll.rd
    vacc, vx, vy = macc.vd, macc.vs2, macc.vs1
    if {vl1.vd, vl2.vd} != {vx, vy}:
        return None
    for adv, ptr in ((ax, px), (ay, py)):
        if adv.mnemonic != "add" or adv.rd != ptr or {adv.rs1, adv.rs2} != {ptr, t_step}:
            return None
    if an.mnemonic != "sub" or an.rd != n or an.rs1 != n or an.rs2 != t_vl:
        return None
    # Preceding init: vsetvli t, zero ; vmv.v.i vacc, 0
    init = _seq_from_back(scan, block.start, 2)
    if init is None:
        return None
    i_vset, i_vmv = init
    if not _is_vsetvli_e64(i_vset) or i_vset.rs1 != 0:
        return None
    if i_vmv.mnemonic != "vmv.v.i" or i_vmv.vd != vacc or i_vmv.imm != 0:
        return None
    # Reduction tail after the loop: either the stack-store idiom (10
    # instructions) or the vmv.x.s idiom (5 instructions).
    tail = _match_dot_tail_stack(scan, block.end, vacc) or \
        _match_dot_tail_mvxs(scan, block.end, vacc)
    if tail is None:
        return None
    tail, r_add = tail
    acc = r_add.rd
    if br.rs1 != n:
        return None
    if len({n, px, py, acc}) != 4 or acc in (t_vl, t_step):
        return None
    scratch = _pick_scratch(liveness, init[0].addr, {n, px, py, acc, t_vl, t_step})
    if scratch is None:
        return None
    # The replacement leaves different final values in the scratch set;
    # they must be provably dead once the region completes.
    region_end = r_add.addr + r_add.length
    if not all(liveness.is_dead_before(region_end, r) for r in (t_vl, t_step, scratch)):
        return None
    instructions = list(init) + list(ins) + tail
    tag = next(_counter)
    A, B, T = reg_name(t_vl), reg_name(t_step), reg_name(scratch)
    N, PX, PY, ACC = reg_name(n), reg_name(px), reg_name(py), reg_name(acc)
    asm = (
        f"beqz {N}, .Lsd{tag}_done\n"
        f".Lsd{tag}:\n"
        f"ld {A}, 0({PX})\n"
        f"ld {B}, 0({PY})\n"
        f"mul {T}, {A}, {B}\n"
        f"add {ACC}, {ACC}, {T}\n"
        f"addi {PX}, {PX}, 8\n"
        f"addi {PY}, {PY}, 8\n"
        f"addi {N}, {N}, -1\n"
        f"bnez {N}, .Lsd{tag}\n"
        f".Lsd{tag}_done:"
    )
    return UpgradeSite("down-dot", instructions, asm, entry_policy="restart-head")


def _match_dot_tail_stack(scan: ScanResult, start: int, vacc: int):
    """Reduction via vl=1 store to the stack (the 10-instruction idiom)."""
    tail = _seq_from(scan, start, 10)
    if tail is None:
        return None
    r_vset, r_vmv, r_red, r_li, r_vset2, r_sp1, r_vse, r_ld, r_sp2, r_add = tail
    if not _is_vsetvli_e64(r_vset) or r_vset.rs1 != 0:
        return None
    if r_vmv.mnemonic != "vmv.v.i" or r_vmv.imm != 0:
        return None
    if r_red.mnemonic != "vredsum.vs" or r_red.vs2 != vacc or r_red.vs1 != r_vmv.vd:
        return None
    if r_li.mnemonic != "addi" or r_li.rs1 != 0 or r_li.imm != 1:
        return None
    if not _is_vsetvli_e64(r_vset2) or r_vset2.rs1 != r_li.rd:
        return None
    if r_sp1.mnemonic != "addi" or r_sp1.rd != 2 or r_sp1.imm != -16:
        return None
    if r_vse.mnemonic != "vse64.v" or r_vse.vd != r_red.vd or r_vse.rs1 != 2:
        return None
    if r_ld.mnemonic != "ld" or r_ld.rs1 != 2 or r_ld.imm != 0:
        return None
    if r_sp2.mnemonic != "addi" or r_sp2.rd != 2 or r_sp2.imm != 16:
        return None
    if r_add.mnemonic != "add" or r_ld.rd not in (r_add.rs1, r_add.rs2):
        return None
    return tail, r_add


def _match_dot_tail_mvxs(scan: ScanResult, start: int, vacc: int):
    """Reduction via ``vmv.x.s`` (the 5-instruction idiom)."""
    tail = _seq_from(scan, start, 5)
    if tail is None:
        return None
    r_vset, r_vmv, r_red, r_mvx, r_add = tail
    if not _is_vsetvli_e64(r_vset) or r_vset.rs1 != 0:
        return None
    if r_vmv.mnemonic != "vmv.v.i" or r_vmv.imm != 0:
        return None
    if r_red.mnemonic != "vredsum.vs" or r_red.vs2 != vacc or r_red.vs1 != r_vmv.vd:
        return None
    if r_mvx.mnemonic != "vmv.x.s" or r_mvx.vs2 != r_red.vd:
        return None
    if r_add.mnemonic != "add" or r_mvx.rd not in (r_add.rs1, r_add.rs2):
        return None
    return tail, r_add


def _seq_from_back(scan: ScanResult, end_addr: int, n: int) -> list[Instruction] | None:
    """The *n* recovered instructions immediately before *end_addr*."""
    out: list[Instruction] = []
    addr = end_addr
    for _ in range(n):
        prev = None
        for length in (2, 4):
            cand = scan.instructions.get(addr - length)
            if cand is not None and cand.addr + cand.length == addr:
                prev = cand
                break
        if prev is None:
            return None
        out.append(prev)
        addr = prev.addr
    out.reverse()
    return out


def _match_map(block, scan: ScanResult, cfg: ControlFlowGraph, liveness: LivenessResult):
    """Elementwise z[i] = x[i] op y[i] strip-mine loop (one block)."""
    ins = block.instructions
    if len(ins) != 11:
        return None
    vset, vl1, vl2, vop, vst, sll, ax, ay, az, an, br = ins
    if not _is_vsetvli_e64(vset) or vset.rs1 == 0:
        return None
    if vl1.mnemonic != "vle64.v" or vl2.mnemonic != "vle64.v":
        return None
    if vop.mnemonic not in _VOP_TO_SCALAR or vst.mnemonic != "vse64.v":
        return None
    if sll.mnemonic != "slli" or sll.imm != 3 or sll.rs1 != vset.rd:
        return None
    if br.mnemonic != "bne" or br.rs2 != 0 or br.target() != block.start:
        return None
    n = vset.rs1
    px, py, pz = vl1.rs1, vl2.rs1, vst.rs1
    t_vl, t_step = vset.rd, sll.rd
    if vop.vs2 != vl1.vd or vop.vs1 != vl2.vd or vst.vd != vop.vd:
        return None
    for adv, ptr in ((ax, px), (ay, py), (az, pz)):
        if adv.mnemonic != "add" or adv.rd != ptr or {adv.rs1, adv.rs2} != {ptr, t_step}:
            return None
    if an.mnemonic != "sub" or an.rd != n or an.rs1 != n or an.rs2 != t_vl:
        return None
    if br.rs1 != n or len({n, px, py, pz}) != 4:
        return None
    scratch = _pick_scratch(liveness, block.start, {n, px, py, pz, t_vl, t_step})
    if scratch is None:
        return None
    if not all(liveness.is_dead_before(block.end, r) for r in (t_vl, t_step, scratch)):
        return None
    tag = next(_counter)
    A, B, C = reg_name(t_vl), reg_name(t_step), reg_name(scratch)
    N, PX, PY, PZ = reg_name(n), reg_name(px), reg_name(py), reg_name(pz)
    op = _VOP_TO_SCALAR[vop.mnemonic]
    asm = (
        f"beqz {N}, .Lsm{tag}_done\n"
        f".Lsm{tag}:\n"
        f"ld {A}, 0({PX})\n"
        f"ld {B}, 0({PY})\n"
        f"{op} {C}, {A}, {B}\n"
        f"sd {C}, 0({PZ})\n"
        f"addi {PX}, {PX}, 8\n"
        f"addi {PY}, {PY}, 8\n"
        f"addi {PZ}, {PZ}, 8\n"
        f"addi {N}, {N}, -1\n"
        f"bnez {N}, .Lsm{tag}\n"
        f".Lsm{tag}_done:"
    )
    return UpgradeSite("down-map", list(ins), asm, entry_policy="restart-head")


def _match_memcpy(block, scan: ScanResult, cfg: ControlFlowGraph, liveness: LivenessResult):
    """Streaming copy strip-mine loop (one block)."""
    ins = block.instructions
    if len(ins) != 8:
        return None
    vset, vld, vst, sll, ax, ay, an, br = ins
    if not _is_vsetvli_e64(vset) or vset.rs1 == 0:
        return None
    if vld.mnemonic != "vle64.v" or vst.mnemonic != "vse64.v" or vst.vd != vld.vd:
        return None
    if sll.mnemonic != "slli" or sll.imm != 3 or sll.rs1 != vset.rd:
        return None
    if br.mnemonic != "bne" or br.rs2 != 0 or br.target() != block.start:
        return None
    n = vset.rs1
    px, pz = vld.rs1, vst.rs1
    t_vl, t_step = vset.rd, sll.rd
    for adv, ptr in ((ax, px), (ay, pz)):
        if adv.mnemonic != "add" or adv.rd != ptr or {adv.rs1, adv.rs2} != {ptr, t_step}:
            return None
    if an.mnemonic != "sub" or an.rd != n or an.rs1 != n or an.rs2 != t_vl:
        return None
    if br.rs1 != n or len({n, px, pz}) != 3:
        return None
    if not all(liveness.is_dead_before(block.end, r) for r in (t_vl, t_step)):
        return None
    tag = next(_counter)
    A = reg_name(t_vl)
    N, PX, PZ = reg_name(n), reg_name(px), reg_name(pz)
    asm = (
        f"beqz {N}, .Lsc{tag}_done\n"
        f".Lsc{tag}:\n"
        f"ld {A}, 0({PX})\n"
        f"sd {A}, 0({PZ})\n"
        f"addi {PX}, {PX}, 8\n"
        f"addi {PZ}, {PZ}, 8\n"
        f"addi {N}, {N}, -1\n"
        f"bnez {N}, .Lsc{tag}\n"
        f".Lsc{tag}_done:"
    )
    return UpgradeSite("down-memcpy", list(ins), asm, entry_policy="restart-head")
