"""Register model tests."""

import pytest

from repro.isa.registers import (
    ABI_NAMES,
    CALLEE_SAVED,
    CALLER_SAVED,
    NAME_TO_REG,
    Reg,
    RESERVED_FOR_ABI,
    is_rvc_reg,
    parse_reg,
    parse_vreg,
    reg_name,
    rvc_decode_reg,
    rvc_encode_reg,
    vreg_name,
)


class TestNames:
    def test_abi_names_complete(self):
        assert len(ABI_NAMES) == 32
        assert ABI_NAMES[0] == "zero"
        assert ABI_NAMES[3] == "gp"

    def test_parse_abi_and_xn(self):
        assert parse_reg("sp") == Reg.SP
        assert parse_reg("x2") == Reg.SP
        assert parse_reg("fp") == Reg.S0

    def test_parse_rejects_unknown(self):
        with pytest.raises(KeyError):
            parse_reg("q7")

    def test_parse_vreg(self):
        assert parse_vreg("v31") == 31
        with pytest.raises(KeyError):
            parse_vreg("v32")

    def test_reg_name_roundtrip(self):
        for i in range(32):
            assert parse_reg(reg_name(i)) == i

    def test_vreg_name(self):
        assert vreg_name(7) == "v7"


class TestSets:
    def test_saved_sets_disjoint(self):
        assert not (CALLER_SAVED & CALLEE_SAVED)

    def test_gp_is_reserved(self):
        assert Reg.GP in RESERVED_FOR_ABI
        assert Reg.SP in RESERVED_FOR_ABI

    def test_every_reg_categorized(self):
        categorized = CALLER_SAVED | CALLEE_SAVED | RESERVED_FOR_ABI
        # tp/zero/gp/sp reserved; everything else caller or callee saved.
        assert {Reg(i) for i in range(32)} <= categorized | {Reg.TP}


class TestRvcFields:
    def test_rvc_range(self):
        assert is_rvc_reg(8) and is_rvc_reg(15)
        assert not is_rvc_reg(7) and not is_rvc_reg(16)

    def test_rvc_encode_decode_roundtrip(self):
        for reg in range(8, 16):
            assert rvc_decode_reg(rvc_encode_reg(reg)) == reg

    def test_rvc_encode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            rvc_encode_reg(int(Reg.SP))
