"""Encode->decode roundtrip coverage for the implemented instruction set.

Every instruction the encoder can produce must decode back to the same
mnemonic and operands — this pins the bit-level layouts the SMILE
trampoline math depends on.
"""

import pytest
from hypothesis import given, strategies as st

from repro.isa.decoding import decode
from repro.isa.encoding import EncodingError, encode, encode_vtype, decode_vtype
from repro.isa.instructions import Instruction

REG = st.integers(min_value=0, max_value=31)
NZREG = st.integers(min_value=1, max_value=31)
RVC_REG = st.integers(min_value=8, max_value=15)
IMM12 = st.integers(min_value=-2048, max_value=2047)
SHAMT6 = st.integers(min_value=0, max_value=63)


def roundtrip(instr: Instruction) -> Instruction:
    data = encode(instr)
    back = decode(data, 0, addr=0)
    assert back.mnemonic == instr.mnemonic
    assert len(data) == instr.length
    return back


class TestRType:
    @pytest.mark.parametrize("mnem", [
        "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
        "addw", "subw", "sllw", "srlw", "sraw",
        "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
        "mulw", "divw", "divuw", "remw", "remuw",
        "sh1add", "sh2add", "sh3add",
    ])
    def test_all_r_type(self, mnem):
        back = roundtrip(Instruction(mnem, rd=5, rs1=6, rs2=7))
        assert (back.rd, back.rs1, back.rs2) == (5, 6, 7)

    @given(REG, REG, REG)
    def test_add_operand_fields(self, rd, rs1, rs2):
        back = roundtrip(Instruction("add", rd=rd, rs1=rs1, rs2=rs2))
        assert (back.rd, back.rs1, back.rs2) == (rd, rs1, rs2)


class TestIType:
    @pytest.mark.parametrize("mnem", ["addi", "slti", "sltiu", "xori", "ori", "andi", "addiw"])
    @given(imm=IMM12)
    def test_imm_arith(self, mnem, imm):
        back = roundtrip(Instruction(mnem, rd=3, rs1=4, imm=imm))
        assert back.imm == imm

    @pytest.mark.parametrize("mnem", ["slli", "srli", "srai"])
    @given(shamt=SHAMT6)
    def test_shifts(self, mnem, shamt):
        back = roundtrip(Instruction(mnem, rd=10, rs1=11, imm=shamt))
        assert back.imm == shamt

    @pytest.mark.parametrize("mnem", ["slliw", "srliw", "sraiw"])
    def test_word_shifts(self, mnem):
        back = roundtrip(Instruction(mnem, rd=10, rs1=11, imm=17))
        assert back.imm == 17

    def test_imm_overflow_rejected(self):
        with pytest.raises(ValueError):
            encode(Instruction("addi", rd=1, rs1=1, imm=2048))

    @given(IMM12)
    def test_jalr(self, imm):
        back = roundtrip(Instruction("jalr", rd=1, rs1=5, imm=imm))
        assert back.imm == imm


class TestLoadsStores:
    @pytest.mark.parametrize("mnem", ["lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"])
    @given(imm=IMM12)
    def test_loads(self, mnem, imm):
        back = roundtrip(Instruction(mnem, rd=8, rs1=9, imm=imm))
        assert (back.rd, back.rs1, back.imm) == (8, 9, imm)

    @pytest.mark.parametrize("mnem", ["sb", "sh", "sw", "sd"])
    @given(imm=IMM12)
    def test_stores(self, mnem, imm):
        back = roundtrip(Instruction(mnem, rs1=9, rs2=8, imm=imm))
        assert (back.rs1, back.rs2, back.imm) == (9, 8, imm)


class TestControl:
    @pytest.mark.parametrize("mnem", ["beq", "bne", "blt", "bge", "bltu", "bgeu"])
    @given(imm=st.integers(min_value=-2048, max_value=2047).map(lambda x: x * 2))
    def test_branches(self, mnem, imm):
        back = roundtrip(Instruction(mnem, rs1=1, rs2=2, imm=imm))
        assert back.imm == imm

    @given(st.integers(min_value=-(2**19), max_value=2**19 - 1).map(lambda x: x * 2))
    def test_jal(self, imm):
        back = roundtrip(Instruction("jal", rd=1, imm=imm))
        assert back.imm == imm

    def test_branch_alignment_rejected(self):
        with pytest.raises(ValueError):
            encode(Instruction("beq", rs1=0, rs2=0, imm=3))

    @given(st.integers(min_value=0, max_value=0xFFFFF))
    def test_lui_auipc(self, imm20):
        for mnem in ("lui", "auipc"):
            back = roundtrip(Instruction(mnem, rd=7, imm=imm20))
            assert back.imm == imm20


class TestSystem:
    @pytest.mark.parametrize("mnem", ["ecall", "ebreak", "fence"])
    def test_system(self, mnem):
        roundtrip(Instruction(mnem))


class TestCompressed:
    @given(NZREG, st.integers(min_value=-32, max_value=31))
    def test_c_addi(self, rd, imm):
        back = roundtrip(Instruction("c.addi", rd=rd, rs1=rd, imm=imm, length=2))
        assert back.rd == rd and back.imm == imm

    @given(NZREG, st.integers(min_value=-32, max_value=31))
    def test_c_addiw(self, rd, imm):
        back = roundtrip(Instruction("c.addiw", rd=rd, rs1=rd, imm=imm, length=2))
        assert back.imm == imm

    @given(NZREG, st.integers(min_value=-32, max_value=31))
    def test_c_li(self, rd, imm):
        back = roundtrip(Instruction("c.li", rd=rd, imm=imm, length=2))
        assert back.imm == imm

    @given(RVC_REG, RVC_REG)
    def test_c_alu(self, rd, rs2):
        for mnem in ("c.sub", "c.xor", "c.or", "c.and", "c.subw", "c.addw"):
            back = roundtrip(Instruction(mnem, rd=rd, rs1=rd, rs2=rs2, length=2))
            assert (back.rd, back.rs2) == (rd, rs2)

    @given(NZREG, NZREG)
    def test_c_mv_add(self, rd, rs2):
        back = roundtrip(Instruction("c.mv", rd=rd, rs2=rs2, length=2))
        assert (back.rd, back.rs2) == (rd, rs2)
        back = roundtrip(Instruction("c.add", rd=rd, rs1=rd, rs2=rs2, length=2))
        assert (back.rd, back.rs2) == (rd, rs2)

    @given(st.integers(min_value=-1024, max_value=1023).map(lambda x: x * 2))
    def test_c_j(self, imm):
        back = roundtrip(Instruction("c.j", imm=imm, length=2))
        assert back.imm == imm

    @given(RVC_REG, st.integers(min_value=-128, max_value=127).map(lambda x: x * 2))
    def test_c_branches(self, rs1, imm):
        for mnem in ("c.beqz", "c.bnez"):
            back = roundtrip(Instruction(mnem, rs1=rs1, imm=imm, length=2))
            assert (back.rs1, back.imm) == (rs1, imm)

    @given(RVC_REG, RVC_REG, st.integers(min_value=0, max_value=31).map(lambda x: x * 8))
    def test_c_ld_sd(self, rd, rs1, imm):
        back = roundtrip(Instruction("c.ld", rd=rd, rs1=rs1, imm=imm, length=2))
        assert (back.rd, back.rs1, back.imm) == (rd, rs1, imm)
        back = roundtrip(Instruction("c.sd", rs1=rs1, rs2=rd, imm=imm, length=2))
        assert (back.rs1, back.rs2, back.imm) == (rs1, rd, imm)

    @given(RVC_REG, RVC_REG, st.integers(min_value=0, max_value=31).map(lambda x: x * 4))
    def test_c_lw_sw(self, rd, rs1, imm):
        back = roundtrip(Instruction("c.lw", rd=rd, rs1=rs1, imm=imm, length=2))
        assert back.imm == imm
        back = roundtrip(Instruction("c.sw", rs1=rs1, rs2=rd, imm=imm, length=2))
        assert back.imm == imm

    @given(NZREG, st.integers(min_value=0, max_value=31).map(lambda x: x * 8))
    def test_c_ldsp_sdsp(self, rd, imm):
        back = roundtrip(Instruction("c.ldsp", rd=rd, rs1=2, imm=imm, length=2))
        assert back.imm == imm
        back = roundtrip(Instruction("c.sdsp", rs1=2, rs2=rd, imm=imm, length=2))
        assert back.imm == imm

    def test_c_jr_jalr(self):
        back = roundtrip(Instruction("c.jr", rs1=5, length=2))
        assert back.rs1 == 5
        back = roundtrip(Instruction("c.jalr", rd=1, rs1=5, length=2))
        assert back.rs1 == 5 and back.rd == 1

    def test_c_nop_and_ebreak(self):
        roundtrip(Instruction("c.nop", length=2))
        roundtrip(Instruction("c.ebreak", length=2))

    def test_reserved_c_encodings_rejected_by_encoder(self):
        with pytest.raises(EncodingError):
            encode(Instruction("c.addiw", rd=0, rs1=0, imm=1, length=2))
        with pytest.raises(EncodingError):
            encode(Instruction("c.jr", rs1=0, length=2))


class TestVector:
    def test_vsetvli(self):
        back = roundtrip(Instruction("vsetvli", rd=5, rs1=6, imm=encode_vtype(64)))
        assert decode_vtype(back.imm) == 64

    @pytest.mark.parametrize("mnem", ["vadd.vv", "vsub.vv", "vmul.vv", "vmacc.vv",
                                      "vand.vv", "vor.vv", "vxor.vv", "vredsum.vs"])
    def test_vv_forms(self, mnem):
        back = roundtrip(Instruction(mnem, vd=1, vs2=2, vs1=3))
        assert (back.vd, back.vs2, back.vs1) == (1, 2, 3)

    def test_vadd_vx(self):
        back = roundtrip(Instruction("vadd.vx", vd=4, vs2=5, rs1=10))
        assert (back.vd, back.vs2, back.rs1) == (4, 5, 10)

    @given(st.integers(min_value=-16, max_value=15))
    def test_vadd_vi(self, imm):
        back = roundtrip(Instruction("vadd.vi", vd=4, vs2=5, imm=imm))
        assert back.imm == imm

    def test_vmv_forms(self):
        back = roundtrip(Instruction("vmv.v.x", vd=2, vs2=0, rs1=11))
        assert back.rs1 == 11
        back = roundtrip(Instruction("vmv.v.i", vd=2, vs2=0, imm=-3))
        assert back.imm == -3

    @pytest.mark.parametrize("mnem", ["vle32.v", "vle64.v", "vse32.v", "vse64.v"])
    def test_vector_memory(self, mnem):
        back = roundtrip(Instruction(mnem, vd=7, rs1=12))
        assert (back.vd, back.rs1) == (7, 12)

    def test_vtype_rejects_unsupported(self):
        with pytest.raises(EncodingError):
            encode_vtype(128)


class TestEncodeErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(EncodingError):
            encode(Instruction("bogus"))

    def test_low_bits_invariant(self):
        # 32-bit encodings end in 0b11, compressed ones do not.
        assert encode(Instruction("add", rd=1, rs1=2, rs2=3))[0] & 0b11 == 0b11
        assert encode(Instruction("c.nop", length=2))[0] & 0b11 != 0b11
