"""Fault taxonomy for the simulated machine.

The paper's correctness argument (§3.2, §5.1) distinguishes
*deterministic* faults — which immediately halt the erroneous execution
and carry enough context to recover — from non-deterministic misbehavior
(executing unintended instructions).  In the simulator every fault is a
Python exception carrying the faulting pc and, for memory faults, the
offending address and access kind; the simulated kernel catches them.
"""

from __future__ import annotations

from typing import Optional


class SimFault(Exception):
    """Base class for all simulated architectural events."""

    def __init__(self, message: str, pc: Optional[int] = None):
        super().__init__(message)
        self.pc = pc


class SegmentationFault(SimFault):
    """Access-permission violation (the simulated SIGSEGV).

    ``access`` is ``"read"``, ``"write"`` or ``"exec"``.  SMILE's P1 case
    manifests as ``access="exec"`` at a data-segment address.
    """

    def __init__(self, addr: int, access: str, pc: Optional[int] = None):
        super().__init__(f"segmentation fault: {access} at {addr:#x}", pc)
        self.addr = addr
        self.access = access


class IllegalInstructionFault(SimFault):
    """Illegal/reserved/unsupported instruction (the simulated SIGILL).

    ``kind`` values:

    * ``"long-prefix"`` — reserved >=48-bit encoding prefix (SMILE P2);
    * ``"reserved-compressed"`` — reserved RVC encoding (SMILE P3);
    * ``"unknown"`` — not a known encoding;
    * ``"unsupported-extension"`` — valid encoding, but this core lacks
      the extension (the FAM trigger and Chimera's runtime-rewriting
      trigger for unrecognized instructions).
    """

    def __init__(self, pc: int, kind: str, detail: str = ""):
        super().__init__(f"illegal instruction at {pc:#x} ({kind}) {detail}".rstrip(), pc)
        self.kind = kind


class UnrecoverableFault(SimFault):
    """A fault the runtime owns but cannot (or must not) recover.

    Graceful-degradation terminal state: instead of an unstructured
    Python traceback (``KeyError`` from a corrupted fault table, an
    ``AttributeError`` from a clobbered handler, an unbounded
    fault-recovery loop), the runtime raises this exception carrying
    enough context to diagnose the failure:

    * ``cause`` — the underlying :class:`SimFault` or Python exception;
    * ``attempts`` — how many recovery attempts were made before giving
      up (the recovery-depth guard caps these);
    * ``context`` — free-form diagnostics: fault-table size, the last
      redirect taken, the corrupted key, etc.

    The simulated kernel never dispatches an ``UnrecoverableFault`` to
    handlers: it terminates the process and reports it in ``RunResult``.
    """

    def __init__(
        self,
        message: str,
        pc: Optional[int] = None,
        *,
        cause: Optional[BaseException] = None,
        attempts: int = 0,
        context: Optional[dict] = None,
    ):
        super().__init__(message, pc)
        self.cause = cause
        self.attempts = attempts
        self.context = dict(context or {})

    def describe(self) -> str:
        """Multi-line diagnostic dump (fault pc, cause, table state)."""
        lines = [f"unrecoverable fault: {self.args[0]}"]
        if self.pc is not None:
            lines.append(f"  fault pc: {self.pc:#x}")
        if self.cause is not None:
            lines.append(f"  cause: {type(self.cause).__name__}: {self.cause}")
        if self.attempts:
            lines.append(f"  recovery attempts: {self.attempts}")
        for key in sorted(self.context):
            lines.append(f"  {key}: {self.context[key]}")
        return "\n".join(lines)


class EcallTrap(SimFault):
    """Environment call; the kernel services it as a syscall."""

    def __init__(self, pc: int):
        super().__init__(f"ecall at {pc:#x}", pc)


class BreakpointTrap(SimFault):
    """``ebreak``/``c.ebreak``; trap-based trampolines ride on this."""

    def __init__(self, pc: int, compressed: bool = False):
        super().__init__(f"breakpoint at {pc:#x}", pc)
        self.compressed = compressed


class ExitRequest(SimFault):
    """Raised by the exit syscall to terminate the process cleanly."""

    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


class SimulationLimitExceeded(SimFault):
    """The instruction budget ran out; guards against runaway programs."""

    def __init__(self, limit: int):
        super().__init__(f"instruction limit {limit} exceeded")
        self.limit = limit


class WatchdogTimeout(SimFault):
    """The kernel's step-budget watchdog fired (``kind == "TIMEOUT"``).

    :meth:`~repro.sim.machine.Kernel.run` counts kernel entries (syscalls
    plus dispatched faults); a guest that faults or traps forever without
    the per-resume instruction budget ever shrinking — e.g. a corrupted
    redirect whose recovery retires nothing — would otherwise spin the
    kernel loop unboundedly.  Surfaces in ``RunResult.fault`` like every
    other structured termination.
    """

    kind = "TIMEOUT"

    def __init__(self, events: int, limit: int, pc: Optional[int] = None):
        super().__init__(f"watchdog: {events} kernel entries exceeded max_steps={limit}", pc)
        self.events = events
        self.limit = limit


class CoreFault(SimFault):
    """The executing *core* failed mid-task (died or glitched).

    Not a guest fault: the kernel never dispatches it to fault handlers.
    The resilience layer (:mod:`repro.resilience`) raises it from a
    chaos-armed step hook, checkpoints the interrupted context, and
    migrates the task to a surviving core.  ``mode`` is ``"dead"``
    (permanent loss) or ``"flaky"`` (transient glitch; the core may be
    quarantined after repeated offenses).
    """

    def __init__(self, core_id: int, mode: str, pc: Optional[int] = None):
        super().__init__(f"core {core_id} failed ({mode})", pc)
        self.core_id = core_id
        self.mode = mode


class MigrationLostFault(SimFault):
    """A checkpointed migration was dropped in flight.

    The scheduler detects the loss when the destination tries to pick the
    task up; the checkpoint is gone and the task restarts from entry.
    """

    def __init__(self, task_id: int, detail: str = ""):
        super().__init__(f"migration of task {task_id} lost in flight {detail}".rstrip())
        self.task_id = task_id


class CheckpointCorruptFault(SimFault):
    """A checkpoint failed checksum validation at restore time.

    Restoring it would silently diverge; the task restarts from entry
    instead.  Carries the expected/actual digests for diagnostics.
    """

    def __init__(self, task_id: int, expected: int, actual: int):
        super().__init__(
            f"checkpoint for task {task_id} corrupt: "
            f"checksum {actual:#010x} != recorded {expected:#010x}"
        )
        self.task_id = task_id
        self.expected = expected
        self.actual = actual
