"""Minimal Linux-like syscall ABI for simulated programs.

Programs request services via ``ecall`` with the syscall number in
``a7`` and arguments in ``a0..a5`` (the RISC-V Linux convention).  Only
the calls the workloads need are implemented.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.isa.registers import Reg
from repro.sim.faults import ExitRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cpu import Cpu
    from repro.sim.machine import Kernel, Process

SYS_EXIT = 93
SYS_WRITE = 64
SYS_SIGACTION = 134
SYS_SIGRETURN = 139
SYS_YIELD = 124

#: Fixed cycle cost charged per serviced syscall.
SYSCALL_COST = 50


def handle_syscall(kernel: "Kernel", process: "Process", cpu: "Cpu") -> None:
    """Service the ecall *cpu* just executed; advances pc past it."""
    number = cpu.get_reg(Reg.A7)
    a0 = cpu.get_reg(Reg.A0)
    cpu.cycles += SYSCALL_COST
    cpu.bump("syscalls")
    if number == SYS_EXIT:
        raise ExitRequest(a0 & 0xFF)
    if number == SYS_WRITE:
        buf = cpu.get_reg(Reg.A1)
        count = cpu.get_reg(Reg.A2)
        data = cpu.space.read(buf, count)
        process.output.extend(data)
        cpu.set_reg(Reg.A0, count)
    elif number == SYS_SIGACTION:
        signum = a0
        handler_addr = cpu.get_reg(Reg.A1)
        process.signal_handlers[signum] = handler_addr
        cpu.set_reg(Reg.A0, 0)
    elif number == SYS_SIGRETURN:
        kernel.signal_return(process, cpu)
        return  # pc restored from the saved context; do not advance
    elif number == SYS_YIELD:
        cpu.set_reg(Reg.A0, 0)
    else:
        cpu.set_reg(Reg.A0, -38 & 0xFFFFFFFFFFFFFFFF)  # -ENOSYS
    cpu.pc += 4
