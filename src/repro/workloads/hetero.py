"""The §6.1 heterogeneous computing workload and per-system cost models.

The paper's experiment: 1000 mixed tasks — *base tasks* (Fibonacci, not
vector-accelerable) and *extension tasks* (matrix multiplication) — on
4 base + 4 extension cores with work stealing, sweeping the extension
share from 0% to 100%, in two input flavors:

* **extension version** (Fig. 11a/b): binaries compiled with RVV.
  Running them on base cores requires *downgrading* (or, for FAM,
  migrating away).
* **base version** (Fig. 11c/d): binaries compiled for RV64GC only.
  Exploiting extension cores requires *upgrading* (FAM gets nothing).

Task costs are not invented: each (system, task kind, core kind) cell is
measured by actually rewriting the task binary with that system's
rewriter and running it in the CPU simulator.  The paper tuned its task
sizes to a 2:2:2:1 ratio (base-on-base : base-on-ext : ext-on-base :
ext-on-ext); the defaults below land close to that.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.core.scheduler import SystemModel, WorkStealingScheduler, mixed_taskset
from repro.harness import run_chimera, run_native, run_safer
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.cost import ArchParams, DEFAULT_ARCH
from repro.workloads.programs import FibonacciWorkload, MatMulWorkload

#: Systems compared in Fig. 11/12.
SYSTEMS = ("fam", "safer", "melf", "chimera")


@dataclass(frozen=True)
class HeteroCosts:
    """Measured cycles for every (system, task kind, core kind) cell."""

    version: str  # "ext" | "base"
    cells: dict[str, dict[tuple[str, bool], Optional[int]]]
    accelerated: dict[str, frozenset[tuple[str, bool]]]

    def model(self, system: str, params: ArchParams = DEFAULT_ARCH) -> SystemModel:
        """Build the scheduler-facing model for *system*."""
        return SystemModel(
            name=system,
            costs=self.cells[system],
            accelerated_placements=self.accelerated[system],
            migrate_on_unsupported=(system == "fam" and self.version == "ext"),
            detect_cycles=max(500, params.migration_cost // 20),
        )


def _measure(version: str, arch: ArchParams) -> HeteroCosts:
    fib = FibonacciWorkload(iterations=4800)
    mm = MatMulWorkload(n=12)

    fib_bin = fib.build("base")       # identical for both variants
    mm_ext = mm.build("ext")
    mm_base = mm.build("base")

    fib_cost = run_native(fib_bin, RV64GC, arch=arch).cycles
    mm_native_ext = run_native(mm_ext, RV64GCV, arch=arch).cycles
    mm_native_scalar = run_native(mm_base, RV64GC, arch=arch).cycles

    cells: dict[str, dict] = {}
    accel: dict[str, frozenset] = {}

    def base_task_cells(cost: int) -> dict:
        return {("base", False): cost, ("base", True): cost}

    if version == "ext":
        # Input: RVV binaries.  Downgrading is the interesting direction.
        ch_down = run_chimera(mm_ext, RV64GC, arch=arch).cycles
        ch_up = run_chimera(mm_ext, RV64GCV, arch=arch).cycles
        sf_down = run_safer(mm_ext, RV64GC, arch=arch).cycles
        sf_ext = run_safer(mm_ext, RV64GCV, arch=arch).cycles
        sf_fib = run_safer(fib_bin, RV64GC, arch=arch).cycles
        cells["fam"] = {**base_task_cells(fib_cost),
                        ("ext", True): mm_native_ext, ("ext", False): None}
        cells["melf"] = {**base_task_cells(fib_cost),
                         ("ext", True): mm_native_ext, ("ext", False): mm_native_scalar}
        cells["chimera"] = {**base_task_cells(fib_cost),
                            ("ext", True): ch_up, ("ext", False): ch_down}
        cells["safer"] = {**base_task_cells(sf_fib),
                          ("ext", True): sf_ext, ("ext", False): sf_down}
        for name in SYSTEMS:
            accel[name] = frozenset({("ext", True)})
    else:
        # Input: base-ISA binaries.  Upgrading is the interesting direction.
        ch_up = run_chimera(mm_base, RV64GCV, arch=arch).cycles
        ch_plain = run_chimera(mm_base, RV64GC, arch=arch).cycles
        sf_plain = run_safer(mm_base, RV64GC, arch=arch).cycles
        sf_fib = run_safer(fib_bin, RV64GC, arch=arch).cycles
        # Safer's upgrade quality modeled as Chimera's translation with
        # Safer's proactive-check overhead layered on (see DESIGN.md).
        sf_up = round(ch_up * sf_plain / max(1, ch_plain))
        cells["fam"] = {**base_task_cells(fib_cost),
                        ("ext", True): mm_native_scalar, ("ext", False): mm_native_scalar}
        cells["melf"] = {**base_task_cells(fib_cost),
                         ("ext", True): mm_native_ext, ("ext", False): mm_native_scalar}
        cells["chimera"] = {**base_task_cells(fib_cost),
                            ("ext", True): ch_up, ("ext", False): ch_plain}
        cells["safer"] = {**base_task_cells(sf_fib),
                          ("ext", True): sf_up, ("ext", False): sf_plain}
        accel["fam"] = frozenset()  # FAM cannot upgrade anything
        for name in ("melf", "chimera", "safer"):
            accel[name] = frozenset({("ext", True)})
    return HeteroCosts(version, cells, accel)


@lru_cache(maxsize=4)
def measure_hetero_costs(version: str, arch: ArchParams = DEFAULT_ARCH) -> HeteroCosts:
    """Measure (and cache) the §6.1 cost table for one input *version*."""
    if version not in ("ext", "base"):
        raise ValueError("version must be 'ext' or 'base'")
    return _measure(version, arch)


@dataclass
class Fig11Row:
    """One point of Fig. 11/12."""

    version: str
    system: str
    ext_share: float
    latency: int
    cpu_time: int
    accelerated_share: float
    migrations: int


def run_fig11(
    version: str,
    shares: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    *,
    n_tasks: int = 1000,
    n_base: int = 4,
    n_ext: int = 4,
    arch: ArchParams = DEFAULT_ARCH,
    systems: tuple[str, ...] = SYSTEMS,
) -> list[Fig11Row]:
    """Regenerate one version's worth of Fig. 11 (and Fig. 12) points."""
    costs = measure_hetero_costs(version, arch)
    scheduler = WorkStealingScheduler(n_base, n_ext, arch)
    rows: list[Fig11Row] = []
    for system in systems:
        model = costs.model(system, arch)
        for share in shares:
            tasks = mixed_taskset(n_tasks, share)
            result = scheduler.run(tasks, model)
            rows.append(Fig11Row(
                version=version,
                system=system,
                ext_share=share,
                latency=result.makespan,
                cpu_time=result.cpu_time,
                accelerated_share=result.accelerated_share,
                migrations=result.migrations,
            ))
    return rows
