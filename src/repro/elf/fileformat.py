"""On-disk container for :class:`~repro.elf.binary.Binary` images.

A minimal ELF-analog ("SELF", *Simulated ELF*) so binaries — including
rewritten ones with their fault/trap tables — can be saved, shipped, and
loaded by the CLI.  Layout: an 8-byte magic, a JSON header (entry, gp,
section/symbol/metadata descriptors), then raw section payloads.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Union

from repro.elf.binary import Binary, Perm, Section

MAGIC = b"SELF\x01\x00\x00\x00"

#: Metadata keys preserved across save/load (plain JSON data only).
_PLAIN_META = ("workload", "variant", "profile", "scale", "has_rvc",
               "stack_top", "stack_size")


class FileFormatError(ValueError):
    """The file is not a valid SELF image."""


def _perm_to_str(perm: Perm) -> str:
    return "".join(
        flag.name.lower() for flag in (Perm.R, Perm.W, Perm.X) if flag in perm
    ) or "-"


def _perm_from_str(text: str) -> Perm:
    perm = Perm.NONE
    for ch in text:
        perm |= {"r": Perm.R, "w": Perm.W, "x": Perm.X, "-": Perm.NONE}[ch]
    return perm


def _chimera_meta_to_json(meta: dict) -> dict:
    from repro.core.fault_table import FaultTable

    out = {
        "gp": meta.get("gp", 0),
        "vregs_base": meta.get("vregs_base", 0),
        "target_profile": meta.get("target_profile", ""),
        "trap_table": {str(k): v for k, v in meta.get("trap_table", {}).items()},
        "migration_unsafe": [list(r) for r in meta.get("migration_unsafe", ())],
    }
    table = meta.get("fault_table")
    if isinstance(table, FaultTable):
        out["fault_table"] = {str(k): v for k, v in table.entries.items()}
    stats = meta.get("stats")
    if stats is not None and hasattr(stats, "as_dict"):
        out["stats"] = stats.as_dict()
    elif isinstance(stats, dict):
        out["stats"] = stats
    if "patched_regions" in meta:
        out["patched_regions"] = [list(r) for r in meta["patched_regions"]]
    if "smile_regs" in meta:
        out["smile_regs"] = {str(k): v for k, v in meta["smile_regs"].items()}
    records = meta.get("patch_records")
    if records is not None:
        out["patch_records"] = [list(r.as_state()) for r in records]
    return out


def _chimera_meta_from_json(data: dict) -> dict:
    from repro.core.fault_table import FaultTable
    from repro.core.patcher import PatchStats
    from repro.verify.records import PatchRecord

    table = FaultTable()
    for k, v in data.get("fault_table", {}).items():
        table.add(int(k), int(v))
    stats = data.get("stats", {})
    try:
        stats = PatchStats(**stats)
    except TypeError:
        pass  # stats from a newer/older writer: keep the raw dict
    meta = {
        "gp": data.get("gp", 0),
        "vregs_base": data.get("vregs_base", 0),
        "target_profile": data.get("target_profile", ""),
        "trap_table": {int(k): int(v) for k, v in data.get("trap_table", {}).items()},
        "fault_table": table,
        "stats": stats,
        "migration_unsafe": [tuple(r) for r in data.get("migration_unsafe", [])],
    }
    if "patched_regions" in data:
        meta["patched_regions"] = [tuple(r) for r in data["patched_regions"]]
    if "smile_regs" in data:
        meta["smile_regs"] = {int(k): v for k, v in data["smile_regs"].items()}
    if "patch_records" in data:
        meta["patch_records"] = tuple(
            PatchRecord.from_state(state) for state in data["patch_records"])
    return meta


def _instr_to_json(instr) -> dict:
    return {"mnemonic": instr.mnemonic, "rd": instr.rd, "rs1": instr.rs1,
            "rs2": instr.rs2, "imm": instr.imm, "addr": instr.addr,
            "length": instr.length}


def _instr_from_json(data: dict):
    from repro.isa.instructions import Instruction

    return Instruction(
        data["mnemonic"], rd=data.get("rd"), rs1=data.get("rs1"),
        rs2=data.get("rs2"), imm=data.get("imm"),
        length=data.get("length", 4), addr=data.get("addr"),
    )


def _regen_meta_to_json(meta: dict) -> dict:
    """Safer/Multiverse metadata: check sites + address map + veneers."""
    return {
        "check_sites": {str(k): _instr_to_json(v) for k, v in meta["check_sites"].items()},
        "addr_map": {str(k): v for k, v in meta["addr_map"].items()},
        "veneers": {str(k): v for k, v in meta["veneers"].items()},
        "gp": meta.get("gp", 0),
    }


def _regen_meta_from_json(data: dict) -> dict:
    return {
        "check_sites": {int(k): _instr_from_json(v) for k, v in data["check_sites"].items()},
        "addr_map": {int(k): int(v) for k, v in data["addr_map"].items()},
        "veneers": {int(k): int(v) for k, v in data["veneers"].items()},
        "gp": data.get("gp", 0),
    }


def _armore_meta_to_json(meta: dict) -> dict:
    return {
        "trap_table": {str(k): v for k, v in meta["trap_table"].items()},
        "addr_map": {str(k): v for k, v in meta["addr_map"].items()},
        "trampoline_addrs": list(meta["trampoline_addrs"]),
    }


def _armore_meta_from_json(data: dict) -> dict:
    return {
        "trap_table": {int(k): int(v) for k, v in data["trap_table"].items()},
        "addr_map": {int(k): int(v) for k, v in data["addr_map"].items()},
        "trampoline_addrs": [int(a) for a in data["trampoline_addrs"]],
    }


def save_binary(binary: Binary, path: Union[str, Path]) -> None:
    """Serialize *binary* to *path*."""
    sections = []
    payload = bytearray()
    for s in binary.sections:
        sections.append({
            "name": s.name,
            "addr": s.addr,
            "size": s.size,
            "perm": _perm_to_str(s.perm),
            "offset": len(payload),
        })
        payload.extend(s.data)
    header = {
        "name": binary.name,
        "entry": binary.entry,
        "gp": binary.global_pointer,
        "sections": sections,
        "symbols": [
            {"name": sym.name, "addr": sym.addr, "size": sym.size, "kind": sym.kind}
            for sym in binary.symbols.values()
        ],
        "metadata": {k: binary.metadata[k] for k in _PLAIN_META if k in binary.metadata},
    }
    if "chimera" in binary.metadata:
        header["chimera"] = _chimera_meta_to_json(binary.metadata["chimera"])
    for key in ("safer", "multiverse"):
        if key in binary.metadata:
            header[key] = _regen_meta_to_json(binary.metadata[key])
    if "armore" in binary.metadata:
        header["armore"] = _armore_meta_to_json(binary.metadata["armore"])
    blob = json.dumps(header).encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(struct.pack("<I", len(blob)))
        fh.write(blob)
        fh.write(payload)


def load_binary_file(path: Union[str, Path]) -> Binary:
    """Deserialize a SELF image from *path*."""
    data = Path(path).read_bytes()
    if data[:8] != MAGIC:
        raise FileFormatError(f"{path}: bad magic (not a SELF image)")
    (hlen,) = struct.unpack_from("<I", data, 8)
    try:
        header = json.loads(data[12:12 + hlen].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FileFormatError(f"{path}: corrupt header") from exc
    payload = data[12 + hlen:]

    binary = Binary(header["name"], entry=header["entry"], global_pointer=header["gp"])
    for s in header["sections"]:
        chunk = payload[s["offset"]:s["offset"] + s["size"]]
        if len(chunk) != s["size"]:
            raise FileFormatError(f"{path}: truncated section {s['name']}")
        binary.add_section(Section(s["name"], s["addr"], bytearray(chunk),
                                   _perm_from_str(s["perm"])))
    for sym in header.get("symbols", []):
        binary.add_symbol(sym["name"], sym["addr"], sym.get("size", 0), sym.get("kind", "label"))
    binary.metadata.update(header.get("metadata", {}))
    if "chimera" in header:
        binary.metadata["chimera"] = _chimera_meta_from_json(header["chimera"])
    for key in ("safer", "multiverse"):
        if key in header:
            binary.metadata[key] = _regen_meta_from_json(header[key])
    if "armore" in header:
        binary.metadata["armore"] = _armore_meta_from_json(header["armore"])
    return binary
