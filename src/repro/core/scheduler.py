"""Heterogeneous work-stealing scheduling (paper §6.1).

The evaluation's scheduling experiments run 1000 mixed tasks over two
worker pools (base cores / extension cores) with work stealing: a worker
takes from its own pool's queue first and steals from the other pool
only when its own pool has run dry.  Task *costs* are measured by
running the actual (rewritten) binaries in the CPU simulator; the
discrete-event engine here then replays the same 1000-task mixes per
system, which is exactly how the paper's numbers are shaped (per-task
compute is fixed by the binary; the systems differ in where tasks may
run and at what cost).

System behavior is abstracted by :class:`SystemModel`:

* ``cost(kind, on_ext)`` — cycles for one task of *kind* on a core type
  (``None`` = cannot run there, e.g. FAM's extension tasks on base
  cores);
* ``accelerated(kind, on_ext)`` — whether that placement counts as
  vector-accelerated (Fig. 12);
* ``migrate_on_unsupported`` — FAM's fault-and-migrate behavior: the
  task faults on the base core after ``detect_cycles`` and is re-queued
  to the extension pool, paying the migration cost.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.cost import ArchParams, DEFAULT_ARCH


@dataclass(frozen=True)
class Task:
    """One schedulable unit of the §6.1 workload."""

    task_id: int
    kind: str  # "base" | "ext"


@dataclass
class SystemModel:
    """Per-system scheduling behavior (costs in cycles)."""

    name: str
    #: (task kind, on extension core) -> cycles, or None if it cannot run.
    costs: dict[tuple[str, bool], Optional[int]]
    #: placements that count as vector-accelerated.
    accelerated_placements: frozenset[tuple[str, bool]] = frozenset()
    #: FAM: unsupported-instruction fault triggers migration to ext pool.
    migrate_on_unsupported: bool = False
    #: cycles a base core burns before hitting the unsupported instruction.
    detect_cycles: int = 1000

    def cost(self, kind: str, on_ext: bool) -> Optional[int]:
        return self.costs[(kind, on_ext)]

    def accelerated(self, kind: str, on_ext: bool) -> bool:
        return (kind, on_ext) in self.accelerated_placements


@dataclass
class ScheduleResult:
    """Outcome of one scheduling run."""

    system: str
    makespan: int          # end-to-end latency, cycles
    cpu_time: int          # accumulated busy cycles across all cores
    tasks_total: int
    ext_tasks: int
    accelerated_ext_tasks: int
    migrations: int
    steals: int
    per_core_busy: list[int]

    @property
    def accelerated_share(self) -> float:
        """Fraction of extension tasks that ran vector-accelerated (Fig. 12)."""
        if self.ext_tasks == 0:
            return 0.0
        return self.accelerated_ext_tasks / self.ext_tasks


class WorkStealingScheduler:
    """Discrete-event work-stealing scheduler over two core pools."""

    def __init__(self, n_base: int, n_ext: int, params: ArchParams = DEFAULT_ARCH):
        self.n_base = n_base
        self.n_ext = n_ext
        self.params = params

    def run(self, tasks: list[Task], model: SystemModel) -> ScheduleResult:
        """Schedule *tasks* to completion under *model*."""
        n = self.n_base + self.n_ext
        is_ext = [i >= self.n_base for i in range(n)]
        # Queue entries are (task, pinned); a pinned task may not be
        # stolen across pools (FAM pins tasks after migrating them back).
        queues: dict[bool, deque[tuple[Task, bool]]] = {False: deque(), True: deque()}
        for task in tasks:
            pool = task.kind == "ext" and model.cost("ext", True) is not None
            # Extension tasks go to the extension pool when it can help;
            # everything else starts in the base pool.
            queues[bool(pool)].append((task, False))

        free_at = [0] * n
        busy = [0] * n
        heap: list[tuple[int, int]] = [(0, i) for i in range(n)]
        heapq.heapify(heap)
        idle: set[int] = set()
        outstanding = len(tasks)
        makespan = 0
        migrations = 0
        steals = 0
        accelerated = 0
        ext_tasks = sum(1 for t in tasks if t.kind == "ext")

        def wake(pool_ext: bool, now: int) -> None:
            """Wake an idle worker of *pool_ext*'s pool (stealing happens
            naturally when busy workers free up)."""
            matching = sorted((w for w in idle if is_ext[w] == pool_ext),
                              key=lambda w: free_at[w])
            if matching:
                w = matching[0]
                idle.discard(w)
                heapq.heappush(heap, (max(now, free_at[w]), w))
                return
            # Otherwise wake any idle worker; it may steal the new task.
            others = sorted(idle, key=lambda w: free_at[w])
            if others:
                w = others[0]
                idle.discard(w)
                heapq.heappush(heap, (max(now, free_at[w]), w))

        def take(w: int, my_pool: bool) -> Optional[tuple[Task, bool]]:
            if queues[my_pool]:
                task, _ = queues[my_pool].popleft()
                return task, False
            other = queues[not my_pool]
            for idx, (task, pinned) in enumerate(other):
                if not pinned:
                    del other[idx]
                    return task, True
            return None

        while heap:
            now, w = heapq.heappop(heap)
            my_pool = is_ext[w]
            taken = take(w, my_pool)
            if taken is None:
                if outstanding > 0:
                    idle.add(w)
                    free_at[w] = now
                continue
            task, stolen = taken
            start = now + (self.params.steal_cost if stolen else 0)
            cost = model.cost(task.kind, my_pool)
            if cost is None:
                if model.migrate_on_unsupported and not my_pool:
                    # FAM: fault after detect_cycles, migrate to ext pool
                    # and pin the task there so it is not re-stolen.  The
                    # worker is stalled until the migration completes but
                    # only the detection burns CPU time (the rest is
                    # kernel/cache latency).
                    end = start + model.detect_cycles + self.params.migration_cost
                    busy[w] += (start - now) + model.detect_cycles
                    free_at[w] = end
                    migrations += 1
                    queues[True].append((task, True))
                    wake(True, end)
                    heapq.heappush(heap, (end, w))
                    makespan = max(makespan, end)
                    continue
                # Cannot run here at all: pin it to its own pool.
                queues[task.kind == "ext"].append((task, True))
                idle.add(w)
                free_at[w] = now
                wake(task.kind == "ext", now)
                continue
            end = start + cost
            busy[w] += end - now
            free_at[w] = end
            outstanding -= 1
            steals += int(stolen)
            if task.kind == "ext" and model.accelerated(task.kind, my_pool):
                accelerated += 1
            makespan = max(makespan, end)
            heapq.heappush(heap, (end, w))

        return ScheduleResult(
            system=model.name,
            makespan=makespan,
            cpu_time=sum(busy),
            tasks_total=len(tasks),
            ext_tasks=ext_tasks,
            accelerated_ext_tasks=accelerated,
            migrations=migrations,
            steals=steals,
            per_core_busy=busy,
        )


def mixed_taskset(n_tasks: int, ext_share: float, *, seed: int = 7) -> list[Task]:
    """The §6.1 workload: *n_tasks* tasks, ``ext_share`` of them extension.

    Deterministic interleaving (round-robin by share) so runs are
    reproducible without RNG-order artifacts.
    """
    if not 0.0 <= ext_share <= 1.0:
        raise ValueError("ext_share must be within [0, 1]")
    n_ext = round(n_tasks * ext_share)
    # Spread extension tasks evenly through the arrival order.
    tasks: list[Task] = []
    acc = 0.0
    made_ext = 0
    for i in range(n_tasks):
        acc += ext_share
        if acc >= 1.0 - 1e-9 and made_ext < n_ext:
            tasks.append(Task(i, "ext"))
            made_ext += 1
            acc -= 1.0
        else:
            tasks.append(Task(i, "base"))
    # Fix rounding drift.
    i = len(tasks) - 1
    while made_ext < n_ext and i >= 0:
        if tasks[i].kind == "base":
            tasks[i] = Task(tasks[i].task_id, "ext")
            made_ext += 1
        i -= 1
    return tasks
