"""``Cpu.run`` hot-loop micro-fixes, measured in isolation.

Two before/after comparisons backing the run-loop changes:

* **counter bump** — the old ``counters.get(name, 0) + 1`` read-modify-
  write against the ``defaultdict(int)`` bump the loop uses now
  (``python -m timeit``-style, best of 5).
* **hook hoist** — the interpreter loop with a live no-op ``step_hook``
  (every step pays the truthiness checks *and* the Python call, the
  shape of the old unhoisted loop) against the hoisted no-hook loop,
  and against the superblock engine on the same program.  All three
  must retire the same architectural state.

Plus three trace-tier shapes, each block-cache-only vs traces-on:

* **guard-heavy** — a loop whose body crosses several always-same-
  direction branches, so one trip chains many superblocks and every
  guard predicts; the trace tier's best case.
* **side-exit-heavy** — a data-dependent flip-flop branch that forces a
  guard side exit every other trip; the trace tier's worst case, gated
  only against catastrophic regression.
* **megamorphic** — an indirect ``jr`` dispatch rotating through three
  targets, so the recorded target mispredicts two trips out of three.

Wall-clock floors are deliberately loose — these are micro measurements
on shared CI boxes; ``BENCH_runloop.json`` carries the real numbers.
"""

import timeit
from collections import defaultdict

import pytest

from benchmarks.helpers import emit_bench, print_table
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import PROFILES
from repro.sim.machine import Core, Kernel
from repro.telemetry import MetricsRegistry

RV64GC = PROFILES["rv64gc"]
ITERATIONS = 20_000  # ~3 instructions per loop trip


def _loop_binary():
    b = ProgramBuilder("runloop-microbench")
    b.set_text(f"""
_start:
    li t1, 0
    li t0, {ITERATIONS}
loop:
    addi t1, t1, 1
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
""")
    return b.build()


def _guard_heavy_binary():
    """One loop trip crosses three always-same-direction branches: the
    trace chains four superblocks and every guard holds."""
    b = ProgramBuilder("runloop-guard-heavy")
    b.set_text(f"""
_start:
    li t1, 0
    li t2, 0
    li t0, {ITERATIONS}
loop:
    addi t1, t1, 1
    beqz t2, g1
    addi t2, t2, 7
g1:
    bge t1, zero, g2
    addi t2, t2, 9
g2:
    bnez t1, g3
    addi t2, t2, 11
g3:
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
""")
    return b.build()


def _side_exit_heavy_binary():
    """The parity branch flips every trip, so whichever direction the
    trace recorded, the guard side-exits on the next iteration."""
    b = ProgramBuilder("runloop-side-exit-heavy")
    b.set_text(f"""
_start:
    li t1, 0
    li t3, 0
    li t0, {ITERATIONS}
loop:
    andi t2, t0, 1
    beqz t2, even
    addi t1, t1, 1
    j join
even:
    addi t3, t3, 1
join:
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
""")
    return b.build()


def _megamorphic_binary():
    """An indirect dispatch rotating three targets: the trace records
    one of them and mispredicts the ``jr`` two trips out of three."""
    b = ProgramBuilder("runloop-megamorphic")
    b.set_text(f"""
_start:
    li t1, 0
    la s2, tgt_a
    la s3, tgt_b
    la s4, tgt_c
    li t0, {ITERATIONS}
loop:
    mv t3, s2
    mv s2, s3
    mv s3, s4
    mv s4, t3
    jr t3
tgt_a:
    addi t1, t1, 1
    j next
tgt_b:
    addi t1, t1, 2
    j next
tgt_c:
    addi t1, t1, 3
next:
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
""")
    return b.build()


def _bump_timings():
    """Best-of-5 seconds for each counter-bump pattern (400k bumps)."""
    names = ("instret", "cycles", "loads", "stores") * 100_000

    def before():
        counters = {}
        for name in names:
            counters[name] = counters.get(name, 0) + 1
        return counters

    def after():
        counters = defaultdict(int)
        for name in names:
            counters[name] += 1
        return counters

    assert dict(after()) == before()
    return (min(timeit.repeat(before, repeat=5, number=1)),
            min(timeit.repeat(after, repeat=5, number=1)))


def _run_loop(binary, *, block_cache, trace_cache=False, hook=None):
    kernel = Kernel(block_cache=block_cache, trace_cache=trace_cache)
    process = make_process(binary)
    cpu = kernel.make_cpu(process, Core(0, RV64GC))
    if hook is not None:
        cpu.step_hook = hook
    t0 = timeit.default_timer()
    result = kernel.run(process, Core(0, RV64GC), cpu=cpu)
    dt = timeit.default_timer() - t0
    assert result.ok, f"microbench loop died: {result.fault!r}"
    return dt, result


def _best_run(binary, *, block_cache, trace_cache=False, hook=None,
              rounds=3):
    best, result = None, None
    for _ in range(rounds):
        dt, result = _run_loop(binary, block_cache=block_cache,
                               trace_cache=trace_cache, hook=hook)
        best = dt if best is None else min(best, dt)
    return best, result


def _trace_pair(binary):
    """(block-only seconds, trace seconds, trace result) for *binary*,
    asserting the two runs retire identical architectural state."""
    block_s, block = _best_run(binary, block_cache=True)
    trace_s, traced = _best_run(binary, block_cache=True, trace_cache=True)
    assert (traced.exit_code, traced.instret, traced.cycles) == \
        (block.exit_code, block.instret, block.cycles), \
        "trace-tier microbench diverged architecturally"
    assert traced.counters.get("trace_instret", 0) > 0
    return block_s, trace_s, traced


@pytest.fixture(scope="module")
def measurements():
    before_bump, after_bump = _bump_timings()
    binary = _loop_binary()
    hooked_s, hooked = _best_run(binary, block_cache=False,
                                 hook=lambda cpu: None)
    hoisted_s, hoisted = _best_run(binary, block_cache=False)
    super_s, fast = _best_run(binary, block_cache=True)
    for other in (hoisted, fast):
        assert (other.exit_code, other.instret, other.cycles) == \
            (hooked.exit_code, hooked.instret, hooked.cycles), \
            "run-loop variants diverged architecturally"

    guard_block_s, guard_trace_s, guard = _trace_pair(_guard_heavy_binary())
    assert guard.counters.get("trace_cache_hits", 0) > 0
    exit_block_s, exit_trace_s, exits = _trace_pair(
        _side_exit_heavy_binary())
    assert exits.counters.get("trace_side_exits", 0) > 0
    mega_block_s, mega_trace_s, mega = _trace_pair(_megamorphic_binary())
    assert mega.counters.get("trace_side_exits", 0) > 0

    return {
        "bump_before_s": before_bump,
        "bump_after_s": after_bump,
        "interp_hooked_s": hooked_s,
        "interp_hoisted_s": hoisted_s,
        "superblock_s": super_s,
        "guard_block_s": guard_block_s,
        "guard_trace_s": guard_trace_s,
        "side_exit_block_s": exit_block_s,
        "side_exit_trace_s": exit_trace_s,
        "megamorphic_block_s": mega_block_s,
        "megamorphic_trace_s": mega_trace_s,
        "instret": hooked.instret,
    }


def test_runloop_microbench(measurements):
    m = measurements
    bump = m["bump_before_s"] / m["bump_after_s"]
    hoist = m["interp_hooked_s"] / m["interp_hoisted_s"]
    superblock = m["interp_hooked_s"] / m["superblock_s"]
    guard = m["guard_block_s"] / m["guard_trace_s"]
    side_exit = m["side_exit_block_s"] / m["side_exit_trace_s"]
    megamorphic = m["megamorphic_block_s"] / m["megamorphic_trace_s"]
    ips = {key: m["instret"] / m[f"interp_{key}_s"]
           for key in ("hooked", "hoisted")}
    ips["superblock"] = m["instret"] / m["superblock_s"]
    print_table(
        f"Cpu.run micro-fixes ({m['instret']} retired, best of 3)",
        ["measurement", "before", "after", "speedup"],
        [
            ["counter bump (400k)", f"{m['bump_before_s'] * 1e3:.1f}ms",
             f"{m['bump_after_s'] * 1e3:.1f}ms", f"{bump:.2f}x"],
            ["interp loop (hook vs hoisted)",
             f"{m['interp_hooked_s'] * 1e3:.1f}ms",
             f"{m['interp_hoisted_s'] * 1e3:.1f}ms", f"{hoist:.2f}x"],
            ["interp hooked vs superblock",
             f"{m['interp_hooked_s'] * 1e3:.1f}ms",
             f"{m['superblock_s'] * 1e3:.1f}ms", f"{superblock:.2f}x"],
            ["trace tier: guard-heavy",
             f"{m['guard_block_s'] * 1e3:.1f}ms",
             f"{m['guard_trace_s'] * 1e3:.1f}ms", f"{guard:.2f}x"],
            ["trace tier: side-exit-heavy",
             f"{m['side_exit_block_s'] * 1e3:.1f}ms",
             f"{m['side_exit_trace_s'] * 1e3:.1f}ms", f"{side_exit:.2f}x"],
            ["trace tier: megamorphic jr",
             f"{m['megamorphic_block_s'] * 1e3:.1f}ms",
             f"{m['megamorphic_trace_s'] * 1e3:.1f}ms",
             f"{megamorphic:.2f}x"],
        ],
    )
    registry = MetricsRegistry()
    registry.gauge("bench.counter_bump_speedup", bump)
    registry.gauge("bench.hook_hoist_speedup", hoist)
    registry.gauge("bench.superblock_vs_hooked_speedup", superblock)
    registry.gauge("bench.trace_guard_heavy_speedup", guard)
    registry.gauge("bench.trace_side_exit_heavy_speedup", side_exit)
    registry.gauge("bench.trace_megamorphic_speedup", megamorphic)
    for variant, value in ips.items():
        registry.gauge("bench.interp_instructions_per_second", value,
                       variant=variant)
    emit_bench("runloop", registry)

    # defaultdict bump beats the get() pattern; generous slack for noise.
    assert bump > 0.9, f"defaultdict counter bump regressed ({bump:.2f}x)"
    # Dropping the per-step hook dispatch must never cost time.
    assert hoist > 0.95, f"hoisted loop slower than hooked ({hoist:.2f}x)"
    assert superblock > 1.0, \
        f"superblock lost to the hooked interpreter ({superblock:.2f}x)"
    # Guard-heavy is the trace tier's best case and must win outright;
    # the hostile shapes only have to avoid catastrophic regression
    # (every side exit pays guard + dispatch overhead by design).
    assert guard > 1.0, \
        f"trace tier lost its guard-heavy best case ({guard:.2f}x)"
    assert side_exit > 0.4, \
        f"side-exit-heavy collapse under traces ({side_exit:.2f}x)"
    assert megamorphic > 0.4, \
        f"megamorphic collapse under traces ({megamorphic:.2f}x)"
