"""End-to-end traced pipeline: build → rewrite → execute → schedule.

``python -m repro trace <workload>`` (and ``run <workload>
--telemetry-out DIR``) drive one workload through every instrumented
layer and dump the combined telemetry:

1. **build** — construct the workload binary (extension variant);
2. **rewrite** — CHBP-patch it for the base-core profile
   (``patch.trampolines{kind=...}``, ``translate.instructions{...}``);
3. **execute** — run the rewritten binary on a base core with the
   Chimera runtime installed, so SMILE trampolines actually fire
   (``cpu.instret{class=...}``, ``sim.faults{type=...}``,
   ``runtime.events{kind=...}``);
4. **schedule** — a small measured work-stealing probe over an
   asymmetric two-core taskset with a flaky core, exercising steals,
   checkpointing, and retries (``sched.steals{core=...}``,
   ``resilience.retries``, ``resilience.checkpoint_bytes``).

The result is one trace/metrics pair whose series span all four layers
— :func:`verify_four_layers` checks exactly that (the repo's acceptance
gate and the CI smoke test).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry import Telemetry, use


def resolve_workload(name: str, *, variant: str = "ext", scale: int = 128):
    """Build a workload binary by kernel name or synthetic-profile name."""
    from repro.workloads.programs import ALL_WORKLOADS
    from repro.workloads.spec_profiles import PROFILES
    from repro.workloads.synthetic import SyntheticBinary

    if name in ALL_WORKLOADS:
        return ALL_WORKLOADS[name].build(variant)
    if name in PROFILES:
        return SyntheticBinary(PROFILES[name], scale=scale).build()
    choices = sorted(ALL_WORKLOADS) + sorted(PROFILES)
    raise ValueError(f"unknown workload {name!r}; choose from {choices}")


@dataclass
class TracedRun:
    """Outcome of one traced pipeline run."""

    workload: str
    exit_code: int
    cycles: int
    instret: int
    counters: dict = field(default_factory=dict)
    fault: object = None
    output: bytes = b""
    telemetry: Telemetry = None
    #: Hot-block histogram from the uninstrumented profiling pass
    #: (``hot_blocks=N``): (entry pc, cached executions), hottest first.
    #: Empty unless profiling was requested — the instrumented run
    #: itself executes through the step fallback and builds no blocks.
    hot_blocks: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.exit_code == 0 and self.fault is None


def run_traced_workload(
    name: str,
    *,
    variant: str = "ext",
    scale: int = 128,
    target: str = "rv64gc",
    max_instructions: int = 50_000_000,
    telemetry: Telemetry | None = None,
    probe: bool = True,
    jobs: int = 1,
    cache_dir: str | None = None,
    executor: str | None = None,
    hot_blocks: int = 0,
) -> TracedRun:
    """Drive *name* through the full instrumented pipeline.

    With *cache_dir* the rewrite goes through the verified-rewrite
    pipeline (:mod:`repro.core.pipeline`): the binary is admission-
    verified once, cached content-addressed, and later runs load the
    released image instead of re-translating.
    """
    from repro.core.rewriter import ChimeraRewriter
    from repro.core.runtime import ChimeraRuntime
    from repro.elf.loader import make_process
    from repro.isa.extensions import PROFILES as ISA_PROFILES
    from repro.sim.machine import Core, Kernel

    profile = ISA_PROFILES[target]
    telemetry = telemetry or Telemetry()
    with use(telemetry):
        with telemetry.span("trace.pipeline", workload=name):
            with telemetry.span("trace.build", workload=name, variant=variant):
                binary = resolve_workload(name, variant=variant, scale=scale)

            rewriter = ChimeraRewriter()
            if cache_dir is not None:
                from repro.core.pipeline import rewrite_and_verify

                rewrite = rewrite_and_verify(
                    binary, profile, rewriter=rewriter, oracle_trials=1,
                    jobs=jobs, cache_dir=cache_dir, executor=executor,
                ).result
            else:
                rewrite = rewriter.rewrite(binary, profile)

            with telemetry.span("trace.execute", core=target):
                kernel = Kernel()
                ChimeraRuntime(
                    rewrite.binary, rewriter=rewriter, original=binary
                ).install(kernel)
                process = make_process(rewrite.binary)
                result = kernel.run(process, Core(0, profile),
                                    max_instructions=max_instructions)

            if probe:
                with telemetry.span("trace.schedule_probe"):
                    _scheduling_probe()

    hot: list = []
    if hot_blocks:
        # Profiling pass outside the telemetry context: the instrumented
        # run above traces every retired instruction, which (by the
        # bit-identical fallback contract) bypasses the superblock/trace
        # tiers entirely — so the hot-block profiler only sees anything
        # on a plain uninstrumented run.
        kernel = Kernel()
        ChimeraRuntime(
            rewrite.binary, rewriter=rewriter, original=binary
        ).install(kernel)
        profiled = kernel.run(make_process(rewrite.binary), Core(0, profile),
                              max_instructions=max_instructions)
        hot = profiled.hot_blocks[:hot_blocks]

    return TracedRun(
        workload=name,
        exit_code=result.exit_code,
        cycles=result.cycles,
        instret=result.instret,
        counters=dict(result.counters),
        fault=result.fault,
        output=result.output,
        telemetry=telemetry,
        hot_blocks=hot,
    )


def _scheduling_probe(seed: int = 1) -> None:
    """A small measured work-stealing run with one flaky core.

    One base + one extension core over an asymmetric mix: the extension
    core drains its short queue and then steals base tasks (non-zero
    ``sched.steals``), while the flake on the base core forces a
    checkpoint + retry (non-zero ``resilience.retries`` and
    ``resilience.checkpoint_bytes``).
    """
    from repro.core.machine_runner import HeteroTask, MeasuredScheduler
    from repro.resilience.failures import CoreFailureInjector

    tasks = [HeteroTask(i, "base", 200) for i in range(4)]
    tasks += [HeteroTask(4 + i, "ext", 4) for i in range(2)]
    injector = CoreFailureInjector.flake(
        0, count=1, after_instructions=80, seed=seed)
    scheduler = MeasuredScheduler(1, 1, max_instructions=200_000)
    scheduler.run(tasks, "chimera", injector=injector)


#: Metric totals that must be non-zero for each pipeline layer.
LAYER_REQUIREMENTS: dict[str, tuple[str, ...]] = {
    "rewriting": ("patch.trampolines",),
    "scheduling": ("sched.steals",),
    "simulation": ("cpu.instret", "sim.faults"),
    "resilience": ("resilience.retries", "resilience.checkpoints"),
}


def verify_four_layers(metrics) -> list[str]:
    """Check that *metrics* carries non-zero series from all four layers.

    Returns the missing requirements as ``layer:metric`` strings — empty
    means the ledger spans rewriting, scheduling, simulation, and
    resilience.
    """
    missing = []
    for layer, names in LAYER_REQUIREMENTS.items():
        for metric in names:
            if metrics.total(metric) <= 0:
                missing.append(f"{layer}:{metric}")
    return missing
