"""End-to-end batch service: a concurrent batch of duplicate submits
performs exactly one rewrite+verify (observable in the service stats),
every client receives a ledger byte-identical to a serial local run, the
cache survives a server restart as warm hits, malformed jobs bounce with
structured faults, and a key that keeps crashing is quarantined."""

import asyncio

import pytest

from repro.core.pipeline import CacheLayout, rewrite_and_verify
from repro.isa.extensions import PROFILES
from repro.resilience.failures import JOB_CRASH, JOB_POISONED, JOB_REJECTED
from repro.resilience.policy import RetryPolicy
from repro.service.client import submit_jobs
from repro.service.server import RewriteService
from repro.telemetry.pipeline import resolve_workload

SEED = 20260806
NO_RETRY = RetryPolicy(max_attempts=1)


@pytest.fixture(autouse=True)
def _fixed_seed(monkeypatch):
    monkeypatch.setenv("REPRO_FUZZ_SEED", str(SEED))


def _spec(job_id, workload="dot", **extra):
    spec = {"op": "submit", "id": job_id, "workload": workload,
            "seed": SEED, "oracle_trials": 1}
    spec.update(extra)
    return spec


def _serve(tmp_path, coro_fn, *, shards=4, jobs=2, **service_kw):
    """Run *coro_fn(service, address)* against a live unix-socket server."""

    async def harness():
        layout = CacheLayout(tmp_path / "cache", shards=shards)
        service = RewriteService(layout, jobs=jobs, **service_kw)
        address = await service.start(
            socket_path=str(tmp_path / "serve.sock"))
        server_task = asyncio.ensure_future(service.serve_until_shutdown())
        try:
            return await coro_fn(service, address)
        finally:
            service.shutdown()
            await server_task

    return asyncio.run(harness())


def _reference_ledger():
    """What a serial local `repro verify dot --report` writes."""
    pipe = rewrite_and_verify(
        resolve_workload("dot", variant="ext", scale=128),
        PROFILES["rv64gc"], seed=SEED, oracle_trials=1)
    return pipe.report.to_json()


class TestBatchDedup:
    def test_duplicate_batch_runs_once(self, tmp_path):
        out = tmp_path / "ledgers"

        async def scenario(service, address):
            specs = [_spec(f"dup-{i}") for i in range(6)]
            records = await submit_jobs(address, specs, concurrency=6,
                                        out_dir=out, retry_policy=NO_RETRY)
            return service.stats, records

        stats, records = _serve(tmp_path, scenario)
        assert all(r["status"] == "ok" and r["verify_ok"] for r in records)
        # The acceptance bar: one rewrite+verify for the whole batch.
        assert stats.rewrites == 1
        classes = sorted(r["cache"] for r in records)
        assert classes.count("cold") == 1
        assert stats.jobs_deduped_inflight + stats.jobs_deduped_cache == 5
        assert stats.queue_depth == 0
        # All six share one release key and one shard.
        assert len({r["key"] for r in records}) == 1
        assert len({r["shard"] for r in records}) == 1

    def test_ledgers_byte_identical_to_serial_verify(self, tmp_path):
        out = tmp_path / "ledgers"

        async def scenario(service, address):
            return await submit_jobs(
                address, [_spec("a"), _spec("b")], concurrency=2,
                out_dir=out, retry_policy=NO_RETRY)

        records = _serve(tmp_path, scenario)
        reference = _reference_ledger()
        for record in records:
            assert (out / f"{record['id']}.report.json").read_bytes() == \
                reference.encode("utf-8")

    def test_warm_hits_survive_a_server_restart(self, tmp_path):
        async def first(service, address):
            return await submit_jobs(address, [_spec("cold-run")],
                                     retry_policy=NO_RETRY)

        async def second(service, address):
            records = await submit_jobs(address, [_spec("warm-run")],
                                        retry_policy=NO_RETRY)
            return service.stats, records

        _serve(tmp_path, first)
        stats, records = _serve(tmp_path, second)
        assert records[0]["cache"] == "warm"
        assert stats.rewrites == 0 and stats.jobs_deduped_cache == 1


class TestRejection:
    def test_unknown_workload_is_a_structured_fault(self, tmp_path):
        async def scenario(service, address):
            records = await submit_jobs(
                address,
                [_spec("bad", workload="no-such-workload"), _spec("good")],
                retry_policy=NO_RETRY)
            return service.stats, records

        stats, records = _serve(tmp_path, scenario)
        by_id = {r["id"]: r for r in records}
        assert by_id["bad"]["status"] == "failed"
        assert by_id["bad"]["fault"]["fault"] == JOB_REJECTED
        # The server survived and ran the good job on the same socket.
        assert by_id["good"]["status"] == "ok"
        assert stats.jobs_rejected == 1 and stats.rewrites == 1

    def test_malformed_submit_bounces(self, tmp_path):
        async def scenario(service, address):
            records = await submit_jobs(
                address, [{"op": "submit", "id": "half"}],
                retry_policy=NO_RETRY)
            return service.stats, records

        stats, records = _serve(tmp_path, scenario)
        assert records[0]["fault"]["fault"] == JOB_REJECTED
        assert stats.jobs_accepted == 0


class TestPoisonQuarantine:
    def test_crashing_key_is_quarantined(self, tmp_path, monkeypatch):
        import repro.service.server as server_mod

        def explode(job, **kw):
            raise RuntimeError("synthetic pipeline crash")

        monkeypatch.setattr(server_mod, "run_job", explode)

        async def scenario(service, address):
            faults = []
            for attempt in ("one", "two", "three"):
                records = await submit_jobs(address, [_spec(attempt)],
                                            retry_policy=NO_RETRY)
                faults.append(records[0]["fault"])
            return service.stats, faults

        stats, faults = _serve(tmp_path, scenario)
        assert faults[0]["fault"] == JOB_CRASH and not faults[0]["quarantined"]
        assert faults[1]["fault"] == JOB_CRASH and faults[1]["quarantined"]
        # Third submit never reaches the pipeline: refused on admission.
        assert faults[2]["fault"] == JOB_POISONED
        assert stats.jobs_failed == 2 and stats.jobs_quarantined == 1
        assert stats.queue_depth == 0

    def test_other_keys_still_run_past_a_poisoned_one(self, tmp_path,
                                                      monkeypatch):
        import repro.service.server as server_mod

        real_run_job = server_mod.run_job

        def explode_dot(job, **kw):
            if getattr(job.binary, "name", "").startswith("dot"):
                raise RuntimeError("synthetic pipeline crash")
            return real_run_job(job, **kw)

        monkeypatch.setattr(server_mod, "run_job", explode_dot)

        async def scenario(service, address):
            for attempt in ("one", "two"):
                await submit_jobs(address, [_spec(attempt)],
                                  retry_policy=NO_RETRY)
            records = await submit_jobs(
                address, [_spec("healthy", workload="gemv")],
                retry_policy=NO_RETRY)
            return service.stats, records

        stats, records = _serve(tmp_path, scenario)
        assert records[0]["status"] == "ok"
        assert stats.rewrites == 1 and stats.jobs_failed == 2
