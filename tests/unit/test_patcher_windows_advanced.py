"""Advanced window-selection and allocator-statistic cases."""

import pytest

from repro.core.patcher import ChbpPatcher
from repro.elf.builder import ProgramBuilder
from repro.isa.extensions import RV64GC


def build(text, data=None):
    b = ProgramBuilder("w")
    for k, v in (data or {"buf": [1, 2, 3, 4] + [0] * 8}).items():
        b.add_words(k, v)
    b.set_text(text)
    return b.build()


class TestLeftShiftedWindows:
    def test_source_before_terminator_shifts_left(self):
        """A source whose only following neighbor is a branch forces the
        window to start at the preceding instructions instead."""
        binary = build("""
_start:
    li a0, {buf}
    li a1, 2
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vse64.v v1, (a0)
    mv a2, a3
    mv a3, a4
lonely:
    vadd.vv v2, v1, v1
    beqz a2, out
    nop
out:
    li a7, 93
    li a0, 0
    ecall
""")
        patcher = ChbpPatcher(binary, RV64GC, enable_upgrades=False)
        patcher.patch()
        lonely = binary.symbol_addr("lonely")
        # `lonely` is a vadd (4 bytes) directly followed by a branch: the
        # usable window must have covered the two mv's BEFORE it (or the
        # site fell back to a trap).  Either way it must be handled.
        covered = lonely in patcher._covered
        trapped = lonely in patcher.trap_table
        assert covered or trapped

    def test_left_shift_refused_for_branch_targets(self):
        """If the source IS a direct branch target, the window must start
        at the source (hot entries hit the trampoline head)."""
        binary = build("""
_start:
    li a0, {buf}
    li a1, 2
    beqz a2, hot
    nop
hot:
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vse64.v v1, (a0)
    li a7, 93
    li a0, 0
    ecall
""")
        patcher = ChbpPatcher(binary, RV64GC, enable_upgrades=False)
        patcher.patch()
        hot = binary.symbol_addr("hot")
        # hot must not be an interior boundary of any window.
        assert patcher.fault_table.lookup(hot) is None
        # And it was actually patched (trampoline head or trap).
        assert hot in patcher._covered

    def test_unrecognized_neighbor_blocks_window(self):
        """A data island adjacent to the source leaves no safe window."""
        binary = build("""
_start:
    li a0, {buf}
    li a1, 2
    vsetvli t0, a1, e64
    j skip
    .word 0xffffffff
skip:
    li a7, 93
    li a0, 0
    ecall
""")
        patcher = ChbpPatcher(binary, RV64GC, enable_upgrades=False)
        out = patcher.patch()
        # The forward neighbor is a direct jump (uncopyable) and then
        # data: the window must shift LEFT over the preceding li's, or
        # the site falls back to a trap — never overwrite the jump.
        assert patcher.stats.trampolines + patcher.stats.trap_fallbacks >= 1
        from repro.isa.decoding import decode

        j_addr = binary.symbol_addr("_start") + 12 + 4  # after li(8)+li(4)+vsetvli(4)...
        # Locate the j by scanning the patched text for an intact jal x0.
        text = out.text
        found_jal = False
        offset = 0
        while offset < text.size:
            try:
                instr = decode(text.data, offset, addr=text.addr + offset)
            except Exception:
                offset += 2
                continue
            if instr.mnemonic == "jal" and instr.rd == 0 and instr.target() == binary.symbol_addr("skip"):
                found_jal = True
            offset += instr.length
        assert found_jal, "the direct jump was clobbered"


class TestAllocatorAccounting:
    def test_padding_counts_internal_gaps_only(self):
        binary = build("""
_start:
    li a0, {buf}
    li a1, 2
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vse64.v v1, (a0)
    li a7, 93
    li a0, 0
    ecall
""")
        patcher = ChbpPatcher(binary, RV64GC, enable_upgrades=False)
        out = patcher.patch()
        ct = out.section(".chimera.text")
        assert patcher.stats.padding_bytes <= ct.size
        assert patcher.stats.target_block_bytes == ct.size

    def test_migration_unsafe_ranges_recorded(self):
        binary = build("""
_start:
    li a0, {buf}
    li a1, 2
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vse64.v v1, (a0)
    li a7, 93
    li a0, 0
    ecall
""")
        patcher = ChbpPatcher(binary, RV64GC, enable_upgrades=False)
        out = patcher.patch()
        ranges = out.metadata["chimera"]["migration_unsafe"]
        assert ranges
        for lo, hi in ranges:
            assert binary.text.contains(lo)
            assert hi > lo
