"""Scanner, CFG and liveness tests."""

import pytest

from repro.analysis.cfg import UNKNOWN, build_cfg
from repro.analysis.liveness import LivenessAnalysis
from repro.analysis.scan import RecursiveScanner
from repro.elf.builder import ProgramBuilder
from repro.isa.registers import Reg
from tests.conftest import build_program


def scan_of(text: str, data=None, mark_funcs=(), jump_tables=None):
    builder = ProgramBuilder("t")
    for key, values in (data or {}).items():
        builder.add_words(key, values)
    builder.set_text(text)
    for f in mark_funcs:
        builder.mark_function(f)
    binary = builder.build()
    if jump_tables:
        binary.metadata["jump_tables"] = {
            binary.symbol_addr(k) if isinstance(k, str) else k: [
                binary.symbol_addr(t) if isinstance(t, str) else t for t in v
            ]
            for k, v in jump_tables.items()
        }
    return binary, RecursiveScanner().scan(binary)


class TestScanner:
    def test_full_coverage_of_straightline(self):
        binary, scan = scan_of("_start:\nnop\nnop\nret\n")
        assert scan.coverage(binary.text.size) == 1.0

    def test_follows_branches_both_ways(self):
        binary, scan = scan_of(
            "_start:\nbeqz a0, skip\nli a1, 1\nskip:\nli a1, 2\nret\n"
        )
        assert binary.symbol_addr("skip") in scan.instructions

    def test_follows_calls_and_fallthrough(self):
        binary, scan = scan_of("_start:\njal f\nret\nf:\nnop\nret\n")
        assert binary.symbol_addr("f") in scan.instructions
        # The ret after the call (fall-through) is recovered too.
        assert binary.symbol_addr("_start") + 4 in scan.instructions

    def test_stops_at_unconditional_jump(self):
        binary, scan = scan_of(
            "_start:\nj end\n.word 0xffffffff\nend:\nret\n"
        )
        # The raw data word after `j` must NOT be decoded as code.
        gap_addr = binary.symbol_addr("_start") + 4
        assert gap_addr not in scan.instructions
        assert len(scan.unrecognized_ranges) >= 1

    def test_indirect_only_code_stays_unrecognized(self):
        binary, scan = scan_of(
            """
_start:
    la t0, hidden
    jr t0
hidden:
    nop
    ret
""")
        # `hidden` is only reachable indirectly; without a symbol it is
        # invisible to the scanner (the paper's completeness gap, §4.1).
        hidden = binary.symbol_addr("hidden")
        # The label is exported as kind="label", not "func": unseeded.
        assert hidden not in scan.instructions
        assert any(lo <= hidden < hi for lo, hi in scan.unrecognized_ranges)

    def test_func_symbols_seed_the_scan(self):
        binary, scan = scan_of(
            "_start:\nret\nhelper:\nnop\nret\n", mark_funcs=["helper"]
        )
        assert binary.symbol_addr("helper") in scan.instructions

    def test_jump_table_metadata_resolves_indirect(self):
        binary, scan = scan_of(
            """
_start:
    la t0, case0
    jr t0
case0:
    nop
    ret
""",
            jump_tables=None,
        )
        jr_addr = binary.symbol_addr("_start") + 8
        assert jr_addr in scan.unresolved_indirect
        binary2, scan2 = scan_of(
            """
_start:
    la t0, case0
    jr t0
case0:
    nop
    ret
""",
            jump_tables={binary.symbol_addr("_start") + 8: ["case0"]},
        )
        assert binary2.symbol_addr("case0") in scan2.instructions
        # The table-resolved jr is no longer unresolved (the trailing
        # `ret` legitimately remains an unresolved indirect).
        assert jr_addr not in scan2.unresolved_indirect

    def test_extra_entries(self):
        binary, _ = scan_of("_start:\nret\nextra:\nnop\nret\n")
        scan = RecursiveScanner().scan(binary, extra_entries=[binary.symbol_addr("extra")])
        assert binary.symbol_addr("extra") in scan.instructions

    def test_address_taken_seeding_closes_gap(self):
        text = """
_start:
    la t0, hidden
    jr t0
    .word 0xffffffff
hidden:
    la t1, deeper
    jr t1
    .word 0xffffffff
deeper:
    nop
    ret
"""
        binary, plain = scan_of(text)
        hidden = binary.symbol_addr("hidden")
        deeper = binary.symbol_addr("deeper")
        assert hidden not in plain.instructions
        seeded = RecursiveScanner(seed_address_taken=True).scan(binary)
        # The iteration follows chains: hidden's code reveals deeper.
        assert hidden in seeded.instructions
        assert deeper in seeded.instructions

    def test_address_taken_absolute_li(self):
        binary, plain = scan_of("""
_start:
    li t0, 0x10014
    jr t0
    .word 0xffffffff
    .word 0xffffffff
target:
    nop
    ret
""")
        target = binary.symbol_addr("target")
        assert target == 0x10014  # layout check: li(8) + jr(4) + 2 words
        seeded = RecursiveScanner(seed_address_taken=True).scan(binary)
        assert target in seeded.instructions

    def test_address_taken_ignores_data_pointers(self):
        binary, _ = scan_of("_start:\nla t0, {blob}\nld t1, 0(t0)\nret\n",
                            data={"blob": [1, 2]})
        seeded = RecursiveScanner(seed_address_taken=True).scan(binary)
        # Data-segment constants must not become code entries.
        assert all(binary.text.contains(a) for a in seeded.instructions)


class TestCfg:
    def test_blocks_split_at_branch_targets(self):
        binary, scan = scan_of(
            "_start:\nli a0, 3\nloop:\naddi a0, a0, -1\nbnez a0, loop\nret\n"
        )
        cfg = build_cfg(scan)
        loop = binary.symbol_addr("loop")
        block = cfg.block_at(loop)
        assert block is not None
        assert loop in block.successors  # back edge
        assert len(cfg) == 3

    def test_return_has_no_successors(self):
        binary, scan = scan_of("_start:\nret\n")
        cfg = build_cfg(scan)
        block = cfg.block_containing(binary.entry)
        assert block.successors == []

    def test_indirect_jump_unknown_successor(self):
        binary, scan = scan_of("_start:\nla t0, _start\njr t0\n")
        cfg = build_cfg(scan)
        block = cfg.block_containing(binary.entry)
        assert cfg.has_unknown_successor(block)

    def test_call_edges_are_fallthrough(self):
        binary, scan = scan_of("_start:\njal f\nret\nf:\nret\n")
        cfg = build_cfg(scan)
        block = cfg.block_containing(binary.entry)
        assert block.successors == [binary.entry + 4]

    def test_predecessors_populated(self):
        binary, scan = scan_of(
            "_start:\nbeqz a0, a\nnop\na:\nret\n"
        )
        cfg = build_cfg(scan)
        a = cfg.block_at(binary.symbol_addr("a"))
        assert len(a.predecessors) == 2


class TestLiveness:
    def test_dead_after_last_use(self):
        binary, scan = scan_of(
            """
_start:
    li t0, 5
    add a0, t0, t0
    li a7, 93
    ecall
""")
        cfg = build_cfg(scan)
        live = LivenessAnalysis(cfg).run()
        after_add = binary.entry + 8
        assert live.is_dead_before(after_add, int(Reg.T0))

    def test_live_through_loop(self):
        binary, scan = scan_of(
            """
_start:
    li t0, 5
loop:
    addi t0, t0, -1
    bnez t0, loop
    ret
""")
        cfg = build_cfg(scan)
        live = LivenessAnalysis(cfg).run()
        assert not live.is_dead_before(binary.symbol_addr("loop"), int(Reg.T0))

    def test_unknown_successor_makes_everything_live(self):
        binary, scan = scan_of(
            """
_start:
    la t1, _start
    nop
    jr t1
""")
        cfg = build_cfg(scan)
        live = LivenessAnalysis(cfg).run()
        nop_addr = binary.entry + 8
        assert live.dead_before(nop_addr) == frozenset()

    def test_call_clobbers_make_temporaries_dead(self):
        binary, scan = scan_of(
            """
_start:
    li t3, 9
    jal f
    li a7, 93
    ecall
f:
    ret
""")
        cfg = build_cfg(scan)
        live = LivenessAnalysis(cfg).run()
        call_addr = binary.entry + 4
        # t3's value cannot survive the call per the ABI: dead before it.
        assert live.is_dead_before(call_addr, int(Reg.T3))

    def test_exit_ecall_keeps_args_live_only(self):
        binary, scan = scan_of("_start:\nli a0, 0\nli a7, 93\necall\n")
        cfg = build_cfg(scan)
        live = LivenessAnalysis(cfg).run()
        assert not live.is_dead_before(binary.entry + 8, int(Reg.A7))
        assert live.is_dead_before(binary.entry + 8, int(Reg.T2))

    def test_query_unknown_address_is_conservative(self):
        binary, scan = scan_of("_start:\nret\n")
        live = LivenessAnalysis(build_cfg(scan)).run()
        assert live.dead_before(0xDEAD) == frozenset()
