"""Public static-rewriting API.

``ChimeraRewriter`` wraps :class:`~repro.core.patcher.ChbpPatcher` and
produces one rewritten binary per target ISA profile (the per-core
images an MMView process loads).  A deliberate *scan gap* can be
injected to exercise the runtime-rewriting path for unrecognized
instructions (§4.1: recursive disassembly "does not ensure
completeness").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.patcher import ChbpPatcher, PatchStats
from repro.elf.binary import Binary
from repro.isa.extensions import IsaProfile
from repro.sim.cost import ArchParams, DEFAULT_ARCH
from repro.telemetry import current as telemetry_current


@dataclass
class RewriteResult:
    """One rewritten binary plus its rewriting metadata."""

    binary: Binary
    target_profile: IsaProfile
    stats: PatchStats
    #: Liveness analysis of the *source* binary, as computed by the
    #: patcher for its exit-register proofs.  The admission gate's
    #: differential oracle needs the same analysis; handing it over
    #: avoids recomputing scan+cfg+dataflow during verification.
    liveness: object = None

    @property
    def fault_table(self):
        return self.binary.metadata["chimera"]["fault_table"]

    @property
    def trap_table(self) -> dict[int, int]:
        return self.binary.metadata["chimera"]["trap_table"]


class ChimeraRewriter:
    """Rewrite a binary for one or many target ISA profiles.

    Parameters mirror the ablation axes of the evaluation:

    * ``mode`` — ``"full"`` (real translation) or ``"empty"``
      (empty-patching, §6.2: targets replicate the sources; isolates
      rewriting overhead);
    * ``batch_blocks`` — §4.2's same-basic-block batching optimization;
    * ``shift_exits`` — exit-position shifting when liveness fails;
    * ``enable_upgrades`` — idiom upgrading (Zba fusion, vectorization).
    """

    def __init__(
        self,
        *,
        arch: ArchParams = DEFAULT_ARCH,
        mode: str = "full",
        batch_blocks: bool = True,
        shift_exits: bool = True,
        enable_upgrades: bool = True,
        scan_address_taken: bool = False,
        smile_register: str = "gp",
        use_smile: bool = True,
    ):
        self.arch = arch
        self.mode = mode
        self.batch_blocks = batch_blocks
        self.shift_exits = shift_exits
        self.enable_upgrades = enable_upgrades
        self.scan_address_taken = scan_address_taken
        self.smile_register = smile_register
        self.use_smile = use_smile

    def rewrite(
        self,
        binary: Binary,
        target_profile: IsaProfile,
        *,
        scan_entries: Optional[list[int]] = None,
    ) -> RewriteResult:
        """Rewrite *binary* so it runs correctly on *target_profile* cores."""
        patcher = ChbpPatcher(
            binary,
            target_profile,
            arch=self.arch,
            mode=self.mode,
            batch_blocks=self.batch_blocks,
            shift_exits=self.shift_exits,
            enable_upgrades=self.enable_upgrades,
            scan_entries=scan_entries,
            scan_address_taken=self.scan_address_taken,
            smile_register=self.smile_register,
            use_smile=self.use_smile,
        )
        with telemetry_current().span("rewrite", binary=binary.name,
                                      target=target_profile.name):
            rewritten = patcher.patch()
        return RewriteResult(rewritten, target_profile, patcher.stats,
                             liveness=getattr(patcher, "liveness", None))

    def rewrite_all(
        self, binary: Binary, profiles: list[IsaProfile]
    ) -> dict[str, RewriteResult]:
        """One rewritten binary per profile (the MMView image set)."""
        return {p.name: self.rewrite(binary, p) for p in profiles}
