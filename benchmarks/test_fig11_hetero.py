"""Fig. 11: heterogeneous-computing CPU time and end-to-end latency.

1000 mixed Fibonacci/matmul tasks on a 4+4-core ISAX machine, extension
share swept 0..100%, for both input versions (extension = downgrading,
base = upgrading), under FAM / Safer / MELF / Chimera.  Task costs come
from real rewritten-binary simulation (workloads.hetero).
"""

import pytest

from benchmarks.helpers import emit_bench, print_table
from repro.workloads.hetero import SYSTEMS, measure_hetero_costs, run_fig11
from repro.telemetry import MetricsRegistry

SHARES = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


@pytest.fixture(scope="module")
def data():
    return {
        version: run_fig11(version, SHARES, n_tasks=1000)
        for version in ("ext", "base")
    }


def test_fig11_regenerate(benchmark, data):
    def report():
        for version, label in (("ext", "Extension Version (downgrade)"),
                               ("base", "Base Version (upgrade)")):
            rows = []
            by = {(r.system, r.ext_share): r for r in data[version]}
            for share in SHARES:
                row = [f"{share:.0%}"]
                for system in SYSTEMS:
                    r = by[(system, share)]
                    row.append(f"{r.latency / 1e6:.2f}M")
                for system in SYSTEMS:
                    r = by[(system, share)]
                    row.append(f"{r.cpu_time / 1e6:.1f}M")
                rows.append(row)
            print_table(
                f"Fig. 11 — {label}: latency / CPU time (cycles)",
                ["ext-share"] + [f"lat:{s}" for s in SYSTEMS] + [f"cpu:{s}" for s in SYSTEMS],
                rows,
            )
        registry = MetricsRegistry()
        for version in ("ext", "base"):
            for r in data[version]:
                labels = dict(version=version, system=r.system,
                              ext_share=f"{r.ext_share:.1f}")
                registry.gauge("bench.latency_cycles", r.latency, **labels)
                registry.gauge("bench.cpu_time_cycles", r.cpu_time, **labels)
        emit_bench("fig11_hetero", registry)
        return data

    benchmark.pedantic(report, rounds=1, iterations=1)


def _series(rows, system, field):
    return [getattr(r, field) for r in rows if r.system == system]


class TestDowngradeShape:
    """Fig. 11a/b claims (extension version)."""

    def test_latency_decreases_for_rewriters(self, data):
        for system in ("melf", "chimera", "safer"):
            lat = _series(data["ext"], system, "latency")
            assert lat[-1] < lat[0], system  # faster as ext share grows

    def test_fam_latency_bottoms_out_then_rises(self, data):
        lat = _series(data["ext"], "fam", "latency")
        assert min(lat) < lat[0]
        assert lat[-1] > min(lat) * 1.05  # base cores idle at 100%

    def test_chimera_close_to_melf(self, data):
        melf = _series(data["ext"], "melf", "latency")
        chim = _series(data["ext"], "chimera", "latency")
        gaps = [(c - m) / m for m, c in zip(melf, chim)]
        avg_gap = 100 * sum(gaps) / len(gaps)
        print(f"\nchimera-vs-melf latency gap (downgrade): {avg_gap:.1f}% (paper 3.2%)")
        assert avg_gap < 10.0

    def test_chimera_beats_safer(self, data):
        melf = _series(data["ext"], "safer", "latency")
        chim = _series(data["ext"], "chimera", "latency")
        assert sum(chim) <= sum(melf) * 1.01

    def test_rewriters_beat_fam_at_high_share(self, data):
        by = {(r.system, r.ext_share): r for r in data["ext"]}
        fam = by[("fam", 1.0)].latency
        for system in ("melf", "chimera"):
            gain = (fam - by[(system, 1.0)].latency) / fam
            assert gain > 0.15, system  # paper: up to 33.1%

    def test_rewriters_use_more_cpu_than_fam(self, data):
        by = {(r.system, r.ext_share): r for r in data["ext"]}
        assert by[("melf", 1.0)].cpu_time > by[("fam", 1.0)].cpu_time * 0.9


class TestUpgradeShape:
    """Fig. 11c/d claims (base version)."""

    def test_fam_latency_flat(self, data):
        lat = _series(data["base"], "fam", "latency")
        spread = (max(lat) - min(lat)) / max(lat)
        assert spread < 0.25  # "essentially unchanged"

    def test_upgraders_accelerate(self, data):
        by = {(r.system, r.ext_share): r for r in data["base"]}
        for system in ("melf", "chimera"):
            assert by[(system, 1.0)].latency < by[("fam", 1.0)].latency * 0.85

    def test_chimera_close_to_melf_upgrade(self, data):
        melf = _series(data["base"], "melf", "latency")
        chim = _series(data["base"], "chimera", "latency")
        gaps = [(c - m) / m for m, c in zip(melf, chim)]
        avg_gap = 100 * sum(gaps) / len(gaps)
        print(f"\nchimera-vs-melf latency gap (upgrade): {avg_gap:.1f}% (paper 5.3%)")
        assert avg_gap < 12.0


def test_cost_cells_report(data):
    for version in ("ext", "base"):
        costs = measure_hetero_costs(version)
        rows = [
            [system] + [str(costs.cells[system][key]) for key in
                        (("base", False), ("ext", True), ("ext", False))]
            for system in SYSTEMS
        ]
        print_table(
            f"measured task costs, {version} version (cycles)",
            ["system", "base-task", "ext-on-extcore", "ext-on-basecore"],
            rows,
        )
