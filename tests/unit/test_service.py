"""Service substrate: the wire protocol is strict and symmetric, submit
validation rejects malformed jobs with a reason (never a traceback), the
worker-slot arbiter divides the machine fairly, job faults are a closed
taxonomy, and the client builds deterministic campaign specs."""

import asyncio
import random

import pytest

from repro.core.procpool import WorkerSlotArbiter
from repro.resilience.failures import (
    JOB_CRASH,
    JOB_DEADLINE,
    JOB_FAULT_KINDS,
    JOB_OVERLOADED,
    JOB_POISONED,
    JOB_REJECTED,
    JobFault,
)
from repro.service import client as client_mod
from repro.service.client import CampaignResult, build_specs, wait_for_server
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    FrameTooLargeError,
    ProtocolError,
    decode_message,
    encode_message,
    read_message,
    validate_submit,
)


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "submit", "id": "j1", "workload": "dot",
                   "seed": 7, "nested": {"a": [1, 2]}}
        assert decode_message(encode_message(message)) == message

    def test_frames_are_single_lines(self):
        data = encode_message({"op": "ping"})
        assert data.endswith(b"\n") and data.count(b"\n") == 1

    def test_non_object_frames_rejected(self):
        with pytest.raises(ProtocolError):
            encode_message(["not", "an", "object"])
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2]\n")
        with pytest.raises(ProtocolError):
            decode_message(b"not json at all\n")

    def test_read_message_stream_round_trip(self):
        async def go():
            reader = asyncio.StreamReader(limit=MAX_MESSAGE_BYTES)
            reader.feed_data(encode_message({"op": "ping"}))
            reader.feed_data(encode_message({"op": "stats"}))
            reader.feed_eof()
            assert (await read_message(reader)) == {"op": "ping"}
            assert (await read_message(reader)) == {"op": "stats"}
            assert (await read_message(reader)) is None  # clean EOF

        asyncio.run(go())

    def test_mid_frame_drop_is_a_protocol_error(self):
        async def go():
            reader = asyncio.StreamReader(limit=MAX_MESSAGE_BYTES)
            reader.feed_data(b'{"op": "subm')  # no newline, then gone
            reader.feed_eof()
            with pytest.raises(ProtocolError):
                await read_message(reader)

        asyncio.run(go())

    def test_oversized_frame_is_its_own_error_class(self):
        # The fatal/recoverable split the server relies on: a frame
        # past the limit is FrameTooLargeError (tear down), everything
        # else is plain ProtocolError (answer and keep reading).
        assert issubclass(FrameTooLargeError, ProtocolError)

        async def go():
            reader = asyncio.StreamReader(limit=64)
            reader.feed_data(b'{"pad": "' + b"x" * 256 + b'"}\n')
            with pytest.raises(FrameTooLargeError):
                await read_message(reader)

        asyncio.run(go())


class TestValidateSubmit:
    def _ok(self, **extra):
        message = {"op": "submit", "id": "j1", "workload": "dot"}
        message.update(extra)
        return message

    def test_normalizes_defaults(self):
        spec = validate_submit(self._ok())
        assert spec["target"] == "rv64gc"
        assert spec["variant"] == "ext"
        assert spec["scale"] == 128
        assert spec["seed"] is None
        assert spec["oracle_trials"] == 2

    def test_requires_exactly_one_source(self):
        with pytest.raises(ProtocolError):
            validate_submit({"op": "submit", "id": "j1"})
        with pytest.raises(ProtocolError):
            validate_submit(self._ok(path="x.self"))

    def test_requires_string_id(self):
        for bad in (None, "", 7):
            with pytest.raises(ProtocolError):
                validate_submit({"op": "submit", "id": bad,
                                 "workload": "dot"})

    def test_type_checks_fields(self):
        with pytest.raises(ProtocolError):
            validate_submit(self._ok(scale=0))
        with pytest.raises(ProtocolError):
            validate_submit(self._ok(oracle_trials="two"))
        with pytest.raises(ProtocolError):
            validate_submit(self._ok(seed="lucky"))
        with pytest.raises(ProtocolError):
            validate_submit(self._ok(target=64))

    def test_seed_null_and_int_accepted(self):
        assert validate_submit(self._ok(seed=7))["seed"] == 7
        assert validate_submit(self._ok(seed=None))["seed"] is None

    def test_deadline_ms_defaults_to_none(self):
        assert validate_submit(self._ok())["deadline_ms"] is None

    def test_deadline_ms_positive_int_accepted(self):
        assert validate_submit(self._ok(deadline_ms=250))["deadline_ms"] == 250

    def test_deadline_ms_rejects_garbage(self):
        for bad in (0, -5, True, "fast", 1.5):
            with pytest.raises(ProtocolError):
                validate_submit(self._ok(deadline_ms=bad))


class TestWorkerSlotArbiter:
    def test_sole_job_gets_the_machine(self):
        slots = WorkerSlotArbiter(8)
        slots.register("a")
        assert slots.allowance() == 8
        assert slots.allowance(want=3) == 3

    def test_fair_split_across_jobs(self):
        slots = WorkerSlotArbiter(8)
        for job in ("a", "b", "c", "d"):
            slots.register(job)
        assert slots.allowance() == 2
        slots.unregister("c")
        slots.unregister("d")
        assert slots.allowance() == 4

    def test_never_starves_below_one(self):
        slots = WorkerSlotArbiter(2)
        for job in ("a", "b", "c", "d", "e"):
            slots.register(job)
        assert slots.allowance() == 1

    def test_unregister_is_idempotent(self):
        slots = WorkerSlotArbiter(4)
        slots.register("a")
        slots.unregister("a")
        slots.unregister("a")
        assert slots.active_jobs == 0


class TestJobFault:
    def test_round_trip(self):
        fault = JobFault(binary="dot", fault=JOB_CRASH, detail="boom",
                         key="ab" * 32, failures=2, quarantined=True)
        again = JobFault.from_dict(fault.as_dict())
        assert again == fault
        assert "boom" in str(fault)

    def test_kind_taxonomy_is_closed(self):
        assert {JOB_REJECTED, JOB_CRASH, JOB_POISONED, JOB_OVERLOADED,
                JOB_DEADLINE} <= set(JOB_FAULT_KINDS)
        with pytest.raises(ValueError):
            JobFault(binary="dot", fault="job-sulking")

    def test_retry_after_round_trip(self):
        fault = JobFault(binary="dot", fault=JOB_OVERLOADED,
                         detail="backlog full", retry_after_ms=750)
        data = fault.as_dict()
        assert data["retry_after_ms"] == 750
        assert JobFault.from_dict(data) == fault

    def test_retry_after_omitted_when_absent(self):
        # Faults without a hint keep their pre-hint wire shape.
        data = JobFault(binary="dot", fault=JOB_CRASH).as_dict()
        assert "retry_after_ms" not in data


class TestWaitForServer:
    def test_answers_on_first_pong(self, monkeypatch):
        calls = []

        async def fake_request(address, message):
            calls.append(message)
            return {"event": "pong"}

        monkeypatch.setattr(client_mod, "_request", fake_request)
        assert wait_for_server("unix:/nowhere.sock", timeout=1.0)
        assert calls == [{"op": "ping"}]

    def test_dead_server_backs_off_exponentially(self, monkeypatch):
        attempts = []

        async def fake_request(address, message):
            attempts.append(message)
            raise ConnectionRefusedError("nobody home")

        monkeypatch.setattr(client_mod, "_request", fake_request)
        ok = wait_for_server("unix:/nowhere.sock", timeout=0.4,
                             interval=0.05, max_interval=0.4,
                             rng=random.Random(0))
        assert not ok
        # Fixed 0.05s polling would burn ~8 probes in 0.4s; the doubling
        # schedule (0.05, 0.1, 0.2, ... jittered) stays well under that.
        assert 2 <= len(attempts) <= 6


class TestBuildSpecs:
    def test_workload_names(self):
        specs = build_specs(["dot", "gemv"], seed=7, oracle_trials=1)
        assert [s["id"] for s in specs] == ["dot", "gemv"]
        assert all(s["op"] == "submit" for s in specs)
        assert all(s["seed"] == 7 for s in specs)
        assert specs[0]["workload"] == "dot" and "path" not in specs[0]

    def test_directory_expands_to_self_files(self, tmp_path):
        (tmp_path / "b.self").write_bytes(b"x")
        (tmp_path / "a.self").write_bytes(b"x")
        (tmp_path / "notes.txt").write_text("ignored")
        specs = build_specs([str(tmp_path)])
        assert [s["id"] for s in specs] == ["a", "b"]
        assert all("workload" not in s for s in specs)

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(ValueError):
            build_specs([str(tmp_path)])

    def test_id_collisions_get_suffixes(self, tmp_path):
        d1 = tmp_path / "one"
        d2 = tmp_path / "two"
        for d in (d1, d2):
            d.mkdir()
            (d / "dot.self").write_bytes(b"x")
        specs = build_specs([str(d1), str(d2)])
        assert [s["id"] for s in specs] == ["dot", "dot-1"]


class TestCampaignResult:
    def test_tallies_and_ok(self):
        result = CampaignResult(records=[
            {"id": "a", "status": "ok", "cache": "cold", "verify_ok": True},
            {"id": "b", "status": "ok", "cache": "warm", "verify_ok": True},
            {"id": "c", "status": "failed",
             "fault": {"fault": JOB_REJECTED}},
        ])
        assert result.succeeded == 2 and result.failed == 1
        assert result.by_cache == {"cold": 1, "warm": 1}
        assert not result.ok
        payload = result.as_dict()
        assert payload["jobs"] == 3 and payload["by_cache"]["warm"] == 1

    def test_empty_campaign_is_not_ok(self):
        assert not CampaignResult().ok
