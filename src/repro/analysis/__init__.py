"""Static binary analysis: instruction recovery, CFG, register liveness.

Chimera uses recursive disassembly (IDA Pro in the paper, §4.1) that is
*sound but not complete*: recovered instructions are real instructions,
but some code (reachable only through indirect jumps) may stay
unrecognized and is rewritten lazily at runtime.  This package
reproduces that contract.
"""

from repro.analysis.scan import RecursiveScanner, ScanResult
from repro.analysis.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.analysis.liveness import LivenessAnalysis, LivenessResult

__all__ = [
    "RecursiveScanner",
    "ScanResult",
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "LivenessAnalysis",
    "LivenessResult",
]
