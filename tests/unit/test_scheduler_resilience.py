"""Discrete-event scheduler under core failures + edge-case coverage."""

import pytest

from repro.core.scheduler import (
    SystemModel,
    Task,
    WorkStealingScheduler,
    mixed_taskset,
)
from repro.resilience.failures import DesFailure, DesFailurePlan
from repro.resilience.policy import RetryPolicy
from repro.sim.cost import ArchParams
from repro.sim.faults import UnrecoverableFault

ARCH = ArchParams()


def simple_model(base_cost=100, ext_cost=50, ext_on_base=200, name="m") -> SystemModel:
    return SystemModel(
        name,
        costs={("base", False): base_cost, ("base", True): base_cost,
               ("ext", True): ext_cost, ("ext", False): ext_on_base},
        accelerated_placements=frozenset({("ext", True)}),
    )


def fam_model() -> SystemModel:
    return SystemModel(
        "fam",
        costs={("base", False): 100, ("base", True): 100,
               ("ext", True): 50, ("ext", False): None},
        accelerated_placements=frozenset({("ext", True)}),
        migrate_on_unsupported=True,
        detect_cycles=10,
    )


class TestDesFailures:
    def test_killed_core_is_quarantined_and_work_survives(self):
        tasks = mixed_taskset(40, 0.5)
        plan = DesFailurePlan.kill_cores([3], seed=0)
        result = WorkStealingScheduler(2, 2, ARCH).run(
            tasks, simple_model(), failures=plan)
        assert result.quarantined_cores == (3,)
        assert result.resilience.quarantines == 1
        assert result.resilience.core_faults == 1
        assert result.unrecoverable == 0
        assert result.completed == 40
        assert result.resilience.retries >= 1

    def test_flaky_core_quarantined_after_threshold(self):
        tasks = mixed_taskset(40, 0.5)
        plan = DesFailurePlan([DesFailure(3, "flake", count=3)], seed=0)
        result = WorkStealingScheduler(2, 2, ARCH).run(
            tasks, simple_model(), failures=plan, quarantine_after=2)
        assert 3 in result.quarantined_cores
        assert result.resilience.core_faults == 2  # third flake never fires
        assert result.completed == 40

    def test_all_ext_dead_degrades_to_base_with_zero_accel(self):
        tasks = [Task(i, "ext") for i in range(20)]
        plan = DesFailurePlan.kill_cores([2, 3], seed=0)
        result = WorkStealingScheduler(2, 2, ARCH).run(
            tasks, simple_model(), failures=plan)
        assert result.quarantined_cores == (2, 3)
        assert result.unrecoverable == 0
        assert result.completed == 20
        # Forward progress continued on base cores, unaccelerated.
        assert result.accelerated_share < 0.2
        assert sum(result.per_core_busy[:2]) > 0

    def test_fam_all_ext_dead_is_structured_not_silent(self):
        """FAM has no downgraded binary: with every extension core dead
        its extension tasks must end as UnrecoverableFault entries."""
        tasks = [Task(0, "base"), Task(1, "ext"), Task(2, "ext")]
        plan = DesFailurePlan.kill_cores([2, 3], seed=0)
        result = WorkStealingScheduler(2, 2, ARCH).run(
            tasks, fam_model(), failures=plan)
        assert result.completed + result.unrecoverable == 3
        assert result.unrecoverable == 2
        for task_id in (1, 2):
            assert isinstance(result.task_faults[task_id], UnrecoverableFault)

    def test_retry_budget_exhaustion_is_structured(self):
        tasks = [Task(0, "base")]
        plan = DesFailurePlan(
            [DesFailure(0, "flake", count=10)], seed=0)
        result = WorkStealingScheduler(1, 0, ARCH).run(
            tasks, simple_model(), failures=plan,
            retry_policy=RetryPolicy(max_attempts=2),
            quarantine_after=99)
        assert result.unrecoverable == 1
        assert "retry budget exhausted" in str(result.task_faults[0])
        assert result.resilience.backoff_cycles > 0

    def test_deadline_is_enforced(self):
        tasks = [Task(0, "base")]
        plan = DesFailurePlan([DesFailure(0, "flake", count=10)], seed=0)
        result = WorkStealingScheduler(1, 0, ARCH).run(
            tasks, simple_model(), failures=plan,
            retry_policy=RetryPolicy(max_attempts=100, deadline=5_000),
            quarantine_after=99)
        assert result.unrecoverable == 1
        assert "deadline" in str(result.task_faults[0])

    def test_no_failures_means_clean_stats(self):
        result = WorkStealingScheduler(2, 2, ARCH).run(
            mixed_taskset(30, 0.5), simple_model())
        assert result.resilience.summary() == "clean run"
        assert result.quarantined_cores == ()
        assert result.unrecoverable == 0


class TestDesEdgeCases:
    def test_empty_taskset(self):
        result = WorkStealingScheduler(2, 2, ARCH).run([], simple_model())
        assert result.makespan == 0 and result.cpu_time == 0
        assert result.completed == 0 and result.unrecoverable == 0

    def test_empty_taskset_with_failure_plan(self):
        result = WorkStealingScheduler(2, 2, ARCH).run(
            [], simple_model(), failures=DesFailurePlan.kill_cores([0]))
        assert result.makespan == 0
        assert result.resilience.core_faults == 0  # nothing ran, nothing died

    def test_fam_zero_ext_cores_does_not_livelock(self):
        """migrate_on_unsupported with no extension pool at all: tasks
        bounce once into the empty pool and must surface as structured
        unrecoverable entries, not spin or vanish."""
        tasks = [Task(i, "ext") for i in range(5)] + [Task(9, "base")]
        result = WorkStealingScheduler(2, 0, ARCH).run(tasks, fam_model())
        assert result.completed + result.unrecoverable == 6
        assert result.unrecoverable == 5
        assert result.completed == 1  # the base task still ran
        for i in range(5):
            assert isinstance(result.task_faults[i], UnrecoverableFault)

    def test_nonmigrating_unrunnable_tasks_are_accounted(self):
        """cost None without fault-and-migrate, zero ext cores: the pin
        path has no live home pool and must account the task."""
        model = SystemModel(
            "m", costs={("base", False): 100, ("base", True): 100,
                        ("ext", True): 50, ("ext", False): None})
        tasks = [Task(0, "ext"), Task(1, "base")]
        result = WorkStealingScheduler(2, 0, ARCH).run(tasks, model)
        assert result.unrecoverable == 1
        assert result.completed == 1
        assert isinstance(result.task_faults[0], UnrecoverableFault)

    def test_all_steal_path_one_pool_empty_from_start(self):
        """Only base tasks: ext workers contribute purely by stealing."""
        tasks = [Task(i, "base") for i in range(40)]
        result = WorkStealingScheduler(2, 2, ARCH).run(tasks, simple_model())
        assert result.completed == 40
        assert result.steals > 0
        busy_ext = sum(result.per_core_busy[2:])
        assert busy_ext > 0

    def test_all_steal_other_direction(self):
        tasks = [Task(i, "ext") for i in range(40)]
        result = WorkStealingScheduler(2, 2, ARCH).run(tasks, simple_model())
        assert result.completed == 40
        assert result.steals > 0
        assert sum(result.per_core_busy[:2]) > 0


class TestSeededTasksets:
    def test_mixed_taskset_env_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUZZ_SEED", "123")
        a = mixed_taskset(100, 0.3)
        monkeypatch.delenv("REPRO_FUZZ_SEED")
        b = mixed_taskset(100, 0.3, seed=123)
        assert a == b

    def test_mixed_taskset_counts_invariant_across_seeds(self):
        for seed in (0, 1, 99):
            tasks = mixed_taskset(97, 0.37, seed=seed)
            assert sum(t.kind == "ext" for t in tasks) == round(97 * 0.37)

    def test_share_bounds_still_validated(self):
        with pytest.raises(ValueError):
            mixed_taskset(10, -0.1)
