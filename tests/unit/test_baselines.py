"""Baseline rewriter unit tests: reassembly, Safer, ARMore, FAM, MELF."""

import pytest

from repro.analysis.scan import RecursiveScanner
from repro.baselines.armore import ArmoreRewriter, ArmoreRuntime
from repro.baselines.fam import FamRuntime
from repro.baselines.melf import build_melf_variants
from repro.baselines.reassemble import reassemble
from repro.baselines.safer import SaferRewriter, SaferRuntime
from repro.core.translate import TranslationContext, Translator
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.sim.cost import ArchParams
from repro.sim.machine import Core, Kernel
from repro.workloads.programs import MatMulWorkload, VectorAddWorkload


def branching_binary(with_vector: bool = False):
    # The optional vector episode inflates under translation, shifting
    # every later address (what forces Safer's runtime corrections).
    episode = """
    li a2, 2
    vsetvli t2, a2, e64
    li a2, {buf}
    vle64.v v1, (a2)
    vse64.v v1, (a2)
""" if with_vector else ""
    b = ProgramBuilder("r")
    b.add_words("buf", [5, 6] + [0] * 8)
    b.set_text(f"""
_start:
    li a0, 3
    li a1, 0
{episode}
loop:
    add a1, a1, a0
    addi a0, a0, -1
    bnez a0, loop
    la t0, store
    jr t0
store:
    li t1, {{buf}}
    sd a1, 0(t1)
    li a7, 93
    li a0, 0
    ecall
""")
    b.mark_function("store")
    return b.build()


class TestReassemble:
    def _reassemble(self, binary, base=0x100000):
        scan = RecursiveScanner().scan(binary)
        translator = Translator(TranslationContext(0x700000, binary.global_pointer))
        return reassemble(scan, translator, base, needs_translation=lambda i: False)

    def test_addr_map_complete(self):
        binary = branching_binary()
        code = self._reassemble(binary)
        scan = RecursiveScanner().scan(binary)
        assert set(code.addr_map) == set(scan.instructions)

    def test_direct_branches_retargeted(self):
        """Running the reassembled code standalone must behave identically."""
        binary = branching_binary()
        code = self._reassemble(binary)
        from repro.elf.binary import Perm
        from repro.sim.cpu import Cpu
        from repro.sim.faults import EcallTrap
        from repro.sim.memory import AddressSpace

        space = AddressSpace()
        space.map(".text", code.base, bytearray(code.code), Perm.RX)
        space.map(".data", binary.data.addr, bytearray(binary.data.data), Perm.RW)
        cpu = Cpu(space, RV64GC)
        cpu.pc = code.addr_map[binary.entry]
        # The indirect `jr t0` targets an OLD address: patch expectations —
        # here we stop right before it by running until the la completes.
        with pytest.raises(Exception):
            for _ in range(100):
                cpu.step()
        assert cpu.get_reg(11) == 3 + 2 + 1  # the loop ran correctly

    def test_indirect_sites_recorded(self):
        binary = branching_binary()
        code = self._reassemble(binary)
        mnems = {i.mnemonic for _, i in code.indirect_jump_sites}
        assert "c.jr" in mnems or "jalr" in mnems


class TestSafer:
    def test_rewrites_and_passes_selfcheck(self):
        binary = VectorAddWorkload().build("ext")
        rewriter = SaferRewriter()
        result = rewriter.rewrite(binary, RV64GC)
        runtime = SaferRuntime(result.binary)
        kernel = Kernel()
        runtime.install(kernel)
        proc = make_process(result.binary)
        res = kernel.run(proc, Core(0, RV64GC))
        assert res.ok

    def test_indirect_jumps_instrumented(self):
        result = SaferRewriter().rewrite(branching_binary(), RV64GC)
        assert result.stats.instrumented_indirects >= 1

    def test_indirect_target_translated(self):
        binary = branching_binary(with_vector=True)
        rewriter = SaferRewriter()
        result = rewriter.rewrite(binary, RV64GC)
        runtime = SaferRuntime(result.binary)
        kernel = Kernel()
        runtime.install(kernel)
        proc = make_process(result.binary)
        res = kernel.run(proc, Core(0, RV64GC))
        assert res.ok
        # The jr through an old-layout pointer needed a correction.
        assert runtime.corrections >= 1
        assert proc.space.read_u64(binary.symbol_addr("buf")) == 6

    def test_entry_point_remapped(self):
        binary = branching_binary()
        result = SaferRewriter().rewrite(binary, RV64GC)
        assert result.binary.entry == result.addr_map[binary.entry]

    def test_requires_safer_metadata(self):
        with pytest.raises(ValueError):
            SaferRuntime(branching_binary())


class TestArmore:
    def test_small_binary_uses_jal_trampolines(self):
        binary = branching_binary()
        rewriter = ArmoreRewriter()
        result = rewriter.rewrite(binary, RV64GC)
        # 4-byte slots within reach become jal; 2-byte slots become traps.
        assert result.stats.jal_trampolines > 0

    def test_scaled_reach_forces_traps(self):
        binary = branching_binary()
        arch = ArchParams().scaled(1 << 16)  # jal reach ~16 bytes
        result = ArmoreRewriter(arch=arch).rewrite(binary, RV64GC)
        assert result.stats.jal_trampolines == 0
        assert result.stats.trap_trampolines > 0

    def test_runs_correctly_with_runtime(self):
        binary = branching_binary()
        result = ArmoreRewriter().rewrite(binary, RV64GC)
        runtime = ArmoreRuntime(result.binary)
        kernel = Kernel()
        runtime.install(kernel)
        proc = make_process(result.binary)
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        runtime.attach_cpu(cpu)
        res = kernel.run(proc, Core(0, RV64GC), cpu=cpu)
        assert res.ok
        assert proc.space.read_u64(binary.symbol_addr("buf")) == 6
        # The indirect jr bounced through the original section.
        assert res.counters.get("armore_redirects", 0) >= 1

    def test_vector_binary_translated(self):
        binary = VectorAddWorkload().build("ext")
        result = ArmoreRewriter().rewrite(binary, RV64GC)
        runtime = ArmoreRuntime(result.binary)
        kernel = Kernel()
        runtime.install(kernel)
        proc = make_process(result.binary)
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        runtime.attach_cpu(cpu)
        res = kernel.run(proc, Core(0, RV64GC), cpu=cpu)
        assert res.ok


class TestFam:
    def test_migrates_on_vector_fault(self):
        binary = MatMulWorkload(n=6).build("ext")
        proc = make_process(binary)
        fam = FamRuntime()
        outcome = fam.run(proc, Core(0, RV64GC), Core(1, RV64GCV))
        assert outcome.migrations == 1
        assert outcome.result.ok
        assert outcome.finished_on.profile is RV64GCV

    def test_no_migration_for_base_binary(self):
        binary = MatMulWorkload(n=6).build("base")
        proc = make_process(binary)
        outcome = FamRuntime().run(proc, Core(0, RV64GC), Core(1, RV64GCV))
        assert outcome.migrations == 0
        assert outcome.result.ok

    def test_context_preserved_across_migration(self):
        binary = MatMulWorkload(n=6).build("ext")
        proc = make_process(binary)
        outcome = FamRuntime().run(proc, Core(0, RV64GC), Core(1, RV64GCV))
        # Self-check passed => all architectural state carried over.
        assert outcome.result.exit_code == 0


class TestMelf:
    def test_variants_built_per_isa(self):
        variants = build_melf_variants(MatMulWorkload(n=6))
        assert set(variants) == {"base", "ext"}
        for name, binary in variants.items():
            assert binary.metadata["variant"] == name
