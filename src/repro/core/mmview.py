"""MMViews: one process, one address space per ISAX core flavor (§4.3).

A Chimera process keeps an MMView per rewritten binary.  All views share
the *same* data (and stack) physical pages — realized here by mapping
the identical backing bytearrays — while each view's code pages come
from its own rewritten image.  Loading activates the view matching the
first core; migration switches the active view and re-seeds the pc.

Migration safety: rewritten binaries agree on the semantics of every
*original* pc but not on addresses inside target-instruction sections.
``migration_safe_pc`` reports whether a pc is immediately migratable;
when it is not, :class:`MMViewProcess` records a pending migration that
commits at the next safe point (the paper inserts a uprobe at the target
block's exit position; our scheduler polls the same condition).

Vector state: on a downgraded view the vector context lives in the
``.chimera.vregs`` data section; on an extension core it lives in the
architectural vector registers.  ``sync_vector_state`` converts between
the two on migration — the kernel-mediated equivalent of the paper's
shared simulated-register region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.translate import SEW_OFF, VL_OFF, VREG_SIZE
from repro.elf.binary import Binary, Perm
from repro.elf.loader import DEFAULT_STACK_TOP, load_binary
from repro.isa.encoding import encode
from repro.isa.extensions import Extension, IsaProfile
from repro.isa.instructions import Instruction
from repro.sim.cpu import Cpu
from repro.sim.faults import BreakpointTrap, SimFault, UnrecoverableFault
from repro.sim.machine import Kernel, Process
from repro.sim.memory import AddressSpace


@dataclass
class MMView:
    """One address space instantiated from one rewritten binary."""

    profile_name: str
    binary: Binary
    space: AddressSpace

    @property
    def has_chimera_text(self) -> bool:
        return self.binary.has_section(".chimera.text")


class MMViewProcess(Process):
    """A process with one MMView per rewritten binary.

    ``views`` is keyed by ISA profile name; the active view's space is
    the inherited ``Process.space``.
    """

    def __init__(self, name: str, rewritten: dict[str, Binary], initial: str):
        if initial not in rewritten:
            raise ValueError(f"initial view {initial!r} not among {sorted(rewritten)}")
        self.views: dict[str, MMView] = {}
        base_space: Optional[AddressSpace] = None
        for profile_name, binary in rewritten.items():
            space = load_binary(binary, share_data_from=base_space)
            if base_space is None:
                base_space = space
            self.views[profile_name] = MMView(profile_name, binary, space)
        first = rewritten[initial]
        super().__init__(
            name,
            self.views[initial].space,
            first.entry,
            gp=first.global_pointer,
            sp=DEFAULT_STACK_TOP - 64,
        )
        self.active_view = initial
        self.pending_migration: Optional[str] = None
        self.migrations = 0
        self.delayed_migrations = 0

    # -- view switching ------------------------------------------------------

    def view(self, profile_name: str) -> MMView:
        return self.views[profile_name]

    def migration_safe_pc(self, pc: int) -> bool:
        """True if *pc* has the same meaning in every view (§4.3).

        Unsafe: addresses inside the active view's ``.chimera.text``
        (target instructions exist in one layout only), and addresses
        inside any view's patched regions — overwritten windows and
        pattern-replaced loops, where in-flight state representations
        (e.g. a live vector accumulator vs its scalar rewrite) diverge.
        """
        view = self.views[self.active_view]
        if view.has_chimera_text and view.binary.section(".chimera.text").contains(pc):
            return False
        for other in self.views.values():
            meta = other.binary.metadata.get("chimera") or {}
            for lo, hi in meta.get("migration_unsafe", ()):
                if lo <= pc < hi:
                    return False
        return True

    def migrate(self, cpu: Cpu, to_profile: str) -> bool:
        """Switch the active MMView; returns False if delayed.

        When the pc sits inside target instructions the migration is
        recorded as pending (the paper arms a probe at the block's exit
        position; callers re-try at the next scheduling point).
        """
        if to_profile == self.active_view:
            return True
        if not self.migration_safe_pc(cpu.pc):
            self.pending_migration = to_profile
            self.delayed_migrations += 1
            return False
        self._switch(cpu, to_profile)
        return True

    def try_commit_pending(self, cpu: Cpu) -> bool:
        """Commit a delayed migration if the pc is now safe."""
        if self.pending_migration is None:
            return False
        if not self.migration_safe_pc(cpu.pc):
            return False
        target = self.pending_migration
        self.pending_migration = None
        self._switch(cpu, target)
        return True

    def _switch(self, cpu: Cpu, to_profile: str) -> None:
        dst_view = self.views.get(to_profile)
        if dst_view is None:
            # A corrupted pending migration must not surface as a raw
            # KeyError out of the scheduler: degrade with diagnostics.
            raise UnrecoverableFault(
                f"migration target view {to_profile!r} does not exist",
                pc=cpu.pc,
                context={
                    "known_views": sorted(self.views),
                    "active_view": self.active_view,
                    "migrations": self.migrations,
                },
            )
        src_view = self.views[self.active_view]
        self.sync_vector_state(cpu, src_view, dst_view)
        self.active_view = to_profile
        self.space = dst_view.space
        cpu.space = dst_view.space
        cpu.flush_decode_cache()
        self.migrations += 1

    # -- vector state ---------------------------------------------------------

    def sync_vector_state(self, cpu: Cpu, src: MMView, dst: MMView) -> None:
        """Move the vector context between architectural registers and the
        simulated-register region, whichever each view uses."""
        src_sim = _vregs_base(src.binary)
        dst_sim = _vregs_base(dst.binary)
        src_uses_sim = src_sim is not None and _is_downgraded(src.binary)
        dst_uses_sim = dst_sim is not None and _is_downgraded(dst.binary)
        if src_uses_sim == dst_uses_sim:
            return  # same representation (region is in shared data? no -- per-view)
        if src_uses_sim and not dst_uses_sim:
            # region -> architectural registers
            base = src_sim
            vl = int.from_bytes(src.space.read(base + VL_OFF, 8), "little")
            sew = int.from_bytes(src.space.read(base + SEW_OFF, 8), "little") or 64
            cpu.vector.set_vl(vl, sew if sew in (32, 64) else 64)
            cpu.vector.vl = vl
            for v in range(32):
                cpu.vector.load_reg_bytes(v, src.space.read(base + v * VREG_SIZE, VREG_SIZE))
        else:
            # architectural registers -> region
            base = dst_sim
            dst.space.write(base + VL_OFF, cpu.vector.vl.to_bytes(8, "little"))
            dst.space.write(base + SEW_OFF, cpu.vector.sew.to_bytes(8, "little"))
            for v in range(32):
                dst.space.write(base + v * VREG_SIZE, cpu.vector.reg_bytes(v))


class MigrationProbeManager:
    """Probe-based delayed migration (paper §4.3, via uprobes [15]).

    When a migration request arrives while the pc sits inside target
    instructions or a patched region, the paper arms a probe at the safe
    resume point; the task migrates the moment the probe fires.  Here
    the probe is a real ``ebreak`` patched over the resume address; the
    manager's fault handler restores the original bytes and commits the
    pending view switch — no polling involved.
    """

    def __init__(self, process: MMViewProcess):
        self.process = process
        #: armed probes: address -> original bytes (per active space)
        self._armed: dict[int, bytes] = {}
        self.fired = 0
        #: Optional chaos injector; its ``on_probe_fire`` hook runs in
        #: the window between the probe trap and the view commit — the
        #: spot a concurrent corruption would land (§4.3 race surface).
        self.injector = None

    def install(self, kernel: Kernel) -> None:
        kernel.register_fault_handler(self.handle_fault, priority=True)

    def request_migration(self, cpu: Cpu, to_profile: str) -> bool:
        """Migrate now if safe; otherwise arm a probe at the next safe
        original-code address and record the pending request."""
        if self.process.migrate(cpu, to_profile):
            return True
        probe_addr = self._next_safe_address(cpu.pc)
        if probe_addr is None:
            return False  # fall back to the caller's polling
        self.arm(cpu, probe_addr)
        return False

    def _next_safe_address(self, pc: int) -> Optional[int]:
        """The resume point execution reaches once it leaves the unsafe
        region: for a pc inside a patched original-code range, the range
        end; for a pc inside .chimera.text the block's exit target is not
        statically known here, so decline (polling handles it)."""
        view = self.process.views[self.process.active_view]
        if view.has_chimera_text and view.binary.section(".chimera.text").contains(pc):
            return None
        for other in self.process.views.values():
            meta = other.binary.metadata.get("chimera") or {}
            for lo, hi in meta.get("migration_unsafe", ()):
                if lo <= pc < hi:
                    return hi
        return None

    def arm(self, cpu: Cpu, addr: int) -> None:
        """Patch an ebreak probe over *addr* in the active space."""
        if addr in self._armed:
            return
        space = self.process.space
        original = bytes(space.fetch(addr, 2))
        # A 2-byte c.ebreak never clobbers more than one instruction slot.
        space.patch_code(addr, encode(Instruction("c.ebreak", length=2)))
        self._armed[addr] = original
        cpu.invalidate_code(addr, 2)

    def handle_fault(self, kernel: Kernel, process: Process, cpu: Cpu, fault: SimFault) -> bool:
        if not isinstance(fault, BreakpointTrap) or cpu.pc not in self._armed:
            return False
        addr = cpu.pc
        if self.injector is not None:
            self.injector.on_probe_fire(self, cpu, addr)
        original = self._armed.pop(addr, None)
        if not isinstance(original, (bytes, bytearray)) or len(original) != 2:
            raise UnrecoverableFault(
                f"migration probe at {addr:#x} fired with corrupt saved bytes",
                pc=addr,
                context={
                    "saved": repr(original),
                    "armed_probes": sorted(hex(a) for a in self._armed),
                    "pending_migration": self.process.pending_migration,
                },
            )
        cpu.space.patch_code(addr, bytes(original))
        cpu.invalidate_code(addr, len(original))
        self.fired += 1
        self.process.try_commit_pending(cpu)
        # Execution resumes at the restored instruction in the new view.
        return True


def _vregs_base(binary: Binary) -> Optional[int]:
    meta = binary.metadata.get("chimera")
    if meta is None:
        return None
    return meta.get("vregs_base")


def _is_downgraded(binary: Binary) -> bool:
    """True if this view emulates the vector extension in memory."""
    meta = binary.metadata.get("chimera")
    if meta is None:
        return False
    from repro.isa.extensions import PROFILES

    profile = PROFILES.get(meta.get("target_profile", ""), None)
    return profile is not None and not profile.supports(Extension.V)
