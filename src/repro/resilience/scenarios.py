"""End-to-end resilience scenarios: ``python -m repro resilience <name>``.

Each scenario runs a real mixed taskset through the measured scheduler
(rewritten binaries in the full simulator) while the
:class:`~repro.resilience.failures.CoreFailureInjector` breaks things,
and asserts the forward-progress contract: every task either completes
(workloads self-verify, so ``failures == 0`` means correct results) or
ends in a structured UnrecoverableFault entry — no hangs, no Python
tracebacks, no silent divergence.  The verdicts reuse the chaos
harness's :class:`~repro.chaos.outcomes.ScenarioResult` so chaos and
resilience report through one vocabulary.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.chaos.outcomes import ScenarioResult
from repro.core.machine_runner import HeteroTask, MeasuredRunResult, MeasuredScheduler
from repro.resilience.failures import (
    CORRUPT_CHECKPOINT,
    DROP_MIGRATION,
    KILL_CORE,
    CoreFailureInjector,
    FailureEvent,
)
from repro.resilience.seeds import replay_hint, resolve_seed

#: Instruction depth that lands a failure inside the matmul workload's
#: strip-mined vector loop (entry/setup retires well under this).
MID_VECTOR_DEPTH = 150


def small_taskset(n_base: int = 4, n_ext: int = 4) -> list[HeteroTask]:
    """A small deterministic base/ext mix (sizes chosen for test speed)."""
    tasks: list[HeteroTask] = []
    for i in range(n_base + n_ext):
        if i % 2 == 0 and sum(1 for t in tasks if t.kind == "ext") < n_ext:
            tasks.append(HeteroTask(i, "ext", 6))
        else:
            tasks.append(HeteroTask(i, "base", 400))
    return tasks


def _forward_progress(name: str, result: MeasuredRunResult,
                      n_tasks: int) -> Optional[ScenarioResult]:
    """The contract every scenario shares; None when it holds."""
    accounted = result.completed + result.unrecoverable
    if accounted != n_tasks:
        return ScenarioResult(
            name, False,
            f"{accounted}/{n_tasks} tasks accounted for — silent drop")
    if result.failures:
        return ScenarioResult(
            name, False,
            f"{result.failures} tasks finished with wrong results")
    return None


def scenario_ext_core_loss(seed: Optional[int] = None) -> ScenarioResult:
    """Kill an extension core mid-vector-task; work must migrate on."""
    name = "ext-core-loss"
    tasks = small_taskset()
    injector = CoreFailureInjector(
        [FailureEvent(KILL_CORE, core_id=2, task_kind="ext",
                      after_instructions=MID_VECTOR_DEPTH)], seed=seed)
    result = MeasuredScheduler(2, 2).run(tasks, "chimera", injector=injector)
    bad = _forward_progress(name, result, len(tasks))
    if bad is not None:
        return bad
    stats = result.resilience
    if stats.core_faults < 1:
        return ScenarioResult(name, False, "the kill never fired")
    if 2 not in result.quarantined_cores:
        return ScenarioResult(name, False, "dead core 2 was not quarantined")
    if result.unrecoverable:
        return ScenarioResult(
            name, False, f"{result.unrecoverable} tasks unrecoverable with "
                         "three live cores remaining")
    if stats.migrations < 1:
        return ScenarioResult(name, False, "orphaned task was not migrated")
    return ScenarioResult(
        name, True,
        f"core 2 died mid-vector-task; {stats.summary()}")


def scenario_flaky_core(seed: Optional[int] = None) -> ScenarioResult:
    """A core that flakes repeatedly gets quarantined after a threshold."""
    name = "flaky-core"
    tasks = small_taskset()
    injector = CoreFailureInjector.flake(
        2, count=2, after_instructions=MID_VECTOR_DEPTH, seed=seed)
    result = MeasuredScheduler(2, 2).run(tasks, "chimera", injector=injector,
                                         quarantine_after=2)
    bad = _forward_progress(name, result, len(tasks))
    if bad is not None:
        return bad
    stats = result.resilience
    if stats.core_faults != 2:
        return ScenarioResult(
            name, False, f"expected 2 flakes, saw {stats.core_faults}")
    if 2 not in result.quarantined_cores:
        return ScenarioResult(
            name, False, "flaky core 2 escaped quarantine after the threshold")
    if result.unrecoverable or stats.retries < 2:
        return ScenarioResult(
            name, False, f"retry ladder broken: {stats.summary()}")
    return ScenarioResult(
        name, True, f"core 2 flaked twice then quarantined; {stats.summary()}")


def scenario_lost_migration(seed: Optional[int] = None) -> ScenarioResult:
    """A checkpointed migration dropped in flight restarts from entry."""
    name = "lost-migration"
    tasks = small_taskset()
    injector = CoreFailureInjector(
        [FailureEvent(KILL_CORE, core_id=2, task_kind="ext",
                      after_instructions=MID_VECTOR_DEPTH),
         FailureEvent(DROP_MIGRATION)], seed=seed)
    result = MeasuredScheduler(2, 2).run(tasks, "chimera", injector=injector)
    bad = _forward_progress(name, result, len(tasks))
    if bad is not None:
        return bad
    stats = result.resilience
    if stats.migrations_lost < 1:
        return ScenarioResult(name, False, "the migration was never dropped")
    if stats.restarts < 1:
        return ScenarioResult(
            name, False, "lost migration did not restart from entry")
    if result.unrecoverable:
        return ScenarioResult(
            name, False, f"{result.unrecoverable} tasks unrecoverable after "
                         "a single lost migration")
    return ScenarioResult(
        name, True, f"migration dropped, task restarted; {stats.summary()}")


def scenario_corrupted_checkpoint(seed: Optional[int] = None) -> ScenarioResult:
    """A corrupted checkpoint is *detected* (checksum) and the task
    restarts from entry instead of silently diverging."""
    name = "corrupted-checkpoint"
    tasks = small_taskset()
    injector = CoreFailureInjector(
        [FailureEvent(KILL_CORE, core_id=2, task_kind="ext",
                      after_instructions=MID_VECTOR_DEPTH),
         FailureEvent(CORRUPT_CHECKPOINT)], seed=seed)
    result = MeasuredScheduler(2, 2).run(tasks, "chimera", injector=injector)
    bad = _forward_progress(name, result, len(tasks))
    if bad is not None:
        return bad
    stats = result.resilience
    if stats.checkpoint_failures < 1:
        return ScenarioResult(
            name, False, "corruption was never detected at restore")
    if stats.restarts < 1:
        return ScenarioResult(
            name, False, "corrupt checkpoint did not trigger a restart")
    if result.unrecoverable:
        return ScenarioResult(
            name, False, f"{result.unrecoverable} tasks unrecoverable after "
                         "one corrupt checkpoint")
    return ScenarioResult(
        name, True,
        f"checksum caught the corruption, task restarted; {stats.summary()}")


def scenario_all_ext_cores_dead(seed: Optional[int] = None) -> ScenarioResult:
    """Every extension core dies; base cores finish everything via the
    downgraded binary (accelerated share collapses to zero)."""
    name = "all-ext-cores-dead"
    tasks = small_taskset()
    injector = CoreFailureInjector(
        [FailureEvent(KILL_CORE, core_id=2, after_instructions=100),
         FailureEvent(KILL_CORE, core_id=3, after_instructions=100)],
        seed=seed)
    result = MeasuredScheduler(2, 2).run(tasks, "chimera", injector=injector)
    bad = _forward_progress(name, result, len(tasks))
    if bad is not None:
        return bad
    stats = result.resilience
    if result.quarantined_cores != (2, 3):
        return ScenarioResult(
            name, False,
            f"expected cores (2, 3) quarantined, got {result.quarantined_cores}")
    if result.unrecoverable:
        return ScenarioResult(
            name, False, f"{result.unrecoverable} tasks unrecoverable — base "
                         "cores should have absorbed everything")
    if result.accelerated_share != 0.0:
        return ScenarioResult(
            name, False,
            f"accelerated_share={result.accelerated_share:.2f} with zero "
            "live extension cores")
    return ScenarioResult(
        name, True,
        f"base cores absorbed all {len(tasks)} tasks downgraded; "
        f"{stats.summary()}")


SCENARIOS: dict[str, Callable[[Optional[int]], ScenarioResult]] = {
    "ext-core-loss": scenario_ext_core_loss,
    "flaky-core": scenario_flaky_core,
    "lost-migration": scenario_lost_migration,
    "corrupted-checkpoint": scenario_corrupted_checkpoint,
    "all-ext-cores-dead": scenario_all_ext_cores_dead,
}


def run_scenario(name: str, *, seed: Optional[int] = None) -> ScenarioResult:
    """Run one scenario; any non-structured escape is itself a failure."""
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown resilience scenario {name!r}; choose from "
            f"{sorted(SCENARIOS)} or 'all'") from None
    try:
        return fn(seed)
    except Exception as exc:  # noqa: BLE001 — tracebacks are the failure mode
        return ScenarioResult(
            name, False,
            f"python-crash: {type(exc).__name__}: {exc} "
            f"({replay_hint(resolve_seed(seed))})")


def run_all(seed: Optional[int] = None) -> list[ScenarioResult]:
    return [run_scenario(name, seed=seed) for name in SCENARIOS]
