"""Cost model, vector unit, and ArchParams tests."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import Instruction
from repro.sim.cost import ArchParams, CostModel, DEFAULT_ARCH
from repro.sim.vector import VectorUnit


class TestArchParams:
    def test_scaled_divides_jal_reach(self):
        scaled = DEFAULT_ARCH.scaled(16)
        assert scaled.jal_reach == DEFAULT_ARCH.jal_reach // 16
        assert scaled.scale == 16
        # Costs are architectural, not layout: unscaled.
        assert scaled.trap_cost == DEFAULT_ARCH.trap_cost

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_ARCH.trap_cost = 1  # type: ignore[misc]

    def test_hashable_for_caches(self):
        assert hash(DEFAULT_ARCH) == hash(ArchParams())


class TestCostModel:
    def test_alu_cheapest(self):
        m = CostModel()
        assert m.instruction_cost(Instruction("add", rd=1, rs1=2, rs2=3)) == 1

    def test_loads_cost_more(self):
        m = CostModel()
        assert m.instruction_cost(Instruction("ld", rd=1, rs1=2, imm=0)) > 1

    def test_div_expensive(self):
        m = CostModel()
        assert m.instruction_cost(Instruction("div", rd=1, rs1=2, rs2=3)) >= 10

    def test_taken_branch_penalty(self):
        m = CostModel()
        b = Instruction("beq", rs1=1, rs2=2, imm=8)
        assert m.instruction_cost(b, taken=True) == m.instruction_cost(b, taken=False) + 1

    def test_vector_default_cost(self):
        from repro.isa.extensions import Extension

        m = CostModel()
        v = Instruction("vadd.vv", vd=1, vs2=2, vs1=3, extension=Extension.V)
        assert m.instruction_cost(v) == 2

    def test_trap_and_fault_costs_exposed(self):
        m = CostModel()
        assert m.trap_cost == DEFAULT_ARCH.trap_cost
        assert m.fault_handling_cost == DEFAULT_ARCH.fault_handling_cost
        assert m.fault_handling_cost >= m.trap_cost  # fault adds table work


class TestVectorUnit:
    def test_vlmax_by_sew(self):
        vu = VectorUnit(256)
        assert vu.set_vl(100, 64) == 4
        assert vu.set_vl(100, 32) == 8

    def test_set_vl_passthrough(self):
        vu = VectorUnit(256)
        assert vu.set_vl(3, 64) == 3

    def test_bad_sew_rejected(self):
        vu = VectorUnit(256)
        with pytest.raises(ValueError):
            vu.set_vl(4, 16)

    def test_bad_vlen_rejected(self):
        with pytest.raises(ValueError):
            VectorUnit(100)

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=4))
    def test_elem_roundtrip_64(self, values):
        vu = VectorUnit(256)
        vu.set_vl(len(values), 64)
        vu.write_elems(3, values)
        assert vu.read_elems(3, len(values)) == values

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=8))
    def test_elem_roundtrip_32(self, values):
        vu = VectorUnit(256)
        vu.set_vl(len(values), 32)
        vu.write_elems(1, values)
        assert vu.read_elems(1, len(values)) == values

    def test_write_wraps_to_sew(self):
        vu = VectorUnit(256)
        vu.set_vl(1, 32)
        vu.write_elem(0, 0, 2**40 + 7)
        assert vu.read_elem(0, 0) == 7

    def test_signed_elem(self):
        vu = VectorUnit(256)
        vu.set_vl(1, 64)
        vu.write_elem(0, 0, 2**64 - 5)
        assert vu.signed_elem(0, 0) == -5

    def test_reg_bytes_roundtrip(self):
        vu = VectorUnit(256)
        data = bytes(range(32))
        vu.load_reg_bytes(7, data)
        assert vu.reg_bytes(7) == data
        with pytest.raises(ValueError):
            vu.load_reg_bytes(7, b"short")

    def test_snapshot_restore(self):
        vu = VectorUnit(256)
        vu.set_vl(4, 64)
        vu.write_elems(2, [9, 8, 7, 6])
        snap = vu.snapshot()
        vu.write_elems(2, [0, 0, 0, 0])
        vu.set_vl(8, 32)
        vu.restore(snap)
        assert vu.vl == 4 and vu.sew == 64
        assert vu.read_elems(2, 4) == [9, 8, 7, 6]
