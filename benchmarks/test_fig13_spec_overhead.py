"""Fig. 13: performance degradation of rewritten SPEC CPU2017 binaries.

Regenerates the per-benchmark degradation series (empty patching, §6.2)
for Strawman / Safer / ARMore / CHBP, plus the paper's headline
aggregates: CHBP avg/worst, Safer avg/worst, CHBP-vs-strawman gain.
"""

import statistics

import pytest

from benchmarks.helpers import SYSTEMS, emit_bench, print_table, run_profile
from repro.workloads.spec_profiles import PAPER_HEADLINES, SPEC_PROFILES
from repro.telemetry import MetricsRegistry


def _sweep():
    return {name: run_profile(name) for name in sorted(SPEC_PROFILES)}


@pytest.fixture(scope="module")
def sweep():
    return _sweep()


def test_fig13_regenerate(benchmark, sweep):
    def report():
        rows = []
        for name, run in sweep.items():
            rows.append([
                name,
                f"{run.degradation_pct['strawman']:+.1f}%",
                f"{run.degradation_pct['multiverse']:+.1f}%",
                f"{run.degradation_pct['safer']:+.1f}%",
                f"{run.degradation_pct['armore']:+.1f}%",
                f"{run.degradation_pct['chimera']:+.1f}%",
            ])
        print_table(
            "Fig. 13 — perf degradation on SPEC CPU2017 (empty patching)",
            ["benchmark", "strawman", "multiverse", "safer", "armore", "chbp"],
            rows,
        )
        registry = MetricsRegistry()
        for name, run in sweep.items():
            for system in SYSTEMS:
                registry.gauge("bench.degradation_pct",
                               run.degradation_pct[system],
                               benchmark=name, system=system)
        emit_bench("fig13_spec_overhead", registry)
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    assert len(rows) == len(SPEC_PROFILES)


def test_fig13_headline_shape(sweep):
    """The who-wins structure of Fig. 13 must reproduce."""
    chbp = [r.degradation_pct["chimera"] for r in sweep.values()]
    safer = [r.degradation_pct["safer"] for r in sweep.values()]
    armore = [r.degradation_pct["armore"] for r in sweep.values()]
    straw = [r.degradation_pct["strawman"] for r in sweep.values()]
    multiverse = [r.degradation_pct["multiverse"] for r in sweep.values()]

    chbp_avg = statistics.mean(chbp)
    safer_avg = statistics.mean(safer)
    armore_avg = statistics.mean(armore)
    straw_avg = statistics.mean(straw)
    mv_avg = statistics.mean(multiverse)
    print(f"\nmeasured averages: chbp={chbp_avg:.1f}% safer={safer_avg:.1f}% "
          f"multiverse={mv_avg:.1f}% armore={armore_avg:.1f}% strawman={straw_avg:.1f}%")
    # Safer's optimization over Multiverse (§2.2) must be visible.
    assert safer_avg < mv_avg
    assert mv_avg > 25.0  # paper: "above 30% performance overhead"
    print(f"paper:             chbp={PAPER_HEADLINES['chbp_avg_degradation_pct']}% "
          f"safer={PAPER_HEADLINES['safer_avg_degradation_pct']}% "
          f"armore={PAPER_HEADLINES['armore_avg_degradation_pct']}%")

    # CHBP has the lowest overhead of all rewriters, on every benchmark.
    for name, run in sweep.items():
        for other in ("safer", "multiverse", "armore", "strawman"):
            assert run.degradation_pct["chimera"] <= run.degradation_pct[other] + 1.0, \
                f"{name}: chimera not best vs {other}"
    # Aggregate ordering and rough magnitudes.
    assert chbp_avg < 12.0
    assert chbp_avg < safer_avg < armore_avg
    assert straw_avg > 3 * safer_avg
    assert max(chbp) < max(safer) or max(safer) > 20.0


def test_fig13_all_rewrites_correct(sweep):
    """Every rewritten binary still runs to a clean exit (§6.3 on the
    synthetic suite)."""
    for name, run in sweep.items():
        for system in SYSTEMS:
            assert run.ok[system], f"{name}/{system} broke the binary"
