"""ChimeraRuntime fault-classification and recovery tests."""

import pytest

from repro.core.fault_table import FaultTable
from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.isa.registers import Reg
from repro.sim.faults import BreakpointTrap, IllegalInstructionFault, SegmentationFault
from repro.sim.machine import Core, Kernel


def rewritten_vector_binary():
    b = ProgramBuilder("p")
    b.add_words("buf", [3, 4, 5, 6] + [0] * 8)
    b.set_text("""
_start:
    li a0, {buf}
    li a1, 4
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vadd.vv v2, v1, v1
    vse64.v v2, (a0)
    li a7, 93
    li a0, 0
    ecall
""")
    binary = b.build()
    rewriter = ChimeraRewriter()
    result = rewriter.rewrite(binary, RV64GC)
    return binary, result, rewriter


class TestFaultTable:
    def test_add_lookup(self):
        t = FaultTable()
        t.add(0x100, 0x900)
        assert t.lookup(0x100) == 0x900
        assert t.lookup(0x104) is None
        assert 0x100 in t and len(t) == 1

    def test_conflicting_entry_rejected(self):
        t = FaultTable()
        t.add(0x100, 0x900)
        with pytest.raises(ValueError):
            t.add(0x100, 0x904)
        t.add(0x100, 0x900)  # idempotent re-add is fine


class TestInstallation:
    def test_requires_chimera_metadata(self):
        b = ProgramBuilder("x")
        b.set_text("_start:\nli a7, 93\nli a0, 0\necall\n")
        with pytest.raises(ValueError):
            ChimeraRuntime(b.build())

    def test_priority_registration(self):
        _, result, _ = rewritten_vector_binary()
        kernel = Kernel()
        calls = []
        kernel.register_fault_handler(lambda *a: calls.append("other") or False)
        ChimeraRuntime(result.binary).install(kernel)
        assert kernel._fault_handlers[0].__self__.__class__ is ChimeraRuntime


class TestSegvClassification:
    def test_p1_fault_recovers(self):
        """Simulate the P1 scenario: gp holds a SMILE return address whose
        fault-table key redirects; the handler must restore gp and jump."""
        binary, result, _ = rewritten_vector_binary()
        runtime = ChimeraRuntime(result.binary)
        kernel = Kernel()
        runtime.install(kernel)
        proc = make_process(result.binary)
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        key, redirect = next(iter(runtime.fault_table))
        cpu.set_reg(Reg.GP, key + 4)  # jalr wrote P1+4
        fault = SegmentationFault(binary.global_pointer + 0x200, "exec")
        assert runtime.handle_fault(kernel, proc, cpu, fault)
        assert cpu.pc == redirect
        assert cpu.get_reg(Reg.GP) == binary.global_pointer
        assert runtime.stats.smile_segv_recoveries == 1

    def test_exec_fault_in_executable_segment_not_ours(self):
        binary, result, _ = rewritten_vector_binary()
        runtime = ChimeraRuntime(result.binary)
        kernel = Kernel()
        proc = make_process(result.binary)
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        fault = SegmentationFault(binary.entry, "exec")
        assert not runtime.handle_fault(kernel, proc, cpu, fault)

    def test_unknown_gp_not_ours(self):
        binary, result, _ = rewritten_vector_binary()
        runtime = ChimeraRuntime(result.binary)
        kernel = Kernel()
        proc = make_process(result.binary)
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        cpu.set_reg(Reg.GP, 0x12345678)
        fault = SegmentationFault(binary.global_pointer, "exec")
        assert not runtime.handle_fault(kernel, proc, cpu, fault)

    def test_read_segv_not_ours(self):
        binary, result, _ = rewritten_vector_binary()
        runtime = ChimeraRuntime(result.binary)
        kernel = Kernel()
        proc = make_process(result.binary)
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        fault = SegmentationFault(0xDEAD, "read")
        assert not runtime.handle_fault(kernel, proc, cpu, fault)


class TestSigillClassification:
    def test_table_key_redirects(self):
        binary, result, _ = rewritten_vector_binary()
        runtime = ChimeraRuntime(result.binary)
        kernel = Kernel()
        proc = make_process(result.binary)
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        key, redirect = next(iter(runtime.fault_table))
        cpu.pc = key
        fault = IllegalInstructionFault(key, "reserved-compressed")
        assert runtime.handle_fault(kernel, proc, cpu, fault)
        assert cpu.pc == redirect
        assert runtime.stats.smile_sigill_recoveries == 1

    def test_unknown_sigill_without_rewriter_unhandled(self):
        binary, result, _ = rewritten_vector_binary()
        runtime = ChimeraRuntime(result.binary)  # no rewriter/original
        kernel = Kernel()
        proc = make_process(result.binary)
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        cpu.pc = binary.entry
        fault = IllegalInstructionFault(binary.entry, "unsupported-extension")
        assert not runtime.handle_fault(kernel, proc, cpu, fault)


class TestTrapRedirect:
    def test_trap_table_redirect_charges_trap_cost(self):
        from repro.baselines.strawman import StrawmanPatcher

        b = ProgramBuilder("p")
        b.add_words("buf", [1, 2] + [0] * 8)
        b.set_text("""
_start:
    li a0, {buf}
    li a1, 2
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vse64.v v1, (a0)
    li a7, 93
    li a0, 0
    ecall
""")
        binary = b.build()
        from repro.sim.cost import DEFAULT_ARCH

        # Shrink jal reach so every strawman site is forced to trap.
        patcher = StrawmanPatcher(binary, RV64GC, arch=DEFAULT_ARCH.scaled(1 << 17),
                                  batch_blocks=False, enable_upgrades=False)
        rewritten = patcher.patch()
        runtime = ChimeraRuntime(rewritten)
        kernel = Kernel()
        runtime.install(kernel)
        proc = make_process(rewritten)
        res = kernel.run(proc, Core(0, RV64GC))
        assert res.ok
        assert runtime.stats.trap_redirects >= 2
        assert res.counters.get("traps", 0) >= 2


class TestLazyRewriting:
    def test_unrecognized_instruction_rewritten_at_runtime(self):
        """A vector instruction reachable only through an indirect call is
        invisible to the static scan; the first execution on a base core
        must trigger in-place rewriting and then succeed."""
        b = ProgramBuilder("lazy")
        b.add_words("buf", [7, 8] + [0] * 8)
        b.add_words("slot", [0])
        b.set_text("""
_start:
    la t0, hidden
    li t1, {slot}
    sd t0, 0(t1)
    li a0, {buf}
    li a1, 2
    ld t0, 0(t1)
    jalr t0
    li a7, 93
    li a0, 0
    ecall
    .word 0xffffffff   # data island: stops the linear fall-through scan
hidden:
    vsetvli t0, a1, e64
    vle64.v v1, (a0)
    vadd.vv v2, v1, v1
    vse64.v v2, (a0)
    ret
""")
        binary = b.build()
        rewriter = ChimeraRewriter()
        result = rewriter.rewrite(binary, RV64GC)
        # The static rewrite saw nothing vectorish (hidden is unscanned).
        assert result.stats.trampolines == 0 and result.stats.trap_fallbacks == 0
        runtime = ChimeraRuntime(result.binary, rewriter=rewriter, original=binary)
        kernel = Kernel()
        runtime.install(kernel)
        proc = make_process(result.binary)
        res = kernel.run(proc, Core(0, RV64GC))
        assert res.ok, res.fault
        assert runtime.stats.runtime_rewrites >= 1
        buf = binary.symbol_addr("buf")
        assert [proc.space.read_u64(buf + 8 * i) for i in range(2)] == [14, 16]
