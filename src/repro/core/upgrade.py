"""Instruction upgrade: base-ISA idioms -> extension instructions (§3.4).

Upgrade is the mirror of downgrade: given a binary compiled for the base
ISA, optimize recognizable idioms into extension instructions so the
rewritten binary exploits extension cores.  Two classes are implemented:

* **Zba fusion** — ``slli t, x, k ; add d, t, y`` (k in 1..3, t dead
  afterwards) becomes ``shkadd d, x, y``;
* **loop vectorization** — the two canonical compiler-shaped loops the
  workloads contain:

  - *map loops*: elementwise ``z[i] = x[i] op y[i]`` over 64-bit arrays;
  - *dot loops*: ``acc += x[i] * y[i]`` reductions;

  both become strip-mined RVV loops.  Matching is structural (mnemonic
  shapes + register-role consistency + liveness side conditions), the
  binary-level analog of the pattern knowledge a compiler-based system
  like MELF gets for free from source code.

Correctness side conditions (checked, not assumed):

* loop temporaries must be dead at the loop head and at the loop exit —
  the vector replacement does not reproduce their final scalar values;
* pointer/counter registers must be distinct from temporaries;
* the loop must be a single basic block whose back-branch targets its
  own head (so re-entering the head mid-computation is always legal —
  this is what makes erroneous-entry recovery compose with upgrading).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.liveness import LivenessResult
from repro.analysis.scan import ScanResult
from repro.isa.extensions import Extension, IsaProfile
from repro.isa.instructions import Instruction
from repro.isa.registers import reg_name

_counter = count(1)


@dataclass
class UpgradeSite:
    """One matched multi-instruction pattern and its replacement.

    Used by both directions: idiom *upgrades* (this module) and loop
    *downgrades* (:mod:`repro.core.downgrade_loops`).  ``entry_policy``
    selects how erroneous jumps into the replaced window recover:
    ``"copy"`` redirects to duplicated copies of the pattern tail
    (Fig. 6b); ``"restart-head"`` redirects to the trampoline at the
    pattern head (sound for idempotent strip-mine loops).
    """

    kind: str                        # "zba" | "vec-map" | "vec-dot" | "down-*"
    instructions: list[Instruction]  # the original pattern, in layout order
    replacement_asm: str             # assembly text of the replacement
    entry_policy: str = "copy"

    @property
    def start(self) -> int:
        return self.instructions[0].addr

    @property
    def end(self) -> int:
        last = self.instructions[-1]
        return last.addr + last.length


def find_upgrade_sites(
    scan: ScanResult,
    cfg: ControlFlowGraph,
    liveness: LivenessResult,
    target_profile: IsaProfile,
) -> list[UpgradeSite]:
    """All non-overlapping upgrade sites, in address order."""
    sites: list[UpgradeSite] = []
    taken: set[int] = set()
    if target_profile.supports(Extension.V):
        for block in cfg:
            site = _match_vector_loop(block, cfg, liveness)
            if site and not (taken & {i.addr for i in site.instructions}):
                sites.append(site)
                taken.update(i.addr for i in site.instructions)
    if target_profile.supports(Extension.ZBA):
        for block in cfg:
            for site in _match_zba(block, liveness):
                addrs = {i.addr for i in site.instructions}
                if not (taken & addrs):
                    sites.append(site)
                    taken.update(addrs)
    sites.sort(key=lambda s: s.start)
    return sites


# ---------------------------------------------------------------------------
# Zba fusion
# ---------------------------------------------------------------------------

def _match_zba(block, liveness: LivenessResult) -> list[UpgradeSite]:
    out: list[UpgradeSite] = []
    instrs = block.instructions
    for a, b in zip(instrs, instrs[1:]):
        if a.mnemonic != "slli" or a.imm not in (1, 2, 3):
            continue
        if b.mnemonic != "add":
            continue
        t = a.rd
        if t in (0, 2, 3, 4):
            continue
        # add must use t exactly once; the other operand is y.
        if b.rs1 == t and b.rs2 != t:
            y = b.rs2
        elif b.rs2 == t and b.rs1 != t:
            y = b.rs1
        else:
            continue
        after = b.addr + b.length
        if t != b.rd and not liveness.is_dead_before(after, t):
            continue  # t's shifted value survives; fusion would lose it
        asm = f"sh{a.imm}add {reg_name(b.rd)}, {reg_name(a.rs1)}, {reg_name(y)}"
        out.append(UpgradeSite("zba", [a, b], asm))
    return out


# ---------------------------------------------------------------------------
# Loop vectorization
# ---------------------------------------------------------------------------

_MAP_OPS = {"add": "vadd.vv", "sub": "vsub.vv", "mul": "vmul.vv"}


def _match_vector_loop(block, cfg: ControlFlowGraph, liveness: LivenessResult):
    """Match a whole block against the map/dot/copy loop shapes."""
    instrs = block.instructions
    term = instrs[-1]
    # Back-branch to own head, i.e. `bnez n, block.start`.
    if term.mnemonic != "bne" or term.rs2 != 0 or term.target() != block.start:
        return None
    return (_match_map_loop(block, liveness)
            or _match_dot_loop(block, liveness)
            or _match_copy_loop(block, liveness))


def _regs_distinct(*regs: int) -> bool:
    return len(set(regs)) == len(regs)


def _temps_ok(block, liveness: LivenessResult, temps: set[int], others: set[int]) -> bool:
    if temps & others or 0 in temps:
        return False
    exit_addr = block.end
    head = block.start
    return all(
        liveness.is_dead_before(exit_addr, t) and liveness.is_dead_before(head, t)
        for t in temps
    )


def _match_map_loop(block, liveness: LivenessResult):
    """``z[i] = x[i] op y[i]`` over 64-bit elements (9 instructions)."""
    ins = block.instructions
    if len(ins) != 9:
        return None
    ld1, ld2, op, st, ax, ay, az, an, br = ins
    if ld1.mnemonic != "ld" or ld2.mnemonic != "ld" or st.mnemonic != "sd":
        return None
    if op.mnemonic not in _MAP_OPS:
        return None
    if ld1.imm or ld2.imm or st.imm:
        return None
    a, b, c = ld1.rd, ld2.rd, op.rd
    px, py, pz = ld1.rs1, ld2.rs1, st.rs1
    if st.rs2 != c or op.rs1 != a or op.rs2 != b:
        return None
    for adv, ptr in ((ax, px), (ay, py), (az, pz)):
        if adv.mnemonic != "addi" or adv.rd != ptr or adv.rs1 != ptr or adv.imm != 8:
            return None
    if an.mnemonic != "addi" or an.imm != -1 or an.rd != an.rs1:
        return None
    n = an.rd
    if br.rs1 != n:
        return None
    if not _regs_distinct(px, py, pz, n) or not _temps_ok(block, liveness, {a, b, c}, {px, py, pz, n}):
        return None
    vop = _MAP_OPS[op.mnemonic]
    tag = next(_counter)
    A, B = reg_name(a), reg_name(b)
    PX, PY, PZ, N = reg_name(px), reg_name(py), reg_name(pz), reg_name(n)
    asm = (
        f".Lvmap{tag}:\n"
        f"vsetvli {A}, {N}, e64\n"
        f"vle64.v v1, ({PX})\n"
        f"vle64.v v2, ({PY})\n"
        f"{vop} v3, v1, v2\n"
        f"vse64.v v3, ({PZ})\n"
        f"slli {B}, {A}, 3\n"
        f"add {PX}, {PX}, {B}\n"
        f"add {PY}, {PY}, {B}\n"
        f"add {PZ}, {PZ}, {B}\n"
        f"sub {N}, {N}, {A}\n"
        f"bnez {N}, .Lvmap{tag}"
    )
    return UpgradeSite("vec-map", list(ins), asm)


def _match_copy_loop(block, liveness: LivenessResult):
    """``z[i] = x[i]`` block copy over 64-bit elements (6 instructions)."""
    ins = block.instructions
    if len(ins) != 6:
        return None
    ld, st, ax, az, an, br = ins
    if ld.mnemonic != "ld" or st.mnemonic != "sd" or ld.imm or st.imm:
        return None
    a = ld.rd
    px, pz = ld.rs1, st.rs1
    if st.rs2 != a:
        return None
    for adv, ptr in ((ax, px), (az, pz)):
        if adv.mnemonic != "addi" or adv.rd != ptr or adv.rs1 != ptr or adv.imm != 8:
            return None
    if an.mnemonic != "addi" or an.imm != -1 or an.rd != an.rs1:
        return None
    n = an.rd
    if br.rs1 != n or not _regs_distinct(px, pz, n):
        return None
    if not _temps_ok(block, liveness, {a}, {px, pz, n}):
        return None
    # A second scratch for the byte-stride advance: dead at the loop
    # head AND at the exit (the replacement leaves the last stride in it).
    candidates = sorted(
        (liveness.dead_before(block.start) & liveness.dead_before(block.end))
        - {a, px, pz, n, 0, 1, 2, 3, 4}
    )
    if not candidates:
        return None
    b = candidates[0]
    tag = next(_counter)
    A, B = reg_name(a), reg_name(b)
    PX, PZ, N = reg_name(px), reg_name(pz), reg_name(n)
    asm = (
        f".Lvcp{tag}:\n"
        f"vsetvli {A}, {N}, e64\n"
        f"vle64.v v1, ({PX})\n"
        f"vse64.v v1, ({PZ})\n"
        f"slli {B}, {A}, 3\n"
        f"add {PX}, {PX}, {B}\n"
        f"add {PZ}, {PZ}, {B}\n"
        f"sub {N}, {N}, {A}\n"
        f"bnez {N}, .Lvcp{tag}"
    )
    return UpgradeSite("vec-copy", list(ins), asm)


def _match_dot_loop(block, liveness: LivenessResult):
    """``acc += x[i] * y[i]`` reduction (8 instructions)."""
    ins = block.instructions
    if len(ins) != 8:
        return None
    ld1, ld2, mul, acc_add, ax, ay, an, br = ins
    if ld1.mnemonic != "ld" or ld2.mnemonic != "ld" or mul.mnemonic != "mul":
        return None
    if acc_add.mnemonic != "add":
        return None
    if ld1.imm or ld2.imm:
        return None
    a, b, c = ld1.rd, ld2.rd, mul.rd
    px, py = ld1.rs1, ld2.rs1
    if mul.rs1 != a or mul.rs2 != b:
        return None
    acc = acc_add.rd
    if acc_add.rs1 != acc or acc_add.rs2 != c:
        return None
    for adv, ptr in ((ax, px), (ay, py)):
        if adv.mnemonic != "addi" or adv.rd != ptr or adv.rs1 != ptr or adv.imm != 8:
            return None
    if an.mnemonic != "addi" or an.imm != -1 or an.rd != an.rs1:
        return None
    n = an.rd
    if br.rs1 != n:
        return None
    if not _regs_distinct(px, py, n, acc) or not _temps_ok(block, liveness, {a, b, c}, {px, py, n, acc}):
        return None
    tag = next(_counter)
    A, B = reg_name(a), reg_name(b)
    PX, PY, N, ACC = reg_name(px), reg_name(py), reg_name(n), reg_name(acc)
    asm = (
        # Zero the accumulator vector at full VLMAX so stale lanes from a
        # previous use cannot leak into the reduction.
        f"vsetvli {A}, zero, e64\n"
        f"vmv.v.i v1, 0\n"
        f".Lvdot{tag}:\n"
        f"vsetvli {A}, {N}, e64\n"
        f"vle64.v v2, ({PX})\n"
        f"vle64.v v3, ({PY})\n"
        f"vmacc.vv v1, v2, v3\n"
        f"slli {B}, {A}, 3\n"
        f"add {PX}, {PX}, {B}\n"
        f"add {PY}, {PY}, {B}\n"
        f"sub {N}, {N}, {A}\n"
        f"bnez {N}, .Lvdot{tag}\n"
        # Reduce v1 into the scalar accumulator via the stack.
        f"vsetvli {A}, zero, e64\n"
        f"vmv.v.i v2, 0\n"
        f"vredsum.vs v3, v1, v2\n"
        f"li {B}, 1\n"
        f"vsetvli {A}, {B}, e64\n"
        f"addi sp, sp, -16\n"
        f"vse64.v v3, (sp)\n"
        f"ld {B}, 0(sp)\n"
        f"addi sp, sp, 16\n"
        f"add {ACC}, {ACC}, {B}"
    )
    return UpgradeSite("vec-dot", list(ins), asm)
