"""Fig. 14: OpenBLAS kernels under FAM-Ext / FAM-Base / MELF / Chimera.

Subplots a-d: dgemm/sgemm/dgemv/sgemv acceleration ratios (vs FAM-Ext)
over 2..8 threads on the 4+4-core machine; subplot e: sgemm scalability
on the 64-core SG2042-like machine.
"""

import pytest

from benchmarks.helpers import emit_bench, print_table
from repro.workloads.openblas import SYSTEMS, measure_kernel, run_fig14, run_fig14_scalability
from repro.telemetry import MetricsRegistry

KERNELS = ("dgemm", "sgemm", "dgemv", "sgemv")
THREADS = (2, 4, 6, 8)


@pytest.fixture(scope="module")
def data():
    return {k: run_fig14(k, THREADS) for k in KERNELS}


@pytest.fixture(scope="module")
def scalability():
    return run_fig14_scalability()


def test_fig14_regenerate(benchmark, data, scalability):
    def report():
        for kernel in KERNELS:
            by = {(r.system, r.threads): r for r in data[kernel]}
            rows = [
                [f"T={t}"] + [f"{by[(s, t)].acceleration_vs_fam_ext:.2f}" for s in SYSTEMS]
                for t in THREADS
            ]
            print_table(f"Fig. 14 — OpenBLAS {kernel} (accel vs FAM-Ext)",
                        ["threads"] + list(SYSTEMS), rows)
        by = {(r.system, r.threads): r for r in scalability}
        threads = sorted({r.threads for r in scalability})
        rows = [
            [f"T={t}"] + [f"{by[(s, t)].acceleration_vs_fam_ext:.2f}" for s in SYSTEMS]
            for t in threads
        ]
        print_table("Fig. 14e — sgemm scalability on 32+32 cores",
                    ["threads"] + list(SYSTEMS), rows)
        registry = MetricsRegistry()
        for kernel in KERNELS:
            for r in data[kernel]:
                registry.gauge("bench.makespan_cycles", r.makespan,
                               kernel=kernel, system=r.system,
                               threads=str(r.threads))
        for r in scalability:
            registry.gauge("bench.makespan_cycles", r.makespan,
                           kernel="sgemm-scalability", system=r.system,
                           threads=str(r.threads))
        emit_bench("fig14_openblas", registry)
        return data

    benchmark.pedantic(report, rounds=1, iterations=1)


class TestShape:
    def test_chimera_close_to_melf(self, data):
        gaps = []
        for kernel in KERNELS:
            by = {(r.system, r.threads): r for r in data[kernel]}
            for t in THREADS:
                melf = by[("melf", t)].makespan
                chim = by[("chimera", t)].makespan
                gaps.append((chim - melf) / melf)
        avg = 100 * sum(gaps) / len(gaps)
        print(f"\nchimera-vs-melf gap across kernels: {avg:.1f}% (paper 5.4%)")
        assert avg < 12.0

    def test_chimera_beats_fam_base(self, data):
        """Paper: 32.1% acceleration over FAM Base."""
        for kernel in ("dgemm", "dgemv"):
            by = {(r.system, r.threads): r for r in data[kernel]}
            for t in (4, 8):
                chim = by[("chimera", t)].makespan
                base = by[("fam_base", t)].makespan
                assert chim < base, f"{kernel} T={t}"

    def test_fam_ext_suffers_from_contention(self, data):
        """With more threads than extension cores, FAM-Ext stops scaling
        while MELF/Chimera keep using the base cores."""
        by = {(r.system, r.threads): r for r in data["dgemm"]}
        assert by[("melf", 8)].acceleration_vs_fam_ext > 1.2
        assert by[("chimera", 8)].acceleration_vs_fam_ext > 1.15

    def test_sgemm_vector_gain_larger_than_dgemm(self, data):
        """32-bit elements double the lanes: FAM-Base (scalar) looks
        relatively worse on sgemm than on dgemm."""
        d = {(r.system, r.threads): r for r in data["dgemm"]}
        s = {(r.system, r.threads): r for r in data["sgemm"]}
        assert s[("fam_base", 8)].acceleration_vs_fam_ext <= \
            d[("fam_base", 8)].acceleration_vs_fam_ext + 0.05

    def test_scalability_speedup_drops_at_high_threads(self, scalability):
        """Paper: sgemm speedup drops 60.2% from 16 to 64 threads due to
        synchronization overhead."""
        by = {(r.system, r.threads): r for r in scalability}
        m16 = by[("chimera", 16)].makespan
        m64 = by[("chimera", 64)].makespan
        # throughput per thread at 64 threads is much worse than at 16
        eff16 = 1.0 / (m16 * 16)
        eff64 = 1.0 / (m64 * 64)
        drop = 1 - eff64 / eff16
        print(f"\nper-thread efficiency drop 16->64 threads: {drop:.0%} (paper 60.2% speedup drop)")
        assert drop > 0.3

    def test_gemv_parallelizes_stably(self, data):
        """Matrix-vector kernels have light synchronization: acceleration
        does not collapse as threads increase."""
        by = {(r.system, r.threads): r for r in data["dgemv"]}
        accel = [by[("chimera", t)].acceleration_vs_fam_ext for t in THREADS]
        assert accel[-1] >= accel[0] * 0.7


def test_kernel_costs_report(data):
    rows = []
    for kernel in KERNELS:
        c = measure_kernel(kernel)
        rows.append([kernel, c.native_ext, c.native_scalar, c.chimera_ext, c.chimera_base])
    print_table("measured per-task kernel costs (cycles)",
                ["kernel", "native-ext", "native-scalar", "chimera-ext", "chimera-base"],
                rows)
