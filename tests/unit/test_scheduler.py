"""Work-stealing discrete-event scheduler tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduler import (
    ScheduleResult,
    SystemModel,
    Task,
    WorkStealingScheduler,
    mixed_taskset,
)
from repro.sim.cost import ArchParams

ARCH = ArchParams()


def simple_model(base_cost=100, ext_cost=50, ext_on_base=200, name="m") -> SystemModel:
    return SystemModel(
        name,
        costs={("base", False): base_cost, ("base", True): base_cost,
               ("ext", True): ext_cost, ("ext", False): ext_on_base},
        accelerated_placements=frozenset({("ext", True)}),
    )


def fam_model() -> SystemModel:
    return SystemModel(
        "fam",
        costs={("base", False): 100, ("base", True): 100,
               ("ext", True): 50, ("ext", False): None},
        accelerated_placements=frozenset({("ext", True)}),
        migrate_on_unsupported=True,
        detect_cycles=10,
    )


class TestTasksets:
    def test_share_counts(self):
        tasks = mixed_taskset(100, 0.3)
        assert sum(t.kind == "ext" for t in tasks) == 30
        assert len(tasks) == 100

    def test_extremes(self):
        assert all(t.kind == "base" for t in mixed_taskset(50, 0.0))
        assert all(t.kind == "ext" for t in mixed_taskset(50, 1.0))

    def test_interleaved_not_clustered(self):
        tasks = mixed_taskset(10, 0.5)
        kinds = [t.kind for t in tasks]
        assert kinds.count("ext") == 5
        # not all ext tasks at one end
        assert kinds[:5].count("ext") in (2, 3)

    def test_share_bounds(self):
        with pytest.raises(ValueError):
            mixed_taskset(10, 1.5)


class TestScheduling:
    def test_all_tasks_complete(self):
        sched = WorkStealingScheduler(2, 2, ARCH)
        result = sched.run(mixed_taskset(100, 0.5), simple_model())
        assert result.tasks_total == 100
        assert result.cpu_time > 0

    def test_single_core_serializes(self):
        sched = WorkStealingScheduler(1, 0, ARCH)
        result = sched.run([Task(i, "base") for i in range(10)], simple_model())
        assert result.makespan == 10 * 100

    def test_parallel_speedup(self):
        tasks = [Task(i, "base") for i in range(40)]
        t1 = WorkStealingScheduler(1, 0, ARCH).run(tasks, simple_model()).makespan
        t4 = WorkStealingScheduler(4, 0, ARCH).run(tasks, simple_model()).makespan
        assert t4 <= t1 / 3.5

    def test_stealing_uses_idle_pool(self):
        # Only ext tasks: base workers must steal to contribute.
        tasks = [Task(i, "ext") for i in range(40)]
        result = WorkStealingScheduler(2, 2, ARCH).run(tasks, simple_model())
        assert result.steals > 0
        busy_base = sum(result.per_core_busy[:2])
        assert busy_base > 0

    def test_accelerated_share_tracks_placement(self):
        tasks = [Task(i, "ext") for i in range(40)]
        result = WorkStealingScheduler(2, 2, ARCH).run(tasks, simple_model())
        assert 0.0 < result.accelerated_share < 1.0  # some stolen to base

    def test_fam_migrates_and_pins(self):
        tasks = [Task(i, "ext") for i in range(20)]
        result = WorkStealingScheduler(2, 2, ARCH).run(tasks, fam_model())
        assert result.migrations > 0
        assert result.accelerated_share == 1.0  # all end up on ext cores
        # Each migration is bounced back exactly once (pinning works).
        assert result.migrations <= len(tasks)

    def test_fam_never_runs_ext_on_base(self):
        tasks = mixed_taskset(60, 0.5)
        result = WorkStealingScheduler(2, 2, ARCH).run(tasks, fam_model())
        assert result.accelerated_share == 1.0

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=60),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_work_conservation_property(self, nb, ne, n, share):
        """CPU time >= total task compute; makespan >= cpu_time / cores."""
        sched = WorkStealingScheduler(nb, ne, ARCH)
        model = simple_model()
        tasks = mixed_taskset(n, share)
        result = sched.run(tasks, model)
        compute = sum(
            model.cost(t.kind, True) if t.kind == "ext" else model.cost(t.kind, False)
            for t in tasks
        )
        assert result.cpu_time >= min(compute, n)  # at least the cheap bound
        assert result.makespan * (nb + ne) >= result.cpu_time
        assert result.makespan <= result.cpu_time + 1  # no time travel

    def test_empty_taskset(self):
        result = WorkStealingScheduler(2, 2, ARCH).run([], simple_model())
        assert result.makespan == 0 and result.cpu_time == 0
