"""Per-benchmark static/dynamic profiles lifted from the paper.

The reproduction cannot run SPEC CPU2017 or the real applications, but
Fig. 13 and Tables 2–3 depend only on a handful of per-binary
characteristics: code size, static extension-instruction share, how hot
the extension instructions are dynamically, and how frequent indirect
jumps are.  Those are captured here — static columns straight from
Table 3; dynamic weights derived from Table 2's trigger counts (Safer's
count ~ executed indirect jumps, strawman's count ~ 2x executed source
instructions) — and drive :mod:`repro.workloads.synthetic`.

``paper`` fields carry the published values verbatim so EXPERIMENTS.md
can print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchProfile:
    """Shape parameters for one benchmark binary."""

    name: str
    suite: str                  # "spec" | "app"
    code_size_mb: float         # paper Table 3
    ext_inst_pct: float         # paper Table 3 (static share, %)
    #: relative dynamic heat of extension instructions (strawman trigger
    #: count / Safer trigger count, i.e. source-exec per indirect-exec).
    ext_heat: float
    #: executed indirect jumps per 1000 dynamic instructions (derived).
    indirect_per_kinst: float
    #: register-pressure knob: fraction of functions compiled "hot"
    #: (nearly all registers live), driving dead-register failures.
    high_pressure_share: float
    # -- paper reference numbers (for EXPERIMENTS.md) ----------------
    paper_trampolines: int
    paper_deadreg_ours: int
    paper_deadreg_traditional: int
    paper_safer_triggers_e9: float
    paper_armore_triggers_e9: float
    paper_strawman_triggers_e9: float
    paper_chbp_triggers_e9: float
    #: Fig. 13 performance degradation (%), where reported/readable.
    paper_degradation: dict[str, float] | None = None


def _p(name, suite, mb, pct, tramp, ours, trad, chbp, safer, armore, straw,
       pressure=0.35, degr=None) -> BenchProfile:
    heat = straw / safer if safer else 0.1
    # Safer triggers per 1e9 over a nominal run; normalize to a relative
    # indirect density in [0.2, 20] per kilo-instruction.
    density = max(0.2, min(20.0, safer * 2.0))
    return BenchProfile(
        name=name, suite=suite, code_size_mb=mb, ext_inst_pct=pct,
        # The cap keeps dynamic source-execution rates within what the
        # synthetic call structure can express (see synthetic.py).
        ext_heat=max(0.005, min(2.0, heat)),
        indirect_per_kinst=density,
        high_pressure_share=pressure,
        paper_trampolines=tramp,
        paper_deadreg_ours=ours,
        paper_deadreg_traditional=trad,
        paper_safer_triggers_e9=safer,
        paper_armore_triggers_e9=armore,
        paper_strawman_triggers_e9=straw,
        paper_chbp_triggers_e9=chbp,
        paper_degradation=degr,
    )


#: Table 3 + Table 2, transcribed.  (GIMP appears only in Table 2; its
#: Table-3-style columns are estimated from the closest app, CMake.)
PROFILES: dict[str, BenchProfile] = {
    p.name: p
    for p in (
        # -- real-world applications ------------------------------------
        _p("git", "app", 3.11, 2.70, 3270, 21, 993, 1.4e-7, 0.23, 0.23, 0.011),
        _p("vim", "app", 2.91, 2.31, 2915, 30, 1308, 6.9e-7, 0.18, 0.18, 1.9e-4),
        _p("gimp", "app", 7.00, 3.00, 26000, 70, 8500, 2.7e-6, 0.44, 0.32, 0.44),
        _p("cmake", "app", 7.60, 3.32, 28128, 78, 9213, 9.7e-6, 4.12, 4.12, 1.74),
        _p("ctest", "app", 8.50, 3.30, 30990, 20, 1129, 7.4e-6, 3.98, 3.98, 2.16),
        _p("python", "app", 2.31, 1.77, 4311, 54, 1482, 4.5e-6, 0.82, 0.82, 0.021),
        _p("libopenblas", "app", 6.72, 0.59, 3305, 15, 628, 2.4e-6, 4.10, 4.10, 1.20),
        # -- SPEC CPU2017 -------------------------------------------------
        _p("cactuBSSN_r", "spec", 3.49, 3.24, 13281, 112, 6024, 2.5e-7, 6.0e-3, 6.0e-3, 3.0e-4, 0.45),
        _p("cactuBSSN_s", "spec", 3.49, 3.24, 13293, 112, 6024, 2.7e-7, 5.3e-3, 5.3e-3, 2.0e-4, 0.45),
        _p("cam4_r", "spec", 4.29, 3.37, 17086, 301, 7846, 1.3e-5, 1.02, 1.07, 10.66, 0.45),
        _p("cam4_s", "spec", 4.47, 3.27, 17449, 401, 7846, 4.5e-4, 4.51, 4.57, 40.21, 0.45),
        _p("gcc_r", "spec", 6.88, 0.44, 5482, 89, 2080, 4.2e-4, 16.87, 16.87, 0.77, 0.38),
        _p("gcc_s", "spec", 6.88, 0.44, 5482, 89, 2080, 7.3e-4, 35.55, 35.57, 1.124, 0.38),
        _p("xalancbmk_r", "spec", 2.91, 1.36, 8798, 107, 3923, 9.1e-4, 13.12, 13.15, 0.92, 0.44),
        _p("xalancbmk_s", "spec", 2.91, 1.36, 8798, 107, 3923, 9.2e-4, 13.12, 13.15, 0.88, 0.44),
        _p("imagick_r", "spec", 1.41, 1.63, 2055, 70, 860, 3.3e-4, 16.07, 16.10, 0.57, 0.42),
        _p("imagick_s", "spec", 1.46, 1.47, 2136, 65, 867, 1.4e-4, 5.34, 5.51, 0.36, 0.40),
        _p("omnetpp_r", "spec", 1.14, 0.95, 2688, 23, 860, 3.9e-4, 23.29, 23.29, 1.26, 0.32),
        _p("omnetpp_s", "spec", 1.14, 0.95, 2688, 21, 867, 3.9e-4, 23.29, 23.34, 1.34, 0.32),
        _p("perlbench_r", "spec", 1.52, 0.58, 1521, 12, 583, 1.7e-3, 65.66, 65.56, 6.74, 0.38),
        _p("perlbench_s", "spec", 1.52, 0.58, 1521, 12, 583, 1.7e-3, 65.23, 64.56, 6.74, 0.38),
        _p("pop2_s", "spec", 3.57, 3.71, 15560, 132, 7722, 7.0e-5, 2.10, 2.17, 20.16, 0.50),
        _p("wrf_r", "spec", 16.79, 3.21, 41408, 103, 11121, 1.5e-5, 1.12, 1.11, 5.11, 0.48),
        _p("wrf_s", "spec", 16.78, 3.20, 41468, 112, 11098, 8.4e-4, 6.31, 6.21, 30.35, 0.48),
        _p("blender_r", "spec", 7.31, 1.51, 15085, 154, 5395, 3.2e-5, 3.87, 3.90, 0.124, 0.40),
    )
}

SPEC_PROFILES = {k: v for k, v in PROFILES.items() if v.suite == "spec"}
APP_PROFILES = {k: v for k, v in PROFILES.items() if v.suite == "app"}

#: Paper headline numbers for EXPERIMENTS.md cross-checks.
PAPER_HEADLINES = {
    "chbp_avg_degradation_pct": 5.3,
    "chbp_worst_degradation_pct": 9.6,
    "safer_avg_degradation_pct": 15.6,
    "safer_worst_degradation_pct": 42.5,
    "armore_avg_degradation_pct": 171.5,
    "chbp_vs_strawman_improvement_pct": 60.2,
    "dead_reg_found_ours_pct": 98.9,
    "dead_reg_failed_traditional_pct": 35.9,
    "hetero_overhead_downgrade_pct": 3.2,
    "hetero_overhead_upgrade_pct": 5.3,
    "fam_latency_gap_pct": 33.1,
}
