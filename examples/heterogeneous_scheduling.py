#!/usr/bin/env python3
"""Heterogeneous scheduling demo: the paper's §6.1 experiment in miniature.

Runs a 1000-task mixed workload (Fibonacci base tasks + matmul extension
tasks) on a simulated 4+4-core ISAX machine under four systems — FAM,
Safer, MELF and Chimera — and prints the latency/CPU-time curves that
Fig. 11 plots, for both the downgrade (extension-version input) and
upgrade (base-version input) directions.

Run:  python examples/heterogeneous_scheduling.py
"""

from repro.workloads.hetero import SYSTEMS, measure_hetero_costs, run_fig11

SHARES = (0.0, 0.25, 0.5, 0.75, 1.0)


def show_costs(version: str) -> None:
    costs = measure_hetero_costs(version)
    print(f"\nmeasured task costs ({version} version input), cycles:")
    print(f"  {'system':8s} {'base task':>10s} {'ext@extcore':>12s} {'ext@basecore':>13s}")
    for system in SYSTEMS:
        cells = costs.cells[system]
        ext_on_base = cells[("ext", False)]
        print(f"  {system:8s} {cells[('base', False)]:>10d} "
              f"{cells[('ext', True)]:>12d} "
              f"{str(ext_on_base) if ext_on_base is not None else 'migrate':>13s}")


def show_curves(version: str) -> None:
    rows = run_fig11(version, SHARES, n_tasks=1000)
    by = {(r.system, r.ext_share): r for r in rows}
    print(f"\nend-to-end latency (Mcycles), {version} version:")
    header = "  share  " + "".join(f"{s:>10s}" for s in SYSTEMS)
    print(header)
    for share in SHARES:
        cells = "".join(f"{by[(s, share)].latency / 1e6:>10.2f}" for s in SYSTEMS)
        print(f"  {share:>5.0%}  {cells}")
    print(f"\naccelerated extension tasks (Fig. 12), {version} version:")
    print(header)
    for share in SHARES[1:]:
        cells = "".join(f"{by[(s, share)].accelerated_share:>10.0%}" for s in SYSTEMS)
        print(f"  {share:>5.0%}  {cells}")


def main():
    for version, title in (("ext", "DOWNGRADE (RVV input binaries)"),
                           ("base", "UPGRADE (RV64GC input binaries)")):
        print("=" * 64)
        print(title)
        show_costs(version)
        show_curves(version)

    print("\nReading the curves:")
    print(" * FAM's latency rises again at 100% extension share (base cores idle);")
    print(" * MELF and Chimera keep falling: extension tasks offload to base")
    print("   cores as downgraded/scalar code;")
    print(" * Chimera tracks MELF within a few percent without source code;")
    print(" * in the upgrade direction FAM is flat: it cannot vectorize anything.")


if __name__ == "__main__":
    main()
