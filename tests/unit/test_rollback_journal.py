"""Rollback journal: state machine, serialization, runtime state plumbing.

The journal is what makes per-patch healing survive checkpoints — every
entry must round-trip through primitive state and re-align the
runtime's tables on import.
"""

import pytest

from repro.chaos.harness import build_erroneous_workload
from repro.chaos.injector import TrampolineBitrotInjector
from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC
from repro.sim.machine import Core, Kernel
from repro.verify import HealEntry, PatchRecord, RollbackJournal


def sample_record():
    return PatchRecord(
        start=0x10030, end=0x10038, kind="smile",
        original_bytes=b"\x01\x02\x03\x04\x05\x06\x07\x08",
        patched_bytes=b"\x11\x12\x13\x14\x15\x16\x17\x18",
        block_addr=0x410000, resume=0x10038, smile_reg=3,
        fault_entries=((0x10034, 0x410000),),
        trap_entries=(),
        sources=((0x10030, "01020304"),),
    )


def healed_run():
    """Run the bitrot scenario to completion; returns everything the
    journal tests need (runtime with one quarantined patch, etc.)."""
    original = build_erroneous_workload()
    rewritten = ChimeraRewriter().rewrite(original, RV64GC).binary
    regions = rewritten.metadata["chimera"]["patched_regions"]
    smile = sorted(r for r in regions if r[2] in ("smile", "smile-dp"))[:1]
    kernel = Kernel()
    runtime = ChimeraRuntime(rewritten, self_heal=True)
    runtime.install(kernel)
    process = make_process(rewritten)
    start = TrampolineBitrotInjector(smile).corrupt(process)
    cpu = kernel.make_cpu(process, Core(0, RV64GC))
    res = kernel.run(process, Core(0, RV64GC), cpu=cpu)
    assert res.ok and runtime.stats.patch_rollbacks >= 1
    return original, rewritten, runtime, process, cpu, start


def test_heal_entry_state_roundtrip():
    entry = HealEntry(
        record=sample_record(), state="quarantined", rollbacks=2,
        readmissions=1, not_before=12_345,
        heal_patches=[(0x10030, 4, 0x500000, 12, 0x500008)],
    )
    clone = HealEntry.from_state(entry.as_state())
    assert clone.record == entry.record
    assert (clone.state, clone.rollbacks, clone.readmissions,
            clone.not_before) == ("quarantined", 2, 1, 12_345)
    assert clone.heal_patches == entry.heal_patches


def test_journal_export_elides_pristine_entries():
    journal = RollbackJournal()
    journal.entry(sample_record())  # touched but never rolled back
    assert journal.export() == ()
    journal.entries[0x10030].state = "quarantined"
    journal.entries[0x10030].rollbacks = 1
    assert len(journal.export()) == 1


def test_journal_import_roundtrip():
    journal = RollbackJournal()
    entry = journal.entry(sample_record())
    entry.state = "pinned"
    entry.rollbacks = 4
    fresh = RollbackJournal()
    fresh.import_state(journal.export())
    assert fresh.is_rolled_back(0x10030)
    assert fresh.get(0x10030).state == "pinned"
    assert fresh.quarantined() == []


def test_export_state_has_journal_only_with_healer():
    rewritten = ChimeraRewriter().rewrite(build_erroneous_workload(), RV64GC).binary
    plain = ChimeraRuntime(rewritten)
    assert "heal_journal" not in plain.export_state()
    healing = ChimeraRuntime(rewritten, self_heal=True)
    assert healing.export_state()["heal_journal"] == ()


def test_self_heal_detaches_shared_tables():
    """Healing pops fault/trap entries; that must never leak into the
    shared metadata tables other runtimes of the same binary see."""
    rewritten = ChimeraRewriter().rewrite(build_erroneous_workload(), RV64GC).binary
    meta = rewritten.metadata["chimera"]
    runtime = ChimeraRuntime(rewritten, self_heal=True)
    assert runtime.fault_table is not meta["fault_table"]
    assert runtime.trap_table is not meta["trap_table"]
    plain = ChimeraRuntime(rewritten)
    assert plain.fault_table is meta["fault_table"]


def test_quarantine_roundtrips_through_runtime_state():
    _, rewritten, runtime, _, _, start = healed_run()
    state = runtime.export_state()
    assert state["heal_journal"], "quarantine did not reach the export"

    fresh = ChimeraRuntime(rewritten)  # no self_heal: healer built on demand
    fresh.import_state(state)
    assert fresh.healer is not None
    entry = fresh.healer.journal.get(start)
    assert entry is not None and entry.state == "quarantined"
    # Import re-aligns the tables: the quarantined patch's fault keys
    # are gone, its heal-block trap keys are live.
    rec = entry.record
    for key, _ in rec.fault_entries:
        assert fresh.fault_table.lookup(key) is None
    for saddr, slen, block, _blen, ebreak in entry.heal_patches:
        assert fresh.trap_table[saddr] == block
        assert ebreak in fresh.trap_table
        assert (saddr, saddr + slen) in fresh.patched_regions
    # The full window span is retired; only the heal trap sites remain
    # as patched regions inside it.
    heal_spans = {(s, s + l) for s, l, *_ in entry.heal_patches}
    assert all(span in heal_spans
               for span in fresh.patched_regions
               if rec.start <= span[0] < rec.end)
