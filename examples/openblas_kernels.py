#!/usr/bin/env python3
"""Real-world-application demo: BLAS kernels across the ISAX machine.

Measures gemm/gemv kernels through the full pipeline — native extension
code, native scalar code, Chimera-upgraded and Chimera-downgraded — then
replays the multi-threaded Fig. 14 experiment and prints the
acceleration ratios.

Run:  python examples/openblas_kernels.py
"""

from repro.workloads.openblas import SYSTEMS, measure_kernel, run_fig14, run_fig14_scalability


def main():
    print("per-task kernel costs (cycles), measured via real rewriting:")
    print(f"  {'kernel':7s} {'native-ext':>11s} {'native-scalar':>14s} "
          f"{'chimera-ext':>12s} {'chimera-base':>13s}")
    for kernel in ("dgemm", "sgemm", "dgemv", "sgemv"):
        c = measure_kernel(kernel)
        print(f"  {kernel:7s} {c.native_ext:>11d} {c.native_scalar:>14d} "
              f"{c.chimera_ext:>12d} {c.chimera_base:>13d}")

    for kernel in ("dgemm", "dgemv"):
        rows = run_fig14(kernel)
        by = {(r.system, r.threads): r for r in rows}
        threads = sorted({r.threads for r in rows})
        print(f"\n{kernel}: acceleration vs FAM-Ext")
        print("  threads " + "".join(f"{s:>10s}" for s in SYSTEMS))
        for t in threads:
            cells = "".join(f"{by[(s, t)].acceleration_vs_fam_ext:>10.2f}" for s in SYSTEMS)
            print(f"  {t:>7d} {cells}")

    rows = run_fig14_scalability((16, 32, 48, 64))
    by = {(r.system, r.threads): r for r in rows}
    print("\nsgemm scalability on the 64-core machine (makespan, Mcycles):")
    print("  threads " + "".join(f"{s:>10s}" for s in SYSTEMS))
    for t in (16, 32, 48, 64):
        cells = "".join(f"{by[(s, t)].makespan / 1e6:>10.2f}" for s in SYSTEMS)
        print(f"  {t:>7d} {cells}")
    print("\nNote how per-thread efficiency falls at high thread counts —")
    print("synchronization dominates, narrowing every system's gap (paper §6.4).")


if __name__ == "__main__":
    main()
