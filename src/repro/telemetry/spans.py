"""Nested spans with wall-time and sim-cycle timestamps.

A span covers one phase of the pipeline (``rewrite``, ``analysis.scan``,
``sim.run``, ...).  Spans nest: opening a span inside another records
the parent relationship via depth, and the exporter emits Chrome
``trace_event`` complete events (``ph: "X"``) that chrome://tracing and
Perfetto render as a flame graph.  Every span carries both clocks: wall
microseconds (the event's ``ts``/``dur``) and simulated cycles (in
``args``), so a trace answers "where did the wall time go" and "where
did the simulated cycles go" at once.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.clock import SimCycleClock, WallClock


@dataclass
class Span:
    """One timed phase; ``end_us`` is None while the span is open."""

    name: str
    start_us: int
    start_cycles: int
    depth: int
    args: dict = field(default_factory=dict)
    end_us: Optional[int] = None
    end_cycles: Optional[int] = None

    @property
    def duration_us(self) -> int:
        return (self.end_us - self.start_us) if self.end_us is not None else 0

    @property
    def duration_cycles(self) -> int:
        return (self.end_cycles - self.start_cycles) if self.end_cycles is not None else 0

    @property
    def closed(self) -> bool:
        return self.end_us is not None


class SpanTracer:
    """Records a tree of spans against both clocks."""

    def __init__(self, wall: Optional[WallClock] = None,
                 cycles: Optional[SimCycleClock] = None):
        self.wall = wall or WallClock()
        self.cycles = cycles or SimCycleClock()
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    # -- recording ---------------------------------------------------------

    def begin(self, name: str, **args) -> Span:
        span = Span(
            name=name,
            start_us=self.wall.now_us(),
            start_cycles=self.cycles.now(),
            depth=len(self._stack),
            args=dict(args),
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close *span* (and anything still open beneath it)."""
        while self._stack:
            top = self._stack.pop()
            top.end_us = self.wall.now_us()
            top.end_cycles = self.cycles.now()
            if top is span:
                break
        return span

    @contextmanager
    def span(self, name: str, **args):
        span = self.begin(name, **args)
        try:
            yield span
        finally:
            self.end(span)

    # -- reading -----------------------------------------------------------

    @property
    def completed(self) -> list[Span]:
        return [s for s in self.spans if s.closed]

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    # -- Chrome trace_event export ----------------------------------------

    def to_chrome(self, *, pid: int = 1, tid: int = 1) -> dict:
        """The ``trace.json`` payload: Chrome trace_event JSON object
        format, loadable in chrome://tracing and Perfetto."""
        events = []
        for span in self.spans:
            if not span.closed:
                continue
            args = dict(span.args)
            args["cycles_start"] = span.start_cycles
            args["cycles"] = span.duration_cycles
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": span.start_us,
                "dur": span.duration_us,
                "pid": pid,
                "tid": tid,
                "args": args,
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"source": "repro.telemetry", "schema": "chrome-trace-event"},
        }


def spans_from_chrome(payload: dict) -> list[Span]:
    """Rebuild :class:`Span` objects from an exported Chrome trace.

    Depth is recovered from ``ph:"X"`` interval containment (the same
    nesting Perfetto renders); used by the round-trip tests and by
    tooling that diffs two traces.
    """
    spans: list[Span] = []
    events = [e for e in payload.get("traceEvents", ()) if e.get("ph") == "X"]
    events.sort(key=lambda e: (e["ts"], -e["dur"]))
    open_stack: list[tuple[int, int]] = []  # (ts, end)
    for event in events:
        ts, dur = event["ts"], event["dur"]
        while open_stack and ts >= open_stack[-1][1]:
            open_stack.pop()
        args = dict(event.get("args", {}))
        cycles_start = args.pop("cycles_start", 0)
        cycles = args.pop("cycles", 0)
        spans.append(Span(
            name=event["name"],
            start_us=ts,
            start_cycles=cycles_start,
            depth=len(open_stack),
            args=args,
            end_us=ts + dur,
            end_cycles=cycles_start + cycles,
        ))
        open_stack.append((ts, ts + dur))
    return spans
