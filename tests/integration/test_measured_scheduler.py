"""Measured-execution scheduler vs the discrete-event engine."""

import pytest

from repro.core.machine_runner import (
    HeteroTask,
    MeasuredScheduler,
    SYSTEMS,
    varied_taskset,
)
from repro.core.scheduler import WorkStealingScheduler, mixed_taskset
from repro.workloads.hetero import measure_hetero_costs


@pytest.fixture(scope="module")
def runner():
    return MeasuredScheduler(2, 2)


class TestMeasuredScheduler:
    def test_all_tasks_complete_and_pass(self, runner):
        tasks = varied_taskset(12, 0.5)
        for system in SYSTEMS:
            result = runner.run(tasks, system)
            assert result.failures == 0, system
            assert len(result.per_task_cycles) == len(tasks)
            assert result.makespan > 0

    def test_fam_migrates_real_faults(self, runner):
        tasks = [HeteroTask(i, "ext", 10) for i in range(8)]
        result = runner.run(tasks, "fam")
        assert result.migrations > 0
        assert result.failures == 0

    def test_chimera_needs_no_migrations(self, runner):
        tasks = [HeteroTask(i, "ext", 10) for i in range(8)]
        result = runner.run(tasks, "chimera")
        assert result.migrations == 0
        # Base cores contributed via stealing downgraded tasks.
        assert result.steals > 0

    def test_task_size_affects_cycles(self, runner):
        tasks = [HeteroTask(0, "ext", 8), HeteroTask(1, "ext", 14)]
        result = runner.run(tasks, "melf")
        assert result.per_task_cycles[1] > result.per_task_cycles[0] * 2

    def test_unknown_system_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.run([], "popcorn")

    def test_chimera_beats_fam_at_full_ext_load(self, runner):
        tasks = varied_taskset(16, 1.0)
        fam = runner.run(tasks, "fam")
        chim = runner.run(tasks, "chimera")
        assert chim.makespan < fam.makespan


class TestDesValidation:
    """The DES engine's makespans must track full measured execution."""

    def test_makespan_agreement(self):
        n_tasks, share = 24, 1.0
        measured = MeasuredScheduler(2, 2).run(varied_taskset(n_tasks, share), "chimera")

        # DES with the single-point measured costs (fixed-size tasks).
        costs = measure_hetero_costs("ext")
        des = WorkStealingScheduler(2, 2).run(
            mixed_taskset(n_tasks, share), costs.model("chimera")
        )
        # Same policy, same mix; sizes vary in the measured run, so allow
        # a generous band — the DES must still land in the right regime.
        ratio = measured.makespan / des.makespan
        assert 0.5 < ratio < 2.0, f"DES diverges from measured execution: {ratio:.2f}"

    def test_system_ordering_agrees(self):
        tasks = varied_taskset(16, 1.0)
        runner = MeasuredScheduler(2, 2)
        measured = {s: runner.run(tasks, s).makespan for s in ("fam", "melf", "chimera")}
        # The ordering Fig. 11 rests on: rewriters beat FAM at high share,
        # Chimera near MELF.  (Small matrices amplify per-trampoline
        # overhead proportionally, so the band is wider than the paper's
        # fixed-size 3.2%.)
        assert measured["melf"] < measured["fam"]
        assert measured["chimera"] < measured["fam"]
        assert measured["chimera"] < measured["melf"] * 1.35
