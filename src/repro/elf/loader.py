"""Loader: map a :class:`~repro.elf.binary.Binary` into an address space.

The loader also builds :class:`~repro.sim.machine.Process` objects with
psABI-correct initial state (gp = ``__global_pointer$``, sp = stack top).
Data segments can be mapped *shared* (same backing bytearray) across
several address spaces — the primitive MMViews are built from.
"""

from __future__ import annotations

from typing import Optional

from repro.elf.binary import Binary, Perm
from repro.sim.machine import Process
from repro.sim.memory import AddressSpace, MemorySegment

#: Default stack placement when the binary does not specify one.
DEFAULT_STACK_TOP = 0x7F_F000
DEFAULT_STACK_SIZE = 0x2_0000


def load_binary(
    binary: Binary,
    *,
    space: Optional[AddressSpace] = None,
    share_data_from: Optional[AddressSpace] = None,
    copy_sections: bool = True,
    with_stack: bool = True,
) -> AddressSpace:
    """Map *binary* into *space* (a fresh one by default).

    ``share_data_from`` makes writable segments alias the ones already
    mapped in another address space instead of getting fresh copies —
    every MMView of a process must see the same data pages (§4.3).
    ``copy_sections=False`` maps the binary's own bytearrays directly
    (writes through the space then mutate the Binary; used by tests).
    """
    space = space or AddressSpace(binary.name)
    for section in binary.sections:
        if share_data_from is not None and Perm.W in section.perm:
            shared = share_data_from.segment_at(section.addr)
            if shared is None:
                raise ValueError(f"no shared segment at {section.addr:#x} for {section.name}")
            space.map_segment(MemorySegment(shared.name, shared.base, shared.data, shared.perm))
            continue
        data = bytearray(section.data) if copy_sections else section.data
        space.map(section.name, section.addr, data, section.perm)
    if with_stack:
        top = int(binary.metadata.get("stack_top", DEFAULT_STACK_TOP))
        size = int(binary.metadata.get("stack_size", DEFAULT_STACK_SIZE))
        if share_data_from is not None:
            shared = share_data_from.segment_at(top - size)
            if shared is not None:
                space.map_segment(MemorySegment(shared.name, shared.base, shared.data, shared.perm))
            else:
                space.map("[stack]", top - size, size, Perm.RW)
        else:
            space.map("[stack]", top - size, size, Perm.RW)
    return space


def make_process(binary: Binary, *, name: Optional[str] = None) -> Process:
    """Load *binary* into a fresh space and wrap it in a ready Process."""
    space = load_binary(binary)
    top = int(binary.metadata.get("stack_top", DEFAULT_STACK_TOP))
    return Process(
        name or binary.name,
        space,
        binary.entry,
        gp=binary.global_pointer,
        sp=top - 64,  # small red zone below the top
    )
