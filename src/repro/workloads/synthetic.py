"""Profile-driven synthetic benchmark binaries (the SPEC stand-ins).

:class:`SyntheticBinary` generates a deterministic program whose static
and dynamic shape follows a :class:`~repro.workloads.spec_profiles.BenchProfile`:

* code size — ``profile.code_size_mb`` divided by ``scale`` (DESIGN.md
  "Scaling note": benchmarks pass an ``ArchParams`` whose ``jal_reach``
  is scaled identically);
* static extension-instruction share — vector episodes and Zba sites
  sprinkled at ``ext_inst_pct``;
* dynamic heat — functions are split into a small hot set (called in a
  loop) and a cold tail (called once); ``ext_heat`` biases how much of
  the hot set contains extension instructions;
* indirect-control density — a dispatch loop calls hot functions
  through a function-pointer table at ``indirect_per_kinst``;
* register pressure — ``high_pressure_share`` of functions keep a wide
  accumulator set live across their bodies, defeating plain liveness at
  trampoline exits (the Table 3 dead-register columns).

Programs are self-contained and deterministic: correctness of a
rewritten variant is checked differentially (final data segment and
exit code must match the original run).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.elf.binary import Binary
from repro.elf.builder import ProgramBuilder
from repro.workloads.spec_profiles import BenchProfile

#: Average bytes of text one generated function occupies (used to turn a
#: code-size budget into a function count).
_AVG_FUNC_BYTES = 380

#: Registers the scalar filler mutates freely.
_FILLER_REGS = ("a2", "a3", "a4", "a5", "t3", "t4")
#: Wide accumulator set kept live in high-pressure functions.  Together
#: with s0/s1 (pointers), t0-t2 (episode scratch, consumed right after
#: each use), s10/s11 (callee-saved, live via the return ABI) and the
#: forbidden exit registers, this covers the whole integer file — which
#: is exactly what makes plain liveness fail at trampoline exits there.
_PRESSURE_REGS = ("s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "a0",
                  "a1", "a2", "a3", "a4", "a5", "a6", "a7", "t3", "t4",
                  "t5", "t6")
#: Compressed-eligible registers (x8..x15) used for RVC filler.
_RVC_REGS = ("s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5")


@dataclass
class SyntheticBinary:
    """Generator for one profile-shaped binary."""

    profile: BenchProfile
    scale: int = 64
    dyn_target: int = 120_000
    seed: int = 20260427
    hot_functions: int = 6
    dispatch_rounds: int = 60

    def build(self) -> Binary:
        # Stable across processes (str.__hash__ is salted; crc32 is not).
        rng = random.Random(self.seed ^ zlib.crc32(self.profile.name.encode()))
        code_budget = max(6_000, int(self.profile.code_size_mb * 1024 * 1024 / self.scale))
        n_funcs = max(self.hot_functions + 2, code_budget // _AVG_FUNC_BYTES)

        builder = ProgramBuilder(f"syn-{self.profile.name}")
        builder.add_words("buf", [rng.randrange(1, 1 << 30) for _ in range(256)])
        builder.add_words("vbuf", [rng.randrange(1, 1 << 30) for _ in range(64)])
        builder.add_words("acc_out", [0] * 4)
        table_addr = builder.add_words("fn_table", [0] * self.hot_functions)

        hot = list(range(self.hot_functions))
        # Loop counts tuned so total dynamic work lands near dyn_target.
        per_hot = max(2, self.dyn_target // max(1, self.hot_functions * 260))

        # Dynamic extension heat: Table 2's strawman/Safer trigger ratio
        # r says how many source-instruction executions occur per indirect
        # jump; each hot call is ~2 indirect jumps and each episode ~3
        # sources, so hot episodes-per-call ~ 2r/3, spread over the pool.
        total_hot_sites = max(1, round(2.0 * self.profile.ext_heat / 3.0 * self.hot_functions))
        per_fn_sites = [0] * self.hot_functions
        for i in range(min(total_hot_sites, 20 * self.hot_functions)):
            per_fn_sites[i % self.hot_functions] += 1

        chunks: list[str] = []
        chunks.append(self._driver(table_addr, hot, per_hot))
        for idx in range(n_funcs):
            is_hot = idx < self.hot_functions
            planned = per_fn_sites[idx] if is_hot else None
            chunks.append(self._function(idx, rng, hot=is_hot, planned_sites=planned))
            builder.mark_function(f"fn{idx}")
        builder.set_text("\n".join(chunks))
        binary = builder.build()
        binary.metadata["workload"] = f"syn-{self.profile.name}"
        binary.metadata["profile"] = self.profile.name
        binary.metadata["scale"] = self.scale
        return binary

    # -- driver ---------------------------------------------------------

    def _driver(self, table_addr: int, hot: list[int], per_hot: int) -> str:
        lines = ["_start:"]
        # Fill the dispatch table with hot-function addresses (the
        # indirect targets no static analysis can enumerate).
        lines.append(f"    li t0, {table_addr}")
        for slot, idx in enumerate(hot):
            lines.append(f"    la t1, fn{idx}")
            lines.append(f"    sd t1, {slot * 8}(t0)")
        # Direct warm-up calls: every function once (cold coverage).
        lines.append("    li s10, 0")
        lines.append(f"""
    # hot dispatch loop: {self.dispatch_rounds} rounds x {per_hot} calls
    li s11, {self.dispatch_rounds * per_hot}
dispatch:
    li t0, {table_addr}
    li t1, {len(hot)}
    remu t2, s10, t1
    slli t2, t2, 3
    add t0, t0, t2
    ld t2, 0(t0)
    jalr t2
    addi s10, s10, 1
    bne s10, s11, dispatch
""")
        # Cold sweep: call a sample of cold functions directly.
        lines.append("    jal fn0")
        lines.append(f"""
    li a7, 93
    li a0, 0
    ecall
""")
        return "\n".join(lines)

    # -- functions ---------------------------------------------------------

    def _function(self, idx: int, rng: random.Random, *, hot: bool,
                  planned_sites: int | None = None) -> str:
        p = self.profile
        high_pressure = rng.random() < p.high_pressure_share
        lines = [f"fn{idx}:"]
        if planned_sites is not None:
            # Hot-function body size sets the dynamic indirect-jump
            # density (calls+returns per executed instruction): profiles
            # with few indirect jumps get longer straight-line bodies.
            body_blocks = max(3, min(24, round(3 + 20.0 / p.indirect_per_kinst)))
        else:
            body_blocks = rng.randint(3, 6)
        # Each function owns a buffer window so stores stay in bounds.
        lines.append("    addi sp, sp, -32")
        lines.append("    sd s0, 0(sp)")
        lines.append("    sd s1, 8(sp)")
        if high_pressure:
            lines.append("    sd s2, 16(sp)")
            lines.append("    sd s3, 24(sp)")
        window = rng.randrange(0, 128) * 8
        lines.append("    li s0, {buf}")
        if window:
            lines.append(f"    addi s0, s0, {window}")
        lines.append("    li s1, {vbuf}")
        if high_pressure:
            # Every accumulator is initialized here and consumed at the
            # function's end, so all of them stay live across the body.
            for reg in _PRESSURE_REGS:
                lines.append(f"    li {reg}, {rng.randrange(1, 64)}")
            lines.append("    li t2, 1")
        ext_budget = p.ext_inst_pct / 100.0
        emitted_ext = [0]
        if planned_sites is not None:
            # Hot function: deterministic site count (profile heat), no
            # random sites, so dynamic trigger rates track Table 2.
            for b in range(body_blocks):
                lines.extend(self._block(idx, b, rng, 0.0, high_pressure, emitted_ext))
            for s in range(planned_sites):
                lines.extend(self._ext_site(idx, body_blocks + s, 0, rng, high_pressure))
        else:
            for b in range(body_blocks):
                lines.extend(self._block(idx, b, rng, ext_budget, high_pressure, emitted_ext))
        if high_pressure:
            # Consume every accumulator (and the pointer registers) so
            # each stays live through the whole body.
            lines.append("    add t0, t2, zero")
            for reg in _PRESSURE_REGS + ("s0", "s1"):
                lines.append(f"    add t0, t0, {reg}")
            lines.append("    li t1, {acc_out}")
            lines.append("    sd t0, 0(t1)")
        if high_pressure:
            lines.append("    ld s3, 24(sp)")
            lines.append("    ld s2, 16(sp)")
        lines.append("    ld s1, 8(sp)")
        lines.append("    ld s0, 0(sp)")
        lines.append("    addi sp, sp, 32")
        lines.append("    ret")
        return "\n".join(lines)

    def _block(self, fidx: int, bidx: int, rng: random.Random,
               ext_budget: float, high_pressure: bool,
               emitted_ext: list[int] | None = None) -> list[str]:
        lines: list[str] = []
        n_instr = rng.randint(8, 18)
        label = f".Lf{fidx}b{bidx}"
        # Occasional short forward branch to create block structure.
        has_skip = rng.random() < 0.5
        if has_skip:
            reg = rng.choice(_FILLER_REGS)
            lines.append(f"    andi {reg}, {reg}, 15")
            lines.append(f"    beqz {reg}, {label}_skip")
        block_has_ext = False
        for k in range(n_instr):
            roll = rng.random()
            if roll < ext_budget and not block_has_ext:
                lines.extend(self._ext_site(fidx, bidx, k, rng, high_pressure))
                block_has_ext = True
                if emitted_ext is not None:
                    emitted_ext[0] += 1
            elif roll < 0.35:
                lines.append(self._rvc_filler(rng, high_pressure))
            elif roll < 0.55:
                off = rng.randrange(0, 16) * 8
                reg = rng.choice(_FILLER_REGS)
                if high_pressure:
                    # Loads only clobber episode scratch and are consumed
                    # immediately, preserving accumulator liveness.
                    lines.append(f"    ld t1, {off}(s0)")
                    lines.append(f"    add {reg}, {reg}, t1")
                elif rng.random() < 0.5:
                    lines.append(f"    ld {reg}, {off}(s0)")
                else:
                    lines.append(f"    sd {reg}, {off}(s0)")
            else:
                lines.append(self._alu_filler(rng, high_pressure))
        if has_skip:
            lines.append(f"{label}_skip:")
        return lines

    def _ext_site(self, fidx: int, bidx: int, k: int, rng: random.Random,
                  high_pressure: bool) -> list[str]:
        """One extension-instruction site (vector episode or Zba pair).

        In high-pressure functions the episode's scratch registers
        (t0/t1) are consumed *after* the site, so at the site's natural
        exit every usable register is live (traditional liveness fails)
        while one shift step past the consumers frees t0 (exit shifting
        rescues).  With small probability the consumers sit beyond the
        shift horizon, producing the paper's ~1% truly-unrescuable tail.
        """
        if rng.random() < 0.35:
            n = rng.choice((1, 2, 3))
            dst = rng.choice(("a2", "a3", "t3"))
            lines = [f"    sh{n}add {dst}, {dst}, a5"]
        else:
            voff = rng.randrange(0, 4) * 64
            avl = rng.choice((2, 3, 4))
            op = rng.choice(("vadd.vv", "vmul.vv", "vxor.vv"))
            lines = []
            if not high_pressure and rng.random() < 0.4:
                # Classic absolute data access (lui+lw) preceding the
                # episode — the pair the Fig. 5 SMILE variant anchors on.
                lines += [
                    "    lui a0, 1024",  # 0x400000: the data segment base
                    f"    lw a1, {rng.randrange(0, 32) * 8}(a0)",
                ]
            lines += [
                f"    li t0, {avl}",
                f"    vsetvli t0, t0, e64",
                f"    addi t1, s1, {voff % 256}",
                f"    vle64.v v1, (t1)",
                f"    {op} v2, v1, v1",
                f"    vse64.v v2, (t1)",
            ]
        if high_pressure:
            consumers = [
                "    add t2, t2, t0",   # keeps t0/t1/t2 live at the exit
                "    add s2, s2, t1",
            ]
            if rng.random() < 0.04:
                # Consumers beyond the shift horizon: no rescue possible.
                filler_rmw = [
                    f"    add {rng.choice(_PRESSURE_REGS)}, {rng.choice(_PRESSURE_REGS)}, t2"
                    for _ in range(10)
                ]
                lines += filler_rmw + consumers
            else:
                lines += consumers
        return lines

    def _rvc_filler(self, rng: random.Random, high_pressure: bool) -> str:
        reg = rng.choice(_RVC_REGS[2:])  # keep s0/s1 (pointers) intact
        choice = rng.random()
        if choice < 0.4 or high_pressure:
            # c.addi is read-modify-write: safe for accumulator liveness.
            return f"    c.addi {reg}, {rng.randrange(1, 16)}"
        if choice < 0.7:
            src = rng.choice(_RVC_REGS[2:])
            return f"    c.mv {reg}, {src}" if src != reg else f"    c.addi {reg}, 1"
        return f"    c.add {reg}, {rng.choice(_RVC_REGS[2:])}"

    def _alu_filler(self, rng: random.Random, high_pressure: bool) -> str:
        if high_pressure:
            # Strictly read-modify-write so no accumulator ever goes dead.
            dst = rng.choice(_PRESSURE_REGS)
            src = rng.choice(_PRESSURE_REGS)
            op = rng.choice(("add", "xor", "or"))
            return f"    {op} {dst}, {dst}, {src}"
        dst = rng.choice(_FILLER_REGS)
        a = rng.choice(_FILLER_REGS)
        b = rng.choice(_FILLER_REGS)
        op = rng.choice(("add", "xor", "or", "and", "sub", "sll"))
        if op == "sll":
            return f"    andi {b}, {b}, 7\n    sll {dst}, {a}, {b}"
        return f"    {op} {dst}, {a}, {b}"
