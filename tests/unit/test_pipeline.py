"""Parallel verified-rewrite pipeline: serial, parallel, and cached
executions must be indistinguishable — byte-identical rewritten binaries
and identical VerifyReport ledgers under a fixed ``REPRO_FUZZ_SEED``."""

import pytest

from repro.core.pipeline import PipelineResult, cache_key, rewrite_and_verify
from repro.core.rewriter import ChimeraRewriter
from repro.isa.extensions import PROFILES
from repro.verify.report import VerifyReport
from repro.workloads.spec_profiles import PROFILES as WORKLOADS
from repro.workloads.synthetic import SyntheticBinary

RV64GC = PROFILES["rv64gc"]


def _gcc():
    return SyntheticBinary(WORKLOADS["gcc_r"], scale=256).build()


def _section_bytes(result):
    return {s.name: bytes(s.data) for s in result.binary.sections}


@pytest.fixture(autouse=True)
def _fixed_seed(monkeypatch):
    monkeypatch.setenv("REPRO_FUZZ_SEED", "20260806")


class TestDeterminism:
    def test_serial_and_parallel_are_identical(self):
        serial = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1, jobs=1)
        parallel = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1, jobs=4)
        assert _section_bytes(serial.result) == _section_bytes(parallel.result)
        assert serial.report.as_dict() == parallel.report.as_dict()
        assert serial.report.seed == 20260806

    def test_region_order_is_stable_under_parallelism(self):
        report = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                    jobs=4).report
        starts = [r.start for r in report.regions]
        assert starts == sorted(starts)


class TestRewriteCache:
    def test_warm_hit_reproduces_binary_and_ledger(self, tmp_path):
        cold = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                  cache_dir=tmp_path)
        warm = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                  cache_dir=tmp_path)
        assert not cold.cache_hit and warm.cache_hit
        assert _section_bytes(cold.result) == _section_bytes(warm.result)
        assert cold.report.as_dict() == warm.report.as_dict()

    def test_cached_binary_passes_a_fresh_gate(self, tmp_path):
        from repro.verify.admission import verify_binary

        original = _gcc()
        cold = rewrite_and_verify(original, RV64GC, oracle_trials=1,
                                  cache_dir=tmp_path)
        warm = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                  cache_dir=tmp_path)
        assert warm.cache_hit
        # The cache-loaded metadata (patch records, tables) is complete
        # enough to re-verify from scratch and get the same ledger.
        report = verify_binary(original, warm.binary, oracle_trials=1)
        assert report.as_dict() == cold.report.as_dict()

    def test_key_depends_on_input_bytes_and_config(self):
        rewriter = ChimeraRewriter()
        gate = {"seed": 1, "oracle_trials": 1,
                "oracle_max_steps": 512, "max_oracle_regions": 0}
        a = cache_key(_gcc(), RV64GC, rewriter, gate)
        assert a == cache_key(_gcc(), RV64GC, rewriter, gate)
        other = SyntheticBinary(WORKLOADS["perlbench_r"], scale=256).build()
        assert a != cache_key(other, RV64GC, rewriter, gate)
        assert a != cache_key(_gcc(), RV64GC, rewriter, dict(gate, seed=2))
        assert a != cache_key(_gcc(), RV64GC,
                              ChimeraRewriter(mode="empty"), gate)

    def test_seed_change_misses_the_cache(self, tmp_path, monkeypatch):
        rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                           cache_dir=tmp_path)
        monkeypatch.setenv("REPRO_FUZZ_SEED", "7")
        again = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                   cache_dir=tmp_path)
        assert not again.cache_hit

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        cold = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                  cache_dir=tmp_path)
        assert isinstance(cold, PipelineResult)
        for path in tmp_path.glob("*.self"):
            path.write_bytes(b"garbage")
        redo = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                  cache_dir=tmp_path)
        assert not redo.cache_hit
        assert _section_bytes(redo.result) == _section_bytes(cold.result)


class TestExecutors:
    def test_serial_thread_process_are_byte_identical(self):
        serial = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                    executor="serial")
        thread = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                    jobs=2, executor="thread")
        pooled = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                    jobs=2, executor="process")
        assert _section_bytes(serial.result) == _section_bytes(thread.result)
        assert _section_bytes(serial.result) == _section_bytes(pooled.result)
        assert serial.report.as_dict() == thread.report.as_dict()
        assert serial.report.as_dict() == pooled.report.as_dict()


class TestCacheCrashSafety:
    def test_torn_entry_is_repaired_and_counted(self, tmp_path):
        from repro.telemetry import Telemetry, use

        cold = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                  cache_dir=tmp_path)
        entry, = tmp_path.glob("*.self")
        data = entry.read_bytes()
        entry.write_bytes(data[: len(data) // 2])
        telemetry = Telemetry()
        with use(telemetry):
            redo = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                      cache_dir=tmp_path)
        assert not redo.cache_hit
        assert telemetry.metrics.total("pipeline.cache_repairs") >= 1
        assert _section_bytes(redo.result) == _section_bytes(cold.result)
        # The repaired entry was republished and is hit-able again.
        assert rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                  cache_dir=tmp_path).cache_hit

    def test_stale_orphan_temps_are_collected(self, tmp_path, monkeypatch):
        import os
        import time

        from repro.core import pipeline as pipeline_mod
        from repro.telemetry import Telemetry, use

        orphan = tmp_path / ".deadbeef.self.tmp"
        orphan.write_bytes(b"half-written")
        os.utime(orphan, (time.time() - 7200, time.time() - 7200))
        fresh = tmp_path / ".cafe.self.tmp"
        fresh.write_bytes(b"in-flight")
        telemetry = Telemetry()
        with use(telemetry):
            rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                               cache_dir=tmp_path)
        assert not orphan.exists()
        assert fresh.exists()  # younger than the TTL: left alone
        assert telemetry.metrics.total("pipeline.cache_orphans_gc") == 1


class TestJournalResume:
    def test_interrupted_run_resumes_byte_identical(self, tmp_path):
        from repro.chaos import InjectedPipelineKill, PipelineFailureInjector

        baseline = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1)
        injector = PipelineFailureInjector(abort_after_regions=3)
        with pytest.raises(InjectedPipelineKill):
            rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                               cache_dir=tmp_path, failure_injector=injector)
        journals = list(tmp_path.glob("journal/*.jsonl"))
        assert len(journals) == 1
        resumed = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                     cache_dir=tmp_path)
        assert resumed.resumed_regions == 3
        assert _section_bytes(resumed.result) == _section_bytes(baseline.result)
        assert resumed.report.as_dict() == baseline.report.as_dict()
        assert not journals[0].exists()  # completed runs delete the journal

    def test_no_resume_reverifies_from_scratch(self, tmp_path):
        from repro.chaos import InjectedPipelineKill, PipelineFailureInjector

        injector = PipelineFailureInjector(abort_after_regions=3)
        with pytest.raises(InjectedPipelineKill):
            rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                               cache_dir=tmp_path, failure_injector=injector)
        fresh = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1,
                                   cache_dir=tmp_path, resume=False)
        assert fresh.resumed_regions == 0
        baseline = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1)
        assert fresh.report.as_dict() == baseline.report.as_dict()


class TestReportRoundTrip:
    def test_verify_report_json_round_trip(self, tmp_path):
        report = rewrite_and_verify(_gcc(), RV64GC, oracle_trials=1).report
        path = tmp_path / "report.json"
        report.write_json(path)
        loaded = VerifyReport.load(path)
        assert loaded.as_dict() == report.as_dict()
        assert loaded.ok == report.ok
