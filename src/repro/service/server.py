"""``python -m repro serve`` — the asyncio batch translation server.

One process, three moving parts:

* the **event loop** accepts local connections (unix socket or
  TCP-on-localhost) and speaks :mod:`repro.service.protocol`; it never
  runs pipeline work, so the server stays responsive while every core
  is busy verifying;
* a small **job-thread pool** drives
  :func:`repro.core.pipeline.run_job` for each admitted job; each job's
  per-region fan-out goes through the PR 6 fault-isolated *process*
  pool, sized by one shared
  :class:`~repro.core.procpool.WorkerSlotArbiter` so concurrent jobs
  split the machine fairly instead of oversubscribing it;
* the **sharded cache** (:class:`~repro.core.pipeline.CacheLayout`)
  deduplicates: a submit whose release key is already on disk is a
  *warm* hit, one whose key is currently being built is *coalesced*
  onto the in-flight run — a batch of duplicate binaries performs
  exactly one rewrite+verify no matter how many clients race.

Failure domains are per job: a pipeline crash becomes a structured
:class:`~repro.resilience.failures.JobFault` streamed to every waiter
(the server stays up), and a key that crashes
:data:`POISON_THRESHOLD` times is refused on admission until the
server restarts — one poisoned binary can never take the service down
or monopolize its workers.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.core.pipeline import (
    CacheLayout,
    PipelineResult,
    RewriteJob,
    release_key,
    run_job,
)
from repro.core.procpool import WorkerSlotArbiter
from repro.resilience.failures import (
    JOB_CRASH,
    JOB_POISONED,
    JOB_REJECTED,
    JobFault,
)
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL,
    ProtocolError,
    read_message,
    validate_submit,
    write_message,
)
from repro.telemetry import current as telemetry_current

#: Crashing runs per release key before the key is refused on admission.
POISON_THRESHOLD = 2


class JobServiceError(RuntimeError):
    """Carries a :class:`JobFault` across the job future boundary."""

    def __init__(self, fault: JobFault):
        super().__init__(str(fault))
        self.fault = fault


@dataclass
class ServiceStats:
    """The service's observable ledger (mirrored into telemetry).

    Counters only move on the event-loop thread, so readers (the
    ``stats`` op, the tests) never see a torn snapshot.
    """

    jobs_accepted: int = 0
    jobs_rejected: int = 0
    jobs_quarantined: int = 0
    #: Followers attached to an in-flight run of the same release key.
    jobs_deduped_inflight: int = 0
    #: Runs satisfied by a published cache entry (warm hits).
    jobs_deduped_cache: int = 0
    #: Cold runs that actually rewrote + verified.
    rewrites: int = 0
    jobs_failed: int = 0
    jobs_completed: int = 0
    shard_hits: int = 0
    shard_misses: int = 0
    started_at: float = field(default_factory=time.time)

    @property
    def queue_depth(self) -> int:
        return self.jobs_accepted - self.jobs_completed

    def as_dict(self) -> dict:
        data = {k: v for k, v in vars(self).items() if k != "started_at"}
        data["queue_depth"] = self.queue_depth
        data["uptime_seconds"] = round(time.time() - self.started_at, 3)
        return data


@dataclass
class _JobRecord:
    """What one settled run hands every waiter."""

    key: str
    cache_hit: bool
    ok: bool
    releasable: bool
    counts: dict
    seconds: float
    report_json: str


class RewriteService:
    """The batch server.  See the module docstring for the shape."""

    def __init__(
        self,
        layout: CacheLayout,
        *,
        jobs: Optional[int] = None,
        executor: Optional[str] = None,
        oracle_trials: Optional[int] = None,
        region_timeout: Optional[float] = None,
        job_threads: Optional[int] = None,
        poison_threshold: int = POISON_THRESHOLD,
    ):
        self.layout = layout
        #: Machine-wide verification-worker budget, shared fairly.
        total = jobs if jobs is not None else (os.cpu_count() or 1)
        self.worker_budget = max(1, total)
        self.slots = WorkerSlotArbiter(self.worker_budget)
        #: Per-job executor override (None = pipeline auto-select:
        #: process when the job gets more than one worker slot).
        self.executor = executor
        #: Server-side override pinning every job's oracle trials (the
        #: cache key depends on it; a fleet wants one policy).
        self.oracle_trials = oracle_trials
        self.region_timeout = region_timeout
        self.poison_threshold = poison_threshold
        self.stats = ServiceStats()
        self._threads = ThreadPoolExecutor(
            max_workers=job_threads or min(8, self.worker_budget + 1),
            thread_name_prefix="repro-serve-job")
        self._inflight: dict[str, asyncio.Future] = {}
        #: Crash tally and quarantine memo, keyed by release key.
        self._failures: dict[str, int] = {}
        self._poisoned: dict[str, JobFault] = {}
        #: key -> [(connection, client job id), ...] progress watchers.
        self._watchers: dict[str, list] = {}
        self._stop = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._socket_path: Optional[str] = None
        self.address: Optional[str] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self, *, socket_path: Optional[str] = None,
                    host: str = "127.0.0.1",
                    port: Optional[int] = None) -> str:
        """Bind and listen; returns the printable address."""
        if socket_path is not None:
            # A stale socket file from a dead server blocks the bind;
            # unlink it (a live server would still hold the listener).
            try:
                os.unlink(socket_path)
            except FileNotFoundError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=socket_path,
                limit=MAX_MESSAGE_BYTES)
            self._socket_path = socket_path
            self.address = f"unix:{socket_path}"
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=host, port=port or 0,
                limit=MAX_MESSAGE_BYTES)
            bound = self._server.sockets[0].getsockname()
            self.address = f"tcp:{bound[0]}:{bound[1]}"
        return self.address

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` op (or :meth:`shutdown`) lands,
        then drain every in-flight job before returning."""
        if self._server is None:
            raise RuntimeError("call start() first")
        try:
            async with self._server:
                await self._stop.wait()
                self._server.close()
                await self._server.wait_closed()
            pending = [f for f in self._inflight.values() if not f.done()]
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            self._threads.shutdown(wait=True)
        finally:
            # Python < 3.13 leaves the unix socket file behind.
            if self._socket_path is not None:
                try:
                    os.unlink(self._socket_path)
                except OSError:
                    pass

    def shutdown(self) -> None:
        self._stop.set()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(writer)
        tasks: set[asyncio.Task] = set()
        try:
            await conn.send({"event": "hello", "protocol": PROTOCOL,
                             "shards": self.layout.shards,
                             "workers": self.worker_budget})
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    await conn.send({"event": "error", "id": None,
                                     "fault": JobFault(
                                         binary="<frame>",
                                         fault=JOB_REJECTED,
                                         detail=str(exc)).as_dict()})
                    break
                if message is None:
                    break
                op = message.get("op")
                if op == "submit":
                    task = asyncio.ensure_future(
                        self._handle_submit(conn, message))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                elif op == "stats":
                    await conn.send({"event": "stats",
                                     "stats": self.stats.as_dict(),
                                     "inflight": len(self._inflight),
                                     "poisoned": len(self._poisoned)})
                elif op == "ping":
                    await conn.send({"event": "pong"})
                elif op == "shutdown":
                    await conn.send({"event": "bye"})
                    self.shutdown()
                    break
                else:
                    await conn.send({"event": "error", "id": message.get("id"),
                                     "fault": JobFault(
                                         binary="<op>",
                                         fault=JOB_REJECTED,
                                         detail=f"unknown op {op!r}").as_dict()})
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            conn.closed = True
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- the submit path ----------------------------------------------------

    async def _handle_submit(self, conn: "_Connection", message: dict) -> None:
        telemetry = telemetry_current()
        loop = asyncio.get_running_loop()
        job_id = message.get("id")
        try:
            spec = validate_submit(message)
        except ProtocolError as exc:
            self.stats.jobs_rejected += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.jobs_rejected")
            await conn.send({"event": "error", "id": job_id,
                             "fault": JobFault(
                                 binary=str(message.get("workload")
                                            or message.get("path")),
                                 fault=JOB_REJECTED,
                                 detail=str(exc)).as_dict()})
            return
        name = spec["workload"] or spec["path"]
        try:
            job, key = await loop.run_in_executor(
                self._threads, self._resolve, spec)
        except Exception as exc:  # noqa: BLE001 - structured, never raw
            self.stats.jobs_rejected += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.jobs_rejected")
            await conn.send({"event": "error", "id": spec["id"],
                             "fault": JobFault(
                                 binary=name, fault=JOB_REJECTED,
                                 detail=f"{type(exc).__name__}: {exc}"
                             ).as_dict()})
            return

        poisoned = self._poisoned.get(key)
        if poisoned is not None:
            self.stats.jobs_quarantined += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.jobs_quarantined")
            await conn.send({"event": "error", "id": spec["id"],
                             "fault": poisoned.as_dict()})
            return

        self.stats.jobs_accepted += 1
        if telemetry.enabled:
            telemetry.metrics.inc("service.jobs_accepted")
            telemetry.metrics.gauge("service.queue_depth",
                                    self.stats.queue_depth)
        shard = self.layout.shard_name(key) if self.layout.shards else "flat"
        await conn.send({"event": "accepted", "id": spec["id"], "key": key,
                         "shard": shard})

        follower = key in self._inflight
        if follower:
            self.stats.jobs_deduped_inflight += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.jobs_deduped", how="inflight")
            future = self._inflight[key]
        else:
            future = loop.create_future()
            self._inflight[key] = future
            asyncio.ensure_future(self._drive(key, job, name, future))
        self._watchers.setdefault(key, []).append((conn, spec["id"]))
        try:
            record: _JobRecord = await future
        except JobServiceError as exc:
            await conn.send({"event": "error", "id": spec["id"],
                             "fault": exc.fault.as_dict()})
            return
        finally:
            # Every admitted job completes exactly once (runner and
            # followers alike), success or fault — queue_depth drains.
            self.stats.jobs_completed += 1
            if telemetry.enabled:
                telemetry.metrics.gauge("service.queue_depth",
                                        self.stats.queue_depth)
            watchers = self._watchers.get(key)
            if watchers is not None:
                try:
                    watchers.remove((conn, spec["id"]))
                except ValueError:
                    pass
                if not watchers:
                    self._watchers.pop(key, None)
        cache = ("coalesced" if follower
                 else "warm" if record.cache_hit else "cold")
        await conn.send({
            "event": "result", "id": spec["id"], "key": key,
            "shard": shard, "cache": cache, "ok": record.ok,
            "releasable": record.releasable, "counts": record.counts,
            "seconds": round(record.seconds, 6),
            "report_json": record.report_json,
        })

    async def _drive(self, key: str, job: RewriteJob, name: str,
                     future: asyncio.Future) -> None:
        """Own one run: thread off the pipeline, settle every waiter,
        keep the books.  Runs on the loop; the pipeline does not."""
        telemetry = telemetry_current()
        loop = asyncio.get_running_loop()

        def on_progress(stage: str, **info) -> None:
            # Fires on the job thread; marshal to the loop.
            loop.call_soon_threadsafe(self._fanout_progress, key, stage, info)

        t0 = time.perf_counter()
        try:
            pipe: PipelineResult = await loop.run_in_executor(
                self._threads, self._run_sync, job, key, on_progress)
        except Exception as exc:  # noqa: BLE001 - the job failure domain
            failures = self._failures.get(key, 0) + 1
            self._failures[key] = failures
            quarantined = failures >= self.poison_threshold
            fault = JobFault(
                binary=name, fault=JOB_CRASH,
                detail=f"{type(exc).__name__}: {exc}", key=key,
                failures=failures, quarantined=quarantined)
            if quarantined:
                self._poisoned[key] = JobFault(
                    binary=name, fault=JOB_POISONED,
                    detail=(f"release key crashed {failures} run(s); "
                            "refused until restart"),
                    key=key, failures=failures, quarantined=True)
            self.stats.jobs_failed += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.jobs_failed")
            self._inflight.pop(key, None)
            future.set_exception(JobServiceError(fault))
            return
        seconds = time.perf_counter() - t0
        shard = self.layout.shard_name(key) if self.layout.shards else "flat"
        if pipe.cache_hit:
            self.stats.shard_hits += 1
            self.stats.jobs_deduped_cache += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.shard_hits", shard=shard)
                telemetry.metrics.inc("service.jobs_deduped", how="cache")
        else:
            self.stats.shard_misses += 1
            self.stats.rewrites += 1
            if telemetry.enabled:
                telemetry.metrics.inc("service.shard_misses", shard=shard)
                telemetry.metrics.inc("service.rewrites")
        self._failures.pop(key, None)
        self._inflight.pop(key, None)
        future.set_result(_JobRecord(
            key=key, cache_hit=pipe.cache_hit, ok=pipe.ok,
            releasable=pipe.releasable,
            counts=pipe.report.counts(), seconds=seconds,
            report_json=pipe.report.to_json()))

    # -- job-thread halves --------------------------------------------------

    def _resolve(self, spec: dict) -> tuple[RewriteJob, str]:
        """Build the job's binary and release key (job thread)."""
        from repro.elf.fileformat import load_binary_file
        from repro.telemetry.pipeline import resolve_workload

        if spec["workload"] is not None:
            binary = resolve_workload(spec["workload"],
                                      variant=spec["variant"],
                                      scale=spec["scale"])
        else:
            binary = load_binary_file(spec["path"])
        trials = (self.oracle_trials if self.oracle_trials is not None
                  else spec["oracle_trials"])
        job = RewriteJob(
            binary=binary,
            target=spec["target"],
            seed=spec["seed"],
            oracle_trials=trials,
            jobs=self.worker_budget,
            executor=self.executor,
            region_timeout=self.region_timeout,
        )
        return job, release_key(job)

    def _run_sync(self, job: RewriteJob, key: str, on_progress):
        """The pipeline proper (job thread)."""
        return run_job(job, cache=self.layout, slots=self.slots,
                       job_id=key, on_progress=on_progress)

    # -- progress fan-out ---------------------------------------------------

    def _fanout_progress(self, key: str, stage: str, info: dict) -> None:
        for conn, job_id in list(self._watchers.get(key, ())):
            message = {"event": "progress", "id": job_id, "key": key,
                       "stage": stage, **info}
            asyncio.ensure_future(conn.send_quiet(message))


class _Connection:
    """One client stream; writes serialized so concurrent jobs on the
    same connection never interleave frames."""

    def __init__(self, writer):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.closed = False

    async def send(self, message: dict) -> None:
        if self.closed:
            return
        async with self.lock:
            try:
                await write_message(self.writer, message)
            except (ConnectionError, OSError):
                self.closed = True

    async def send_quiet(self, message: dict) -> None:
        """Best-effort send (progress events to maybe-gone clients)."""
        try:
            await self.send(message)
        except Exception:  # noqa: BLE001 - progress is best-effort
            self.closed = True


async def serve(
    layout: CacheLayout,
    *,
    socket_path: Optional[str] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    jobs: Optional[int] = None,
    executor: Optional[str] = None,
    oracle_trials: Optional[int] = None,
    region_timeout: Optional[float] = None,
    ready=None,
) -> ServiceStats:
    """Run a :class:`RewriteService` until shutdown; returns its stats.

    ``ready`` (optional callable) fires with the bound address once the
    server is listening — the CLI prints it, tests latch onto it.
    """
    service = RewriteService(
        layout, jobs=jobs, executor=executor, oracle_trials=oracle_trials,
        region_timeout=region_timeout)
    address = await service.start(socket_path=socket_path, host=host,
                                  port=port)
    if ready is not None:
        ready(address)
    await service.serve_until_shutdown()
    return service.stats
