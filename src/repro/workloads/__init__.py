"""Workloads: the programs and profiles the evaluation runs.

* :mod:`repro.workloads.programs` — self-checking kernel binaries
  (matmul, gemv, fibonacci, vector add, dot product, memcpy, indirect
  dispatch), each buildable as a base-ISA or extension-ISA variant —
  the "source code" that compilation-based baselines get to see;
* :mod:`repro.workloads.spec_profiles` — per-benchmark static profiles
  lifted from the paper's Table 3;
* :mod:`repro.workloads.synthetic` — profile-driven synthetic binaries
  standing in for SPEC CPU2017 / real-application binaries;
* :mod:`repro.workloads.hetero` — the §6.1 mixed matrix/integer task
  suite and its per-system cost measurement;
* :mod:`repro.workloads.openblas` — the §6.4 BLAS kernel models.
"""

from repro.workloads.programs import (
    KernelWorkload,
    MatMulWorkload,
    GemvWorkload,
    FibonacciWorkload,
    VectorAddWorkload,
    DotProductWorkload,
    MemcpyWorkload,
    IndirectDispatchWorkload,
    ALL_WORKLOADS,
)

__all__ = [
    "KernelWorkload",
    "MatMulWorkload",
    "GemvWorkload",
    "FibonacciWorkload",
    "VectorAddWorkload",
    "DotProductWorkload",
    "MemcpyWorkload",
    "IndirectDispatchWorkload",
    "ALL_WORKLOADS",
]
