"""A two-pass textual assembler for the implemented RISC-V subset.

The workload builders (:mod:`repro.workloads`) and many tests express
programs as assembly text; this module turns that text into
``Instruction`` lists and machine bytes with label resolution.

Supported syntax::

    loop:                       # labels
        addi a0, a0, -1         # register/immediate operands
        lw   t0, 8(a1)          # memory operands
        beq  a0, zero, done     # branch to label
        vsetvli t0, a1, e64     # vector config (e32/e64)
        vle64.v v1, (a0)        # unit-stride vector load
        .align 4                # directives: .align/.byte/.word/.dword/.space
    done:
        ret

Pseudo-instructions: ``nop``, ``mv``, ``li``, ``la``, ``not``, ``neg``,
``seqz``, ``snez``, ``beqz``, ``bnez``, ``j``, ``jr``, ``call``, ``ret``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from repro.isa.encoding import encode
from repro.isa.fields import fits_signed, split_hi_lo
from repro.isa.instructions import Instruction
from repro.isa.registers import NAME_TO_REG, NAME_TO_VREG, Reg
from repro.isa.encoding import encode_vtype


class AssemblyError(ValueError):
    """Raised for syntax errors, unknown mnemonics, or bad operands."""

    def __init__(self, message: str, line_no: int | None = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


_MEM_RE = re.compile(r"^(?P<off>[^()]*)\((?P<base>[a-z0-9]+)\)$")

#: Mnemonics taking "rd, rs1, rs2".
_RRR = frozenset(
    {"add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
     "addw", "subw", "sllw", "srlw", "sraw",
     "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
     "mulw", "divw", "divuw", "remw", "remuw",
     "sh1add", "sh2add", "sh3add"}
)

#: Mnemonics taking "rd, rs1, imm".
_RRI = frozenset(
    {"addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai",
     "addiw", "slliw", "srliw", "sraiw"}
)

_LOADS = frozenset({"lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"})
_STORES = frozenset({"sb", "sh", "sw", "sd"})
_BRANCHES = frozenset({"beq", "bne", "blt", "bge", "bltu", "bgeu"})
_VVV = frozenset({
    "vadd.vv", "vsub.vv", "vmul.vv", "vmacc.vv", "vand.vv", "vor.vv",
    "vxor.vv", "vmin.vv", "vminu.vv", "vmax.vv", "vmaxu.vv",
    "vsll.vv", "vsrl.vv", "vsra.vv", "vredsum.vs",
})
_VVX = frozenset({"vadd.vx", "vsub.vx", "vmul.vx", "vsll.vx", "vsrl.vx", "vsra.vx"})

_C_RRI = frozenset({"c.addi", "c.addiw", "c.slli", "c.srli", "c.srai", "c.andi"})
_C_RR = frozenset({"c.sub", "c.xor", "c.or", "c.and", "c.subw", "c.addw", "c.mv", "c.add"})
_C_MEM = frozenset({"c.lw", "c.ld", "c.sw", "c.sd", "c.lwsp", "c.ldsp", "c.swsp", "c.sdsp"})


def _parse_int(text: str, line_no: int) -> int:
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError as exc:
        raise AssemblyError(f"bad integer {text!r}", line_no) from exc


def _reg(text: str, line_no: int) -> int:
    try:
        return int(NAME_TO_REG[text.strip().lower()])
    except KeyError as exc:
        raise AssemblyError(f"unknown register {text!r}", line_no) from exc


def _vreg(text: str, line_no: int) -> int:
    try:
        return int(NAME_TO_VREG[text.strip().lower()])
    except KeyError as exc:
        raise AssemblyError(f"unknown vector register {text!r}", line_no) from exc


@dataclass
class _Item:
    """One assembled item before label resolution."""

    kind: str  # "instr" | "bytes" | "align"
    line_no: int
    size: int
    mnemonic: str = ""
    operands: list[str] = field(default_factory=list)
    data: bytes = b""
    align: int = 0
    addr: int = 0
    aligned: bool = False  # pad width depends on the absolute pc


@dataclass
class AssembledProgram:
    """Result of assembling a unit: bytes, instructions, labels."""

    code: bytes
    instructions: list[Instruction]
    labels: dict[str, int]
    base: int
    #: True when the encodings are base-independent: every label
    #: reference in the supported syntax is pc-relative, so only
    #: ``.align`` padding (whose width depends on the absolute pc) ties
    #: code bytes to the assembly base.
    relocatable: bool = True

    def label(self, name: str) -> int:
        """Absolute address of label *name*."""
        return self.labels[name]

    def retarget(self, base: int) -> "AssembledProgram":
        """The same program placed at *base* without re-assembling.

        Valid only for relocatable programs (no ``.align``): code bytes
        are identical at any base, so retargeting just shifts labels and
        instruction addresses.  Callers that may assemble ``.align``
        must fall back to a second :meth:`Assembler.assemble` pass.
        """
        if not self.relocatable:
            raise ValueError("program uses .align; re-assemble at the new base")
        delta = base - self.base
        if delta == 0:
            return self
        instructions = [replace(i, addr=(i.addr + delta if i.addr is not None else None))
                        for i in self.instructions]
        labels = {name: addr + delta for name, addr in self.labels.items()}
        return AssembledProgram(self.code, instructions, labels, base)


class Assembler:
    """Two-pass assembler; construct once, call :meth:`assemble`."""

    def __init__(self, base: int = 0):
        self.base = base

    # -- pass 1 ----------------------------------------------------------

    def _pseudo_size(self, mnem: str, ops: list[str], line_no: int) -> int:
        """Size in bytes of a pseudo-instruction expansion."""
        if mnem == "li":
            imm = _parse_int(ops[1], line_no)
            return 4 * len(_expand_li(0, imm))
        if mnem == "la":
            return 8
        return 4

    def _scan(self, source: str) -> tuple[list[_Item], dict[str, int]]:
        items: list[_Item] = []
        labels: dict[str, int] = {}
        pc = self.base
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            while True:
                m = re.match(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$", line)
                if not m:
                    break
                label, line = m.group(1), m.group(2).strip()
                if label in labels:
                    raise AssemblyError(f"duplicate label {label!r}", line_no)
                labels[label] = pc
                if not line:
                    break
            if not line:
                continue
            parts = line.split(None, 1)
            mnem = parts[0].lower()
            ops = [o.strip() for o in parts[1].split(",")] if len(parts) > 1 else []
            if mnem.startswith("."):
                item = self._directive(mnem, ops, pc, line_no)
            else:
                size = 2 if mnem.startswith("c.") else self._pseudo_size(mnem, ops, line_no)
                item = _Item("instr", line_no, size, mnemonic=mnem, operands=ops)
            item.addr = pc
            pc += item.size
            items.append(item)
        return items, labels

    def _directive(self, mnem: str, ops: list[str], pc: int, line_no: int) -> _Item:
        if mnem == ".align":
            align = 1 << _parse_int(ops[0], line_no)
            pad = (-pc) % align
            return _Item("bytes", line_no, pad, data=bytes(pad), aligned=True)
        if mnem == ".space":
            n = _parse_int(ops[0], line_no)
            return _Item("bytes", line_no, n, data=bytes(n))
        if mnem == ".byte":
            data = bytes(_parse_int(o, line_no) & 0xFF for o in ops)
            return _Item("bytes", line_no, len(data), data=data)
        if mnem == ".half":
            data = b"".join((_parse_int(o, line_no) & 0xFFFF).to_bytes(2, "little") for o in ops)
            return _Item("bytes", line_no, len(data), data=data)
        if mnem == ".word":
            data = b"".join((_parse_int(o, line_no) & 0xFFFFFFFF).to_bytes(4, "little") for o in ops)
            return _Item("bytes", line_no, len(data), data=data)
        if mnem == ".dword":
            data = b"".join((_parse_int(o, line_no) & (2**64 - 1)).to_bytes(8, "little") for o in ops)
            return _Item("bytes", line_no, len(data), data=data)
        raise AssemblyError(f"unknown directive {mnem!r}", line_no)

    # -- pass 2 ----------------------------------------------------------

    def _imm_or_label(self, text: str, labels: dict[str, int], pc: int, line_no: int, *, relative: bool) -> int:
        text = text.strip()
        if text in labels:
            return labels[text] - pc if relative else labels[text]
        return _parse_int(text, line_no)

    def _expand(self, item: _Item, labels: dict[str, int]) -> list[Instruction]:
        mnem, ops, pc, ln = item.mnemonic, item.operands, item.addr, item.line_no
        out: list[Instruction] = []

        def imm_rel(text: str) -> int:
            return self._imm_or_label(text, labels, pc, ln, relative=True)

        def imm_abs(text: str) -> int:
            return self._imm_or_label(text, labels, pc, ln, relative=False)

        # pseudo-instructions -------------------------------------------
        if mnem == "nop":
            return [Instruction("addi", rd=0, rs1=0, imm=0)]
        if mnem == "mv":
            return [Instruction("addi", rd=_reg(ops[0], ln), rs1=_reg(ops[1], ln), imm=0)]
        if mnem == "not":
            return [Instruction("xori", rd=_reg(ops[0], ln), rs1=_reg(ops[1], ln), imm=-1)]
        if mnem == "neg":
            return [Instruction("sub", rd=_reg(ops[0], ln), rs1=0, rs2=_reg(ops[1], ln))]
        if mnem == "seqz":
            return [Instruction("sltiu", rd=_reg(ops[0], ln), rs1=_reg(ops[1], ln), imm=1)]
        if mnem == "snez":
            return [Instruction("sltu", rd=_reg(ops[0], ln), rs1=0, rs2=_reg(ops[1], ln))]
        if mnem == "beqz":
            return [Instruction("beq", rs1=_reg(ops[0], ln), rs2=0, imm=imm_rel(ops[1]))]
        if mnem == "bnez":
            return [Instruction("bne", rs1=_reg(ops[0], ln), rs2=0, imm=imm_rel(ops[1]))]
        if mnem == "j":
            return [Instruction("jal", rd=0, imm=imm_rel(ops[0]))]
        if mnem == "jr":
            return [Instruction("jalr", rd=0, rs1=_reg(ops[0], ln), imm=0)]
        if mnem == "call":
            return [Instruction("jal", rd=int(Reg.RA), imm=imm_rel(ops[0]))]
        if mnem == "ret":
            return [Instruction("jalr", rd=0, rs1=int(Reg.RA), imm=0)]
        if mnem == "li":
            rd = _reg(ops[0], ln)
            value = _parse_int(ops[1], ln)
            return _expand_li(rd, value)
        if mnem == "la":
            rd = _reg(ops[0], ln)
            offset = imm_abs(ops[1]) - pc
            hi, lo = split_hi_lo(offset)
            return [
                Instruction("auipc", rd=rd, imm=hi),
                Instruction("addi", rd=rd, rs1=rd, imm=lo),
            ]

        # real instructions ---------------------------------------------
        if mnem in _RRR:
            return [Instruction(mnem, rd=_reg(ops[0], ln), rs1=_reg(ops[1], ln), rs2=_reg(ops[2], ln))]
        if mnem in _RRI:
            return [Instruction(mnem, rd=_reg(ops[0], ln), rs1=_reg(ops[1], ln), imm=_parse_int(ops[2], ln))]
        if mnem in _LOADS or mnem in ("c.lw", "c.ld", "c.lwsp", "c.ldsp"):
            rd = _reg(ops[0], ln)
            off, base = _split_mem(ops[1], ln)
            return [Instruction(mnem, rd=rd, rs1=base, imm=off, length=2 if mnem.startswith("c.") else 4)]
        if mnem in _STORES or mnem in ("c.sw", "c.sd", "c.swsp", "c.sdsp"):
            rs2 = _reg(ops[0], ln)
            off, base = _split_mem(ops[1], ln)
            return [Instruction(mnem, rs1=base, rs2=rs2, imm=off, length=2 if mnem.startswith("c.") else 4)]
        if mnem in _BRANCHES:
            return [Instruction(mnem, rs1=_reg(ops[0], ln), rs2=_reg(ops[1], ln), imm=imm_rel(ops[2]))]
        if mnem == "lui":
            return [Instruction("lui", rd=_reg(ops[0], ln), imm=_parse_int(ops[1], ln))]
        if mnem == "auipc":
            return [Instruction("auipc", rd=_reg(ops[0], ln), imm=_parse_int(ops[1], ln))]
        if mnem == "jal":
            if len(ops) == 1:
                return [Instruction("jal", rd=int(Reg.RA), imm=imm_rel(ops[0]))]
            return [Instruction("jal", rd=_reg(ops[0], ln), imm=imm_rel(ops[1]))]
        if mnem == "jalr":
            if len(ops) == 1:
                return [Instruction("jalr", rd=int(Reg.RA), rs1=_reg(ops[0], ln), imm=0)]
            off, base = _split_mem(ops[1], ln)
            return [Instruction("jalr", rd=_reg(ops[0], ln), rs1=base, imm=off)]
        if mnem in ("ecall", "ebreak", "fence"):
            return [Instruction(mnem)]
        # compressed ------------------------------------------------------
        if mnem == "c.nop":
            return [Instruction("c.nop", length=2)]
        if mnem == "c.ebreak":
            return [Instruction("c.ebreak", length=2)]
        if mnem == "c.li" or mnem == "c.lui":
            return [Instruction(mnem, rd=_reg(ops[0], ln), imm=_parse_int(ops[1], ln), length=2)]
        if mnem in _C_RRI:
            rd = _reg(ops[0], ln)
            return [Instruction(mnem, rd=rd, rs1=rd, imm=_parse_int(ops[-1], ln), length=2)]
        if mnem in _C_RR:
            rd = _reg(ops[0], ln)
            # Accept both the two-operand alias (c.add rd, rs2) and the
            # canonical three-operand disassembly (c.add rd, rd, rs2).
            rs2 = _reg(ops[-1], ln)
            rs1 = None if mnem == "c.mv" else rd
            if len(ops) == 3 and mnem != "c.mv" and _reg(ops[1], ln) != rd:
                raise AssemblyError(f"{mnem} requires rd == rs1", ln)
            return [Instruction(mnem, rd=rd, rs1=rs1, rs2=rs2, length=2)]
        if mnem == "c.addi4spn":
            return [Instruction(mnem, rd=_reg(ops[0], ln), rs1=2, imm=_parse_int(ops[1], ln), length=2)]
        if mnem == "c.j":
            return [Instruction("c.j", imm=imm_rel(ops[0]), length=2)]
        if mnem in ("c.beqz", "c.bnez"):
            return [Instruction(mnem, rs1=_reg(ops[0], ln), imm=imm_rel(ops[1]), length=2)]
        if mnem == "c.jr":
            return [Instruction("c.jr", rs1=_reg(ops[0], ln), length=2)]
        if mnem == "c.jalr":
            return [Instruction("c.jalr", rd=1, rs1=_reg(ops[0], ln), length=2)]
        # vector ----------------------------------------------------------
        if mnem == "vsetvli":
            sew = {"e8": 8, "e16": 16, "e32": 32, "e64": 64}.get(ops[2].lower())
            if sew is not None:
                vtype = encode_vtype(sew)
            else:
                vtype = _parse_int(ops[2], ln)  # raw vtype immediate
            return [Instruction("vsetvli", rd=_reg(ops[0], ln), rs1=_reg(ops[1], ln), imm=vtype)]
        if mnem in _VVV:
            return [Instruction(mnem, vd=_vreg(ops[0], ln), vs2=_vreg(ops[1], ln), vs1=_vreg(ops[2], ln))]
        if mnem in _VVX:
            return [Instruction(mnem, vd=_vreg(ops[0], ln), vs2=_vreg(ops[1], ln), rs1=_reg(ops[2], ln))]
        if mnem == "vmv.x.s":
            return [Instruction(mnem, rd=_reg(ops[0], ln), vs2=_vreg(ops[1], ln))]
        if mnem in ("vadd.vi", "vmv.v.i"):
            if mnem == "vmv.v.i":
                return [Instruction(mnem, vd=_vreg(ops[0], ln), vs2=0, imm=_parse_int(ops[1], ln))]
            return [Instruction(mnem, vd=_vreg(ops[0], ln), vs2=_vreg(ops[1], ln), imm=_parse_int(ops[2], ln))]
        if mnem == "vmv.v.x":
            return [Instruction(mnem, vd=_vreg(ops[0], ln), vs2=0, rs1=_reg(ops[1], ln))]
        if mnem in ("vle32.v", "vle64.v", "vse32.v", "vse64.v"):
            off, base = _split_mem(ops[1], ln)
            if off != 0:
                raise AssemblyError("vector memory ops take (reg) with no offset", ln)
            return [Instruction(mnem, vd=_vreg(ops[0], ln), rs1=base)]
        raise AssemblyError(f"unknown mnemonic {mnem!r}", ln)

    def assemble(self, source: str) -> AssembledProgram:
        """Assemble *source* text, returning code bytes + metadata."""
        items, labels = self._scan(source)
        code = bytearray()
        instructions: list[Instruction] = []
        relocatable = True
        for item in items:
            if item.kind == "bytes":
                if item.aligned:
                    relocatable = False
                code.extend(item.data)
                continue
            expanded = self._expand(item, labels)
            total = 0
            for instr in expanded:
                instr.addr = item.addr + total
                encoded = encode(instr)
                instr.encoding = int.from_bytes(encoded, "little")
                total += len(encoded)
                code.extend(encoded)
                instructions.append(instr)
            if total != item.size:
                raise AssemblyError(
                    f"{item.mnemonic}: pass-1 size {item.size} != pass-2 size {total}",
                    item.line_no,
                )
        return AssembledProgram(bytes(code), instructions, labels, self.base,
                                relocatable=relocatable)


def _split_mem(text: str, line_no: int) -> tuple[int, int]:
    """Parse a memory operand ``off(base)`` into (offset, base register)."""
    m = _MEM_RE.match(text.strip())
    if not m:
        raise AssemblyError(f"bad memory operand {text!r}", line_no)
    off_text = m.group("off").strip()
    offset = _parse_int(off_text, line_no) if off_text else 0
    return offset, _reg(m.group("base"), line_no)


def _expand_li(rd: int, value: int) -> list[Instruction]:
    """Expand ``li rd, value`` (any 64-bit constant) recursively.

    Mirrors the standard toolchain algorithm: peel the low 12 bits,
    materialize the (arithmetically shifted) remainder, then
    ``slli``/``addi`` the low part back in.
    """
    if fits_signed(value, 12):
        return [Instruction("addi", rd=rd, rs1=0, imm=value)]
    if fits_signed(value, 32):
        lo = value & 0xFFF
        if lo >= 0x800:
            lo -= 0x1000
        hi = ((value - lo) >> 12) & 0xFFFFF
        out = [Instruction("lui", rd=rd, imm=hi)]
        if lo:
            out.append(Instruction("addiw", rd=rd, rs1=rd, imm=lo))
        return out
    lo = value & 0xFFF
    if lo >= 0x800:
        lo -= 0x1000
    out = _expand_li(rd, (value - lo) >> 12)
    out.append(Instruction("slli", rd=rd, rs1=rd, imm=12))
    if lo:
        out.append(Instruction("addi", rd=rd, rs1=rd, imm=lo))
    return out


def assemble(source: str, base: int = 0) -> AssembledProgram:
    """Module-level convenience wrapper around :class:`Assembler`."""
    return Assembler(base=base).assemble(source)
