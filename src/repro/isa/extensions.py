"""ISA extension taxonomy and per-core capability profiles.

An ISAX heterogeneous machine is a set of cores sharing a base ISA with
per-core optional extensions (paper §1).  ``IsaProfile`` is the
capability mask attached to each simulated core; the rewriter consumes a
(source profile, target profile) pair to decide which instructions are
*source instructions* needing upgrade or downgrade.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Extension(enum.Enum):
    """Instruction-set extension tags used throughout the system."""

    I = "i"        # base integer ISA (RV64I)
    M = "m"        # integer multiply/divide
    C = "c"        # compressed instructions
    ZBA = "zba"    # address-generation bit-manipulation (sh1add family)
    V = "v"        # vector extension (RVV subset, VLEN=256)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Extension.{self.name}"


@dataclass(frozen=True)
class IsaProfile:
    """A named, immutable set of supported extensions.

    The base integer ISA is always included; constructing a profile
    without :attr:`Extension.I` raises.
    """

    name: str
    extensions: frozenset[Extension]

    def __post_init__(self) -> None:
        if Extension.I not in self.extensions:
            raise ValueError("every ISA profile must include the base integer ISA")

    def supports(self, ext: Extension) -> bool:
        """True if this profile implements *ext*."""
        return ext in self.extensions

    def supports_all(self, exts: frozenset[Extension] | set[Extension]) -> bool:
        """True if this profile implements every extension in *exts*."""
        return exts <= self.extensions

    def missing(self, other: "IsaProfile") -> frozenset[Extension]:
        """Extensions *other* has that this profile lacks."""
        return other.extensions - self.extensions

    def extra(self, other: "IsaProfile") -> frozenset[Extension]:
        """Extensions this profile has beyond *other*."""
        return self.extensions - other.extensions

    def __str__(self) -> str:
        return self.name


#: The common base ISA of every core in our machines (paper evaluates
#: RV64GC; we implement the integer/M/C part, floating point is not
#: needed by any experiment and is documented as out of scope).
RV64GC = IsaProfile("rv64gc", frozenset({Extension.I, Extension.M, Extension.C}))

#: Extension cores: base plus vector and Zba.  The paper's extension
#: cores are RV64GCV (RVV 1.0, VLEN=256); Zba rides along because the
#: paper's running downgrade example (sh1add) is a Zba instruction.
RV64GCV = IsaProfile(
    "rv64gcv",
    frozenset({Extension.I, Extension.M, Extension.C, Extension.V, Extension.ZBA}),
)

#: Uncompressed variant used by tests that want fixed 4-byte instructions.
RV64G = IsaProfile("rv64g", frozenset({Extension.I, Extension.M}))

#: All profiles by name, for CLI/bench parameterization.
PROFILES: dict[str, IsaProfile] = {p.name: p for p in (RV64GC, RV64GCV, RV64G)}
