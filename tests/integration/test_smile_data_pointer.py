"""The Fig. 5 general-register SMILE variant, end to end.

For ISAs without a gp-like register, SMILE overwrites a preceding
``lui rX, hi ; load lo(rX)`` data-access pair instead: rX provably holds
a data-segment pointer at the pair, so a partial execution (the jalr
alone) faults deterministically through the stale pointer.
"""

import pytest

from repro.core.patcher import ChbpPatcher
from repro.core.rewriter import ChimeraRewriter
from repro.core.runtime import ChimeraRuntime
from repro.elf.builder import ProgramBuilder
from repro.elf.loader import make_process
from repro.isa.extensions import RV64GC, RV64GCV
from repro.isa.registers import Reg
from repro.sim.machine import Core, Kernel


def pair_binary():
    """The vector source is preceded by the classic lui+lw data access
    (paper Fig. 5's 'original inst.'), using a0 as the data pointer."""
    b = ProgramBuilder("dp")
    b.add_words("cfg", [4])         # the value the lui+lw pair loads
    b.add_words("buf", [3, 5, 7, 9] + [0] * 8)
    b.add_words("out", [0] * 4)
    cfg_addr = b.data_addr_of("cfg")
    hi = (cfg_addr + 0x800) >> 12
    lo = cfg_addr - (hi << 12)
    b.set_text(f"""
_start:
    lui a0, {hi}
    lw a1, {lo}(a0)
    li a2, {{buf}}
    vsetvli t0, a1, e64
    vle64.v v1, (a2)
    vadd.vv v2, v1, v1
    li a3, {{out}}
    vse64.v v2, (a3)
    li a7, 93
    li a0, 0
    ecall
""")
    return b.build()


class TestDataPointerSmile:
    def test_rewrite_places_general_register_trampoline(self):
        binary = pair_binary()
        patcher = ChbpPatcher(binary, RV64GC, smile_register="data-pointer",
                              enable_upgrades=False)
        out = patcher.patch()
        assert patcher.stats.trampolines >= 1
        assert patcher.smile_regs, "no data-pointer trampoline recorded"
        assert all(reg != int(Reg.GP) for reg in patcher.smile_regs.values())

    def test_rewritten_binary_correct_on_base_core(self):
        binary = pair_binary()
        rewriter = ChimeraRewriter(smile_register="data-pointer",
                                   enable_upgrades=False)
        result = rewriter.rewrite(binary, RV64GC)
        kernel = Kernel()
        ChimeraRuntime(result.binary).install(kernel)
        proc = make_process(result.binary)
        res = kernel.run(proc, Core(0, RV64GC))
        assert res.ok, res.fault
        outa = binary.symbol_addr("out")
        assert [proc.space.read_u64(outa + 8 * i) for i in range(4)] == [6, 10, 14, 18]

    def test_gp_untouched_by_data_pointer_trampolines(self):
        """The variant's whole point: gp is never clobbered."""
        binary = pair_binary()
        rewriter = ChimeraRewriter(smile_register="data-pointer",
                                   enable_upgrades=False)
        result = rewriter.rewrite(binary, RV64GC)
        kernel = Kernel()
        ChimeraRuntime(result.binary).install(kernel)
        proc = make_process(result.binary)
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        res = kernel.run(proc, Core(0, RV64GC), cpu=cpu)
        assert res.ok
        assert cpu.get_reg(Reg.GP) == binary.global_pointer

    def test_erroneous_entry_at_pair_second_slot_recovers(self):
        """Jumping at the pair's load slot (P1) must fault through the
        stale data pointer and redirect to the reconstructed load."""
        from repro.sim.faults import SegmentationFault

        binary = pair_binary()
        rewriter = ChimeraRewriter(smile_register="data-pointer",
                                   enable_upgrades=False)
        result = rewriter.rewrite(binary, RV64GC)
        runtime = ChimeraRuntime(result.binary)
        kernel = Kernel()
        runtime.install(kernel)
        (p1_addr, reg), = runtime.smile_regs.items()
        proc = make_process(result.binary)
        cpu = kernel.make_cpu(proc, Core(0, RV64GC))
        # Simulate the original program state at P1: rX holds the data
        # pointer (as any pre-rewrite jump to the load required).
        cpu.set_reg(reg, binary.symbol_addr("cfg") + 0x800 - 0x800)
        cpu.set_reg(reg, binary.symbol_addr("cfg"))
        cpu.pc = p1_addr
        with pytest.raises(SegmentationFault) as exc:
            for _ in range(2):
                cpu.step()
        assert exc.value.access == "exec"
        handled = runtime.handle_fault(kernel, proc, cpu, exc.value)
        assert handled
        assert cpu.pc == runtime.fault_table.lookup(p1_addr)
        assert runtime.stats.smile_segv_recoveries == 1

    def test_fallback_to_traps_without_pair(self):
        """No preceding data-access pair: the paper predicts increased
        reliance on trap-based trampolines (§3.3)."""
        b = ProgramBuilder("nopair")
        b.add_words("buf", [1, 2] + [0] * 8)
        b.set_text("""
_start:
    li a2, {buf}
    li a1, 2
    vsetvli t0, a1, e64
    vle64.v v1, (a2)
    vse64.v v1, (a2)
    li a7, 93
    li a0, 0
    ecall
""")
        binary = b.build()
        patcher = ChbpPatcher(binary, RV64GC, smile_register="data-pointer",
                              enable_upgrades=False)
        out = patcher.patch()
        assert patcher.stats.trampolines == 0
        assert patcher.stats.trap_fallbacks >= 1
        # ... and the trap path still runs correctly.
        kernel = Kernel()
        ChimeraRuntime(out).install(kernel)
        res = kernel.run(make_process(out), Core(0, RV64GC))
        assert res.ok
