"""Wire protocol for the batch translation service.

Newline-delimited JSON, one message per line, over a local stream
(unix socket or TCP on localhost).  Requests carry an ``op``:

* ``submit`` — one rewrite job: ``{"op": "submit", "id": <client job
  id>, "workload": <name>}`` or ``{"op": "submit", "id": ..., "path":
  <.self file>}``, plus optional ``target`` / ``scale`` / ``variant`` /
  ``seed`` / ``oracle_trials`` / ``deadline_ms`` (an end-to-end time
  budget: the job dies as a structured ``job-deadline-exceeded`` fault
  once it expires, whether queued, coalesced, or mid-verification);
* ``stats`` — service counters snapshot (dedup, shard hit/miss, queue
  depth, quarantines);
* ``ping`` — liveness probe;
* ``shutdown`` — graceful stop (the service is a localhost, same-user
  surface; there is no auth layer to bypass).

Responses are tagged with ``event``: ``accepted`` (job admitted, carries
the release key and shard), ``progress`` (stage transitions and settled
region counts while the pipeline runs), ``result`` (terminal: carries
``report_json``, the ledger **verbatim** as ``repro verify`` would write
it), ``error`` (terminal: a structured
:class:`~repro.resilience.failures.JobFault`, never a traceback),
``stats`` / ``pong`` / ``bye``.

``report_json`` byte-identity is the protocol's core promise: the
server serializes each ledger once through
:meth:`~repro.verify.report.VerifyReport.to_json` and clients write it
to disk untouched, so a fleet campaign's artifacts diff clean against
serial local verification.
"""

from __future__ import annotations

import json
from typing import Optional

#: Protocol/schema tag sent in every hello and manifest.
PROTOCOL = "repro.service/v1"

#: One message may not exceed this many bytes on the wire — a ledger
#: for a large synthetic binary is ~1 MB; 64 MB is a generous ceiling
#: that still refuses a runaway (or hostile) line before it eats RAM.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

REQUEST_OPS = ("submit", "stats", "ping", "shutdown")
EVENTS = ("hello", "accepted", "progress", "result", "error", "stats",
          "pong", "bye")


class ProtocolError(ValueError):
    """A malformed frame or an out-of-contract message.

    Parse-level errors (bad JSON, non-object frames, invalid submits)
    are *recoverable*: ``readuntil`` consumed through the newline, so
    the stream is still frame-synchronized and the server answers with
    a structured error event and keeps reading.  Only
    :class:`FrameTooLargeError` tears the connection down — past the
    frame ceiling there is no trustworthy resynchronization point.
    """


class FrameTooLargeError(ProtocolError):
    """A frame crossed :data:`MAX_MESSAGE_BYTES` — connection-fatal."""


def encode_message(message: dict) -> bytes:
    """One wire frame: canonical JSON + newline."""
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be an object, got "
                            f"{type(message).__name__}")
    frame = json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n"
    data = frame.encode("utf-8")
    if len(data) > MAX_MESSAGE_BYTES:
        raise FrameTooLargeError(
            f"message of {len(data)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame limit")
    return data


def decode_message(line: bytes) -> dict:
    if len(line) > MAX_MESSAGE_BYTES:
        raise FrameTooLargeError(f"frame of {len(line)} bytes exceeds the "
                                 f"{MAX_MESSAGE_BYTES}-byte limit")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"frame must decode to an object, got "
                            f"{type(message).__name__}")
    return message


async def write_message(writer, message: dict) -> None:
    """Send one frame (asyncio StreamWriter)."""
    writer.write(encode_message(message))
    await writer.drain()


async def read_message(reader) -> Optional[dict]:
    """Receive one frame; None on clean EOF.

    Streams must be opened with ``limit=MAX_MESSAGE_BYTES`` (both ends
    of this package do) — asyncio's default 64 KiB line limit is far
    below a large binary's ledger.
    """
    import asyncio

    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection dropped mid-frame") from None
    except asyncio.LimitOverrunError:
        raise FrameTooLargeError(
            f"frame exceeds the {MAX_MESSAGE_BYTES}-byte limit") from None
    return decode_message(line)


def validate_submit(message: dict) -> dict:
    """Check a submit request; returns the normalized job fields.

    Raises :class:`ProtocolError` with a one-line reason — the server
    turns that into a structured ``job-rejected`` fault, so a malformed
    submit can never crash a connection handler.
    """
    if message.get("op") != "submit":
        raise ProtocolError(f"not a submit message: op={message.get('op')!r}")
    job_id = message.get("id")
    if not isinstance(job_id, str) or not job_id:
        raise ProtocolError("submit requires a non-empty string 'id'")
    workload = message.get("workload")
    path = message.get("path")
    if bool(workload) == bool(path):
        raise ProtocolError(
            "submit requires exactly one of 'workload' or 'path'")
    spec = {
        "id": job_id,
        "workload": workload,
        "path": path,
        "target": message.get("target", "rv64gc"),
        "variant": message.get("variant", "ext"),
        "scale": message.get("scale", 128),
        "seed": message.get("seed"),
        "oracle_trials": message.get("oracle_trials", 2),
        "deadline_ms": message.get("deadline_ms"),
    }
    for field, kinds in (("target", str), ("variant", str)):
        if not isinstance(spec[field], kinds):
            raise ProtocolError(f"submit field {field!r} must be a string")
    for field in ("scale", "oracle_trials"):
        if not isinstance(spec[field], int) or spec[field] < 1:
            raise ProtocolError(
                f"submit field {field!r} must be a positive integer")
    if spec["seed"] is not None and not isinstance(spec["seed"], int):
        raise ProtocolError("submit field 'seed' must be an integer or null")
    deadline = spec["deadline_ms"]
    if deadline is not None and (
            not isinstance(deadline, int) or isinstance(deadline, bool)
            or deadline < 1):
        raise ProtocolError(
            "submit field 'deadline_ms' must be a positive integer or null")
    return spec
