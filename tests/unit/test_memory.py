"""Address-space and permission tests."""

import pytest

from repro.elf.binary import Perm
from repro.sim.faults import SegmentationFault
from repro.sim.memory import AddressSpace, MemorySegment


def space_with(perm: Perm, base=0x1000, size=64) -> AddressSpace:
    s = AddressSpace()
    s.map("seg", base, size, perm)
    return s


class TestMapping:
    def test_overlap_rejected(self):
        s = AddressSpace()
        s.map("a", 0x1000, 64, Perm.RW)
        with pytest.raises(ValueError):
            s.map("b", 0x1020, 64, Perm.RW)

    def test_segment_lookup(self):
        s = space_with(Perm.RW)
        assert s.segment_at(0x1000) is not None
        assert s.segment_at(0x0FFF) is None
        assert s.segment_named("seg").base == 0x1000
        with pytest.raises(KeyError):
            s.segment_named("zzz")

    def test_shared_backing(self):
        backing = bytearray(32)
        s1 = AddressSpace()
        s2 = AddressSpace()
        s1.map_segment(MemorySegment("d", 0x0, backing, Perm.RW))
        s2.map_segment(MemorySegment("d", 0x0, backing, Perm.RW))
        s1.write(0, b"\x07")
        assert s2.read(0, 1) == b"\x07"


class TestPermissions:
    def test_read_requires_r(self):
        s = AddressSpace()
        s.map("x", 0, 16, Perm.W)
        with pytest.raises(SegmentationFault) as e:
            s.read(0, 1)
        assert e.value.access == "read"

    def test_write_requires_w(self):
        s = space_with(Perm.R)
        with pytest.raises(SegmentationFault) as e:
            s.write(0x1000, b"a")
        assert e.value.access == "write"

    def test_exec_requires_x(self):
        s = space_with(Perm.RW)
        with pytest.raises(SegmentationFault) as e:
            s.fetch(0x1000, 4)
        assert e.value.access == "exec"

    def test_unmapped_faults(self):
        s = space_with(Perm.RW)
        with pytest.raises(SegmentationFault):
            s.read(0x9999, 1)

    def test_straddling_end_faults(self):
        s = space_with(Perm.RW, size=8)
        with pytest.raises(SegmentationFault):
            s.read(0x1006, 4)


class TestTypedAccess:
    def test_u64_roundtrip(self):
        s = space_with(Perm.RW)
        s.write_u64(0x1008, 0x1122334455667788)
        assert s.read_u64(0x1008) == 0x1122334455667788

    def test_u32_roundtrip(self):
        s = space_with(Perm.RW)
        s.write_u32(0x1004, 0xCAFEBABE)
        assert s.read_u32(0x1004) == 0xCAFEBABE

    def test_u64_wraps_negative(self):
        s = space_with(Perm.RW)
        s.write_u64(0x1000, -1)
        assert s.read_u64(0x1000) == 2**64 - 1


class TestKernelPatching:
    def test_patch_code_ignores_w_and_bumps_version(self):
        s = space_with(Perm.RX)
        seg = s.segment_named("seg")
        v0 = seg.version
        s.patch_code(0x1000, b"\x13\x00\x00\x00")
        assert seg.version == v0 + 1
        assert s.fetch(0x1000, 4) == b"\x13\x00\x00\x00"

    def test_patch_outside_faults(self):
        s = space_with(Perm.RX)
        with pytest.raises(SegmentationFault):
            s.patch_code(0x2000, b"\x00")
