"""In-memory executable image: sections, symbols, permissions."""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional


class Perm(enum.Flag):
    """Segment permissions.  The OS refusing to execute data (W without X)
    is what turns a partial SMILE execution into a deterministic fault."""

    NONE = 0
    R = enum.auto()
    W = enum.auto()
    X = enum.auto()
    RX = R | X
    RW = R | W


@dataclass
class Symbol:
    """A named address; ``kind`` is ``"func"``, ``"object"`` or ``"label"``."""

    name: str
    addr: int
    size: int = 0
    kind: str = "label"


@dataclass
class Section:
    """A contiguous, addressed, permissioned byte region."""

    name: str
    addr: int
    data: bytearray
    perm: Perm

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.addr + len(self.data)

    def contains(self, addr: int) -> bool:
        """True if *addr* falls inside this section."""
        return self.addr <= addr < self.end

    def read(self, addr: int, size: int) -> bytes:
        """Read *size* bytes at absolute address *addr*."""
        off = addr - self.addr
        if off < 0 or off + size > len(self.data):
            raise ValueError(f"read [{addr:#x},+{size}) outside section {self.name}")
        return bytes(self.data[off:off + size])

    def write(self, addr: int, data: bytes) -> None:
        """Write *data* at absolute address *addr*."""
        off = addr - self.addr
        if off < 0 or off + len(data) > len(self.data):
            raise ValueError(f"write [{addr:#x},+{len(data)}) outside section {self.name}")
        self.data[off:off + len(data)] = data


class Binary:
    """An executable image: named sections, symbols, entry point, gp.

    ``global_pointer`` is the link-time value of ``__global_pointer$``;
    the loader seeds the ``gp`` register with it and the rewriter uses
    it when building SMILE trampolines and gp-restore sequences.
    """

    def __init__(
        self,
        name: str,
        entry: int = 0,
        global_pointer: int = 0,
        sections: Optional[Iterable[Section]] = None,
        symbols: Optional[Iterable[Symbol]] = None,
    ):
        self.name = name
        self.entry = entry
        self.global_pointer = global_pointer
        self.sections: list[Section] = list(sections or [])
        self.symbols: dict[str, Symbol] = {s.name: s for s in (symbols or [])}
        #: Free-form metadata rewriters attach (stats, fault tables, ...).
        self.metadata: dict[str, object] = {}

    # -- sections --------------------------------------------------------

    def add_section(self, section: Section) -> Section:
        """Append *section*, refusing address overlaps."""
        for existing in self.sections:
            if section.addr < existing.end and existing.addr < section.addr + section.size:
                raise ValueError(
                    f"section {section.name} [{section.addr:#x},{section.addr + section.size:#x}) "
                    f"overlaps {existing.name}"
                )
        self.sections.append(section)
        return section

    def section(self, name: str) -> Section:
        """Look a section up by name; raises ``KeyError`` if absent."""
        for s in self.sections:
            if s.name == name:
                return s
        raise KeyError(f"no section named {name!r} in {self.name}")

    def has_section(self, name: str) -> bool:
        """True if a section with *name* exists."""
        return any(s.name == name for s in self.sections)

    def section_at(self, addr: int) -> Optional[Section]:
        """Return the section containing *addr*, or ``None``."""
        for s in self.sections:
            if s.contains(addr):
                return s
        return None

    @property
    def text(self) -> Section:
        """The primary code section."""
        return self.section(".text")

    @property
    def data(self) -> Section:
        """The primary data section."""
        return self.section(".data")

    def read(self, addr: int, size: int) -> bytes:
        """Read bytes from whichever section holds *addr*."""
        s = self.section_at(addr)
        if s is None:
            raise ValueError(f"address {addr:#x} not mapped in {self.name}")
        return s.read(addr, size)

    # -- symbols -----------------------------------------------------------

    def add_symbol(self, name: str, addr: int, size: int = 0, kind: str = "label") -> Symbol:
        """Define (or redefine) a symbol."""
        sym = Symbol(name, addr, size, kind)
        self.symbols[name] = sym
        return sym

    def symbol(self, name: str) -> Symbol:
        """Look a symbol up by name."""
        return self.symbols[name]

    def symbol_addr(self, name: str) -> int:
        """Address of symbol *name*."""
        return self.symbols[name].addr

    # -- misc --------------------------------------------------------------

    def clone(self, name: Optional[str] = None) -> "Binary":
        """Deep-copy this image (rewriters patch the copy, never the original)."""
        out = Binary(
            name or f"{self.name}.rewritten",
            entry=self.entry,
            global_pointer=self.global_pointer,
        )
        out.sections = [
            Section(s.name, s.addr, bytearray(s.data), s.perm) for s in self.sections
        ]
        out.symbols = copy.deepcopy(self.symbols)
        out.metadata = copy.deepcopy({k: v for k, v in self.metadata.items() if _copyable(v)})
        return out

    def total_code_size(self) -> int:
        """Total bytes in executable sections."""
        return sum(s.size for s in self.sections if Perm.X in s.perm)

    def __repr__(self) -> str:
        secs = ", ".join(f"{s.name}@{s.addr:#x}+{s.size:#x}" for s in self.sections)
        return f"<Binary {self.name} entry={self.entry:#x} [{secs}]>"


def _copyable(value: object) -> bool:
    """Filter metadata values that are plain data (deep-copy safe)."""
    return isinstance(value, (int, float, str, bytes, list, dict, tuple, set, frozenset, type(None)))
