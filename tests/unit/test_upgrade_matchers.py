"""Upgrade (and loop-downgrade) pattern matcher tests."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.liveness import LivenessAnalysis
from repro.analysis.scan import RecursiveScanner
from repro.core.downgrade_loops import find_downgrade_loop_sites
from repro.core.upgrade import find_upgrade_sites
from repro.elf.builder import ProgramBuilder
from repro.isa.extensions import RV64GC, RV64GCV


def analyze(text: str, data=None):
    b = ProgramBuilder("t")
    for k, v in (data or {"buf": [0] * 32}).items():
        b.add_words(k, v)
    b.set_text(text)
    binary = b.build()
    scan = RecursiveScanner().scan(binary)
    cfg = build_cfg(scan)
    live = LivenessAnalysis(cfg).run()
    return binary, scan, cfg, live


MAP_LOOP = """
_start:
    li a0, {buf}
    li a1, {buf}
    li a2, {buf}
    li a3, 8
map:
    ld t0, 0(a0)
    ld t1, 0(a1)
    add t2, t0, t1
    sd t2, 0(a2)
    addi a0, a0, 8
    addi a1, a1, 8
    addi a2, a2, 8
    addi a3, a3, -1
    bnez a3, map
    li a7, 93
    li a0, 0
    ecall
"""

DOT_LOOP = """
_start:
    li a0, {buf}
    li a1, {buf}
    li a3, 8
    li a4, 0
dot:
    ld t0, 0(a0)
    ld t1, 0(a1)
    mul t2, t0, t1
    add a4, a4, t2
    addi a0, a0, 8
    addi a1, a1, 8
    addi a3, a3, -1
    bnez a3, dot
    mv a1, a4
    li a7, 93
    li a0, 0
    ecall
"""


class TestUpgradeMatchers:
    def test_map_loop_matched(self):
        binary, scan, cfg, live = analyze(MAP_LOOP)
        sites = find_upgrade_sites(scan, cfg, live, RV64GCV)
        kinds = [s.kind for s in sites]
        assert "vec-map" in kinds

    def test_dot_loop_matched(self):
        binary, scan, cfg, live = analyze(DOT_LOOP)
        sites = find_upgrade_sites(scan, cfg, live, RV64GCV)
        assert [s.kind for s in sites] == ["vec-dot"]

    def test_no_upgrades_for_base_target(self):
        binary, scan, cfg, live = analyze(MAP_LOOP)
        assert find_upgrade_sites(scan, cfg, live, RV64GC) == []

    def test_zba_fusion_matched(self):
        binary, scan, cfg, live = analyze("""
_start:
    slli t0, a1, 2
    add a0, t0, a2
    li a7, 93
    ecall
""")
        sites = find_upgrade_sites(scan, cfg, live, RV64GCV)
        assert [s.kind for s in sites] == ["zba"]
        assert "sh2add" in sites[0].replacement_asm

    def test_zba_rejected_when_temp_live(self):
        binary, scan, cfg, live = analyze("""
_start:
    slli t0, a1, 2
    add a0, t0, a2
    add a1, a1, t0
    li a7, 93
    li a0, 0
    ecall
""")
        sites = find_upgrade_sites(scan, cfg, live, RV64GCV)
        assert all(s.kind != "zba" for s in sites)

    def test_map_rejected_when_temp_live_after(self):
        text = MAP_LOOP.replace("    li a7, 93", "    mv a5, t2\n    li a7, 93")
        binary, scan, cfg, live = analyze(text)
        sites = find_upgrade_sites(scan, cfg, live, RV64GCV)
        assert all(s.kind != "vec-map" for s in sites)

    def test_map_rejected_wrong_stride(self):
        text = MAP_LOOP.replace("addi a0, a0, 8", "addi a0, a0, 16")
        binary, scan, cfg, live = analyze(text)
        sites = find_upgrade_sites(scan, cfg, live, RV64GCV)
        assert all(s.kind != "vec-map" for s in sites)

    def test_copy_loop_matched_and_accelerates(self):
        from repro.harness import run_chimera, run_native
        from repro.workloads.programs import MemcpyWorkload

        binary = MemcpyWorkload().build("base")
        nat = run_native(binary, RV64GC)
        up = run_chimera(binary, RV64GCV)
        assert up.ok
        assert up.rewrite_stats["upgrade_sites"] == 1
        assert up.cycles < nat.cycles

    def test_copy_loop_matcher_shape(self):
        binary, scan, cfg, live = analyze("""
_start:
    li a0, {buf}
    li a2, {buf}
    li a3, 8
cp:
    ld t0, 0(a0)
    sd t0, 0(a2)
    addi a0, a0, 8
    addi a2, a2, 8
    addi a3, a3, -1
    bnez a3, cp
    li a7, 93
    li a0, 0
    ecall
""")
        sites = find_upgrade_sites(scan, cfg, live, RV64GCV)
        assert any(s.kind == "vec-copy" for s in sites)

    def test_copy_loop_rejected_if_value_live_after(self):
        binary, scan, cfg, live = analyze("""
_start:
    li a0, {buf}
    li a2, {buf}
    li a3, 8
cp:
    ld t0, 0(a0)
    sd t0, 0(a2)
    addi a0, a0, 8
    addi a2, a2, 8
    addi a3, a3, -1
    bnez a3, cp
    mv a4, t0
    li a7, 93
    li a0, 0
    ecall
""")
        sites = find_upgrade_sites(scan, cfg, live, RV64GCV)
        assert all(s.kind != "vec-copy" for s in sites)

    def test_upgraded_semantics_equivalent(self):
        """Full pipeline check: upgraded binary computes the same map."""
        from repro.elf.loader import make_process
        from repro.core.rewriter import ChimeraRewriter
        from repro.core.runtime import ChimeraRuntime
        from repro.sim.machine import Core, Kernel

        b = ProgramBuilder("m")
        b.add_words("x", list(range(10, 18)))
        b.add_words("y", list(range(1, 9)))
        b.add_words("z", [0] * 8)
        b.set_text(MAP_LOOP.replace("{buf}", "{x}", 1)
                   .replace("{buf}", "{y}", 1)
                   .replace("{buf}", "{z}", 1))
        binary = b.build()
        rewriter = ChimeraRewriter()
        result = rewriter.rewrite(binary, RV64GCV)
        assert result.stats.upgrade_sites == 1
        proc = make_process(result.binary)
        kernel = Kernel()
        ChimeraRuntime(result.binary).install(kernel)
        res = kernel.run(proc, Core(0, RV64GCV))
        assert res.exit_code == 0 and res.fault is None
        z = binary.symbol_addr("z")
        got = [proc.space.read_u64(z + 8 * i) for i in range(8)]
        assert got == [11, 13, 15, 17, 19, 21, 23, 25]


VEC_MAP_EXT = """
_start:
    li a0, {x}
    li a1, {y}
    li a2, {z}
    li a3, 8
vloop:
    vsetvli t0, a3, e64
    vle64.v v1, (a0)
    vle64.v v2, (a1)
    vadd.vv v3, v1, v2
    vse64.v v3, (a2)
    slli t1, t0, 3
    add a0, a0, t1
    add a1, a1, t1
    add a2, a2, t1
    sub a3, a3, t0
    bnez a3, vloop
    li a7, 93
    li a0, 0
    ecall
"""


class TestDowngradeLoopMatchers:
    def _analyze_ext(self):
        b = ProgramBuilder("v")
        b.add_words("x", list(range(8)))
        b.add_words("y", list(range(8)))
        b.add_words("z", [0] * 8)
        b.set_text(VEC_MAP_EXT)
        binary = b.build()
        scan = RecursiveScanner().scan(binary)
        cfg = build_cfg(scan)
        live = LivenessAnalysis(cfg).run()
        return binary, scan, cfg, live

    def test_map_loop_downgrade_matched(self):
        binary, scan, cfg, live = self._analyze_ext()
        sites = find_downgrade_loop_sites(scan, cfg, live, RV64GC)
        assert [s.kind for s in sites] == ["down-map"]
        assert sites[0].entry_policy == "restart-head"

    def test_not_matched_when_target_has_vector(self):
        binary, scan, cfg, live = self._analyze_ext()
        assert find_downgrade_loop_sites(scan, cfg, live, RV64GCV) == []

    def test_interior_jump_blocks_match(self):
        """A static branch into the loop interior must reject the match."""
        text = VEC_MAP_EXT.replace(
            "_start:",
            "_start:\n    beqz a4, mid\n"
        ).replace(
            "    vle64.v v2, (a1)",
            "mid:\n    vle64.v v2, (a1)"
        )
        b = ProgramBuilder("v")
        b.add_words("x", [0] * 8)
        b.add_words("y", [0] * 8)
        b.add_words("z", [0] * 8)
        b.set_text(text)
        binary = b.build()
        scan = RecursiveScanner().scan(binary)
        cfg = build_cfg(scan)
        live = LivenessAnalysis(cfg).run()
        sites = find_downgrade_loop_sites(scan, cfg, live, RV64GC)
        assert sites == []

    def test_dot_full_region_matched(self):
        from repro.workloads.programs import DotProductWorkload

        binary = DotProductWorkload().build("ext")
        scan = RecursiveScanner().scan(binary)
        cfg = build_cfg(scan)
        live = LivenessAnalysis(cfg).run()
        sites = find_downgrade_loop_sites(scan, cfg, live, RV64GC)
        assert any(s.kind == "down-dot" for s in sites)
        dot = next(s for s in sites if s.kind == "down-dot")
        assert len(dot.instructions) == 21  # init(2) + loop(9) + tail(10)

    def test_memcpy_matched(self):
        from repro.workloads.programs import MemcpyWorkload

        binary = MemcpyWorkload().build("ext")
        scan = RecursiveScanner().scan(binary)
        cfg = build_cfg(scan)
        live = LivenessAnalysis(cfg).run()
        sites = find_downgrade_loop_sites(scan, cfg, live, RV64GC)
        assert any(s.kind == "down-memcpy" for s in sites)

    def test_dot_with_vmv_x_s_tail_matched_and_correct(self):
        """The compact vmv.x.s reduction idiom is matched and its scalar
        replacement computes the same dot product."""
        b = ProgramBuilder("vx")
        n = 10
        xs = list(range(1, n + 1))
        ys = list(range(5, 5 + n))
        b.add_words("x", xs)
        b.add_words("y", ys)
        b.add_words("out", [0])
        b.set_text(f"""
_start:
    li a0, {{x}}
    li a1, {{y}}
    li a3, {n}
    li a4, 0
    vsetvli t0, zero, e64
    vmv.v.i v1, 0
vd:
    vsetvli t0, a3, e64
    vle64.v v2, (a0)
    vle64.v v3, (a1)
    vmacc.vv v1, v2, v3
    slli t1, t0, 3
    add a0, a0, t1
    add a1, a1, t1
    sub a3, a3, t0
    bnez a3, vd
    vsetvli t0, zero, e64
    vmv.v.i v2, 0
    vredsum.vs v3, v1, v2
    vmv.x.s t1, v3
    add a4, a4, t1
    li t0, {{out}}
    sd a4, 0(t0)
    li a7, 93
    li a0, 0
    ecall
""")
        binary = b.build()
        scan = RecursiveScanner().scan(binary)
        cfg = build_cfg(scan)
        live = LivenessAnalysis(cfg).run()
        sites = find_downgrade_loop_sites(scan, cfg, live, RV64GC)
        assert [s.kind for s in sites] == ["down-dot"]
        assert len(sites[0].instructions) == 2 + 9 + 5

        from repro.core.rewriter import ChimeraRewriter
        from repro.core.runtime import ChimeraRuntime
        from repro.elf.loader import make_process
        from repro.sim.machine import Core, Kernel

        result = ChimeraRewriter().rewrite(binary, RV64GC)
        kernel = Kernel()
        ChimeraRuntime(result.binary).install(kernel)
        proc = make_process(result.binary)
        res = kernel.run(proc, Core(0, RV64GC))
        assert res.ok, res.fault
        expected = sum(a * b for a, b in zip(xs, ys))
        assert proc.space.read_u64(binary.symbol_addr("out")) == expected
