"""Interpreter semantics: each instruction class against a Python model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.elf.binary import Perm
from repro.isa.assembler import assemble
from repro.isa.extensions import RV64GC, RV64GCV
from repro.isa.fields import sign_extend
from repro.sim.cpu import Cpu
from repro.sim.faults import (
    BreakpointTrap,
    EcallTrap,
    IllegalInstructionFault,
    SegmentationFault,
)
from repro.sim.memory import AddressSpace

U64 = st.integers(min_value=0, max_value=2**64 - 1)
MASK = 2**64 - 1


def make_cpu(asm: str, *, profile=RV64GCV, data_size=4096) -> Cpu:
    p = assemble(asm + "\nebreak\n", base=0x1000)
    space = AddressSpace()
    space.map(".text", 0x1000, bytearray(p.code), Perm.RX)
    space.map(".data", 0x8000, data_size, Perm.RW)
    cpu = Cpu(space, profile)
    cpu.pc = 0x1000
    return cpu


def run_to_break(cpu: Cpu, limit: int = 10_000) -> Cpu:
    try:
        for _ in range(limit):
            cpu.step()
        raise AssertionError("program did not reach ebreak")
    except BreakpointTrap:
        return cpu


def _s(v):
    return v - 2**64 if v >> 63 else v


class TestIntegerALU:
    @given(U64, U64)
    @settings(max_examples=30)
    def test_add_sub(self, a, b):
        cpu = make_cpu("add a2, a0, a1\nsub a3, a0, a1")
        cpu.set_reg(10, a)
        cpu.set_reg(11, b)
        run_to_break(cpu)
        assert cpu.get_reg(12) == (a + b) & MASK
        assert cpu.get_reg(13) == (a - b) & MASK

    @given(U64, U64)
    @settings(max_examples=30)
    def test_logic(self, a, b):
        cpu = make_cpu("and a2, a0, a1\nor a3, a0, a1\nxor a4, a0, a1")
        cpu.set_reg(10, a)
        cpu.set_reg(11, b)
        run_to_break(cpu)
        assert cpu.get_reg(12) == a & b
        assert cpu.get_reg(13) == a | b
        assert cpu.get_reg(14) == a ^ b

    @given(U64, st.integers(min_value=0, max_value=63))
    @settings(max_examples=30)
    def test_shifts(self, a, sh):
        cpu = make_cpu(f"slli a2, a0, {sh}\nsrli a3, a0, {sh}\nsrai a4, a0, {sh}")
        cpu.set_reg(10, a)
        run_to_break(cpu)
        assert cpu.get_reg(12) == (a << sh) & MASK
        assert cpu.get_reg(13) == a >> sh
        assert cpu.get_reg(14) == (_s(a) >> sh) & MASK

    @given(U64, U64)
    @settings(max_examples=30)
    def test_slt(self, a, b):
        cpu = make_cpu("slt a2, a0, a1\nsltu a3, a0, a1")
        cpu.set_reg(10, a)
        cpu.set_reg(11, b)
        run_to_break(cpu)
        assert cpu.get_reg(12) == (1 if _s(a) < _s(b) else 0)
        assert cpu.get_reg(13) == (1 if a < b else 0)

    @given(U64, U64)
    @settings(max_examples=30)
    def test_word_ops_sign_extend(self, a, b):
        cpu = make_cpu("addw a2, a0, a1\nsubw a3, a0, a1")
        cpu.set_reg(10, a)
        cpu.set_reg(11, b)
        run_to_break(cpu)
        assert cpu.get_reg(12) == sign_extend((a + b) & 0xFFFFFFFF, 32) & MASK
        assert cpu.get_reg(13) == sign_extend((a - b) & 0xFFFFFFFF, 32) & MASK

    def test_x0_is_hardwired(self):
        cpu = make_cpu("addi zero, zero, 5\nadd a0, zero, zero")
        run_to_break(cpu)
        assert cpu.get_reg(0) == 0
        assert cpu.get_reg(10) == 0


class TestMulDiv:
    @given(U64, U64)
    @settings(max_examples=30)
    def test_mul_and_high_parts(self, a, b):
        cpu = make_cpu("mul a2, a0, a1\nmulhu a3, a0, a1\nmulh a4, a0, a1")
        cpu.set_reg(10, a)
        cpu.set_reg(11, b)
        run_to_break(cpu)
        assert cpu.get_reg(12) == (a * b) & MASK
        assert cpu.get_reg(13) == (a * b) >> 64
        assert cpu.get_reg(14) == ((_s(a) * _s(b)) >> 64) & MASK

    @given(U64, U64)
    @settings(max_examples=30)
    def test_div_rem_signed(self, a, b):
        cpu = make_cpu("div a2, a0, a1\nrem a3, a0, a1")
        cpu.set_reg(10, a)
        cpu.set_reg(11, b)
        run_to_break(cpu)
        sa, sb = _s(a), _s(b)
        if sb == 0:
            assert cpu.get_reg(12) == MASK
            assert cpu.get_reg(13) == a
        elif sa == -(2**63) and sb == -1:
            assert cpu.get_reg(12) == a
            assert cpu.get_reg(13) == 0
        else:
            q = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                q = -q
            r = sa - sb * q
            assert cpu.get_reg(12) == q & MASK
            assert cpu.get_reg(13) == r & MASK

    def test_divu_by_zero(self):
        cpu = make_cpu("divu a2, a0, a1\nremu a3, a0, a1")
        cpu.set_reg(10, 77)
        run_to_break(cpu)
        assert cpu.get_reg(12) == MASK
        assert cpu.get_reg(13) == 77


class TestZba:
    @given(U64, U64)
    @settings(max_examples=20)
    def test_shadd(self, a, b):
        cpu = make_cpu("sh1add a2, a0, a1\nsh2add a3, a0, a1\nsh3add a4, a0, a1")
        cpu.set_reg(10, a)
        cpu.set_reg(11, b)
        run_to_break(cpu)
        assert cpu.get_reg(12) == ((a << 1) + b) & MASK
        assert cpu.get_reg(13) == ((a << 2) + b) & MASK
        assert cpu.get_reg(14) == ((a << 3) + b) & MASK


class TestMemory:
    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    @settings(max_examples=20)
    def test_store_load_widths(self, value):
        cpu = make_cpu(
            "li t0, 0x8000\n"
            "sw a0, 0(t0)\nlw a1, 0(t0)\nlwu a2, 0(t0)\n"
            "sd a0, 8(t0)\nld a3, 8(t0)\n"
        )
        cpu.set_reg(10, value & MASK)
        run_to_break(cpu)
        assert cpu.get_reg(11) == sign_extend(value & 0xFFFFFFFF, 32) & MASK
        assert cpu.get_reg(12) == value & 0xFFFFFFFF
        assert cpu.get_reg(13) == value & MASK

    def test_byte_halfword(self):
        cpu = make_cpu(
            "li t0, 0x8000\nli a0, 0x1FF\n"
            "sb a0, 0(t0)\nlb a1, 0(t0)\nlbu a2, 0(t0)\n"
            "sh a0, 2(t0)\nlh a3, 2(t0)\nlhu a4, 2(t0)\n"
        )
        run_to_break(cpu)
        assert cpu.get_reg(11) == MASK  # 0xFF sign-extends to -1
        assert cpu.get_reg(12) == 0xFF
        assert cpu.get_reg(13) == 0x1FF
        assert cpu.get_reg(14) == 0x1FF


class TestControlFlow:
    def test_branch_taken_and_not(self):
        cpu = make_cpu(
            "li a0, 1\nbeqz a0, bad\nli a1, 7\nj out\nbad:\nli a1, 9\nout:\n"
        )
        run_to_break(cpu)
        assert cpu.get_reg(11) == 7

    def test_jal_links(self):
        cpu = make_cpu("jal a0, next\nnext:\n")
        run_to_break(cpu)
        assert cpu.get_reg(10) == 0x1004

    def test_jalr_clears_low_bit(self):
        # li expands to 8 bytes, so the jalr sits at 0x1008 and the next
        # instruction at 0x100c; target 0x100d clears its low bit.
        cpu = make_cpu("li t0, 0x100d\njalr a0, 0(t0)\nnop\nnop\n")
        run_to_break(cpu)
        assert cpu.get_reg(10) == 0x100c  # link = jalr addr + 4

    def test_fault_leaves_pc_on_faulting_instruction(self):
        cpu = make_cpu("li t0, 0x8000\njr t0\n")
        with pytest.raises(SegmentationFault) as exc:
            run_to_break(cpu)
        assert exc.value.access == "exec"
        assert cpu.pc == 0x8000


class TestExtensionGating:
    def test_vector_on_base_core_faults(self):
        cpu = make_cpu("vsetvli t0, a0, e64", profile=RV64GC)
        with pytest.raises(IllegalInstructionFault) as exc:
            run_to_break(cpu)
        assert exc.value.kind == "unsupported-extension"

    def test_zba_on_base_core_faults(self):
        cpu = make_cpu("sh1add a0, a1, a2", profile=RV64GC)
        with pytest.raises(IllegalInstructionFault) as exc:
            run_to_break(cpu)
        assert exc.value.kind == "unsupported-extension"

    def test_ecall_raises_with_pc(self):
        cpu = make_cpu("nop\necall")
        with pytest.raises(EcallTrap) as exc:
            run_to_break(cpu)
        assert exc.value.pc == 0x1004


class TestVectorSemantics:
    def test_strip_mine_vl(self):
        cpu = make_cpu("li a0, 9\nvsetvli t0, a0, e64")
        run_to_break(cpu)
        assert cpu.get_reg(5) == 4  # VLEN=256, SEW=64 -> VLMAX=4

    def test_vsetvli_rs1_x0_gives_vlmax(self):
        cpu = make_cpu("vsetvli t0, zero, e32")
        run_to_break(cpu)
        assert cpu.get_reg(5) == 8

    def test_vector_load_compute_store(self):
        cpu = make_cpu(
            "li t0, 0x8000\nli a0, 4\n"
            "vsetvli a1, a0, e64\n"
            "li a2, 3\nsd a2, 0(t0)\nli a2, 5\nsd a2, 8(t0)\n"
            "li a2, 7\nsd a2, 16(t0)\nli a2, 11\nsd a2, 24(t0)\n"
            "vle64.v v1, (t0)\n"
            "vmul.vv v2, v1, v1\n"
            "li t1, 0x8100\nvse64.v v2, (t1)\n"
        )
        run_to_break(cpu)
        got = [cpu.space.read_u64(0x8100 + 8 * i) for i in range(4)]
        assert got == [9, 25, 49, 121]

    def test_vmacc_accumulates(self):
        cpu = make_cpu(
            "li a0, 2\nvsetvli t0, a0, e64\n"
            "li a1, 3\nvmv.v.x v1, a1\n"
            "li a1, 4\nvmv.v.x v2, a1\n"
            "vmv.v.i v3, 1\n"
            "vmacc.vv v3, v1, v2\n"
        )
        run_to_break(cpu)
        assert cpu.vector.read_elems(3, 2) == [13, 13]

    def test_vredsum(self):
        cpu = make_cpu(
            "li a0, 4\nvsetvli t0, a0, e64\n"
            "vmv.v.i v1, 5\nvmv.v.i v2, 2\n"
            "vredsum.vs v3, v1, v2\n"
        )
        run_to_break(cpu)
        assert cpu.vector.read_elem(3, 0) == 4 * 5 + 2

    def test_tail_lanes_preserved(self):
        cpu = make_cpu(
            "li a0, 4\nvsetvli t0, a0, e64\nvmv.v.i v1, 9\n"
            "li a0, 2\nvsetvli t0, a0, e64\nvmv.v.i v1, 1\n"
        )
        run_to_break(cpu)
        cpu.vector.set_vl(4, 64)
        assert cpu.vector.read_elems(1, 4) == [1, 1, 9, 9]


class TestDecodeCache:
    def test_cache_invalidated_by_patch(self):
        cpu = make_cpu("addi a0, a0, 1\nnop")
        cpu.step()
        assert cpu.get_reg(10) == 1
        # Patch the first instruction to addi a0, a0, 2 and re-run it.
        from repro.isa.encoding import encode
        from repro.isa.instructions import Instruction

        cpu.space.patch_code(0x1000, encode(Instruction("addi", rd=10, rs1=10, imm=2)))
        cpu.pc = 0x1000
        cpu.step()
        assert cpu.get_reg(10) == 3

    def test_counters_and_instret(self):
        cpu = make_cpu("nop\nnop\nnop")
        run_to_break(cpu)
        assert cpu.instret == 3
        assert cpu.cycles >= 3
