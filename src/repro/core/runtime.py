"""Chimera's runtime fault handling (paper §4.3).

The runtime registers a *priority* fault handler with the simulated
kernel (mirroring the paper's kernel modification: CHBP-generated
signals are checked first, everything else falls back to standard
handling).  It recovers the two deterministic fault shapes SMILE
produces and lazily rewrites unrecognized extension instructions:

* **SIGSEGV, exec access, address in a non-executable data segment** —
  a partially executed SMILE ``jalr`` (P1).  The fault address is the
  return address the jalr wrote into gp, minus 4.  If the fault-handling
  table knows it, restore gp and redirect to the copied instruction.
* **SIGILL at a table key** — a mid-trampoline parcel (P2/P3): redirect.
* **SIGILL, unsupported extension, unknown address** — an instruction
  the static scan missed.  Rewrite it in place at runtime (patch the
  code, extend the tables), flush decode caches, resume.
* **ebreak at a trap-table key** — trap-based trampoline (the fallback
  path and all baseline rewriters): redirect, charging the trap cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.fault_table import FaultTable
from repro.elf.binary import Binary, Perm
from repro.isa.registers import Reg
from repro.sim.cpu import Cpu
from repro.sim.faults import (
    BreakpointTrap,
    IllegalInstructionFault,
    SegmentationFault,
    SimFault,
)
from repro.sim.machine import Kernel, Process


@dataclass
class RuntimeStats:
    """Dynamic fault-handling counters (these feed Table 2)."""

    smile_segv_recoveries: int = 0
    smile_sigill_recoveries: int = 0
    runtime_rewrites: int = 0
    trap_redirects: int = 0
    signals_gp_restored: int = 0

    @property
    def deterministic_faults(self) -> int:
        """Total Chimera correctness-mechanism triggers."""
        return self.smile_segv_recoveries + self.smile_sigill_recoveries + self.runtime_rewrites

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


class ChimeraRuntime:
    """Kernel-side runtime for one rewritten binary."""

    def __init__(self, rewritten: Binary, *, rewriter=None, original: Optional[Binary] = None):
        meta = rewritten.metadata.get("chimera")
        if meta is None:
            raise ValueError(f"{rewritten.name} was not produced by ChimeraRewriter")
        self.binary = rewritten
        self.fault_table: FaultTable = meta["fault_table"]
        self.trap_table: dict[int, int] = meta["trap_table"]
        self.gp_value: int = meta["gp"]
        #: Fig. 5 variant: P1 address -> the general register whose
        #: return-address value identifies the fault (gp otherwise).
        self.smile_regs: dict[int, int] = dict(meta.get("smile_regs", {}))
        self.stats = RuntimeStats()
        #: Optional lazy-rewriting support: the rewriter and the original
        #: binary are needed to translate instructions the scan missed.
        self._rewriter = rewriter
        self._original = original

    # -- installation -------------------------------------------------------

    def install(self, kernel: Kernel) -> None:
        """Register the priority fault handler and the signal gp hook."""
        kernel.register_fault_handler(self.handle_fault, priority=True)
        kernel.pre_signal_hooks.append(self._signal_gp_restore)

    # -- fault handling -------------------------------------------------------

    def handle_fault(self, kernel: Kernel, process: Process, cpu: Cpu, fault: SimFault) -> bool:
        """The priority handler: return True iff the fault was CHBP's."""
        if isinstance(fault, SegmentationFault) and fault.access == "exec":
            return self._handle_segv(kernel, process, cpu, fault)
        if isinstance(fault, IllegalInstructionFault):
            return self._handle_sigill(kernel, process, cpu, fault)
        if isinstance(fault, BreakpointTrap):
            return self._handle_trap(kernel, cpu, fault)
        return False

    def _handle_segv(self, kernel: Kernel, process: Process, cpu: Cpu, fault: SegmentationFault) -> bool:
        # Ours are exec faults into non-executable (or unmapped) memory;
        # the fault-table lookup below is the real discriminator.
        seg = process.space.segment_at(fault.addr)
        if seg is not None and Perm.X in seg.perm:
            return False
        # The jalr stored its return address (trampoline + 8) in gp.
        fault_addr = (cpu.get_reg(Reg.GP) - 4) & 0xFFFFFFFFFFFFFFFF
        redirect = self.fault_table.lookup(fault_addr)
        if redirect is not None:
            cpu.set_reg(Reg.GP, self.gp_value)  # undo the SMILE clobber
            cpu.pc = redirect
            cpu.cycles += cpu.cost.fault_handling_cost
            cpu.bump("chimera_faults")
            self.stats.smile_segv_recoveries += 1
            return True
        # Fig. 5 variant: the return address sits in a general register;
        # probe the armed trampolines' registers (rare path, tiny table).
        for p1_addr, reg in self.smile_regs.items():
            if (cpu.get_reg(reg) - 4) & 0xFFFFFFFFFFFFFFFF == p1_addr:
                redirect = self.fault_table.lookup(p1_addr)
                if redirect is None:
                    continue
                # No restore needed: the block's reconstructed lui
                # redefines the register immediately.
                cpu.pc = redirect
                cpu.cycles += cpu.cost.fault_handling_cost
                cpu.bump("chimera_faults")
                self.stats.smile_segv_recoveries += 1
                return True
        return False

    def _handle_sigill(self, kernel: Kernel, process: Process, cpu: Cpu, fault: IllegalInstructionFault) -> bool:
        redirect = self.fault_table.lookup(cpu.pc)
        if redirect is not None:
            cpu.set_reg(Reg.GP, self.gp_value)
            cpu.pc = redirect
            cpu.cycles += cpu.cost.fault_handling_cost
            cpu.bump("chimera_faults")
            self.stats.smile_sigill_recoveries += 1
            return True
        if fault.kind == "unsupported-extension":
            return self._rewrite_at_runtime(process, cpu)
        return False

    def _handle_trap(self, kernel: Kernel, cpu: Cpu, fault: BreakpointTrap) -> bool:
        target = self.trap_table.get(cpu.pc)
        if target is None:
            return False
        cpu.pc = target
        cpu.cycles += cpu.cost.trap_cost
        cpu.bump("traps")
        self.stats.trap_redirects += 1
        return True

    # -- lazy rewriting -------------------------------------------------------

    def _rewrite_at_runtime(self, process: Process, cpu: Cpu) -> bool:
        """Rewrite an unrecognized source instruction the scan missed.

        Re-runs the patcher with the faulting pc as an extra scan entry;
        splices the new trampolines/blocks into the live address space
        and merges the new tables.  Returns False when the instruction
        is genuinely untranslatable (the fault is not ours).
        """
        if self._rewriter is None or self._original is None:
            return False
        result = self._rewriter.rewrite(
            self._original,
            _profile_by_name(self.binary.metadata["chimera"]["target_profile"]),
            scan_entries=[cpu.pc],
        )
        new = result.binary
        new_meta = new.metadata["chimera"]
        # The re-scan must actually have patched the faulting site --
        # otherwise the instruction is untranslatable and not ours.
        width = min(4, new.text.end - cpu.pc)
        if new.text.read(cpu.pc, width) == bytes(process.space.read(cpu.pc, width)):
            return False
        # Splice: copy the patched text and the chimera sections into the
        # live space (kernel privilege: ignores W permission on text).
        text = new.text
        process.space.patch_code(text.addr, bytes(text.data))
        self._sync_section(process, new, ".chimera.text", Perm.RX)
        self._sync_section(process, new, ".chimera.vregs", Perm.RW)
        self.fault_table.entries.update(new_meta["fault_table"].entries)
        self.trap_table.update(new_meta["trap_table"])
        cpu.flush_decode_cache()
        cpu.cycles += cpu.cost.fault_handling_cost * 4  # rewrite is heavier
        cpu.bump("runtime_rewrites")
        self.stats.runtime_rewrites += 1
        return True

    def _sync_section(self, process: Process, new: Binary, name: str, perm: Perm) -> None:
        if not new.has_section(name):
            return
        section = new.section(name)
        seg = process.space.segment_at(section.addr)
        if seg is not None and seg.size == section.size:
            seg.data[:] = section.data
            seg.version += 1
            return
        if seg is not None:
            process.space.segments.remove(seg)
        process.space.map(name, section.addr, bytearray(section.data), perm)

    # -- signals -------------------------------------------------------------

    def _signal_gp_restore(self, kernel: Kernel, process: Process, cpu: Cpu, signum: int) -> None:
        """Fig. 10: if a signal lands while gp is temporarily clobbered by a
        SMILE trampoline/target block, the user handler must still observe
        the ABI gp value."""
        if cpu.get_reg(Reg.GP) != self.gp_value:
            cpu.set_reg(Reg.GP, self.gp_value)
            self.stats.signals_gp_restored += 1


def _profile_by_name(name: str):
    from repro.isa.extensions import PROFILES

    return PROFILES[name]
