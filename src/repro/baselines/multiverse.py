"""Multiverse [20]: superset-disassembly regeneration (§2.2).

Multiverse predates Safer: it regenerates the binary and keeps indirect
control flow correct by routing **every** indirect jump through a
runtime lookup table — no static target encoding, no fast path.  The
paper cites "above 30% performance overhead" for it; Safer's
contribution was precisely to make most of those lookups unnecessary.

Reproduction: shares the reassembly engine with Safer, but the
checkpoint cost models a full hash-table translation on every indirect
jump (``LOOKUP_COST``), roughly 3x Safer's inline check.  No
"corrections avoided" accounting exists because nothing is ever skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.safer import SaferRewriter, SaferRuntime, SaferStats
from repro.elf.binary import Binary
from repro.isa.extensions import IsaProfile
from repro.isa.registers import Reg
from repro.sim.cost import ArchParams, DEFAULT_ARCH
from repro.sim.cpu import Cpu
from repro.sim.machine import Kernel

#: Cycles per indirect jump: save scratch, hash the target, probe the
#: table (memory-bound), restore, jump — the paper's ~30%+ driver.
LOOKUP_COST = 40


@dataclass
class MultiverseResult:
    binary: Binary
    stats: SaferStats
    addr_map: dict[int, int]


class MultiverseRewriter:
    """Regenerate with always-lookup indirect handling."""

    def __init__(self, *, arch: ArchParams = DEFAULT_ARCH, mode: str = "full"):
        self._inner = SaferRewriter(arch=arch, mode=mode)

    def rewrite(self, binary: Binary, target_profile: IsaProfile) -> MultiverseResult:
        result = self._inner.rewrite(binary, target_profile)
        out = result.binary
        out.name = out.name.replace("@safer-", "@multiverse-")
        # Re-tag the metadata so the matching runtime claims it.
        out.metadata["multiverse"] = out.metadata.pop("safer")
        return MultiverseResult(out, result.stats, result.addr_map)


class MultiverseRuntime(SaferRuntime):
    """Kernel-side servicing: a full table lookup on every indirect jump."""

    def __init__(self, rewritten: Binary):
        meta = rewritten.metadata.get("multiverse")
        if meta is None:
            raise ValueError(f"{rewritten.name} was not produced by MultiverseRewriter")
        self.check_sites = meta["check_sites"]
        self.addr_map = meta["addr_map"]
        self.veneers = meta["veneers"]
        self.checks = 0
        self.corrections = 0

    def _do_check(self, cpu: Cpu, site) -> None:
        rs1 = site.rs1 if site.rs1 is not None else 0
        imm = site.imm or 0
        target = (cpu.get_reg(rs1) + imm) & ~1 & 0xFFFFFFFFFFFFFFFF
        translated = self.addr_map.get(target)
        if translated is not None and translated != target:
            self.corrections += 1
            target = translated
        if site.mnemonic == "jalr" and site.rd:
            cpu.set_reg(site.rd, site.addr + 4)
        elif site.mnemonic == "c.jalr":
            cpu.set_reg(int(Reg.RA), site.addr + 2)
        cpu.pc = target
        cpu.cycles += LOOKUP_COST
        cpu.bump("multiverse_lookups")
        self.checks += 1
