"""Heterogeneous work-stealing scheduling (paper §6.1).

The evaluation's scheduling experiments run 1000 mixed tasks over two
worker pools (base cores / extension cores) with work stealing: a worker
takes from its own pool's queue first and steals from the other pool
only when its own pool has run dry.  Task *costs* are measured by
running the actual (rewritten) binaries in the CPU simulator; the
discrete-event engine here then replays the same 1000-task mixes per
system, which is exactly how the paper's numbers are shaped (per-task
compute is fixed by the binary; the systems differ in where tasks may
run and at what cost).

System behavior is abstracted by :class:`SystemModel`:

* ``cost(kind, on_ext)`` — cycles for one task of *kind* on a core type
  (``None`` = cannot run there, e.g. FAM's extension tasks on base
  cores);
* ``accelerated(kind, on_ext)`` — whether that placement counts as
  vector-accelerated (Fig. 12);
* ``migrate_on_unsupported`` — FAM's fault-and-migrate behavior: the
  task faults on the base core after ``detect_cycles`` and is re-queued
  to the extension pool, paying the migration cost.

Fault tolerance: a :class:`~repro.resilience.failures.DesFailurePlan`
kills or flakes workers mid-task.  Failed workers are quarantined (dead
at once, flaky past a threshold), orphaned tasks are re-queued with
exponential backoff, extension tasks fall back to base cores when the
extension pool is gone (for systems whose model can run them there), and
a task with nowhere left to run ends in a structured
:class:`~repro.sim.faults.UnrecoverableFault` entry on the result —
never a silent drop, never a livelock.

This degradation ladder composes with verified patching's *per-patch*
rung below it (see DESIGN.md "Verified patching"): the measured runner
(:mod:`repro.core.machine_runner`) executes Chimera tasks under
``ChimeraRuntime(self_heal=True)``, so an unexpected fault inside one
patched region quarantines just that patch (rolled back to the
trap-fallback encoding, surfaced as ``resilience.patch_rollbacks``) and
the task keeps running — task-level retry, core quarantine, and
pool-level downgrade only engage when healing cannot contain the
damage.  The abstract DES here models core/task failures only; per-patch
healing is below its cost-model resolution.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.resilience.failures import DesFailurePlan
from repro.resilience.policy import DEFAULT_RETRY_POLICY, ResilienceStats, RetryPolicy
from repro.resilience.seeds import resolve_seed
from repro.sim.cost import ArchParams, DEFAULT_ARCH
from repro.sim.faults import UnrecoverableFault
from repro.telemetry import MetricsRegistry, current as telemetry_current


@dataclass(frozen=True)
class Task:
    """One schedulable unit of the §6.1 workload."""

    task_id: int
    kind: str  # "base" | "ext"


@dataclass
class SystemModel:
    """Per-system scheduling behavior (costs in cycles)."""

    name: str
    #: (task kind, on extension core) -> cycles, or None if it cannot run.
    costs: dict[tuple[str, bool], Optional[int]]
    #: placements that count as vector-accelerated.
    accelerated_placements: frozenset[tuple[str, bool]] = frozenset()
    #: FAM: unsupported-instruction fault triggers migration to ext pool.
    migrate_on_unsupported: bool = False
    #: cycles a base core burns before hitting the unsupported instruction.
    detect_cycles: int = 1000

    def cost(self, kind: str, on_ext: bool) -> Optional[int]:
        return self.costs[(kind, on_ext)]

    def accelerated(self, kind: str, on_ext: bool) -> bool:
        return (kind, on_ext) in self.accelerated_placements


@dataclass
class ScheduleResult:
    """Outcome of one scheduling run."""

    system: str
    makespan: int          # end-to-end latency, cycles
    cpu_time: int          # accumulated busy cycles across all cores
    tasks_total: int
    ext_tasks: int
    accelerated_ext_tasks: int
    migrations: int
    steals: int
    per_core_busy: list[int]
    #: Tasks that ended in a structured UnrecoverableFault.
    unrecoverable: int = 0
    #: task_id -> the UnrecoverableFault that ended it.
    task_faults: dict[int, UnrecoverableFault] = field(default_factory=dict)
    quarantined_cores: tuple[int, ...] = ()
    resilience: ResilienceStats = field(default_factory=ResilienceStats)

    @property
    def completed(self) -> int:
        return self.tasks_total - self.unrecoverable

    @property
    def accelerated_share(self) -> float:
        """Fraction of extension tasks that ran vector-accelerated (Fig. 12)."""
        if self.ext_tasks == 0:
            return 0.0
        return self.accelerated_ext_tasks / self.ext_tasks


@dataclass
class _Pending:
    """A queued task plus its retry state."""

    task: Task
    pinned: bool = False   # may not be stolen across pools
    attempt: int = 1
    not_before: int = 0    # earliest dispatch time (backoff)
    first_start: Optional[int] = None


class WorkStealingScheduler:
    """Discrete-event work-stealing scheduler over two core pools."""

    def __init__(self, n_base: int, n_ext: int, params: ArchParams = DEFAULT_ARCH):
        self.n_base = n_base
        self.n_ext = n_ext
        self.params = params

    def run(self, tasks: list[Task], model: SystemModel, *,
            failures: Optional[DesFailurePlan] = None,
            retry_policy: Optional[RetryPolicy] = None,
            quarantine_after: int = 2) -> ScheduleResult:
        """Schedule *tasks* to completion under *model*."""
        policy = retry_policy or DEFAULT_RETRY_POLICY
        n = self.n_base + self.n_ext
        is_ext = [i >= self.n_base for i in range(n)]
        queues: dict[bool, deque[_Pending]] = {False: deque(), True: deque()}
        for task in tasks:
            pool = task.kind == "ext" and model.cost("ext", True) is not None
            # Extension tasks go to the extension pool when it can help;
            # everything else starts in the base pool.
            queues[bool(pool)].append(_Pending(task))

        free_at = [0] * n
        busy = [0] * n
        heap: list[tuple[int, int]] = [(0, i) for i in range(n)]
        heapq.heapify(heap)
        idle: set[int] = set()
        outstanding = len(tasks)
        makespan = 0
        ext_tasks = sum(1 for t in tasks if t.kind == "ext")
        #: Single source of truth for every event counter of this run;
        #: the result ledger and ResilienceStats are *derived* from it,
        #: so the two can no longer drift apart.
        m = MetricsRegistry()
        quarantined: set[int] = set()
        flake_counts = [0] * n
        task_faults: dict[int, UnrecoverableFault] = {}

        def pool_live(pool: bool) -> bool:
            return any(is_ext[i] == pool and i not in quarantined
                       for i in range(n))

        def wake(pool_ext: bool, now: int) -> None:
            """Wake an idle live worker of *pool_ext*'s pool (stealing
            happens naturally when busy workers free up)."""
            live_idle = [w for w in idle if w not in quarantined]
            matching = sorted((w for w in live_idle if is_ext[w] == pool_ext),
                              key=lambda w: free_at[w])
            if matching:
                w = matching[0]
                idle.discard(w)
                heapq.heappush(heap, (max(now, free_at[w]), w))
                return
            # Otherwise wake any idle worker; it may steal the new task.
            others = sorted(live_idle, key=lambda w: free_at[w])
            if others:
                w = others[0]
                idle.discard(w)
                heapq.heappush(heap, (max(now, free_at[w]), w))

        def take(w: int, my_pool: bool, now: int) -> Optional[tuple[_Pending, bool]]:
            for idx, pending in enumerate(queues[my_pool]):
                if pending.not_before <= now:
                    del queues[my_pool][idx]
                    return pending, False
            other = queues[not my_pool]
            for idx, pending in enumerate(other):
                if not pending.pinned and pending.not_before <= now:
                    del other[idx]
                    return pending, True
            return None

        def next_ready(my_pool: bool, now: int) -> Optional[int]:
            """Earliest not_before of work this worker could run later."""
            times = [p.not_before for p in queues[my_pool] if p.not_before > now]
            times += [p.not_before for p in queues[not my_pool]
                      if not p.pinned and p.not_before > now]
            return min(times) if times else None

        def quarantine(w: int) -> None:
            if w not in quarantined:
                quarantined.add(w)
                m.inc("resilience.quarantines")

        def declare_unrecoverable(pending: _Pending, reason: str) -> None:
            nonlocal outstanding
            m.inc("resilience.unrecoverable_tasks")
            task_faults[pending.task.task_id] = UnrecoverableFault(
                reason, attempts=pending.attempt)
            outstanding -= 1

        def requeue(pending: _Pending, now: int, *, reason: str) -> None:
            """Schedule a retry after a core failure, or give up."""
            task = pending.task
            attempt = pending.attempt + 1
            if policy.exhausted(attempt):
                declare_unrecoverable(
                    pending, f"task {task.task_id}: {reason}; retry budget "
                             f"exhausted after {pending.attempt} attempts")
                return
            if pending.first_start is not None and policy.past_deadline(
                    pending.first_start, now):
                declare_unrecoverable(
                    pending, f"task {task.task_id}: {reason}; past the "
                             f"{policy.deadline}-cycle deadline")
                return
            pool = task.kind == "ext" and model.cost("ext", True) is not None
            pinned = pending.pinned
            if not pool_live(bool(pool)):
                # Degradation ladder: steer to the surviving flavor if the
                # model can run the task there (downgraded binary).
                other = not pool
                if (model.cost(task.kind, other) is None
                        and not model.migrate_on_unsupported) \
                        or not pool_live(other):
                    declare_unrecoverable(
                        pending, f"task {task.task_id}: {reason}; no live "
                                 "core can run it")
                    return
                pool = other
                pinned = False
            backoff = policy.backoff(attempt - 1)
            m.inc("resilience.retries")
            m.inc("resilience.backoff_cycles", backoff)
            m.inc("resilience.migrations")
            queues[bool(pool)].append(_Pending(
                task, pinned=pinned, attempt=attempt,
                not_before=now + backoff, first_start=pending.first_start))
            wake(bool(pool), now + backoff)

        while heap:
            now, w = heapq.heappop(heap)
            if w in quarantined:
                continue
            my_pool = is_ext[w]
            m.observe("sched.queue_depth", len(queues[my_pool]),
                      pool="ext" if my_pool else "base")
            taken = take(w, my_pool, now)
            if taken is None:
                later = next_ready(my_pool, now)
                if later is not None:
                    # Work exists but is backing off; come back for it.
                    heapq.heappush(heap, (later, w))
                elif outstanding > 0:
                    idle.add(w)
                    free_at[w] = now
                continue
            pending, stolen = taken
            task = pending.task
            start = now + (self.params.steal_cost if stolen else 0)
            if pending.first_start is None:
                pending.first_start = start
            cost = model.cost(task.kind, my_pool)
            if cost is None:
                if model.migrate_on_unsupported and not my_pool:
                    # FAM: fault after detect_cycles, migrate to ext pool
                    # and pin the task there so it is not re-stolen.  The
                    # worker is stalled until the migration completes but
                    # only the detection burns CPU time (the rest is
                    # kernel/cache latency).
                    end = start + model.detect_cycles + self.params.migration_cost
                    busy[w] += (start - now) + model.detect_cycles
                    free_at[w] = end
                    makespan = max(makespan, end)
                    heapq.heappush(heap, (end, w))
                    if not pool_live(True):
                        # No live extension core and no downgraded binary:
                        # structured failure, not a silent drop.
                        declare_unrecoverable(
                            pending, f"task {task.task_id}: needs an "
                                     "extension core but none is live")
                        continue
                    m.inc("sched.migrations", reason="fam-unsupported")
                    queues[True].append(_Pending(
                        task, pinned=True, attempt=pending.attempt,
                        first_start=pending.first_start))
                    wake(True, end)
                    continue
                # Cannot run here at all: pin it to its own pool — unless
                # that pool has no live worker, in which case the task is
                # unrunnable and must be accounted, not parked forever.
                home = task.kind == "ext"
                if not pool_live(home):
                    declare_unrecoverable(
                        pending, f"task {task.task_id}: cannot run on this "
                                 "core flavor and its own pool has no live "
                                 "worker")
                    idle.add(w)
                    free_at[w] = now
                    continue
                pending.pinned = True
                queues[home].append(pending)
                idle.add(w)
                free_at[w] = now
                wake(home, now)
                continue

            # The worker may fail mid-task (resilience failure plan).
            struck = failures.check(w, start) if failures is not None else None
            if struck is not None:
                m.inc("resilience.core_faults", core=w)
                burn = int(cost * failures.fail_fraction)
                end = start + burn
                busy[w] += end - now
                free_at[w] = end
                makespan = max(makespan, end)
                if struck == "kill":
                    quarantine(w)
                else:
                    flake_counts[w] += 1
                    if flake_counts[w] >= quarantine_after:
                        quarantine(w)
                    else:
                        heapq.heappush(heap, (end, w))
                requeue(pending, end,
                        reason=f"core {w} went {struck} mid-task")
                continue

            end = start + cost
            busy[w] += end - now
            free_at[w] = end
            outstanding -= 1
            if stolen:
                m.inc("sched.steals", core=w)
            if task.kind == "ext" and model.accelerated(task.kind, my_pool):
                m.inc("sched.accelerated_ext_tasks")
            makespan = max(makespan, end)
            heapq.heappush(heap, (end, w))

        # Drain: anything still queued has no live worker to run it.
        for pool in (False, True):
            while queues[pool]:
                pending = queues[pool].popleft()
                declare_unrecoverable(
                    pending, f"task {pending.task.task_id}: stranded — no "
                             "live core can run it")

        stats = ResilienceStats.from_metrics(m)
        telemetry = telemetry_current()
        if telemetry.enabled:
            telemetry.metrics.merge(m, engine="des", system=model.name)
        return ScheduleResult(
            system=model.name,
            makespan=makespan,
            cpu_time=sum(busy),
            tasks_total=len(tasks),
            ext_tasks=ext_tasks,
            accelerated_ext_tasks=m.total("sched.accelerated_ext_tasks"),
            migrations=m.total("sched.migrations"),
            steals=m.total("sched.steals"),
            per_core_busy=busy,
            unrecoverable=stats.unrecoverable_tasks,
            task_faults=task_faults,
            quarantined_cores=tuple(sorted(quarantined)),
            resilience=stats,
        )


def mixed_taskset(n_tasks: int, ext_share: float, *,
                  seed: Optional[int] = None) -> list[Task]:
    """The §6.1 workload: *n_tasks* tasks, ``ext_share`` of them extension.

    Deterministic interleaving (round-robin by share) so runs are
    reproducible without RNG-order artifacts.  *seed* (default:
    ``REPRO_FUZZ_SEED``, else 7) only affects the rare rounding-drift
    repair — the common shares are seed-independent by construction.
    """
    if not 0.0 <= ext_share <= 1.0:
        raise ValueError("ext_share must be within [0, 1]")
    seed = resolve_seed(seed, default=7)
    n_ext = round(n_tasks * ext_share)
    # Spread extension tasks evenly through the arrival order.
    tasks: list[Task] = []
    acc = 0.0
    made_ext = 0
    for i in range(n_tasks):
        acc += ext_share
        if acc >= 1.0 - 1e-9 and made_ext < n_ext:
            tasks.append(Task(i, "ext"))
            made_ext += 1
            acc -= 1.0
        else:
            tasks.append(Task(i, "base"))
    # Fix rounding drift: promote seed-chosen base tasks to extension.
    if made_ext < n_ext:
        rng = random.Random(seed)
        base_positions = [i for i, t in enumerate(tasks) if t.kind == "base"]
        for i in rng.sample(base_positions, n_ext - made_ext):
            tasks[i] = Task(tasks[i].task_id, "ext")
    return tasks
