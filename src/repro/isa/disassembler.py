"""Linear-sweep disassembly and instruction formatting.

Recursive-descent recovery (what Chimera actually relies on, §4.1)
lives in :mod:`repro.analysis.scan`; this module provides the simple
linear walk used for dumps, tests and debugging.
"""

from __future__ import annotations

from typing import Iterator

from repro.isa.decoding import IllegalEncodingError, decode
from repro.isa.instructions import Instruction, RawBytes
from repro.isa.registers import reg_name, vreg_name


def disassemble(
    data: bytes | bytearray | memoryview,
    base: int = 0,
    *,
    stop_on_error: bool = False,
) -> list[Instruction | RawBytes]:
    """Linearly disassemble *data* loaded at address *base*.

    Undecodable parcels become 2-byte :class:`RawBytes` islands (or, with
    ``stop_on_error``, terminate the sweep by re-raising).
    """
    return list(iter_disassemble(data, base, stop_on_error=stop_on_error))


def iter_disassemble(
    data: bytes | bytearray | memoryview,
    base: int = 0,
    *,
    stop_on_error: bool = False,
) -> Iterator[Instruction | RawBytes]:
    """Generator form of :func:`disassemble`."""
    offset = 0
    n = len(data)
    while offset < n:
        addr = base + offset
        try:
            instr = decode(data, offset, addr=addr)
        except IllegalEncodingError:
            if stop_on_error:
                raise
            chunk = bytes(data[offset:offset + 2])
            yield RawBytes(chunk, addr=addr)
            offset += len(chunk)
            continue
        yield instr
        offset += instr.length


def format_instruction(instr: Instruction | RawBytes) -> str:
    """Pretty-print one instruction in objdump-like style."""
    if isinstance(instr, RawBytes):
        return str(instr)
    mnem = instr.mnemonic
    ops: list[str] = []
    if mnem in ("lb", "lh", "lw", "ld", "lbu", "lhu", "lwu", "c.lw", "c.ld", "c.lwsp", "c.ldsp"):
        ops = [reg_name(instr.rd), f"{instr.imm}({reg_name(instr.rs1)})"]
    elif mnem in ("sb", "sh", "sw", "sd", "c.sw", "c.sd", "c.swsp", "c.sdsp"):
        ops = [reg_name(instr.rs2), f"{instr.imm}({reg_name(instr.rs1)})"]
    elif mnem == "jalr":
        ops = [reg_name(instr.rd), f"{instr.imm}({reg_name(instr.rs1)})"]
    elif mnem in ("vle32.v", "vle64.v", "vse32.v", "vse64.v"):
        ops = [vreg_name(instr.vd), f"({reg_name(instr.rs1)})"]
    elif mnem == "vmv.v.x":
        ops = [vreg_name(instr.vd), reg_name(instr.rs1)]
    elif mnem == "vmv.v.i":
        ops = [vreg_name(instr.vd), str(instr.imm)]
    else:
        if instr.vd is not None:
            ops.append(vreg_name(instr.vd))
        if instr.rd is not None:
            ops.append(reg_name(instr.rd))
        if instr.vs2 is not None:
            ops.append(vreg_name(instr.vs2))
        if instr.vs1 is not None:
            ops.append(vreg_name(instr.vs1))
        if instr.rs1 is not None and mnem not in ("c.addi", "c.addiw", "c.slli", "c.srli", "c.srai", "c.andi"):
            ops.append(reg_name(instr.rs1))
        if instr.rs2 is not None:
            ops.append(reg_name(instr.rs2))
        if instr.imm is not None:
            target = instr.target()
            ops.append(f"{target:#x}" if target is not None else str(instr.imm))
    text = f"{mnem}\t{', '.join(ops)}".rstrip()
    if instr.addr is not None:
        enc = f"{instr.encoding:08x}" if instr.length == 4 else f"    {instr.encoding:04x}"
        return f"{instr.addr:8x}:\t{enc}\t{text}"
    return text


def dump(data: bytes, base: int = 0) -> str:
    """Disassemble *data* and return a multi-line objdump-style listing."""
    return "\n".join(format_instruction(i) for i in disassemble(data, base))
